//! Quickstart: protect a vulnerable server with Sweeper, watch it absorb
//! a real exploit, and keep serving.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sweeper_repro::apps::{httpd1, workload::Target, workload::Workload};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

fn main() {
    // mini-httpd v1 carries the Apache 1.3.27 stack-smash (CVE-2003-0542
    // analogue) in its alias matcher.
    let app = httpd1::app().expect("assemble mini-httpd");
    println!(
        "Protecting {} ({}, {})\n",
        app.name, app.stands_for, app.cve
    );

    // Full Sweeper producer: ASLR monitoring, 200 ms checkpoints,
    // post-attack analysis, antibody generation, rollback recovery.
    let mut server = Sweeper::protect(&app, Config::producer(0xc0ffee)).expect("protect");

    // Benign traffic is served untouched.
    let mut workload = Workload::new(Target::Apache1, 1);
    for _ in 0..5 {
        match server.offer_request(workload.next_request()) {
            RequestOutcome::Served { log_id, bytes } => {
                println!("request {log_id}: served ({bytes} bytes)")
            }
            other => println!("unexpected: {other:?}"),
        }
    }

    // A worm fires the exploit. Under address-space randomization the
    // hard-coded addresses miss: the smashed return faults, Sweeper rolls
    // back, analyzes, builds antibodies, and recovers — all in one call.
    println!("\n>>> exploit arrives");
    let exploit = httpd1::exploit_crash(&app);
    match server.offer_request(exploit.input) {
        RequestOutcome::Attack(report) => {
            println!("detected : {}", report.cause);
            println!(
                "recovered: {} ({:.1} ms pause)",
                report.recovery_method, report.pause_ms
            );
            let analysis = report.analysis.as_ref().expect("producer analysis");
            println!(
                "antibody : first VSEF after {:.1} ms, full analysis after {:.1} ms",
                analysis.timings.first_vsef_ms, analysis.timings.total_ms
            );
            println!(
                "input    : attack traced to connection(s) {:?}",
                analysis.input.attack_log_ids
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // Service continues without restart.
    println!("\n>>> service continues");
    for _ in 0..3 {
        match server.offer_request(workload.next_request()) {
            RequestOutcome::Served { log_id, .. } => println!("request {log_id}: served"),
            other => println!("unexpected: {other:?}"),
        }
    }

    // The identical exploit is now dropped at the proxy by the exact
    // signature; a *polymorphic* variant gets caught by the VSEF before
    // it can do damage.
    println!("\n>>> the worm retries");
    let again = server.offer_request(httpd1::exploit_crash(&app).input);
    println!("identical exploit : {again:?}");
    match server.offer_request(httpd1::exploit_crash_poly(&app, 7).input) {
        RequestOutcome::Attack(r) => println!("polymorphic variant: {}", r.cause),
        other => println!("polymorphic variant: {other:?}"),
    }
    println!(
        "\n{} requests served, {} attacks stopped, {} VSEFs deployed.",
        server.requests_served,
        server.attacks_detected,
        server.deployed_vsefs()
    );
}
