//! Drive the individual analysis tools by hand — the paper's §2.2
//! walk-through on the Squid heap overflow (Figure 2), tool by tool.
//!
//! ```sh
//! cargo run --example forensics
//! ```

use sweeper_repro::analysis::{backward_slice, MemBugDetector, TaintTool};
use sweeper_repro::apps::squid;
use sweeper_repro::checkpoint::{CheckpointManager, Proxy, ReplaySession};
use sweeper_repro::dbi::{Instrumenter, TraceRecorder};
use sweeper_repro::svm::{loader::Aslr, NopHook};

fn main() {
    let app = squid::app().expect("assemble mini-squid");
    let mut m = app.boot(Aslr::on(0xf02e)).expect("boot");
    m.run(&mut NopHook, 100_000_000);

    // Checkpoint, then serve benign traffic and the exploit.
    let mut mgr = CheckpointManager::with_defaults();
    let mut proxy = Proxy::new();
    let ckpt = mgr.take(&mut m);
    for i in 0..2 {
        proxy.offer(
            &mut m,
            squid::benign_request(&format!("user{i}"), "ftp.example"),
            &[],
        );
        m.run(&mut NopHook, 400_000_000);
    }
    proxy.offer(&mut m, squid::exploit_crash(&app).input, &[]);
    m.run(&mut NopHook, 400_000_000);
    println!("lightweight monitor tripped: {:?}\n", m.status());
    println!("== raw core dump ==");
    println!("{}", sweeper_repro::svm::debug::dump(&m));

    // Step 1: memory-state (core dump) analysis — milliseconds.
    let core = sweeper_repro::analysis::analyze(&m).expect("core dump");
    println!("== step 1: memory-state analysis ==");
    println!("crash class    : {:?}", core.class);
    println!("fault site     : {}", core.fault_site);
    println!(
        "stack          : {}",
        if core.stack_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );
    println!(
        "heap           : {}",
        if core.heap_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );
    println!("initial VSEF   : {:?}\n", core.recommendation);

    // Step 2: rollback + memory-bug detection.
    println!("== step 2: memory-bug detection on replay ==");
    let det = MemBugDetector::attach_to(&mgr.materialize(ckpt).expect("ckpt"));
    let mut ins = Instrumenter::new();
    let id = ins.attach(Box::new(det));
    ReplaySession::new(&mgr, &proxy, ckpt)
        .expect("session")
        .run(&mut ins);
    let findings = ins
        .get::<MemBugDetector>(id)
        .expect("tool")
        .findings()
        .to_vec();
    for f in &findings {
        let caller = f
            .caller_pc
            .map(|c| format!(" called by {}", m.symbols.render(c)))
            .unwrap_or_default();
        println!("{:?} by {}{}", f.kind, m.symbols.render(f.pc), caller);
    }

    // Step 3: rollback + dynamic taint analysis.
    println!("\n== step 3: dynamic taint analysis on replay ==");
    let mut ins3 = Instrumenter::new();
    let tid = ins3.attach(Box::new(TaintTool::new()));
    let out = ReplaySession::new(&mgr, &proxy, ckpt)
        .expect("session")
        .run(&mut ins3);
    let taint = ins3.get::<TaintTool>(tid).expect("tool");
    if let sweeper_repro::svm::Status::Faulted(f) = out.machine.status() {
        let corrupt = f.fault_addr().expect("addr");
        let sources = taint.taint_of_mem(corrupt, 8);
        println!("corrupt chunk header at {corrupt:#010x} is tainted by:");
        for (conn, off) in &sources {
            println!("  connection {conn}, input byte offset {off}");
        }
    }

    // Step 4: rollback + full trace + backward slice (the sanity check).
    println!("\n== step 4: dynamic backward slicing on replay ==");
    let mut ins4 = Instrumenter::new();
    let rid = ins4.attach(Box::new(TraceRecorder::new()));
    ReplaySession::new(&mgr, &proxy, ckpt)
        .expect("session")
        .run(&mut ins4);
    let trace = ins4.get::<TraceRecorder>(rid).expect("tool");
    let slice = backward_slice(trace, trace.len() - 1, true);
    println!("trace length   : {} dynamic instructions", trace.len());
    println!(
        "slice size     : {} instructions, {} static pcs",
        slice.len(),
        slice.pcs.len()
    );
    println!(
        "input deps     : {} bytes across the connection log",
        slice.input_deps.len()
    );
    for f in &findings {
        println!(
            "verifies step 2: {:?} at {} -> {}",
            f.kind,
            m.symbols.render(f.pc),
            if slice.contains_pc(f.pc) {
                "IN SLICE (confirmed)"
            } else {
                "outside slice"
            }
        );
    }
}
