//! Worm outbreak across a small network of real Sweeper hosts.
//!
//! A hit-list worm walks a list of CVS servers firing the real
//! unlink-hijack exploit (CVE-2003-0015 analogue). Unprotected hosts with
//! predictable layouts are compromised outright; Sweeper hosts randomize
//! their layouts (the exploit faults), the first producer analyzes the
//! attack, and its antibody — distributed to every remaining host —
//! stops the rest of the hit list cold.
//!
//! ```sh
//! cargo run --example worm_outbreak
//! ```

use sweeper_repro::apps::{cvs, is_compromised};
use sweeper_repro::svm::loader::Layout;
use sweeper_repro::svm::{loader::Aslr, NopHook};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

fn main() {
    let app = cvs::app().expect("assemble mini-cvs");
    // The worm computes its unlink addresses against the well-known
    // (unrandomized) layout — exactly what real 2003 exploits did.
    let exploit = cvs::exploit_compromise(&app, &Layout::nominal());
    println!(
        "Worm targets {} ({});\nhit list: 10 hosts\n",
        app.name, app.cve
    );

    // --- Scenario A: nobody runs Sweeper (no ASLR, no analysis). -------
    let mut owned = 0;
    for host in 0..10 {
        let mut m = app.boot(Aslr::off()).expect("boot");
        m.net.push_connection(exploit.input.clone());
        m.run(&mut NopHook, 400_000_000);
        if is_compromised(&m) {
            owned += 1;
            println!("[no defense] host {host}: COMPROMISED (shellcode ran)");
        }
    }
    println!("[no defense] {owned}/10 hosts compromised\n");

    // --- Scenario B: one producer, nine consumers. ----------------------
    // Host 0 runs full Sweeper; hosts 1..9 deploy antibodies they receive.
    let mut producer = Sweeper::protect(&app, Config::producer(1000)).expect("protect");
    println!("[sweeper] host 0 (producer) is attacked first...");
    let antibody = match producer.offer_request(exploit.input.clone()) {
        RequestOutcome::Attack(report) => {
            println!("[sweeper] host 0: detected ({})", report.cause);
            let analysis = report.analysis.expect("analysis");
            println!(
                "[sweeper] host 0: first VSEF after {:.1} ms; antibody released",
                analysis.timings.first_vsef_ms
            );
            analysis.antibody
        }
        other => panic!("producer missed the attack: {other:?}"),
    };

    let mut survived = 0;
    for host in 1..10 {
        let mut consumer = Sweeper::protect(&app, Config::consumer(1000 + host)).expect("protect");
        consumer.deploy_antibody(&antibody);
        match consumer.offer_request(exploit.input.clone()) {
            RequestOutcome::Filtered { .. } => {
                survived += 1;
                println!("[sweeper] host {host}: exploit dropped by input signature");
            }
            RequestOutcome::Attack(r) if r.cause.starts_with("vsef") => {
                survived += 1;
                println!("[sweeper] host {host}: exploit caught by deployed VSEF");
            }
            RequestOutcome::Attack(r) => {
                survived += 1;
                println!(
                    "[sweeper] host {host}: exploit crashed against ASLR ({})",
                    r.cause
                );
            }
            other => println!("[sweeper] host {host}: {other:?}"),
        }
    }
    println!(
        "\n[sweeper] 0/10 hosts compromised; {survived}/9 consumers protected by the antibody"
    );
}
