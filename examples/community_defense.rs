//! Community defense against fast worms (paper §6): regenerate the
//! epidemic figures, cross-check the analytic model against Monte-Carlo
//! outbreaks, and plug in the *measured* antibody-generation latency to
//! compute the end-to-end response time γ.
//!
//! ```sh
//! cargo run --release --example community_defense
//! ```

use sweeper_repro::apps::squid;
use sweeper_repro::epidemic::{figure6, figure7, figure8, simulate_mean, solve, Scenario};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

fn main() {
    // --- The analytic figures. -----------------------------------------
    println!("{}", figure6().render());
    println!("{}", figure7().render());
    println!("{}", figure8().render());

    // --- Monte-Carlo cross-check (scaled-down population). -------------
    println!("Monte-Carlo cross-check (N = 10 000, 20 outbreaks each):");
    println!(
        "{:>10} {:>8} {:>12} {:>12}",
        "alpha", "gamma", "ODE", "Monte-Carlo"
    );
    for (alpha, gamma) in [(0.002, 5.0), (0.002, 20.0), (0.01, 10.0)] {
        let s = Scenario {
            beta: 0.1,
            n: 10_000.0,
            alpha,
            rho: 1.0,
            gamma,
            i0: 1.0,
        };
        let ode = solve(&s).infection_ratio;
        let mc = simulate_mean(&s, 20, 7);
        println!("{alpha:>10} {gamma:>7}s {ode:>12.4} {mc:>12.4}");
    }

    // --- Measured γ (paper §6.3). ---------------------------------------
    // γ1 = time from detection to a distributable VSEF + exploit input,
    // measured on a real attack against the protected Squid analogue;
    // γ2 = 3 s, Vigilante's reported initial alert dissemination time.
    let app = squid::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(99)).expect("protect");
    s.offer_request(squid::benign_request("warm", "up"));
    let RequestOutcome::Attack(report) = s.offer_request(squid::exploit_crash(&app).input) else {
        panic!("attack not detected")
    };
    let analysis = report.analysis.expect("analysis");
    let gamma1 = analysis.timings.initial_ms / 1e3;
    let gamma = gamma1 + 3.0;
    println!("\nMeasured gamma1 (detect -> VSEF + input): {gamma1:.3} s");
    println!("End-to-end gamma (with 3 s dissemination): {gamma:.2} s\n");
    for beta in [1000.0, 4000.0] {
        let out = solve(&Scenario::hitlist(beta, 0.0001, gamma));
        println!(
            "hit-list beta = {beta:>6}, alpha = 0.0001: infection ratio {:.4}",
            out.infection_ratio
        );
    }
    println!("\nThe paper's conclusion reproduces: with proactive protection and a");
    println!("~5 s response, even thousand-fold-faster-than-Slammer worms are contained.");
}
