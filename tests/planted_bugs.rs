//! Pin tests for the two planted guest bugs, at bug-site granularity.
//!
//! `end_to_end.rs` checks the canned Table 1 exploits; this file pins
//! the *bugs themselves* so a refactor of the guest assembly cannot
//! silently neuter them:
//!
//! - **CVS stale `cur_dir`** (`crates/apps/src/cvs.rs`, `dirswitch`):
//!   the bad-name error path returns without clearing `cur_dir`, so the
//!   next `Directory` command frees the same chunk again — the
//!   CVE-2003-0015 double-free pattern. The minimal trigger needs no
//!   crafted unlink operands at all.
//! - **Apache2 NULL `host`** (`crates/apps/src/httpd2.rs`, `cr_try_ftp`):
//!   an unrecognized Referer scheme falls through to `cr_check` with
//!   `host == NULL`, and `is_ip` dereferences it. Layout-independent,
//!   DoS-only.

use sweeper_repro::analysis::{CrashClass, MemBugKind};
use sweeper_repro::apps::{cvs, httpd2};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

/// The minimal stale-`cur_dir` trigger: a good directory (allocates),
/// a bad name (frees, forgets to clear), another directory (frees the
/// same pointer again). No attacker-controlled unlink operands — the
/// allocator's own metadata walk trips over the corruption.
fn minimal_double_free_session() -> Vec<u8> {
    b"Root /repo\nDirectory a\nDirectory /bad\nDirectory b\nEntry e\ndone\n".to_vec()
}

#[test]
fn cvs_stale_cur_dir_minimal_trigger_is_detected_and_classified() {
    let app = cvs::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(0x5eed)).expect("protect");
    let report = match s.offer_request(minimal_double_free_session()) {
        RequestOutcome::Attack(r) => *r,
        other => panic!("minimal double-free not detected: {other:?}"),
    };
    assert!(
        !report.compromised,
        "no shellcode involved, only corruption"
    );
    let a = report.analysis.expect("analysis");
    // The crash itself is the unlink write inside malloc...
    assert!(!a.core.heap_consistent, "heap walk must flag the free list");
    assert!(
        a.core.fault_site.contains("malloc"),
        "unlink fires at the next allocation: {}",
        a.core.fault_site
    );
    // ...but the memory-bug detector attributes the *root cause*: a
    // double free whose second call comes from dirswitch.
    let f = a
        .membug
        .iter()
        .find(|f| f.kind == MemBugKind::DoubleFree)
        .expect("DoubleFree finding");
    let caller = a
        .symbols
        .resolve(f.caller_pc.expect("caller pc"))
        .expect("caller symbol");
    assert!(
        caller.name.starts_with("dirswitch"),
        "second free attributed to dirswitch, got {}",
        caller.name
    );
}

#[test]
fn cvs_bad_name_alone_is_harmless() {
    // One free on the error path is legal; the bug needs a *subsequent*
    // dirswitch. Pinning this keeps the fix honest: clearing `cur_dir`
    // on the error path must not break the error path itself.
    let app = cvs::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(0x5eee)).expect("protect");
    let out = s.offer_request(b"Root /repo\nDirectory a\nDirectory /bad\ndone\n".to_vec());
    assert!(
        matches!(out, RequestOutcome::Served { .. }),
        "bad name followed by no further Directory must be served: {out:?}"
    );
    // And an all-good session stays good.
    let out = s.offer_request(cvs::benign_session(&["x", "y"]));
    assert!(matches!(out, RequestOutcome::Served { .. }));
}

#[test]
fn httpd2_null_host_fires_for_every_unknown_scheme_and_only_those() {
    let app = httpd2::app().expect("app");
    // Known schemes take the populated-host path: served.
    for referer in ["http://1.2.3.4/", "ftp://files.example/", "http://name/"] {
        let mut s = Sweeper::protect(&app, Config::producer(0xa11)).expect("protect");
        let out = s.offer_request(httpd2::benign_request("ok.html", Some(referer)));
        assert!(
            matches!(out, RequestOutcome::Served { .. }),
            "{referer}: known scheme must be served, got {out:?}"
        );
    }
    // Every unknown scheme leaves host == NULL and faults in is_ip,
    // regardless of layout seed — the bug is layout-independent.
    for (i, scheme) in ["gopher", "wais", "telnet", "xyz"].iter().enumerate() {
        let seed = 0xb00 + i as u64;
        let mut s = Sweeper::protect(&app, Config::producer(seed)).expect("protect");
        let input = format!("GET /p{i} HTTP/1.0\nReferer: {scheme}://evil/\n").into_bytes();
        let report = match s.offer_request(input) {
            RequestOutcome::Attack(r) => *r,
            other => panic!("{scheme}: NULL deref not detected: {other:?}"),
        };
        assert!(!report.compromised, "{scheme}: DoS-only bug");
        let a = report.analysis.expect("analysis");
        assert_eq!(a.core.class, CrashClass::NullDeref, "{scheme}");
        assert!(
            a.core.fault_site.contains("is_ip"),
            "{scheme}: fault must be inside is_ip, got {}",
            a.core.fault_site
        );
        assert!(
            a.membug.is_empty(),
            "{scheme}: a NULL deref is not a memory bug — Table 2's empty cell"
        );
        // Recovery keeps the host serving afterwards.
        let out = s.offer_request(httpd2::benign_request("after.html", None));
        assert!(matches!(out, RequestOutcome::Served { .. }), "{scheme}");
    }
}

#[test]
fn empty_referer_value_is_an_unknown_scheme_too() {
    // A `Referer:` header with no value fails both scheme compares and
    // falls into `cr_check` with host == NULL — the same planted bug
    // through a corner the canned exploits never exercise.
    let app = httpd2::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(0xc0de)).expect("protect");
    // No Referer header at all: `check_referer` never reaches is_ip.
    let out = s.offer_request(b"GET /a HTTP/1.0\n".to_vec());
    assert!(matches!(out, RequestOutcome::Served { .. }), "{out:?}");
    // Empty value: detected as the same NULL deref at is_ip.
    let report = match s.offer_request(b"GET /b HTTP/1.0\nReferer: \n".to_vec()) {
        RequestOutcome::Attack(r) => *r,
        other => panic!("empty referer value not detected: {other:?}"),
    };
    let a = report.analysis.expect("analysis");
    assert_eq!(a.core.class, CrashClass::NullDeref);
    assert!(a.core.fault_site.contains("is_ip"));
}
