//! Property tests for the fleet reactor (PR 8 satellite).
//!
//! Two laws the whole `tables fleet` measurement rests on:
//!
//! * **Shard invariance** — the reactor's shard count is a pure
//!   data-structure knob: for any seed, host count, and shard count,
//!   the fleet outcome digest (every service completion plus the final
//!   per-host state) is bit-identical to the 1-shard run, and so are
//!   the aggregate counters and both latency books. This is chaos
//!   invariant I10 quantified over the configuration space rather than
//!   spot-checked.
//! * **Aggregation consistency** — the fleet's merged metrics are
//!   exactly the host-order fold of the per-host exports: summing
//!   `sweeper.requests_served` across hosts equals the fleet `served`
//!   counter, and the latency books partition the served requests
//!   (quiescent + outbreak sample counts = served).

use proptest::prelude::*;
use sweeper_repro::fleet::{run, FleetConfig};
use sweeper_repro::sweeper::RecoveryMode;

/// A small-but-varied fleet configuration: host counts, seeds, and an
/// optional outbreak, sized so one case stays well under a second.
fn arb_cfg() -> impl Strategy<Value = FleetConfig> {
    (3u32..9, 0u64..1_000, any::<bool>()).prop_map(|(hosts, seed, outbreak)| FleetConfig {
        outbreak_at_ms: outbreak.then_some(200.0),
        horizon_ms: 450.0,
        contact_cap: hosts,
        ..FleetConfig::smoke(hosts, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any shard count pops the same global event order, so the whole
    /// run — digest, counters, latency books — is bit-identical.
    #[test]
    fn shard_count_never_changes_the_outcome(
        cfg in arb_cfg(),
        shards in 2usize..5,
    ) {
        let serial = run(&cfg.with_shards(1)).expect("fleet runs");
        let sharded = run(&cfg.with_shards(shards)).expect("fleet runs");
        prop_assert_eq!(serial.digest, sharded.digest);
        prop_assert_eq!(serial.served, sharded.served);
        prop_assert_eq!(serial.filtered, sharded.filtered);
        prop_assert_eq!(serial.attacks, sharded.attacks);
        prop_assert_eq!(serial.contacts, sharded.contacts);
        prop_assert_eq!(serial.bundles_deployed, sharded.bundles_deployed);
        prop_assert_eq!(serial.protected_hosts, sharded.protected_hosts);
        prop_assert_eq!(serial.quiescent.samples(), sharded.quiescent.samples());
        prop_assert_eq!(serial.outbreak.samples(), sharded.outbreak.samples());
    }

    /// The fleet aggregates are exactly the sum of the per-host truth:
    /// merged counters equal the fleet counters, and the two latency
    /// windows partition the served benign requests.
    #[test]
    fn fleet_aggregates_sum_the_per_host_metrics(cfg in arb_cfg()) {
        let out = run(&cfg).expect("fleet runs");
        // Per-host exports are merged in host order into out.metrics;
        // counters are a commutative monoid, so the merged counter must
        // equal the scalar the simulation counted independently.
        prop_assert_eq!(out.metrics.counter("sweeper.requests_served"), out.served);
        prop_assert_eq!(out.metrics.counter("sweeper.attacks_detected"), out.attacks);
        // Every benign service completion landed in exactly one book.
        // Worm deliveries never produce latency samples, so the books
        // cover served + filtered benign requests minus the worm
        // filtered ones; with no outbreak it is exact.
        let sampled = (out.quiescent.len() + out.outbreak.len()) as u64;
        prop_assert!(sampled >= out.served, "served requests all sampled");
        prop_assert!(
            sampled <= out.served + out.filtered,
            "samples never exceed benign completions"
        );
        if cfg.outbreak_at_ms.is_none() {
            prop_assert_eq!(sampled, out.served);
            prop_assert!(out.outbreak.is_empty());
        }
    }

    /// Recovery mode is a latency knob, never a safety knob: for any
    /// fleet configuration, the default Domain mode protects exactly
    /// the hosts Full protects, holds I12 (no benign-domain
    /// disturbance), and never materially worsens the outbreak tail —
    /// the pause split can only move analysis *off* the benign queue.
    /// (A 10 µs tolerance absorbs per-sample scheduling jitter: under
    /// sparse load both tails sit at the quiescent baseline and either
    /// run can draw the epsilon-later completion.)
    #[test]
    fn domain_recovery_never_worsens_the_outbreak_tail(cfg in arb_cfg()) {
        let cfg = FleetConfig { outbreak_at_ms: Some(200.0), ..cfg };
        let dom = run(&cfg).expect("domain run");
        let full = run(&cfg.with_recovery(RecoveryMode::Full)).expect("full run");
        prop_assert_eq!(dom.metrics.counter("recovery.i12_violations"), 0);
        prop_assert_eq!(full.metrics.counter("recovery.domain_rollbacks"), 0);
        // Recovery pauses shift worm-delivery timing, so attack counts
        // (and how far the antibody spreads before the horizon) can
        // differ between the runs — but Domain mode must convert every
        // attack into a partial rollback that replays no benign
        // connection (per-connection domains hold exactly the attack).
        prop_assert_eq!(
            dom.metrics.counter("recovery.domain_rollbacks"),
            dom.attacks
        );
        prop_assert_eq!(dom.metrics.counter("recovery.domain.replayed_conns"), 0);
        if let (Some(d), Some(f)) = (
            dom.outbreak.percentile(0.999),
            full.outbreak.percentile(0.999),
        ) {
            prop_assert!(
                d <= f + 0.01,
                "domain tail never materially worse: {d:.4} vs {f:.4} ms"
            );
        }
    }
}

/// The pause-split regression under real queueing pressure: once Domain
/// recovery restores the benign connections, the analysis overlaps the
/// queued arrivals instead of stalling them, so the attacked hosts'
/// analysis pause stops being visible in benign outbreak-window latency
/// at all — the Domain tail stays at the quiescent baseline while the
/// Full tail absorbs whole analysis pauses.
#[test]
fn analysis_overlaps_queued_service_under_domain_recovery() {
    let cfg = FleetConfig {
        arrival_rate_hz: 25.0,
        producer_every: 1,
        ..FleetConfig::smoke(8, 5)
    };
    let dom = run(&cfg).expect("domain run");
    let full = run(&cfg.with_recovery(RecoveryMode::Full)).expect("full run");
    assert!(dom.attacks > 0, "outbreak landed: {dom:?}");
    assert!(dom.metrics.counter("recovery.domain_rollbacks") > 0);
    let quiescent_p99 = dom.quiescent.percentile(0.99).expect("baseline");
    let d999 = dom.outbreak.percentile(0.999).expect("domain outbreak");
    let f999 = full.outbreak.percentile(0.999).expect("full outbreak");
    assert!(
        d999 < f999,
        "domain tail must beat full: {d999:.3} vs {f999:.3} ms"
    );
    assert!(
        d999 < 2.0 * quiescent_p99,
        "the analysis pause must stay off the benign queue: outbreak \
         p999 {d999:.3} ms vs quiescent p99 {quiescent_p99:.3} ms"
    );
}
