//! Property tests for the fleet reactor (PR 8 satellite).
//!
//! Two laws the whole `tables fleet` measurement rests on:
//!
//! * **Shard invariance** — the reactor's shard count is a pure
//!   data-structure knob: for any seed, host count, and shard count,
//!   the fleet outcome digest (every service completion plus the final
//!   per-host state) is bit-identical to the 1-shard run, and so are
//!   the aggregate counters and both latency books. This is chaos
//!   invariant I10 quantified over the configuration space rather than
//!   spot-checked.
//! * **Aggregation consistency** — the fleet's merged metrics are
//!   exactly the host-order fold of the per-host exports: summing
//!   `sweeper.requests_served` across hosts equals the fleet `served`
//!   counter, and the latency books partition the served requests
//!   (quiescent + outbreak sample counts = served).

use proptest::prelude::*;
use sweeper_repro::fleet::{run, FleetConfig};

/// A small-but-varied fleet configuration: host counts, seeds, and an
/// optional outbreak, sized so one case stays well under a second.
fn arb_cfg() -> impl Strategy<Value = FleetConfig> {
    (3u32..9, 0u64..1_000, any::<bool>()).prop_map(|(hosts, seed, outbreak)| FleetConfig {
        outbreak_at_ms: outbreak.then_some(200.0),
        horizon_ms: 450.0,
        contact_cap: hosts,
        ..FleetConfig::smoke(hosts, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any shard count pops the same global event order, so the whole
    /// run — digest, counters, latency books — is bit-identical.
    #[test]
    fn shard_count_never_changes_the_outcome(
        cfg in arb_cfg(),
        shards in 2usize..5,
    ) {
        let serial = run(&cfg.with_shards(1)).expect("fleet runs");
        let sharded = run(&cfg.with_shards(shards)).expect("fleet runs");
        prop_assert_eq!(serial.digest, sharded.digest);
        prop_assert_eq!(serial.served, sharded.served);
        prop_assert_eq!(serial.filtered, sharded.filtered);
        prop_assert_eq!(serial.attacks, sharded.attacks);
        prop_assert_eq!(serial.contacts, sharded.contacts);
        prop_assert_eq!(serial.bundles_deployed, sharded.bundles_deployed);
        prop_assert_eq!(serial.protected_hosts, sharded.protected_hosts);
        prop_assert_eq!(serial.quiescent.samples(), sharded.quiescent.samples());
        prop_assert_eq!(serial.outbreak.samples(), sharded.outbreak.samples());
    }

    /// The fleet aggregates are exactly the sum of the per-host truth:
    /// merged counters equal the fleet counters, and the two latency
    /// windows partition the served benign requests.
    #[test]
    fn fleet_aggregates_sum_the_per_host_metrics(cfg in arb_cfg()) {
        let out = run(&cfg).expect("fleet runs");
        // Per-host exports are merged in host order into out.metrics;
        // counters are a commutative monoid, so the merged counter must
        // equal the scalar the simulation counted independently.
        prop_assert_eq!(out.metrics.counter("sweeper.requests_served"), out.served);
        prop_assert_eq!(out.metrics.counter("sweeper.attacks_detected"), out.attacks);
        // Every benign service completion landed in exactly one book.
        // Worm deliveries never produce latency samples, so the books
        // cover served + filtered benign requests minus the worm
        // filtered ones; with no outbreak it is exact.
        let sampled = (out.quiescent.len() + out.outbreak.len()) as u64;
        prop_assert!(sampled >= out.served, "served requests all sampled");
        prop_assert!(
            sampled <= out.served + out.filtered,
            "samples never exceed benign completions"
        );
        if cfg.outbreak_at_ms.is_none() {
            prop_assert_eq!(sampled, out.served);
            prop_assert!(out.outbreak.is_empty());
        }
    }
}
