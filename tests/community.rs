//! Integration: antibody distribution across hosts (paper §3.3/§6) —
//! piecemeal releases, consumer deployment, verification, and the
//! producer/consumer protection story with real exploits.

use sweeper_repro::antibody::{verify, Verification};
use sweeper_repro::apps::{cvs, httpd1, squid};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

fn produce_antibody(
    app: &sweeper_repro::apps::App,
    exploit: Vec<u8>,
    seed: u64,
) -> sweeper_repro::antibody::Antibody {
    let mut p = Sweeper::protect(app, Config::producer(seed)).expect("protect");
    match p.offer_request(exploit) {
        RequestOutcome::Attack(r) => r.analysis.expect("analysis").antibody,
        other => panic!("no attack: {other:?}"),
    }
}

#[test]
fn piecemeal_release_order_is_initial_vsef_first() {
    let app = squid::app().expect("app");
    let ab = produce_antibody(&app, squid::exploit_crash(&app).input, 1);
    let first = ab.first_vsef_ms().expect("vsef released");
    // The first VSEF precedes the signature and the exploit input.
    for r in &ab.releases {
        match &r.item {
            sweeper_repro::antibody::AntibodyItem::Signature(_)
            | sweeper_repro::antibody::AntibodyItem::ExploitInput(_) => {
                assert!(r.at_ms >= first, "VSEF races everything else");
            }
            _ => {}
        }
    }
    // The paper's headline: antibodies start flowing within ~60 ms.
    assert!(first <= 60.0, "first VSEF at {first:.1} ms");
}

#[test]
fn untrusting_hosts_can_verify_the_antibody_in_a_sandbox() {
    let app = squid::app().expect("app");
    let ab = produce_antibody(&app, squid::exploit_crash(&app).input, 2);
    for seed in [100u64, 200, 300] {
        let v = verify(&app.program, &ab, seed);
        assert!(
            !matches!(v, Verification::Failed),
            "verification failed under seed {seed}: {v:?}"
        );
    }
    // Without the signature releases, the sandbox must actually run the
    // exploit and catch it via the VSEFs.
    let vsef_only = sweeper_repro::antibody::Antibody {
        releases: ab
            .releases
            .iter()
            .filter(|r| !matches!(r.item, sweeper_repro::antibody::AntibodyItem::Signature(_)))
            .cloned()
            .collect(),
    };
    let v = verify(&app.program, &vsef_only, 400);
    assert!(
        matches!(
            v,
            Verification::VsefDetected { .. } | Verification::CrashOnly
        ),
        "sandboxed execution verdict: {v:?}"
    );
}

#[test]
fn early_partial_antibody_still_protects() {
    // A consumer that only received the first 60 ms of releases (the
    // initial VSEF, no signature) still stops the exploit.
    let app = httpd1::app().expect("app");
    let full = produce_antibody(&app, httpd1::exploit_crash(&app).input, 3);
    let early = full.available_at(60.0);
    assert!(early.signatures().is_empty(), "no signature yet at 60 ms");
    assert!(!early.vsefs().is_empty(), "initial VSEF available");
    let mut c = Sweeper::protect(&app, Config::consumer(999)).expect("protect");
    c.deploy_antibody(&early);
    match c.offer_request(httpd1::exploit_crash(&app).input) {
        RequestOutcome::Attack(r) => {
            assert!(r.cause.starts_with("vsef:") || r.cause.starts_with("fault:"));
        }
        other => panic!("{other:?}"),
    }
    // And benign traffic is unaffected.
    assert!(matches!(
        c.offer_request(httpd1::benign_request("fine.html")),
        RequestOutcome::Served { .. }
    ));
}

#[test]
fn antibodies_transfer_across_hosts_with_different_layouts() {
    // Producer and consumers all randomize independently; VSEF rebasing
    // must hold across every seed.
    let app = cvs::app().expect("app");
    let ab = produce_antibody(&app, cvs::exploit_crash(&app).input, 4);
    for seed in [7u64, 70, 700] {
        let mut c = Sweeper::protect(&app, Config::consumer(seed)).expect("protect");
        c.deploy_antibody(&ab);
        assert!(c.deployed_vsefs() > 0);
        // Benign sessions still work with the VSEFs armed.
        assert!(matches!(
            c.offer_request(cvs::benign_session(&["src"])),
            RequestOutcome::Served { .. }
        ));
        // The exploit does not get through silently.
        match c.offer_request(cvs::exploit_crash(&app).input) {
            RequestOutcome::Filtered { .. } | RequestOutcome::Attack(_) => {}
            other => panic!("seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn malicious_vsefs_are_harmless_by_construction() {
    // Paper §3.3: "By their nature, then, VSEFs cannot be harmful;
    // incorrect or malicious VSEFs will result in unnecessary bounds
    // checking or taint tracking ... At worst they cause a performance
    // degradation." Deploy garbage VSEFs pointing at arbitrary benign
    // instructions and verify service is fully unaffected.
    use sweeper_repro::antibody::{Antibody, AntibodyItem, VsefSpec};
    let app = httpd1::app().expect("app");
    let mut hostile = Antibody::new();
    // Addresses picked across all segments, including ones that are real
    // benign instructions and ones that don't exist at all.
    let nominal = sweeper_repro::svm::loader::Layout::nominal();
    for (i, pc) in [
        nominal.code_base + 8,
        nominal.code_base + 64,
        nominal.lib_base + 16,
        nominal.data_base + 4,
        0xdead_bee8,
    ]
    .into_iter()
    .enumerate()
    {
        let spec = match i % 4 {
            0 => VsefSpec::HeapBoundsCheck {
                store_pc: pc,
                caller: None,
            },
            1 => VsefSpec::StoreSmashGuard { store_pc: pc },
            2 => VsefSpec::NullCheck { insn_pc: pc },
            _ => VsefSpec::HeapIntegrityGuard { sites: vec![pc] },
        };
        hostile.push(AntibodyItem::Vsef(spec), i as f64);
    }
    let mut s = Sweeper::protect(&app, Config::consumer(0xbad)).expect("protect");
    s.deploy_antibody(&hostile);
    assert_eq!(s.deployed_vsefs(), 5);
    let before = s.timeline.now();
    for i in 0..20 {
        assert!(
            matches!(
                s.offer_request(httpd1::benign_request(&format!("p{i}.html"))),
                RequestOutcome::Served { .. }
            ),
            "request {i} must be served despite garbage VSEFs"
        );
    }
    // The only permitted effect is (bounded) performance degradation.
    let with_garbage = s.timeline.now() - before;
    let mut clean = Sweeper::protect(&app, Config::consumer(0xbad)).expect("protect");
    let before = clean.timeline.now();
    for i in 0..20 {
        clean.offer_request(httpd1::benign_request(&format!("p{i}.html")));
    }
    let without = clean.timeline.now() - before;
    assert!(
        with_garbage < without * 2,
        "garbage VSEFs cost at most modest overhead: {with_garbage} vs {without}"
    );
}

#[test]
fn cross_app_antibodies_do_not_false_positive() {
    // Deploy the Squid antibody on an httpd host: nothing should fire.
    let squid_app = squid::app().expect("squid");
    let ab = produce_antibody(&squid_app, squid::exploit_crash(&squid_app).input, 5);
    let httpd = httpd1::app().expect("httpd");
    let mut c = Sweeper::protect(&httpd, Config::consumer(8)).expect("protect");
    c.deploy_antibody(&ab);
    for i in 0..10 {
        assert!(
            matches!(
                c.offer_request(httpd1::benign_request(&format!("p{i}.html"))),
                RequestOutcome::Served { .. }
            ),
            "foreign antibody must not break request {i}"
        );
    }
}
