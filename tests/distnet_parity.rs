//! The PR-5 differential gate: the ideal-wire distribution network vs
//! the legacy instantaneous-γ clock.
//!
//! With loss = dup = delay = 0 and zero Byzantine producers, the
//! `epidemic::distnet` message layer must reproduce the idealized §6
//! antibody clock **bit-identically** — same `t0`, same final infected
//! count, same per-tick curve, same tick count, and the same
//! `epidemic.*` simulation counters — both serially and sharded at
//! K = 4. The network is then a pure refinement: every deviation it
//! ever shows is attributable to wire faults, never to the rewrite of
//! the clock itself.
//!
//! PR 9 adds the contact-state backend as a third axis: the anchor
//! matrix is engine × K (4 legs per configuration), and the emergent
//! γ the network exhibits must be engine-invariant.

use sweeper_repro::epidemic::community::{run, CommunityEngine, CommunityOutcome, CommunityParams};
use sweeper_repro::epidemic::{DistNetParams, FailContParams, Parallelism};

/// The comparable core of an outcome (timing counters excluded).
fn essence(o: &CommunityOutcome) -> (Option<u64>, u64, Vec<u64>, u64) {
    (o.t0_tick, o.infected, o.curve.clone(), o.ticks)
}

/// The epidemic-core counters that must be identical between the
/// legacy clock and the zero-fault distribution network.
const EPI_SIM: &[&str] = &[
    "epidemic.infected",
    "epidemic.producer_contacts",
    "epidemic.antibodies_applied",
    "epidemic.new_infections",
    "epidemic.ticks",
];

/// A contained configuration: enough producers and proactive
/// protection (ρ = 0.5) that the antibody clock genuinely wins the
/// race and the distribution network activates.
fn contained(gamma_ticks: u64, seed: u64) -> CommunityParams {
    CommunityParams {
        hosts: 2_000,
        alpha: 0.05,
        rho: 0.5,
        gamma_ticks,
        attempts_per_tick: 1,
        attempt_prob: 1.0,
        i0: 1,
        max_ticks: 4_000,
        seed,
        parallelism: Parallelism::Fixed(1),
        engine: CommunityEngine::default(),
        distnet: DistNetParams::disabled(),
        failcont: FailContParams::disabled(),
    }
}

#[test]
fn ideal_wire_is_bit_identical_to_the_legacy_clock() {
    // Anchor matrix: engine × K — 4 legs per (γ, seed) configuration.
    let mut activated = 0usize;
    for (gamma, seed) in [(1u64, 11u64), (4, 42), (9, 7), (0, 3)] {
        for k in [1usize, 4] {
            let mut emergent = Vec::new();
            for engine in [CommunityEngine::Legacy, CommunityEngine::Soa] {
                let legacy = CommunityParams {
                    parallelism: Parallelism::Fixed(k),
                    engine,
                    ..contained(gamma, seed)
                };
                let ideal = CommunityParams {
                    distnet: DistNetParams::ideal(),
                    ..legacy
                };
                let a = run(&legacy);
                let b = run(&ideal);
                let ctx = format!("gamma={gamma} seed={seed} k={k} engine={engine:?}");
                assert_eq!(essence(&a), essence(&b), "essence diverged: {ctx}");
                let (ma, mb) = (a.metrics(), b.metrics());
                for name in EPI_SIM {
                    assert_eq!(ma.counter(name), mb.counter(name), "{name}: {ctx}");
                }
                if let Some(d) = &b.dist {
                    activated += 1;
                    assert_eq!(d.deployed_unverified, 0, "I8: {ctx}");
                    let ge = d.gamma_effective(b.t0_tick.expect("t0"));
                    assert_eq!(ge, Some(gamma.max(1)), "ideal wire emergent γ: {ctx}");
                    emergent.push(ge);
                }
            }
            assert!(
                emergent.windows(2).all(|w| w[0] == w[1]),
                "gamma_effective must be engine-invariant: \
                 gamma={gamma} seed={seed} k={k} {emergent:?}"
            );
        }
    }
    assert!(
        activated >= 12,
        "the contained configs must exercise the network ({activated})"
    );
}

#[test]
fn ideal_wire_parity_holds_between_serial_and_k4_directly() {
    // The sharding axis on the distnet-enabled engine itself: serial
    // and K = 4 runs of the *same* ideal-wire configuration are
    // bit-identical (PR-1's parity contract extended to PR-5).
    for seed in [5u64, 19] {
        let base = CommunityParams {
            distnet: DistNetParams::ideal(),
            ..contained(6, seed)
        };
        let serial = run(&base);
        let sharded = run(&CommunityParams {
            parallelism: Parallelism::Fixed(4),
            ..base
        });
        assert_eq!(essence(&serial), essence(&sharded), "seed {seed}");
        let (ms, mk) = (serial.metrics(), sharded.metrics());
        for name in EPI_SIM {
            assert_eq!(ms.counter(name), mk.counter(name), "{name} seed {seed}");
        }
    }
}

#[test]
fn faulty_wire_runs_are_deterministic_for_a_fixed_seed() {
    // Loss, duplication, delay, Byzantine forgery, retry jitter and
    // throttling are all counter-mode draws from the run seed: two
    // executions of the same faulty configuration are bit-identical,
    // serial or sharded.
    let base = CommunityParams {
        distnet: DistNetParams::lossy(0.4, 0.3),
        ..contained(5, 23)
    };
    let first = run(&base);
    let second = run(&base);
    assert_eq!(essence(&first), essence(&second));
    let sharded = |k: usize| {
        run(&CommunityParams {
            parallelism: Parallelism::Fixed(k),
            ..base
        })
    };
    let s1 = sharded(4);
    let s2 = sharded(4);
    assert_eq!(essence(&s1), essence(&s2));
    assert_eq!(essence(&first), essence(&s1), "serial vs K=4");
    let (d1, d2) = (
        first.dist.as_ref().expect("dist"),
        s1.dist.as_ref().expect("dist"),
    );
    assert_eq!(d1.protection_complete_tick, d2.protection_complete_tick);
    assert_eq!(d1.protected, d2.protected);
    assert_eq!(d1.byzantine_producers, d2.byzantine_producers);
    assert_eq!(d1.deployed_unverified, 0, "I8");
    assert_eq!(d2.deployed_unverified, 0, "I8");
}
