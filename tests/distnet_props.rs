//! Property tests for the antibody distribution network (PR 5).
//!
//! The retry/backoff schedule is the load-bearing piece of graceful
//! degradation: it must never hammer the network (monotone growth to a
//! cap), it must stay deterministic (the sharded engine re-derives it
//! from pure draws), and its jitter must stay inside one base interval
//! so that retries spread without reordering. On top of the schedule,
//! the end-to-end property: under any finite loss rate, an honest-wire
//! community eventually protects every consumer.

use proptest::prelude::*;
use sweeper_repro::epidemic::community::{run, CommunityEngine, CommunityParams};
use sweeper_repro::epidemic::{backoff_ticks, DistNetParams, FailContParams, Parallelism};

/// A distnet parameter set with the given backoff shape.
fn params_with_backoff(base: u64, cap: u64) -> DistNetParams {
    DistNetParams {
        retry_base_ticks: base,
        retry_cap_ticks: cap,
        ..DistNetParams::ideal()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The deterministic part of the schedule is monotone non-decreasing
    /// in the attempt number and saturates at the cap: attempt k+1 never
    /// waits less than attempt k, and no attempt ever waits more than
    /// cap + one jitter span.
    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1u64..8,
        cap in 1u64..64,
        seed in any::<u64>(),
        host in 0u64..10_000,
    ) {
        let p = params_with_backoff(base, cap);
        let cap_eff = cap.max(base);
        let mut prev_det = 0u64;
        for attempt in 1u32..=24 {
            let total = backoff_ticks(&p, seed, host, attempt);
            // Reconstruct the deterministic part: exponential, capped.
            let det = base
                .saturating_mul(1u64 << u32::min(attempt - 1, 62))
                .min(cap_eff);
            prop_assert!(det >= prev_det, "deterministic part is monotone");
            prop_assert!(total >= det, "jitter only ever adds delay");
            prop_assert!(
                total < det + base.max(1),
                "jitter bounded by one base interval: attempt {attempt} \
                 waited {total}, det {det}, base {base}"
            );
            prop_assert!(
                total < cap_eff + base.max(1),
                "schedule saturates at the cap"
            );
            prev_det = det;
        }
    }

    /// The full schedule (jitter included) is a pure function of
    /// (params, seed, host, attempt): recomputing it gives the same
    /// ticks, and distinct hosts de-synchronize via jitter rather than
    /// retrying in lock-step (when the base leaves jitter room).
    #[test]
    fn backoff_is_deterministic_per_host_and_attempt(
        base in 2u64..8,
        cap in 8u64..64,
        seed in any::<u64>(),
        host in 0u64..10_000,
        attempt in 1u32..32,
    ) {
        let p = params_with_backoff(base, cap);
        let a = backoff_ticks(&p, seed, host, attempt);
        let b = backoff_ticks(&p, seed, host, attempt);
        prop_assert_eq!(a, b, "same inputs, same schedule");
        // Jitter varies across the host axis: over a window of hosts at
        // a fixed attempt, at least two distinct delays appear.
        let delays: Vec<u64> = (host..host + 64)
            .map(|h| backoff_ticks(&p, seed, h, attempt))
            .collect();
        let distinct = {
            let mut d = delays.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        prop_assert!(
            distinct >= 2,
            "64 hosts retrying attempt {attempt} must not be in lock-step \
             (base {base}): {delays:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delivery-eventually under finite loss: with an honest wire (no
    /// Byzantine producers) and any loss rate up to 70%, retries with
    /// capped backoff eventually protect every consumer the worm has
    /// not already claimed — nobody gives up, and the run terminates
    /// with every consumer resolved (protected or infected).
    #[test]
    fn finite_loss_is_eventually_overcome(
        loss_pct in 0u32..70,
        seed in 1u64..1_000,
    ) {
        let p = CommunityParams {
            hosts: 800,
            alpha: 0.05,
            rho: 0.5,
            gamma_ticks: 4,
            attempts_per_tick: 1,
            attempt_prob: 1.0,
            i0: 1,
            max_ticks: 4_000,
            seed,
            parallelism: Parallelism::Fixed(1),
            engine: CommunityEngine::default(),
            distnet: DistNetParams {
                max_delay_ticks: 1,
                dup: 0.02,
                ..DistNetParams::lossy(f64::from(loss_pct) / 100.0, 0.0)
            },
            failcont: FailContParams::disabled(),
        };
        let out = run(&p);
        prop_assert!(out.ticks < p.max_ticks, "the run must terminate");
        let Some(d) = &out.dist else {
            // The worm saturated before T0 + γ: nothing to distribute.
            return Ok(());
        };
        let gave_up: u64 = d.shard_stats.iter().map(|s| s.gave_up).sum();
        prop_assert_eq!(gave_up, 0, "finite loss must never exhaust retries");
        let rejected: u64 = d.shard_stats.iter().map(|s| s.rejected).sum();
        prop_assert_eq!(rejected, 0, "honest wire: nothing to reject");
        prop_assert_eq!(d.deployed_unverified, 0, "I8");
        let verified: u64 = d.shard_stats.iter().map(|s| s.verified).sum();
        prop_assert!(verified > 0, "someone must have been protected");
        // Every consumer resolved: protected plus infected covers the
        // whole consumer population (producers are never infected).
        let producers = ((p.alpha * p.hosts as f64).round() as u64).min(p.hosts);
        let consumers = p.hosts - producers;
        prop_assert!(
            d.protected + out.infected >= consumers,
            "all consumers resolved: protected {} + infected {} < {}",
            d.protected,
            out.infected,
            consumers
        );
    }
}
