//! Cross-crate integration: every Table 1 exploit through the full
//! Sweeper loop, asserting the Table 2/3 invariants end to end.

use sweeper_repro::analysis::{CrashClass, MemBugKind};
use sweeper_repro::apps::{all_crash_exploits, cvs, httpd1, httpd2, squid, BugType};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

fn attack(
    app: &sweeper_repro::apps::App,
    exploit: Vec<u8>,
    seed: u64,
) -> sweeper_repro::sweeper::AttackReport {
    let mut s = Sweeper::protect(app, Config::producer(seed)).expect("protect");
    // Benign warm-up so the replay window is non-trivial.
    let warm: Vec<Vec<u8>> = match app.bug {
        BugType::StackSmash => (0..3)
            .map(|i| httpd1::benign_request(&format!("w{i}")))
            .collect(),
        BugType::NullDeref => (0..3)
            .map(|i| httpd2::benign_request(&format!("w{i}"), None))
            .collect(),
        BugType::DoubleFree => vec![cvs::benign_session(&["warm"])],
        BugType::HeapOverflow => (0..3)
            .map(|i| squid::benign_request(&format!("w{i}"), "h"))
            .collect(),
    };
    for r in warm {
        assert!(matches!(s.offer_request(r), RequestOutcome::Served { .. }));
    }
    match s.offer_request(exploit) {
        RequestOutcome::Attack(r) => *r,
        other => panic!("{}: exploit not detected: {other:?}", app.name),
    }
}

#[test]
fn every_exploit_is_detected_analyzed_and_recovered() {
    for (app, exploit) in all_crash_exploits().expect("exploits") {
        let report = attack(&app, exploit.input, 0xabcd);
        assert!(!report.compromised, "{}: shellcode must not run", app.name);
        let a = report
            .analysis
            .as_ref()
            .unwrap_or_else(|| panic!("{}: analysis", app.name));
        // An antibody with at least one VSEF exists for every exploit.
        assert!(!a.antibody.vsefs().is_empty(), "{}: no VSEF", app.name);
        // The attack input was identified and packaged.
        assert!(!a.input.attack_log_ids.is_empty(), "{}: no input", app.name);
        assert!(
            a.antibody.exploit_input().is_some(),
            "{}: input not packaged",
            app.name
        );
        // Recovery restored service without restart — and with rollback
        // domains on by default, only the attack connection's domain is
        // materialized; the warm-up connections never roll back.
        assert_eq!(report.recovery_method, "domain-rollback", "{}", app.name);
    }
}

#[test]
fn recovery_metrics_split_by_mode_and_domain() {
    // Regression for the per-mode metrics split: the flat
    // `recovery.replayed_conns` / `recovery.dropped_conns` totals used
    // to be the only accounting, so a dashboard could not tell "Domain
    // rolled back one connection" from "Full replayed the whole epoch".
    // Under the default Domain mode, benign warm-up connections must
    // show up in *no* replay counter at all (invariant I12), and every
    // flat total must equal the sum of its per-mode splits.
    let app = squid::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(99)).expect("protect");
    for i in 0..6 {
        assert!(matches!(
            s.offer_request(squid::benign_request(&format!("u{i}"), "h")),
            RequestOutcome::Served { .. }
        ));
    }
    let RequestOutcome::Attack(r) = s.offer_request(squid::exploit_crash(&app).input) else {
        panic!("exploit not detected")
    };
    assert_eq!(r.recovery_method, "domain-rollback");
    let m = s.export_metrics();
    assert_eq!(m.counter("recovery.domain_rollbacks"), 1);
    assert_eq!(m.counter("recovery.domain_fallbacks"), 0);
    assert_eq!(m.counter("recovery.i12_violations"), 0);
    // The six benign connections are in an untouched domain: nothing
    // replayed, and only the attack connection itself was dropped.
    assert_eq!(m.counter("recovery.domain.replayed_conns"), 0);
    assert_eq!(m.counter("recovery.domain.dropped_conns"), 1);
    assert_eq!(m.counter("recovery.full.replayed_conns"), 0);
    assert_eq!(m.counter("recovery.full.dropped_conns"), 0);
    // Flat totals must equal the sum of the per-mode splits, and the
    // per-mode counters the sum of their per-domain splits.
    for leaf in ["replayed_conns", "dropped_conns"] {
        let flat = m.counter(&format!("recovery.{leaf}"));
        let by_mode: u64 = ["full", "domain", "differential"]
            .iter()
            .map(|mode| m.counter(&format!("recovery.{mode}.{leaf}")))
            .sum();
        assert_eq!(flat, by_mode, "{leaf}: flat vs per-mode");
        let by_domain: u64 = m
            .counters()
            .filter(|(name, _)| {
                name.starts_with("recovery.")
                    && name.contains(".domain.")
                    && name.ends_with(leaf)
                    && *name != format!("recovery.domain.{leaf}")
            })
            .map(|(_, v)| v)
            .sum();
        assert_eq!(flat, by_domain, "{leaf}: flat vs per-domain");
    }
}

#[test]
fn table2_per_exploit_findings_match_the_paper() {
    // Apache1: wild jump, stack inconsistent, StackSmash in the copy loop.
    let a1 = httpd1::app().expect("a1");
    let r = attack(&a1, httpd1::exploit_crash(&a1).input, 1);
    let a = r.analysis.expect("analysis");
    assert_eq!(a.core.class, CrashClass::WildJump);
    assert!(!a.core.stack_consistent, "stack inconsistent");
    let f = a
        .membug
        .iter()
        .find(|f| f.kind == MemBugKind::StackSmash)
        .expect("smash");
    assert_eq!(a.symbols.resolve(f.pc).expect("sym").name, "tal_copy");
    assert_eq!(a.slice.as_ref().and_then(|s| s.membug_verified), Some(true));

    // Apache2: NULL deref at is_ip, *no* memory bug (paper's exact row).
    let a2 = httpd2::app().expect("a2");
    let r = attack(&a2, httpd2::exploit_crash(&a2).input, 2);
    let a = r.analysis.expect("analysis");
    assert_eq!(a.core.class, CrashClass::NullDeref);
    assert!(a.core.fault_site.contains("is_ip"));
    assert!(
        a.membug.is_empty(),
        "no memory bug, just a NULL pointer dereference"
    );

    // CVS: heap inconsistent, DoubleFree attributed to dirswitch's free.
    let ac = cvs::app().expect("cvs");
    let r = attack(&ac, cvs::exploit_crash(&ac).input, 3);
    let a = r.analysis.expect("analysis");
    assert!(!a.core.heap_consistent, "heap inconsistent");
    let f = a
        .membug
        .iter()
        .find(|f| f.kind == MemBugKind::DoubleFree)
        .expect("double free");
    let caller = a
        .symbols
        .resolve(f.caller_pc.expect("caller"))
        .expect("sym");
    assert!(
        caller.name.starts_with("dirswitch"),
        "caller {}",
        caller.name
    );

    // Squid: heap inconsistent, HeapOverflow in strcat called by
    // ftp_build_title_url — the paper's headline VSEF.
    let asq = squid::app().expect("squid");
    let r = attack(&asq, squid::exploit_crash(&asq).input, 4);
    let a = r.analysis.expect("analysis");
    assert!(!a.core.heap_consistent);
    let f = a
        .membug
        .iter()
        .find(|f| f.kind == MemBugKind::HeapOverflow)
        .expect("overflow");
    assert!(a
        .symbols
        .resolve(f.pc)
        .expect("sym")
        .name
        .starts_with("strcat"));
    let caller = a
        .symbols
        .resolve(f.caller_pc.expect("caller"))
        .expect("sym");
    assert_eq!(caller.name, "ftp_build_title_url");
    assert!(a.input.via_taint, "taint identifies the squid input");
    assert_eq!(a.slice.as_ref().and_then(|s| s.membug_verified), Some(true));
    assert_eq!(a.slice.as_ref().and_then(|s| s.taint_verified), Some(true));
}

#[test]
fn fnptr_variant_defeats_the_initial_vsef_but_not_the_taint_vsef() {
    // Paper §5.2: "the specific buffer overflow may also be exploitable
    // by overwriting a stack function pointer; the initial VSEF won't
    // catch this." Reproduced end to end with the /rw/ fn-pointer path.
    let app = httpd1::app().expect("app");

    // 1. The fn-pointer attack against a host protected only by the
    //    *initial* (ret-addr-guard) antibody from the classic smash:
    //    the VSEF stays silent; only the ASLR crash saves the host.
    let mut producer = Sweeper::protect(&app, Config::producer(0x901)).expect("p");
    let RequestOutcome::Attack(classic) = producer.offer_request(httpd1::exploit_crash(&app).input)
    else {
        panic!("classic smash not detected")
    };
    let classic_ab = classic.analysis.expect("analysis").antibody;
    let initial_only = classic_ab.available_at(classic_ab.first_vsef_ms().expect("vsef") + 0.1);
    let mut guarded = Sweeper::protect(&app, Config::consumer(0x902)).expect("c");
    guarded.deploy_antibody(&initial_only);
    let RequestOutcome::Attack(r) = guarded.offer_request(httpd1::exploit_fnptr_crash(&app).input)
    else {
        panic!("fnptr variant not detected at all")
    };
    assert!(
        r.cause.starts_with("fault:"),
        "initial VSEF must NOT be what catches the fn-pointer variant: {}",
        r.cause
    );

    // 2. A full producer analyzing the fn-pointer attack: the memory
    //    state looks clean-ish (stack consistent), but taint flags the
    //    hijacked callr and identifies the input.
    let mut producer2 = Sweeper::protect(&app, Config::producer(0x903)).expect("p2");
    let RequestOutcome::Attack(rep) =
        producer2.offer_request(httpd1::exploit_fnptr_crash(&app).input)
    else {
        panic!("not detected")
    };
    let a = rep.analysis.expect("analysis");
    assert!(
        a.core.stack_consistent,
        "fp chain intact: static view is weak here"
    );
    assert!(a.input.via_taint, "taint pinpoints the hijack");
    let ab = a.antibody.clone();
    assert!(
        ab.vsefs().iter().any(|v| v.kind() == "taint-filter"),
        "a taint-filter VSEF was derived: {:?}",
        ab.vsefs().iter().map(|v| v.kind()).collect::<Vec<_>>()
    );

    // 3. That antibody protects a consumer against a *different* fn-ptr
    //    variant (different target, different filler) — pre-fault.
    let mut consumer = Sweeper::protect(&app, Config::consumer(0x904)).expect("c2");
    consumer.deploy_antibody(&ab);
    let mut variant = httpd1::exploit_fnptr_crash(&app).input;
    // Mutate filler + target to dodge the exact signature.
    for b in variant.iter_mut().filter(|b| **b == b'F') {
        *b = b'G';
    }
    let n = variant.len();
    variant[n - 14] = 0x68; // different (still unmapped) target byte
    match consumer.offer_request(variant) {
        RequestOutcome::Attack(r) => {
            assert!(
                r.cause.starts_with("vsef: taint-filter"),
                "taint VSEF catches the variant before the wild call: {}",
                r.cause
            );
        }
        other => panic!("variant outcome: {other:?}"),
    }
}

#[test]
fn detection_is_robust_across_aslr_seeds() {
    let app = httpd1::app().expect("app");
    for seed in [11u64, 222, 3333, 44444] {
        let mut s = Sweeper::protect(&app, Config::producer(seed)).expect("protect");
        let out = s.offer_request(httpd1::exploit_crash(&app).input);
        assert!(matches!(out, RequestOutcome::Attack(_)), "seed {seed}");
        assert!(matches!(
            s.offer_request(httpd1::benign_request("after.html")),
            RequestOutcome::Served { .. }
        ));
    }
}

#[test]
fn attacks_interleaved_with_load_leave_no_corruption() {
    let app = squid::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(77)).expect("protect");
    let mut served = 0;
    for round in 0..3 {
        for i in 0..5 {
            if matches!(
                s.offer_request(squid::benign_request(&format!("r{round}u{i}"), "h")),
                RequestOutcome::Served { .. }
            ) {
                served += 1;
            }
        }
        let out = s.offer_request(squid::exploit_crash_poly(&app, round).input);
        match out {
            RequestOutcome::Attack(_) | RequestOutcome::Filtered { .. } => {}
            other => panic!("round {round}: {other:?}"),
        }
    }
    assert_eq!(served, 15, "every benign request across all rounds served");
    // The live heap is consistent after three attack/recovery cycles.
    let (_, ok) = s.machine.heap.walk(&s.machine.mem);
    assert!(ok, "heap healthy after repeated recoveries");
}

#[test]
fn timings_scale_sanely_with_window_size() {
    // A longer pre-attack window (more logged connections since the
    // checkpoint) must make replay-based steps cost more.
    let app = squid::app().expect("app");
    let short = attack(&app, squid::exploit_crash(&app).input, 5);
    let mut s = Sweeper::protect(&app, Config::producer(5)).expect("protect");
    for i in 0..40 {
        s.offer_request(squid::benign_request(&format!("u{i}"), "h"));
    }
    let RequestOutcome::Attack(long) = s.offer_request(squid::exploit_crash(&app).input) else {
        panic!("no attack")
    };
    let ts = short.analysis.expect("short").timings;
    let tl = long.analysis.expect("long").timings;
    assert!(
        tl.slicing_ms > ts.slicing_ms,
        "longer window, costlier slicing: {:.2} vs {:.2}",
        tl.slicing_ms,
        ts.slicing_ms
    );
}

#[test]
fn multi_host_latency_samples_sharing_a_stamp_do_not_collapse() {
    // The fleet-accounting regression: several hosts multiplexed onto
    // one virtual clock routinely complete work at the *same* stamp —
    // here, three identically-seeded hosts detect the same exploit at
    // bit-identical virtual times. Folding their per-host detection
    // latencies into the fleet-wide book must keep one sample per host;
    // a stamp-keyed fold collapses them into one and the percentile
    // read-out silently thins the very tail p99 exists to expose.
    use sweeper_repro::sweeper::{Event, LatencyBook};

    let app = httpd1::app().expect("app");
    let mut fleet = LatencyBook::new();
    let mut stamps = Vec::new();
    for _host in 0..3 {
        let mut s = Sweeper::protect(&app, Config::producer(77)).expect("protect");
        let RequestOutcome::Attack(_) = s.offer_request(httpd1::exploit_crash(&app).input) else {
            panic!("exploit not detected")
        };
        let (_, det_at) = s.timeline.last_detection().expect("detection");
        let ms = s
            .timeline
            .ms_from_detection(|e| matches!(e, Event::Recovered { .. }))
            .expect("recovered");
        stamps.push(det_at);
        let mut host_book = LatencyBook::new();
        host_book.add(det_at, ms);
        fleet.merge(&host_book);
    }
    // Identically-seeded hosts really do share the virtual-clock stamp:
    // the collision this regression is about is the common case, not a
    // pathological one.
    assert_eq!(stamps[0], stamps[1]);
    assert_eq!(stamps[1], stamps[2]);
    assert_eq!(
        fleet.len(),
        3,
        "one latency sample per host must survive the fleet merge"
    );
    // With all samples equal, every percentile reads that latency; the
    // max-rank read-out must agree with any single host's measurement.
    let p999 = fleet.percentile(0.999).expect("samples");
    assert_eq!(Some(p999), fleet.percentile(0.5));
    assert!(p999 > 0.0, "detection→recovery latency is non-zero");
}
