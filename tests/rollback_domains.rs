//! Property tests for rollback domains (PR 10 tentpole).
//!
//! The partial-recovery contract, quantified over random workloads:
//!
//! * **Full-oracle equivalence** — for any interleaving of benign and
//!   exploit connections, running the same workload under `Domain`,
//!   `Full`, and `Differential` recovery produces the *bit-identical*
//!   post-run guest state (`checkpoint::recovery_digest`), the same
//!   per-request outcome sequence, and the same attack count. Partial
//!   rollback is a latency optimization, never a semantic fork.
//! * **I12** — under `Domain` recovery no benign connection is ever
//!   replayed or dropped: `recovery.domain.replayed_conns` stays 0 and
//!   only attack connections are dropped, for every workload. This is
//!   the unconditional invariant the chaos harness also enforces under
//!   fired faults.
//! * **Fail-closed under forced spills** — a seed-chosen cross-domain
//!   spill (or corrupted domain tag) injected right before recovery
//!   must divert that recovery to the Full path (`rollback-replay`),
//!   and the diverted run must still land on the Full oracle's digest.

use proptest::prelude::*;
use sweeper_repro::apps::{httpd1, squid, App};
use sweeper_repro::checkpoint::{recovery_digest, CheckpointManager, Proxy};
use sweeper_repro::sweeper::{Config, FaultHooks, RecoveryMode, RequestOutcome, Sweeper};

/// One workload step: a benign request or the app's canonical exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    Benign,
    Exploit,
}

/// Compact outcome tag for cross-mode comparison.
fn tag(outcome: &RequestOutcome) -> &'static str {
    match outcome {
        RequestOutcome::Served { .. } => "served",
        RequestOutcome::Filtered { .. } => "filtered",
        RequestOutcome::Attack(_) => "attack",
    }
}

/// Run `steps` against `app` under `mode`; return the post-run guest
/// digest, the outcome-tag sequence, and the final metrics.
fn run_mode(
    app: &App,
    steps: &[Step],
    seed: u64,
    mode: RecoveryMode,
) -> (u64, Vec<&'static str>, sweeper_repro::obs::MetricsRegistry) {
    let cfg = Config::producer(seed).with_recovery(mode);
    let mut s = Sweeper::protect(app, cfg).expect("protect");
    let exploit = match app.name {
        "Squid" => squid::exploit_crash(app).input,
        _ => httpd1::exploit_crash(app).input,
    };
    let mut tags = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        let input = match step {
            Step::Benign => match app.name {
                "Squid" => squid::benign_request(&format!("u{i}"), "h"),
                _ => httpd1::benign_request(&format!("u{i}.html")),
            },
            Step::Exploit => exploit.clone(),
        };
        tags.push(tag(&s.offer_request(input)));
    }
    (recovery_digest(&s.machine), tags, s.export_metrics())
}

/// A random interleaving: 3–9 steps, each independently an exploit
/// with ~1/3 probability — covers attack-first, attack-last, repeated
/// attacks (antibody filtering), and all-benign schedules.
fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![Just(Step::Benign), Just(Step::Benign), Just(Step::Exploit),],
        3..9,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Domain and Differential recovery land on the Full oracle's
    /// bit-identical guest state for any workload, and I12 holds:
    /// benign connections in untouched domains never replay.
    #[test]
    fn every_mode_lands_on_the_full_oracle_state(
        steps in arb_steps(),
        seed in 1u64..500,
        use_squid in any::<bool>(),
    ) {
        let app = if use_squid {
            squid::app().expect("app")
        } else {
            httpd1::app().expect("app")
        };
        let (full_digest, full_tags, full_m) =
            run_mode(&app, &steps, seed, RecoveryMode::Full);
        let (dom_digest, dom_tags, dom_m) =
            run_mode(&app, &steps, seed, RecoveryMode::Domain);
        let (diff_digest, diff_tags, diff_m) =
            run_mode(&app, &steps, seed, RecoveryMode::Differential);

        // Same guest state, same request outcomes, same attack count.
        prop_assert_eq!(dom_digest, full_digest, "Domain vs Full oracle");
        prop_assert_eq!(diff_digest, full_digest, "Differential vs Full");
        prop_assert_eq!(&dom_tags, &full_tags);
        prop_assert_eq!(&diff_tags, &full_tags);

        // I12, unconditionally, in every mode.
        for m in [&full_m, &dom_m, &diff_m] {
            prop_assert_eq!(m.counter("recovery.i12_violations"), 0);
        }
        // The differential oracle actually checked when an attack ran.
        let attacks = full_tags.iter().filter(|t| **t == "attack").count() as u64;
        if attacks > 0 {
            prop_assert!(diff_m.counter("recovery.domain_parity_checks") > 0);
        }
        prop_assert_eq!(diff_m.counter("recovery.domain_parity_mismatches"), 0);
        // Under Domain recovery no benign connection ever replays, and
        // nothing fell back: every recovery stayed partial.
        prop_assert_eq!(dom_m.counter("recovery.domain.replayed_conns"), 0);
        prop_assert_eq!(dom_m.counter("recovery.domain_fallbacks"), 0);
        prop_assert_eq!(dom_m.counter("recovery.domain_rollbacks"), attacks);
        // Full replays exactly the benign connections Domain left alone
        // (none when the attack was the first logged connection).
        prop_assert_eq!(
            full_m.counter("recovery.full.replayed_conns")
                + full_m.counter("recovery.full.dropped_conns"),
            full_m.counter("recovery.replayed_conns")
                + full_m.counter("recovery.dropped_conns")
        );
    }

    /// A seed-forced cross-domain spill (or corrupted domain tag) right
    /// before recovery diverts Domain mode to the Full path — and the
    /// diverted run still reaches the Full oracle's exact state.
    #[test]
    fn forced_spills_fail_closed_onto_the_full_path(
        seed in 1u64..500,
        warm in 1usize..5,
        corrupt_tag in any::<bool>(),
    ) {
        struct Sabotage {
            corrupt_tag: bool,
            seed: u64,
        }
        impl FaultHooks for Sabotage {
            fn before_recovery(&mut self, mgr: &mut CheckpointManager, _proxy: &mut Proxy) {
                let landed = if self.corrupt_tag {
                    mgr.chaos_corrupt_domain_tag(self.seed)
                } else {
                    mgr.chaos_force_domain_spill()
                };
                assert!(landed, "ledger populated before recovery");
            }
        }

        let app = httpd1::app().expect("app");
        let steps: Vec<Step> = (0..warm)
            .map(|_| Step::Benign)
            .chain([Step::Exploit])
            .collect();
        let (oracle_digest, _, _) = run_mode(&app, &steps, seed, RecoveryMode::Full);

        let mut s =
            Sweeper::protect(&app, Config::producer(seed)).expect("protect");
        for i in 0..warm {
            prop_assert!(matches!(
                s.offer_request(httpd1::benign_request(&format!("u{i}.html"))),
                RequestOutcome::Served { .. }
            ));
        }
        s.set_fault_hooks(Box::new(Sabotage { corrupt_tag, seed }));
        let RequestOutcome::Attack(report) =
            s.offer_request(httpd1::exploit_crash(&app).input)
        else {
            panic!("exploit not detected")
        };
        // Fail-closed: the refusal is visible, the Full pipeline ran,
        // and the answer is still the oracle's answer.
        prop_assert_eq!(report.recovery_method, "rollback-replay");
        let m = s.export_metrics();
        prop_assert_eq!(m.counter("recovery.domain_fallbacks"), 1);
        prop_assert_eq!(m.counter("recovery.domain_rollbacks"), 0);
        prop_assert_eq!(m.counter("recovery.i12_violations"), 0);
        if corrupt_tag {
            prop_assert_eq!(m.counter("recovery.domain_fallback.corrupt-ledger"), 1);
        } else {
            prop_assert_eq!(m.counter("recovery.domain_spill_fallbacks"), 1);
        }
        prop_assert_eq!(recovery_digest(&s.machine), oracle_digest);
    }
}
