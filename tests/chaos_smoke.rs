//! Tier-1 gate over the chaos harness itself (PR 4, distnet legs PR 5).
//!
//! A small fixed seed block through `chaos::run_many` — enough to prove
//! in every `cargo test` run that (a) the fault seams are actually
//! connected (faults fire), (b) the differential legs agree, (c) the
//! invariant catalog holds (including I8 over the distribution-network
//! legs), (d) the wire fault families genuinely exercise the antibody
//! wire, and (e) a case replays bit-identically from its seed. The full
//! 200-case gate lives in tier 2 (`scripts/ci.sh` → `chaos --smoke`);
//! see `TESTING.md`.

use chaos::{run_case, run_many};

/// Seeds 0..N: guest rotates with `seed % 4`, so any N ≥ 4 covers all
/// four Table 1 servers. Kept small — this runs unoptimized in tier 1.
const CASES: u64 = 12;

#[test]
fn fixed_seed_block_passes_all_invariants() {
    let summary = run_many(0..CASES);
    assert_eq!(summary.cases, CASES);
    assert!(
        summary.violations.is_empty(),
        "chaos violations (replay with `cargo run --release -p chaos -- --seed <seed>`): {:?}",
        summary.violations
    );
    assert_eq!(
        summary.guests.len(),
        4,
        "all four guests must be covered: {:?}",
        summary.guests
    );
    // The seams must be live: at least one fault family fired across
    // the block, and the evidence is visible through obs counters.
    assert!(
        summary.families_fired() >= 1,
        "no fault family fired — the fault seams are disconnected"
    );
    let reg = summary.metrics();
    assert_eq!(reg.counter("chaos.cases"), CASES);
    assert_eq!(reg.counter("chaos.violations"), 0);
}

#[test]
fn wire_families_exercise_the_distribution_network() {
    // The same block must cover all three wire families: lossy wire
    // events, Byzantine bundles rejected by verify-before-deploy, and
    // forged producer→consumer hand-offs. Zero violations above already
    // implies I8 held on every distnet leg (no unverified deployment);
    // here we prove the wire seams were genuinely exercised rather than
    // vacuously green.
    let summary = run_many(0..CASES);
    assert!(
        summary.agg.wire_faults > 0,
        "no lossy-wire fault fired across the block"
    );
    assert!(
        summary.agg.byzantine_rejections > 0,
        "no Byzantine bundle was rejected across the block"
    );
    assert!(
        summary.agg.bundles_forged > 0,
        "no certified bundle was forged across the block"
    );
    let reg = summary.metrics();
    assert_eq!(
        reg.counter("chaos.fault.wire_faults"),
        summary.agg.wire_faults
    );
    assert_eq!(
        reg.counter("chaos.fault.byzantine_rejections"),
        summary.agg.byzantine_rejections
    );
    assert_eq!(
        reg.counter("chaos.fault.bundles_forged"),
        summary.agg.bundles_forged
    );
}

/// Regression (`chaos --seed-file`): a malformed or duplicate line in
/// the quarantine seed file must surface as a *named* error, never be
/// silently skipped — a bad line used to shrink the quarantine suite
/// without failing CI (malformed lines were a loose string error;
/// duplicates were accepted outright, so a merge that clobbered a seed
/// with a copy of its neighbour went unnoticed).
#[test]
fn quarantine_seed_files_fail_closed_on_bad_lines() {
    use chaos::seedfile::{parse_seed_list, SeedFileError};
    // The documented format still parses, in listing order.
    assert_eq!(
        parse_seed_list("# quarantine\n3\n0x7f # guest 3\n\n12\n"),
        Ok(vec![3, 0x7f, 12])
    );
    // A line that is not a decimal or 0x-hex u64 names itself.
    assert_eq!(
        parse_seed_list("3\nmerge-conflict!\n7\n").unwrap_err(),
        SeedFileError::Malformed {
            line: 2,
            content: "merge-conflict!".into()
        }
    );
    // A duplicate is detected by *value*, across spellings, and points
    // back at the first occurrence.
    assert_eq!(
        parse_seed_list("10\n7\n0xA\n").unwrap_err(),
        SeedFileError::Duplicate {
            line: 3,
            seed: 10,
            first_line: 1
        }
    );
}

/// The committed quarantine list itself must always satisfy the parser
/// the CI gate uses on it.
#[test]
fn committed_quarantine_list_parses_clean() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/chaos_known_seeds.txt"
    ))
    .expect("quarantine list exists");
    chaos::seedfile::parse_seed_list(&text).expect("quarantine list is well-formed");
}

#[test]
fn any_case_replays_bit_identically_from_its_seed() {
    for seed in [0u64, 5, 9, 0xDEAD_BEEF] {
        let a = run_case(seed);
        let b = run_case(seed);
        assert_eq!(a.digest, b.digest, "seed {seed:#x}: digest must replay");
        assert_eq!(a.stats, b.stats, "seed {seed:#x}: fault firing must replay");
        assert_eq!(
            a.violations, b.violations,
            "seed {seed:#x}: verdict must replay"
        );
    }
}
