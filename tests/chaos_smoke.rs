//! Tier-1 gate over the chaos harness itself (PR 4, distnet legs PR 5).
//!
//! A small fixed seed block through `chaos::run_many` — enough to prove
//! in every `cargo test` run that (a) the fault seams are actually
//! connected (faults fire), (b) the differential legs agree, (c) the
//! invariant catalog holds (including I8 over the distribution-network
//! legs), (d) the wire fault families genuinely exercise the antibody
//! wire, and (e) a case replays bit-identically from its seed. The full
//! 200-case gate lives in tier 2 (`scripts/ci.sh` → `chaos --smoke`);
//! see `TESTING.md`.

use chaos::{run_case, run_many};

/// Seeds 0..N: guest rotates with `seed % 4`, so any N ≥ 4 covers all
/// four Table 1 servers. Kept small — this runs unoptimized in tier 1.
const CASES: u64 = 12;

#[test]
fn fixed_seed_block_passes_all_invariants() {
    let summary = run_many(0..CASES);
    assert_eq!(summary.cases, CASES);
    assert!(
        summary.violations.is_empty(),
        "chaos violations (replay with `cargo run --release -p chaos -- --seed <seed>`): {:?}",
        summary.violations
    );
    assert_eq!(
        summary.guests.len(),
        4,
        "all four guests must be covered: {:?}",
        summary.guests
    );
    // The seams must be live: at least one fault family fired across
    // the block, and the evidence is visible through obs counters.
    assert!(
        summary.families_fired() >= 1,
        "no fault family fired — the fault seams are disconnected"
    );
    let reg = summary.metrics();
    assert_eq!(reg.counter("chaos.cases"), CASES);
    assert_eq!(reg.counter("chaos.violations"), 0);
}

#[test]
fn wire_families_exercise_the_distribution_network() {
    // The same block must cover all three wire families: lossy wire
    // events, Byzantine bundles rejected by verify-before-deploy, and
    // forged producer→consumer hand-offs. Zero violations above already
    // implies I8 held on every distnet leg (no unverified deployment);
    // here we prove the wire seams were genuinely exercised rather than
    // vacuously green.
    let summary = run_many(0..CASES);
    assert!(
        summary.agg.wire_faults > 0,
        "no lossy-wire fault fired across the block"
    );
    assert!(
        summary.agg.byzantine_rejections > 0,
        "no Byzantine bundle was rejected across the block"
    );
    assert!(
        summary.agg.bundles_forged > 0,
        "no certified bundle was forged across the block"
    );
    let reg = summary.metrics();
    assert_eq!(
        reg.counter("chaos.fault.wire_faults"),
        summary.agg.wire_faults
    );
    assert_eq!(
        reg.counter("chaos.fault.byzantine_rejections"),
        summary.agg.byzantine_rejections
    );
    assert_eq!(
        reg.counter("chaos.fault.bundles_forged"),
        summary.agg.bundles_forged
    );
}

#[test]
fn any_case_replays_bit_identically_from_its_seed() {
    for seed in [0u64, 5, 9, 0xDEAD_BEEF] {
        let a = run_case(seed);
        let b = run_case(seed);
        assert_eq!(a.digest, b.digest, "seed {seed:#x}: digest must replay");
        assert_eq!(a.stats, b.stats, "seed {seed:#x}: fault firing must replay");
        assert_eq!(
            a.violations, b.violations,
            "seed {seed:#x}: verdict must replay"
        );
    }
}
