//! Property test for the superblock execution tier (PR 6 satellite).
//!
//! Generalizes `tests/icache_props.rs` to the full three-tier stack and
//! to hook liveness: a self-modifying guest is driven through a random
//! interleaving of bounded `Machine::run` bursts, host code patches,
//! hook attach/detach, checkpoint clones, and rollbacks — once per
//! execution tier (interpreter, icache only, icache + superblocks). The
//! three machines must stay bit-identical (pc, registers, retired
//! instructions, virtual cycles) after **every operation**, and a live
//! hook must see exactly the same instruction stream on every tier. Any
//! divergence means a stale superblock survived an invalidation path,
//! or a block dispatched while a hook was owed events.

use proptest::collection::vec;
use proptest::prelude::*;
use sweeper_repro::checkpoint::{CheckpointManager, CkptId};
use sweeper_repro::svm::asm::assemble;
use sweeper_repro::svm::isa::Op;
use sweeper_repro::svm::loader::Aslr;
use sweeper_repro::svm::{Hook, Machine};

/// Same perpetual guest-store SMC guest as `tests/icache_props.rs`:
/// alternating templates are installed into an executable buffer and
/// called, so hot executable pages are rewritten continuously.
const SMC_LOOP_GUEST: &str = "
.text
main:
    movi r10, 0          ; template toggle
loop:
    cmpi r10, 0
    jz use_a
    movi r9, tmpl_b
    jmp inst
use_a:
    movi r9, tmpl_a
inst:
    call install
    call buf
    add r3, r3, r2       ; accumulate verdicts
    addi r4, r4, 1       ; iteration counter
    movi r11, 1
    sub r10, r11, r10    ; r10 = 1 - r10
    jmp loop
; copy 4 words from [r9] to buf
install:
    movi r5, buf
    movi r6, 4
icopy:
    ld r8, [r9, 0]
    st [r5, 0], r8
    addi r9, r9, 4
    addi r5, r5, 4
    subi r6, r6, 1
    cmpi r6, 0
    jnz icopy
    ret
tmpl_a:
    movi r2, 7
    ret
tmpl_b:
    movi r2, 9
    ret
.data
buf: .space 16
";

/// One host-side action in the interleaving.
#[derive(Debug, Clone)]
enum HostOp {
    /// Run the guest for this many virtual cycles (the `Machine::run`
    /// loop, where the superblock tier engages).
    Run(u32),
    /// Host-patch the executable buffer with template 0 or 1.
    Patch(u8),
    /// Attach the counting hook (liveness flips mid-execution).
    Attach,
    /// Detach the hook (the fast path may re-engage).
    Detach,
    /// Take a checkpoint (COW clone of the whole machine).
    Checkpoint,
    /// Roll back to a retained checkpoint selected by this value.
    Rollback(u64),
}

fn arb_op() -> impl Strategy<Value = HostOp> {
    prop_oneof![
        (1u32..800).prop_map(HostOp::Run),
        (0u8..2).prop_map(HostOp::Patch),
        Just(HostOp::Attach),
        Just(HostOp::Detach),
        Just(HostOp::Checkpoint),
        any::<u64>().prop_map(HostOp::Rollback),
    ]
}

/// Observable state that must stay identical across the tier knobs.
fn obs(m: &Machine) -> (u32, [u32; 15], u64, u64) {
    (m.cpu.pc, m.cpu.regs, m.insns_retired, m.clock.cycles())
}

/// Read the 16 template bytes at `label` out of guest memory.
fn template_bytes(m: &Machine, label: &str) -> [u8; 16] {
    let addr = m.symbols.addr_of(label).expect("template label");
    let mut bytes = [0u8; 16];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(0, addr + i as u32).expect("template read");
    }
    bytes
}

/// A hook whose liveness the schedule toggles; counts every
/// instruction it is shown while live.
#[derive(Default)]
struct ToggleHook {
    live: bool,
    insns: u64,
}

impl Hook for ToggleHook {
    fn is_passive(&self) -> bool {
        !self.live
    }
    fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {
        self.insns += 1;
    }
}

/// One execution stack.
#[derive(Debug, Clone, Copy)]
enum Tier {
    Interp,
    Icache,
    Full,
}

struct Leg {
    m: Machine,
    hook: ToggleHook,
    mgr: CheckpointManager,
    ckpts: Vec<CkptId>,
}

impl Leg {
    fn boot(tier: Tier) -> Leg {
        let prog = assemble(SMC_LOOP_GUEST).expect("asm");
        let m = Machine::boot(&prog, Aslr::off()).expect("boot");
        let m = match tier {
            Tier::Interp => m.with_decode_cache(false),
            Tier::Icache => m.with_decode_cache(true).with_superblocks(false),
            Tier::Full => m.with_decode_cache(true),
        };
        Leg {
            m,
            hook: ToggleHook::default(),
            mgr: CheckpointManager::new(u64::MAX, 8),
            ckpts: Vec::new(),
        }
    }

    fn apply(&mut self, op: &HostOp) {
        match op {
            HostOp::Run(cycles) => {
                self.m.run(&mut self.hook, u64::from(*cycles));
            }
            HostOp::Patch(which) => {
                let label = if *which == 0 { "tmpl_a" } else { "tmpl_b" };
                let bytes = template_bytes(&self.m, label);
                let buf = self.m.symbols.addr_of("buf").expect("buf");
                self.m.mem.write_bytes_host(buf, &bytes).expect("patch");
            }
            HostOp::Attach => self.hook.live = true,
            HostOp::Detach => self.hook.live = false,
            HostOp::Checkpoint => {
                let id = self.mgr.take(&mut self.m);
                self.ckpts.push(id);
            }
            HostOp::Rollback(sel) => {
                if self.ckpts.is_empty() {
                    return;
                }
                let id = self.ckpts[(*sel as usize) % self.ckpts.len()];
                if let Some(rolled) = self.mgr.rollback(id) {
                    self.m = rolled;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random schedules of SMC, host patches, hook attach/detach,
    /// clones, and rollbacks keep all three tiers bit-identical after
    /// every single operation, delivering identical hook streams.
    #[test]
    fn interleaved_schedules_keep_three_tier_parity(
        ops in vec(arb_op(), 1..32),
    ) {
        let mut full = Leg::boot(Tier::Full);
        let mut icache = Leg::boot(Tier::Icache);
        let mut interp = Leg::boot(Tier::Interp);
        for (i, op) in ops.iter().enumerate() {
            full.apply(op);
            icache.apply(op);
            interp.apply(op);
            prop_assert_eq!(
                obs(&full.m), obs(&interp.m),
                "full stack diverged from interpreter after op {} = {:?}", i, op
            );
            prop_assert_eq!(
                obs(&icache.m), obs(&interp.m),
                "icache tier diverged from interpreter after op {} = {:?}", i, op
            );
            prop_assert_eq!(
                full.hook.insns, interp.hook.insns,
                "hook streams diverged after op {} = {:?}", i, op
            );
        }
        // The interpreter leg's tiers must stay inert throughout.
        prop_assert_eq!(interp.m.icache_stats(), Default::default());
        prop_assert_eq!(interp.m.superblock_stats(), Default::default());
        prop_assert_eq!(icache.m.superblock_stats(), Default::default());
    }
}

/// Deterministic companion: a fixed dense schedule that must engage and
/// invalidate the superblock tier, and must deliver hook events on the
/// full stack, so silent tier-disablement regressions fail loudly.
#[test]
fn dense_schedule_engages_and_invalidates_superblocks() {
    let mut full = Leg::boot(Tier::Full);
    let mut interp = Leg::boot(Tier::Interp);
    let script = [
        HostOp::Run(900),
        HostOp::Checkpoint,
        HostOp::Patch(1),
        HostOp::Run(400),
        HostOp::Attach,
        HostOp::Run(350),
        HostOp::Detach,
        HostOp::Run(600),
        HostOp::Rollback(0),
        HostOp::Patch(0),
        // Enough post-rollback work that the (cold, rollback-reset)
        // tier re-engages and the patch invalidates a rebuilt block.
        HostOp::Run(900),
    ];
    for op in &script {
        full.apply(op);
        interp.apply(op);
        assert_eq!(obs(&full.m), obs(&interp.m), "diverged after {op:?}");
        assert_eq!(full.hook.insns, interp.hook.insns, "hooks after {op:?}");
    }
    let sb = full.m.superblock_stats();
    assert!(sb.dispatches > 0, "tier engaged: {sb:?}");
    assert!(sb.invalidations > 0, "host patches invalidated: {sb:?}");
    assert!(full.hook.insns > 0, "the attached hook saw instructions");
}
