//! Differential parity for the accelerated execution tiers.
//!
//! The predecoded icache (`svm::icache`) and the superblock tier
//! (`svm::superblock`) are pure performance knobs: on any of the three
//! stacks — pure interpreter, icache only, icache + superblocks — every
//! guest (all four Table 1 servers, every exploit variant, and
//! checkpoint/rollback/replay round trips) must produce
//! **bit-identical** observable behavior: the same final `Status` (same
//! `Fault` at the same pc), the same retired-instruction and
//! virtual-cycle counts, the same connection outputs, the same
//! compromise verdicts. This is the executable form of both tiers'
//! correctness contracts; `tests/parity.rs` plays the same role for the
//! sharded community engine.
//!
//! The self-modifying-code tests at the bottom pin the invalidation
//! machinery: a guest (or host) write to a cached executable page must
//! be visible to the very next instruction fetched from it.

use sweeper_repro::apps::{self, cvs, httpd1, httpd2, squid, App};
use sweeper_repro::checkpoint::CheckpointManager;
use sweeper_repro::svm::asm::assemble;
use sweeper_repro::svm::loader::{Aslr, Layout};
use sweeper_repro::svm::{Machine, NopHook, Status};

const FUEL: u64 = 400_000_000;

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    status: Status,
    pc: u32,
    insns: u64,
    cycles: u64,
    outputs: Vec<Vec<u8>>,
    compromised: bool,
}

fn fingerprint(m: &Machine, status: Status) -> Fingerprint {
    Fingerprint {
        status,
        pc: m.cpu.pc,
        insns: m.insns_retired,
        cycles: m.clock.cycles(),
        outputs: m.net.conns().iter().map(|c| c.output.clone()).collect(),
        compromised: apps::is_compromised(m),
    }
}

/// How to boot the guest for a given scenario.
enum Boot {
    /// Randomized layout from this seed.
    Random(u64),
    /// The attacker-assumed nominal layout (compromise variants).
    Nominal,
}

/// One of the three execution stacks under differential test.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tier {
    /// Pure word-at-a-time interpreter.
    Interp,
    /// Predecoded icache only.
    Icache,
    /// Icache + superblock closure chains.
    Full,
}

impl Tier {
    fn apply(self, m: Machine) -> Machine {
        match self {
            Tier::Interp => m.with_decode_cache(false),
            Tier::Icache => m.with_decode_cache(true).with_superblocks(false),
            Tier::Full => m.with_decode_cache(true),
        }
    }
}

fn run_inputs(app: &App, boot: &Boot, inputs: &[Vec<u8>], tier: Tier) -> Fingerprint {
    let mut m = tier.apply(
        match boot {
            Boot::Random(seed) => app.boot(Aslr::on(*seed)),
            Boot::Nominal => app.boot_at(Layout::nominal()),
        }
        .expect("boot"),
    );
    for i in inputs {
        m.net.push_connection(i.clone());
    }
    let status = m.run(&mut NopHook, FUEL);
    assert!(
        !matches!(status, Status::Running),
        "must finish within fuel"
    );
    match tier {
        Tier::Interp => {
            assert_eq!(
                m.icache_stats(),
                Default::default(),
                "disabled cache is inert"
            );
            assert_eq!(
                m.superblock_stats(),
                Default::default(),
                "disabled superblock tier is inert"
            );
        }
        Tier::Icache => {
            assert!(m.icache_stats().hits > 0, "cache must actually engage");
            assert_eq!(
                m.superblock_stats(),
                Default::default(),
                "sb-off leaves the tier inert"
            );
        }
        Tier::Full => {
            assert!(m.icache_stats().hits > 0, "cache must actually engage");
            assert!(
                m.superblock_stats().dispatches > 0,
                "superblock tier must actually engage: {:?}",
                m.superblock_stats()
            );
        }
    }
    fingerprint(&m, status)
}

#[track_caller]
fn assert_parity(name: &str, app: &App, boot: Boot, inputs: Vec<Vec<u8>>) -> Fingerprint {
    let off = run_inputs(app, &boot, &inputs, Tier::Interp);
    let on = run_inputs(app, &boot, &inputs, Tier::Icache);
    let sb = run_inputs(app, &boot, &inputs, Tier::Full);
    assert_eq!(off, on, "{name}: decode cache changed observable behavior");
    assert_eq!(
        on, sb,
        "{name}: superblock tier changed observable behavior"
    );
    sb
}

#[test]
fn benign_traffic_parity_across_all_apps() {
    let a = httpd1::app().expect("app");
    assert_parity(
        "httpd1/benign",
        &a,
        Boot::Random(3),
        vec![
            httpd1::benign_request("index.html"),
            httpd1::benign_request("a/b.css"),
        ],
    );
    let a = httpd2::app().expect("app");
    assert_parity(
        "httpd2/benign",
        &a,
        Boot::Random(4),
        vec![
            httpd2::benign_request("ok.html", Some("http://1.2.3.4/")),
            httpd2::benign_request("plain.html", None),
        ],
    );
    let a = cvs::app().expect("app");
    assert_parity(
        "cvs/benign",
        &a,
        Boot::Random(5),
        vec![cvs::benign_session(&["x", "y"])],
    );
    let a = squid::app().expect("app");
    assert_parity(
        "squid/benign",
        &a,
        Boot::Random(6),
        vec![
            squid::benign_request("bob", "example.com"),
            b"ftp://a~b@host/\n".to_vec(),
        ],
    );
}

#[test]
fn exploit_parity_every_variant() {
    let nominal = Layout::nominal();

    let a = httpd1::app().expect("app");
    let fp = assert_parity(
        "httpd1/compromise",
        &a,
        Boot::Nominal,
        vec![httpd1::exploit_compromise(&a, &nominal).input],
    );
    assert!(fp.compromised, "compromise variant must land (both modes)");
    let fp = assert_parity(
        "httpd1/fnptr",
        &a,
        Boot::Nominal,
        vec![httpd1::exploit_fnptr(&a, &nominal).input],
    );
    assert!(fp.compromised, "fnptr variant must land (both modes)");
    assert_parity(
        "httpd1/fnptr_crash",
        &a,
        Boot::Random(11),
        vec![httpd1::exploit_fnptr_crash(&a).input],
    );
    assert_parity(
        "httpd1/crash",
        &a,
        Boot::Random(12),
        vec![httpd1::exploit_crash(&a).input],
    );
    for salt in [1u8, 77] {
        assert_parity(
            "httpd1/crash_poly",
            &a,
            Boot::Random(13),
            vec![httpd1::exploit_crash_poly(&a, salt).input],
        );
    }

    let a = httpd2::app().expect("app");
    assert_parity(
        "httpd2/crash",
        &a,
        Boot::Random(14),
        vec![httpd2::exploit_crash(&a).input],
    );
    for salt in [2u8, 78] {
        assert_parity(
            "httpd2/crash_poly",
            &a,
            Boot::Random(15),
            vec![httpd2::exploit_crash_poly(&a, salt).input],
        );
    }

    let a = cvs::app().expect("app");
    let fp = assert_parity(
        "cvs/compromise",
        &a,
        Boot::Nominal,
        vec![cvs::exploit_compromise(&a, &nominal).input],
    );
    assert!(fp.compromised, "compromise variant must land (both modes)");
    assert_parity(
        "cvs/crash",
        &a,
        Boot::Random(16),
        vec![cvs::exploit_crash(&a).input],
    );
    for salt in [3u8, 79] {
        assert_parity(
            "cvs/crash_poly",
            &a,
            Boot::Random(17),
            vec![cvs::exploit_crash_poly(&a, salt).input],
        );
    }

    let a = squid::app().expect("app");
    assert_parity(
        "squid/crash",
        &a,
        Boot::Random(18),
        vec![squid::exploit_crash(&a).input],
    );
    for salt in [4u8, 80] {
        assert_parity(
            "squid/crash_poly",
            &a,
            Boot::Random(19),
            vec![squid::exploit_crash_poly(&a, salt).input],
        );
    }
}

/// One full Sweeper-style cycle: serve benign traffic, checkpoint, take
/// the attack, roll back, replay the attack (determinism), then roll
/// back again and serve benign traffic instead (recovery). Returns the
/// fingerprints of all three machines.
fn rollback_cycle(tier: Tier) -> [Fingerprint; 3] {
    let app = httpd2::app().expect("app");
    let mut m = tier.apply(app.boot(Aslr::on(42)).expect("boot"));
    m.net
        .push_connection(httpd2::benign_request("pre.html", None));
    let s = m.run(&mut NopHook, FUEL);
    assert!(matches!(s, Status::Blocked(_)), "serving: {s:?}");

    let mut mgr = CheckpointManager::new(0, 4);
    let id = mgr.take(&mut m);

    m.net.push_connection(httpd2::exploit_crash(&app).input);
    m.unblock();
    let s_attack = m.run(&mut NopHook, FUEL);
    assert!(matches!(s_attack, Status::Faulted(_)), "{s_attack:?}");
    let live = fingerprint(&m, s_attack);

    // Replay the identical attack from the checkpoint: deterministic VM,
    // so the fault must reproduce exactly (same pc, same counts).
    let mut replay = mgr.rollback(id).expect("rollback");
    replay
        .net
        .push_connection(httpd2::exploit_crash(&app).input);
    replay.unblock();
    let s_replay = replay.run(&mut NopHook, FUEL);
    assert_eq!(
        (s_replay, replay.cpu.pc),
        (s_attack, live.pc),
        "replay reproduces the fault site"
    );
    let replayed = fingerprint(&replay, s_replay);

    // Roll back again and serve benign traffic instead: recovery works.
    let mut rec = mgr.rollback(id).expect("rollback");
    rec.net
        .push_connection(httpd2::benign_request("post.html", None));
    rec.unblock();
    let s_rec = rec.run(&mut NopHook, FUEL);
    assert!(matches!(s_rec, Status::Blocked(_)), "recovered: {s_rec:?}");
    let recovered = fingerprint(&rec, s_rec);

    [live, replayed, recovered]
}

#[test]
fn rollback_then_replay_round_trip_parity() {
    let off = rollback_cycle(Tier::Interp);
    let on = rollback_cycle(Tier::Icache);
    let sb = rollback_cycle(Tier::Full);
    assert_eq!(off, on, "cache changed a rollback/replay round trip");
    assert_eq!(on, sb, "superblocks changed a rollback/replay round trip");
}

// ---------------------------------------------------------------------
// Self-modifying code and write-to-code-page invalidation.
// ---------------------------------------------------------------------

/// A guest that builds and patches its own code: it copies `tmpl_a`
/// (returns 7) into an executable data buffer, calls it, then overwrites
/// the buffer with `tmpl_b` (returns 9) and calls it again. Text pages
/// are read-only to the guest, so the pre-NX executable data segment is
/// where real guest-store SMC happens.
const SMC_GUEST: &str = "
.text
main:
    movi r9, tmpl_a
    call install
    call buf
    mov r8, r2          ; first verdict (expect 7)
    movi r9, tmpl_b
    call install
    call buf
    mov r7, r2          ; second verdict (expect 9)
    halt
; copy 4 words from [r9] to buf
install:
    movi r5, buf
    movi r6, 4
icopy:
    ld r4, [r9, 0]
    st [r5, 0], r4
    addi r9, r9, 4
    addi r5, r5, 4
    subi r6, r6, 1
    cmpi r6, 0
    jnz icopy
    ret
tmpl_a:
    movi r2, 7
    ret
tmpl_b:
    movi r2, 9
    ret
.data
buf: .space 16
";

fn run_smc(tier: Tier) -> (Machine, Status) {
    let prog = assemble(SMC_GUEST).expect("asm");
    let mut m = tier.apply(Machine::boot(&prog, Aslr::off()).expect("boot"));
    let s = m.run(&mut NopHook, FUEL);
    (m, s)
}

#[test]
fn guest_smc_sees_fresh_code_and_matches_uncached() {
    let (m_on, s_on) = run_smc(Tier::Icache);
    assert!(matches!(s_on, Status::Halted(_)), "{s_on:?}");
    assert_eq!(m_on.cpu.regs[8], 7, "first installed function ran");
    assert_eq!(m_on.cpu.regs[7], 9, "patched function ran fresh, not stale");
    let stats = m_on.icache_stats();
    assert!(
        stats.invalidations > 0,
        "rewriting an executed page must invalidate: {stats:?}"
    );

    let (m_off, s_off) = run_smc(Tier::Interp);
    assert_eq!(
        (
            s_on,
            m_on.cpu.clone(),
            m_on.insns_retired,
            m_on.clock.cycles()
        ),
        (s_off, m_off.cpu, m_off.insns_retired, m_off.clock.cycles()),
        "SMC runs identically with the cache off"
    );

    let (m_sb, s_sb) = run_smc(Tier::Full);
    assert_eq!(
        (
            s_on,
            m_on.cpu.clone(),
            m_on.insns_retired,
            m_on.clock.cycles()
        ),
        (
            s_sb,
            m_sb.cpu.clone(),
            m_sb.insns_retired,
            m_sb.clock.cycles()
        ),
        "SMC runs identically with superblocks on"
    );
}

#[test]
fn host_write_to_cached_code_page_invalidates() {
    // An infinite loop reading a data word; the host then patches the
    // *code* page out from under the warm cache, turning the loop into a
    // halt. The next fetch must see the new bytes.
    let prog = assemble(
        ".text\nmain:\nloop:\n movi r1, 1\n jmp loop\nhalt_src:\n halt\n.data\nv: .word 0\n",
    )
    .expect("asm");
    let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
    assert!(m.decode_cache_enabled());
    for _ in 0..64 {
        assert!(matches!(m.step(), Status::Running));
    }
    assert!(m.icache_stats().hits > 0, "loop page is cached");

    // Copy the encoded `halt` over the `jmp loop` slot (host injection —
    // the same mechanism exploit payload installation uses).
    let halt_addr = m.symbols.addr_of("halt_src").expect("halt_src");
    let jmp_addr = m.symbols.addr_of("loop").expect("loop") + 8;
    let mut halt_bytes = [0u8; 8];
    for (i, b) in halt_bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(0, halt_addr + i as u32).expect("read");
    }
    m.mem
        .write_bytes_host(jmp_addr, &halt_bytes)
        .expect("host patch");

    let mut last = Status::Running;
    for _ in 0..4 {
        last = m.step();
        if !matches!(last, Status::Running) {
            break;
        }
    }
    assert!(
        matches!(last, Status::Halted(_)),
        "patched halt must execute, not the stale cached jmp: {last:?}"
    );
    assert!(
        m.icache_stats().invalidations > 0,
        "host write must be counted as an invalidation: {:?}",
        m.icache_stats()
    );
}

#[test]
fn rollback_flush_and_write_bump_same_page_count_once() {
    // Regression: when a rollback-path flush (`flush_decode_cache`, the
    // call `CheckpointManager::rollback` makes) and a write-generation
    // bump land on the same warm page inside one step window, each tier
    // must record ONE event — the flush. The dirtying write lands on a
    // page the flush already dropped, so counting it again as an
    // invalidation would double-count a single dirtying event. Each
    // tier keeps its own counters and they are never summed.
    //
    // The loop body is long enough (>= the minimum fusion length) that
    // the superblock tier dispatches it rather than caching a bypass.
    let prog = assemble(
        ".text\nmain:\nloop:\n movi r1, 1\n movi r2, 2\n movi r3, 3\n jmp loop\nhalt_src:\n halt\n.data\nv: .word 0\n",
    )
    .expect("asm");
    let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
    // Warm both tiers on the loop page.
    assert!(matches!(m.run(&mut NopHook, 2000), Status::Running));
    let (warm_i, warm_s) = (m.icache_stats(), m.superblock_stats());
    assert!(warm_i.hits > 0, "icache warm");
    assert!(warm_s.dispatches > 0, "superblock tier warm");

    // The rollback-path flush...
    m.flush_decode_cache();
    // ...and a host write dirtying the very page that was warm, before
    // the next instruction executes.
    let halt_addr = m.symbols.addr_of("halt_src").expect("halt_src");
    let patch_addr = m.symbols.addr_of("loop").expect("loop") + 8;
    let mut halt_bytes = [0u8; 8];
    for (i, b) in halt_bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(0, halt_addr + i as u32).expect("read");
    }
    m.mem
        .write_bytes_host(patch_addr, &halt_bytes)
        .expect("host patch");
    assert!(matches!(m.run(&mut NopHook, 2000), Status::Halted(_)));

    let (after_i, after_s) = (m.icache_stats(), m.superblock_stats());
    assert_eq!(after_i.flushes, warm_i.flushes + 1, "one icache flush");
    assert_eq!(
        after_i.invalidations, warm_i.invalidations,
        "the write-gen bump must not ALSO count as an icache \
         invalidation — the flush already dropped the page"
    );
    assert_eq!(after_s.flushes, warm_s.flushes + 1, "one superblock flush");
    assert_eq!(
        after_s.invalidations, warm_s.invalidations,
        "the write-gen bump must not ALSO count as a superblock \
         invalidation — the flush already dropped the block"
    );
    // Re-decode after the flush shows up as misses/builds, never as
    // invalidations.
    assert!(after_i.misses > warm_i.misses, "flushed pages re-decode");
    assert!(after_s.built > warm_s.built, "flushed blocks rebuild");
}
