//! Property-based tests (proptest) on the core substrates' invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use sweeper_repro::antibody::{Signature, SignatureSet};
use sweeper_repro::svm::alloc::{FreeKind, HeapState, HEADER_SIZE};
use sweeper_repro::svm::isa::{AluOp, Cond, Op, Reg, Syscall};
use sweeper_repro::svm::mem::{Mem, Perm, PAGE_SIZE};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..15).prop_map(Reg)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Nop),
        Just(Op::Halt),
        Just(Op::Ret),
        (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Op::MovI { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Op::Mov { rd, rs }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, off)| Op::Ld { rd, rs, off }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, off)| Op::St { rd, rs, off }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, off)| Op::LdB { rd, rs, off }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, off)| Op::StB { rd, rs, off }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Op::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_alu(), arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| Op::AluI {
            op,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg()).prop_map(|(rs1, rs2)| Op::Cmp { rs1, rs2 }),
        (arb_reg(), any::<u32>()).prop_map(|(rs1, imm)| Op::CmpI { rs1, imm }),
        any::<u32>().prop_map(|target| Op::Jmp { target }),
        (arb_cond(), any::<u32>()).prop_map(|(cond, target)| Op::JCond { cond, target }),
        arb_reg().prop_map(|rs| Op::JmpR { rs }),
        any::<u32>().prop_map(|target| Op::Call { target }),
        arb_reg().prop_map(|rs| Op::CallR { rs }),
        arb_reg().prop_map(|rs| Op::Push { rs }),
        arb_reg().prop_map(|rd| Op::Pop { rd }),
        (0u8..10).prop_map(|n| Op::Sys {
            num: Syscall::from_num(n).expect("valid").num()
        }),
    ]
}

proptest! {
    /// Every instruction round-trips through its encoding.
    #[test]
    fn isa_encode_decode_roundtrip(op in arb_op()) {
        let enc = op.encode();
        let dec = Op::decode(enc, 0).expect("decode");
        prop_assert_eq!(op, dec);
    }

    /// Memory: byte writes read back, and foreign bytes are untouched.
    #[test]
    fn memory_writes_are_isolated(
        writes in vec((0u32..8192, any::<u8>()), 1..64),
        probe in 0u32..8192,
    ) {
        let mut mem = Mem::new();
        mem.map(0x1000, 2 * PAGE_SIZE as u32, Perm::RW, "t").expect("map");
        let mut model = std::collections::HashMap::new();
        for (off, val) in &writes {
            mem.write_u8(0, 0x1000 + off, *val).expect("write");
            model.insert(*off, *val);
        }
        let got = mem.read_u8(0, 0x1000 + probe).expect("read");
        let want = model.get(&probe).copied().unwrap_or(0);
        prop_assert_eq!(got, want);
    }

    /// Snapshots are immutable under any subsequent write pattern.
    #[test]
    fn cow_snapshot_immutability(
        before in vec((0u32..4096, any::<u8>()), 1..32),
        after in vec((0u32..4096, any::<u8>()), 1..32),
    ) {
        let mut mem = Mem::new();
        mem.map(0x1000, PAGE_SIZE as u32, Perm::RW, "t").expect("map");
        for (off, val) in &before {
            mem.write_u8(0, 0x1000 + off, *val).expect("w");
        }
        let snap = mem.snapshot();
        let frozen: Vec<u8> = (0..4096u32)
            .map(|i| snap.read_u8(0, 0x1000 + i).expect("r"))
            .collect();
        for (off, val) in &after {
            mem.write_u8(0, 0x1000 + off, *val).expect("w");
        }
        for (i, b) in frozen.iter().enumerate() {
            prop_assert_eq!(snap.read_u8(0, 0x1000 + i as u32).expect("r"), *b);
        }
    }

    /// Allocator: random alloc/free sequences keep the heap walkable,
    /// payloads disjoint, and free reported correctly.
    #[test]
    fn allocator_invariants(ops in vec((any::<bool>(), 1u32..200), 1..60)) {
        let mut mem = Mem::new();
        mem.map(0x10000, 0x40000, Perm::RW, "heap").expect("map");
        let mut heap = HeapState::new(0x10000, 0x40000);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for (i, (do_alloc, size)) in ops.iter().enumerate() {
            if *do_alloc || live.is_empty() {
                let p = heap.alloc(&mut mem, 0, *size).expect("alloc");
                if p != 0 {
                    // Disjoint from every live payload.
                    for (q, qs) in &live {
                        prop_assert!(p + size <= *q || *q + qs <= p,
                            "overlap at step {i}: [{p:#x},{:#x}) vs [{q:#x},{:#x})",
                            p + size, q + qs);
                    }
                    live.push((p, *size));
                }
            } else {
                let idx = (*size as usize) % live.len();
                let (p, _) = live.swap_remove(idx);
                let kind = heap.free(&mut mem, 0, p).expect("free");
                prop_assert_eq!(kind, FreeKind::Normal);
            }
            let (_chunks, ok) = heap.walk(&mem);
            prop_assert!(ok, "heap walk broke at step {i}");
        }
        // Every live pointer is found by the chunk query.
        for (p, s) in &live {
            let (pay, len) = heap.live_chunk_containing(&mem, *p).expect("live");
            prop_assert!(pay == *p && len >= *s);
        }
        let _ = HEADER_SIZE;
    }

    /// Exact signatures match exactly themselves; substrings match any
    /// superstring embedding.
    #[test]
    fn signature_semantics(
        body in vec(any::<u8>(), 1..64),
        prefix in vec(any::<u8>(), 0..32),
        suffix in vec(any::<u8>(), 0..32),
    ) {
        let exact = Signature::Exact(body.clone());
        prop_assert!(exact.matches(&body));
        let embedded: Vec<u8> =
            prefix.iter().chain(body.iter()).chain(suffix.iter()).copied().collect();
        if embedded != body {
            prop_assert!(!exact.matches(&embedded));
        }
        let sub = Signature::Substring(body.clone());
        prop_assert!(sub.matches(&embedded));
        let mut set = SignatureSet::new();
        set.add(sub);
        prop_assert!(set.matches(&embedded));
    }

    /// Epidemic model: infection ratio is within [0,1], monotone in γ and
    /// antitone in α.
    #[test]
    fn epidemic_monotonicity(
        alpha_idx in 0usize..4,
        g1 in 1.0f64..40.0,
        dg in 1.0f64..40.0,
    ) {
        use sweeper_repro::epidemic::{solve, Scenario};
        let alphas = [0.01, 0.005, 0.001, 0.0005];
        let alpha = alphas[alpha_idx];
        let fast = solve(&Scenario::slammer(alpha, g1));
        let slow = solve(&Scenario::slammer(alpha, g1 + dg));
        prop_assert!((0.0..=1.0).contains(&fast.infection_ratio));
        prop_assert!(fast.infection_ratio <= slow.infection_ratio + 1e-9);
        if alpha_idx + 1 < alphas.len() {
            let fewer = solve(&Scenario::slammer(alphas[alpha_idx + 1], g1));
            prop_assert!(fast.infection_ratio <= fewer.infection_ratio + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checkpoint/rollback is transparent: running N instructions, rolling
    /// back, and re-running N instructions reproduces identical state, for
    /// arbitrary split points.
    #[test]
    fn rollback_replay_transparent(split in 1usize..400, total in 400usize..600) {
        use sweeper_repro::svm::{asm::assemble, loader::Aslr, Machine, Status};
        let src = "
.text
main:
    movi r1, v
    movi r2, 1
loop:
    ld r0, [r1, 0]
    add r0, r0, r2
    st [r1, 0], r0
    mul r2, r2, r0
    sys rand
    xor r2, r2, r0
    jmp loop
.data
v: .word 0
";
        let prog = assemble(src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        for _ in 0..split {
            prop_assert!(matches!(m.step(), Status::Running));
        }
        let ckpt = m.clone();
        for _ in 0..(total - split) {
            m.step();
        }
        let final_cpu = m.cpu.clone();
        let final_rng = m.rng;
        let mut replay = ckpt;
        for _ in 0..(total - split) {
            replay.step();
        }
        prop_assert_eq!(replay.cpu, final_cpu);
        prop_assert_eq!(replay.rng, final_rng);
    }
}

/// The shrunken case recorded in `properties.proptest-regressions`
/// (`AluI { op: Xor, rd: Reg(0), rs1: Reg(0), imm: 0 }`, i.e.
/// `xori r0, r0, 0`): register 0 with a zero immediate must survive the
/// encode/decode and disassemble/re-assemble roundtrips and execute as
/// the identity. Kept as a plain deterministic test so the guard holds
/// even if the regression-file workflow changes.
#[test]
fn regression_alui_xor_reg0_roundtrips_and_is_identity() {
    use sweeper_repro::svm::{asm::assemble, disasm::render, loader::Aslr, Machine, Status};
    let op = Op::AluI {
        op: AluOp::Xor,
        rd: Reg(0),
        rs1: Reg(0),
        imm: 0,
    };
    // Encode/decode roundtrip.
    assert_eq!(op, Op::decode(op.encode(), 0).expect("decode"));
    // Disassembly re-assembles to the identical encoding.
    let text = render(&op, None);
    let prog = assemble(&format!(".text\nmain:\n    {text}\n")).expect("asm");
    let mut word = [0u8; 8];
    word.copy_from_slice(&prog.text[0..8]);
    assert_eq!(op, Op::decode(word, 0).expect("decode"), "{text}");
    // Execution: x ^ 0 == x, even on register 0.
    let src = "
.text
main:
    movi r0, 0x5a5a
    xori r0, r0, 0
    halt
";
    let prog = assemble(src).expect("asm");
    let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
    for _ in 0..8 {
        if !matches!(m.step(), Status::Running) {
            break;
        }
    }
    assert_eq!(m.cpu.get(Reg(0)), 0x5a5a);
}

proptest! {
    /// The disassembler's output is valid assembler input: rendering any
    /// instruction and re-assembling it yields the same encoding
    /// (absolute branch targets are rendered numerically when no symbol
    /// map is supplied, which the assembler accepts).
    #[test]
    fn disassembly_reassembles_identically(op in arb_op()) {
        use sweeper_repro::svm::{asm::assemble, disasm::render};
        let text = render(&op, None);
        let src = format!(".text\nmain:\n    {text}\n");
        let prog = assemble(&src)
            .unwrap_or_else(|e| panic!("`{text}` does not re-assemble: {e}"));
        let mut word = [0u8; 8];
        word.copy_from_slice(&prog.text[0..8]);
        let reparsed = sweeper_repro::svm::isa::Op::decode(word, 0).expect("decode");
        prop_assert_eq!(op, reparsed, "{}", text);
    }
}
