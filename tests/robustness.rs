//! Robustness: arbitrary input bytes against fully protected servers.
//!
//! The defining property of the whole stack: guest misbehaviour — any
//! misbehaviour, triggered by any input — is *contained*. The host never
//! panics, every request resolves to a definite outcome, and the
//! protected service keeps serving benign traffic afterwards.

use proptest::prelude::*;
use sweeper_repro::apps::{cvs, httpd1, httpd2, squid, App};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

fn apps() -> Vec<(App, Vec<u8>)> {
    vec![
        (
            httpd1::app().expect("a1"),
            httpd1::benign_request("ok.html"),
        ),
        (
            httpd2::app().expect("a2"),
            httpd2::benign_request("ok", None),
        ),
        (cvs::app().expect("cvs"), cvs::benign_session(&["ok"])),
        (
            squid::app().expect("squid"),
            squid::benign_request("ok", "host"),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_requests_never_break_the_host(
        app_idx in 0usize..4,
        request in proptest::collection::vec(any::<u8>(), 0..300),
        seed in any::<u64>(),
    ) {
        let (app, benign) = apps().swap_remove(app_idx);
        let mut s = Sweeper::protect(&app, Config::producer(seed)).expect("protect");
        // The random request resolves without a host panic.
        let outcome = s.offer_request(request);
        let resolved = matches!(
            outcome,
            RequestOutcome::Served { .. }
                | RequestOutcome::Filtered { .. }
                | RequestOutcome::Attack(_)
        );
        prop_assert!(resolved, "unresolved outcome: {outcome:?}");
        // And the server still serves benign traffic afterwards.
        let after = s.offer_request(benign);
        prop_assert!(
            matches!(after, RequestOutcome::Served { .. }),
            "{}: service lost after random input: {after:?}",
            app.name
        );
    }
}

#[test]
fn adversarial_request_shapes_are_contained() {
    // Hand-picked nasty shapes per protocol.
    let cases: Vec<(usize, Vec<u8>)> = vec![
        (0, Vec::new()),      // empty
        (0, b"GET".to_vec()), // truncated method
        (0, vec![0u8; 300]),  // all NULs
        (
            0,
            b"GET /"
                .iter()
                .chain([0xffu8; 200].iter())
                .copied()
                .collect(),
        ),
        (1, b"Referer: ".to_vec()), // header, no request line
        (1, b"GET / HTTP/1.0\nReferer:".to_vec()), // truncated header
        (2, b"Directory \n".to_vec()), // empty directory name
        (2, b"Directory /\nDirectory /\nDirectory /\n".to_vec()), // repeated error path
        (2, b"Entry before-any-directory\ndone\n".to_vec()),
        (2, b"done\ndone\ndone\n".to_vec()),
        (3, b"ftp://\n".to_vec()),  // no user, no host
        (3, b"ftp://@\n".to_vec()), // empty user
        (3, b"ftp://@@@@@\n".to_vec()),
        (3, format!("ftp://{}@h/\n", "a".repeat(2000)).into_bytes()), // long but safe user
    ];
    let all = apps();
    for (idx, input) in cases {
        let (app, benign) = &all[idx];
        let mut s = Sweeper::protect(app, Config::producer(0xf00d + idx as u64)).expect("p");
        let out = s.offer_request(input.clone());
        assert!(
            matches!(
                out,
                RequestOutcome::Served { .. }
                    | RequestOutcome::Filtered { .. }
                    | RequestOutcome::Attack(_)
            ),
            "{}: {input:?} -> {out:?}",
            app.name
        );
        assert!(
            matches!(
                s.offer_request(benign.clone()),
                RequestOutcome::Served { .. }
            ),
            "{}: service lost after {input:?}",
            app.name
        );
    }
}

#[test]
fn attack_storm_is_survivable() {
    // Ten consecutive attacks (mixed polymorphic variants) against one
    // producer: every one detected or filtered, service alive at the end,
    // and the timeline stays monotone.
    let app = httpd1::app().expect("app");
    let mut s = Sweeper::protect(&app, Config::producer(0x5707)).expect("protect");
    let mut last_now = 0;
    for wave in 0..10u8 {
        let exploit = if wave % 2 == 0 {
            httpd1::exploit_crash(&app)
        } else {
            httpd1::exploit_crash_poly(&app, wave)
        };
        let out = s.offer_request(exploit.input);
        assert!(
            matches!(
                out,
                RequestOutcome::Attack(_) | RequestOutcome::Filtered { .. }
            ),
            "wave {wave}: {out:?}"
        );
        assert!(
            s.timeline.now() >= last_now,
            "time went backwards at wave {wave}"
        );
        last_now = s.timeline.now();
    }
    assert!(matches!(
        s.offer_request(httpd1::benign_request("alive.html")),
        RequestOutcome::Served { .. }
    ));
    assert!(s.attacks_detected >= 2, "at least initial + one vsef catch");
    assert!(s.deployed_vsefs() > 0);
}
