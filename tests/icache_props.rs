//! Property test for `svm::icache` invalidation (PR 4 satellite).
//!
//! Generalizes the hand-written self-modifying-code cases in
//! `tests/decode_cache.rs`: a guest that perpetually re-installs code
//! into an executable buffer (guest-store SMC) is driven through a
//! *random interleaving* of stepping, host code patches, checkpoint
//! clones, and rollbacks — once with the predecoded instruction cache
//! on and once with it off. Every interleaving must leave the two
//! machines bit-identical (pc, registers, retired instructions, virtual
//! cycles). Any divergence means a stale cache line survived an
//! invalidation path.

use proptest::collection::vec;
use proptest::prelude::*;
use sweeper_repro::checkpoint::{CheckpointManager, CkptId};
use sweeper_repro::svm::asm::assemble;
use sweeper_repro::svm::isa::Op;
use sweeper_repro::svm::loader::Aslr;
use sweeper_repro::svm::{Hook, Machine, NopHook, Status};

/// A guest that alternates between installing `tmpl_a` (verdict 7) and
/// `tmpl_b` (verdict 9) into an executable data buffer and calling it:
/// guest stores hit a hot executable page on every loop iteration.
const SMC_LOOP_GUEST: &str = "
.text
main:
    movi r10, 0          ; template toggle
loop:
    cmpi r10, 0
    jz use_a
    movi r9, tmpl_b
    jmp inst
use_a:
    movi r9, tmpl_a
inst:
    call install
    call buf
    add r3, r3, r2       ; accumulate verdicts
    addi r4, r4, 1       ; iteration counter
    movi r11, 1
    sub r10, r11, r10    ; r10 = 1 - r10
    jmp loop
; copy 4 words from [r9] to buf
install:
    movi r5, buf
    movi r6, 4
icopy:
    ld r8, [r9, 0]
    st [r5, 0], r8
    addi r9, r9, 4
    addi r5, r5, 4
    subi r6, r6, 1
    cmpi r6, 0
    jnz icopy
    ret
tmpl_a:
    movi r2, 7
    ret
tmpl_b:
    movi r2, 9
    ret
.data
buf: .space 16
";

/// One host-side action in the interleaving.
#[derive(Debug, Clone)]
enum HostOp {
    /// Step the guest this many instructions.
    Step(u32),
    /// Host-patch the executable buffer with template 0 or 1 (the same
    /// injection mechanism exploit payload installation uses).
    Patch(u8),
    /// Take a checkpoint (COW clone of the whole machine).
    Checkpoint,
    /// Roll back to a retained checkpoint selected by this value.
    Rollback(u64),
}

fn arb_op() -> impl Strategy<Value = HostOp> {
    prop_oneof![
        (1u32..300).prop_map(HostOp::Step),
        (0u8..2).prop_map(HostOp::Patch),
        Just(HostOp::Checkpoint),
        any::<u64>().prop_map(HostOp::Rollback),
    ]
}

/// Observable state that must stay identical across the cache knob.
fn obs(m: &Machine) -> (u32, [u32; 15], u64, u64) {
    (m.cpu.pc, m.cpu.regs, m.insns_retired, m.clock.cycles())
}

/// Read the 16 template bytes at `label` out of guest memory.
fn template_bytes(m: &Machine, label: &str) -> [u8; 16] {
    let addr = m.symbols.addr_of(label).expect("template label");
    let mut bytes = [0u8; 16];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(0, addr + i as u32).expect("template read");
    }
    bytes
}

struct Leg {
    m: Machine,
    mgr: CheckpointManager,
    ckpts: Vec<CkptId>,
}

impl Leg {
    fn boot(cache: bool) -> Leg {
        let prog = assemble(SMC_LOOP_GUEST).expect("asm");
        let m = Machine::boot(&prog, Aslr::off())
            .expect("boot")
            .with_decode_cache(cache);
        Leg {
            m,
            // Manual cadence, generous retention: the interleaving
            // decides when clones happen.
            mgr: CheckpointManager::new(u64::MAX, 8),
            ckpts: Vec::new(),
        }
    }

    fn apply(&mut self, op: &HostOp) {
        match op {
            HostOp::Step(n) => {
                for _ in 0..*n {
                    if !matches!(self.m.step(), Status::Running) {
                        break;
                    }
                }
            }
            HostOp::Patch(which) => {
                let label = if *which == 0 { "tmpl_a" } else { "tmpl_b" };
                let bytes = template_bytes(&self.m, label);
                let buf = self.m.symbols.addr_of("buf").expect("buf");
                self.m.mem.write_bytes_host(buf, &bytes).expect("patch");
            }
            HostOp::Checkpoint => {
                let id = self.mgr.take(&mut self.m);
                self.ckpts.push(id);
            }
            HostOp::Rollback(sel) => {
                if self.ckpts.is_empty() {
                    return;
                }
                let id = self.ckpts[(*sel as usize) % self.ckpts.len()];
                if let Some(rolled) = self.mgr.rollback(id) {
                    self.m = rolled;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleavings of guest-store SMC, host patches, clones,
    /// and rollbacks keep cache-on and cache-off execution bit-identical
    /// after every single operation.
    #[test]
    fn interleaved_smc_patches_clones_rollbacks_keep_cache_parity(
        ops in vec(arb_op(), 1..32),
    ) {
        let mut on = Leg::boot(true);
        let mut off = Leg::boot(false);
        for (i, op) in ops.iter().enumerate() {
            on.apply(op);
            off.apply(op);
            prop_assert_eq!(
                obs(&on.m),
                obs(&off.m),
                "diverged after op {} = {:?}",
                i,
                op
            );
        }
        // The off-leg cache must stay inert through every interleaving.
        // (Rollback restores a machine with a fresh cache, so the on-leg
        // stats can legitimately be empty here; the dense companion test
        // below pins engagement and invalidation.)
        prop_assert_eq!(off.m.icache_stats(), Default::default());
    }
}

/// Deterministic companion: a fixed dense interleaving that exercises
/// every op kind and *must* produce invalidations, so a regression that
/// silently disables invalidation accounting fails loudly.
#[test]
fn dense_interleaving_invalidates_and_stays_in_parity() {
    let mut on = Leg::boot(true);
    let mut off = Leg::boot(false);
    let script = [
        HostOp::Step(200),
        HostOp::Checkpoint,
        HostOp::Step(150),
        HostOp::Patch(1),
        HostOp::Step(90),
        HostOp::Rollback(0),
        HostOp::Step(120),
        HostOp::Patch(0),
        HostOp::Checkpoint,
        HostOp::Step(300),
        HostOp::Rollback(1),
        // Enough post-rollback work that the (fresh, rollback-reset)
        // cache re-engages and guest SMC invalidates it again.
        HostOp::Step(300),
    ];
    for op in &script {
        on.apply(op);
        off.apply(op);
        assert_eq!(obs(&on.m), obs(&off.m), "diverged after {op:?}");
    }
    assert!(on.m.icache_stats().hits > 0, "cache engaged");
    assert!(
        on.m.icache_stats().invalidations > 0,
        "guest SMC + host patches must invalidate: {:?}",
        on.m.icache_stats()
    );
}

/// Counts every instruction it is shown; never passive.
#[derive(Default)]
struct CountHook {
    insns: u64,
}

impl Hook for CountHook {
    fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {
        self.insns += 1;
    }
}

/// Regression: a passive-hook fast-path decision made before
/// `Machine::clone` must not leak into the clone. If the machine cached
/// "hook is passive" anywhere copyable, a hook attaching between the
/// clone and its first step could miss the clone's first instruction(s)
/// — the superblock tier would dispatch a whole block before anyone
/// re-asked. Liveness must be re-derived on the clone's first dispatch.
#[test]
fn clone_does_not_inherit_passive_fast_path_decision() {
    let prog = assemble(SMC_LOOP_GUEST).expect("asm");
    let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
    // Decide the passive fast path on the live machine: the superblock
    // tier is warm and mid-dispatch-cadence.
    assert!(m.run(&mut NopHook, 1_000).is_running());
    assert!(m.superblock_stats().dispatches > 0, "fast path decided");

    // Clone, then attach a live hook before the clone's first step.
    let mut c = m.clone();
    let mut h = CountHook::default();
    let before = c.insns_retired;
    assert!(c.run(&mut h, 500).is_running());
    let retired = c.insns_retired - before;
    assert!(retired > 0, "the clone made progress");
    assert_eq!(
        h.insns, retired,
        "the hook must see the clone's very first instruction — \
         liveness is re-checked on the first dispatch, never inherited"
    );
    assert_eq!(
        c.superblock_stats().dispatches,
        0,
        "no superblock may dispatch on the clone while a hook is live"
    );

    // Control: the pre-clone machine itself keeps fast-pathing, and the
    // two stay bit-identical when driven by equivalent passive work.
    let mut n = NopHook;
    assert!(m.run(&mut n, 500).is_running());
    assert_eq!(obs(&m), obs(&c), "hooked clone matches passive original");
}
