//! Property tests for the `obs` metrics algebra, plus the
//! `Sweeper::export_metrics()` idempotence regression (PR 4 satellite).
//!
//! `MetricsRegistry::merge` is the fold every sharded engine and every
//! exporter relies on. These properties pin its algebra:
//!
//! * merge is **associative** for whole registries (counters, gauges,
//!   spans);
//! * the **counter** component is additionally **order-insensitive**
//!   (commutative monoid) — any shard permutation folds to the same
//!   counter map;
//! * the **gauge** component is intentionally order-*sensitive* (a
//!   gauge is a point-in-time reading; the last shard in fold order
//!   wins — see the `merge` doc comment for why);
//! * `Sweeper::export_metrics()` is idempotent: exporting twice in a
//!   row — including after repeated attacks on the same host — yields
//!   identical counters, with nothing double-counted by the export
//!   itself.

use proptest::collection::vec;
use proptest::prelude::*;
use sweeper_repro::apps::httpd1;
use sweeper_repro::obs::MetricsRegistry;
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

/// One recording action against a registry.
#[derive(Debug, Clone)]
enum RecOp {
    /// `inc(name, by)`.
    Inc(u8, u64),
    /// `gauge(name, value)` (finite values only).
    Gauge(u8, i32),
    /// `record_span(name, start, start + len)`.
    Span(u8, u32, u32),
}

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

fn arb_rec() -> impl Strategy<Value = RecOp> {
    prop_oneof![
        (any::<u8>(), 0u64..1_000_000).prop_map(|(n, by)| RecOp::Inc(n, by)),
        (any::<u8>(), any::<i32>()).prop_map(|(n, v)| RecOp::Gauge(n, v)),
        (any::<u8>(), any::<u32>(), 0u32..1_000_000).prop_map(|(n, s, l)| RecOp::Span(n, s, l)),
    ]
}

fn build(ops: &[RecOp]) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for op in ops {
        match op {
            RecOp::Inc(n, by) => r.inc(NAMES[*n as usize % NAMES.len()], *by),
            RecOp::Gauge(n, v) => r.gauge(NAMES[*n as usize % NAMES.len()], f64::from(*v)),
            RecOp::Span(n, s, l) => r.record_span(
                NAMES[*n as usize % NAMES.len()],
                u64::from(*s),
                u64::from(*s) + u64::from(*l),
            ),
        }
    }
    r
}

fn counters_of(r: &MetricsRegistry) -> Vec<(String, u64)> {
    r.counters().map(|(k, v)| (k.to_string(), v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` for whole registries.
    #[test]
    fn merge_is_associative(
        a in vec(arb_rec(), 0..12),
        b in vec(arb_rec(), 0..12),
        c in vec(arb_rec(), 0..12),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));

        let mut left = MetricsRegistry::new();
        left.merge(&a);
        left.merge(&b); // (a ⊕ b)
        let mut right_tail = b.clone();
        right_tail.merge(&c); // (b ⊕ c)

        left.merge(&c); // (a ⊕ b) ⊕ c
        let mut right = MetricsRegistry::new();
        right.merge(&a);
        right.merge(&right_tail); // a ⊕ (b ⊕ c)

        prop_assert_eq!(left, right);
    }

    /// Counters fold order-insensitively: every permutation of the
    /// shard list yields the identical counter map. (Gauges and spans
    /// are deliberately excluded — see below.)
    #[test]
    fn counter_merge_is_order_insensitive(
        shards in vec(vec(arb_rec(), 0..10), 1..5),
        rot in any::<usize>(),
        swap_i in any::<usize>(),
        swap_j in any::<usize>(),
    ) {
        let regs: Vec<MetricsRegistry> = shards.iter().map(|s| build(s)).collect();

        // Identity order.
        let mut folded = MetricsRegistry::new();
        for r in &regs {
            folded.merge(r);
        }

        // A rotation and a transposition generate enough of S_n to
        // catch any order dependence.
        let mut rotated: Vec<&MetricsRegistry> = regs.iter().collect();
        rotated.rotate_left(rot % regs.len());
        let (i, j) = (swap_i % regs.len(), swap_j % regs.len());
        rotated.swap(i, j);
        let mut folded_perm = MetricsRegistry::new();
        for r in rotated {
            folded_perm.merge(r);
        }

        prop_assert_eq!(counters_of(&folded), counters_of(&folded_perm));
    }

    /// Gauge merge is last-writer-wins in fold order — the documented,
    /// intentional shard-order semantics: the *final* shard that
    /// reported a gauge provides its value.
    #[test]
    fn gauge_merge_keeps_the_last_fold_writer(
        values in vec(any::<i32>(), 1..6),
    ) {
        let mut folded = MetricsRegistry::new();
        for v in &values {
            let mut shard = MetricsRegistry::new();
            shard.gauge("load", f64::from(*v));
            folded.merge(&shard);
        }
        prop_assert_eq!(
            folded.gauge_value("load"),
            Some(f64::from(*values.last().unwrap()))
        );
    }
}

/// `Sweeper::export_metrics()` is a pure snapshot: calling it twice in
/// a row yields identical counters, and repeated attacks between
/// exports never make an export double-count (the export itself adds
/// nothing to the registry it mirrors).
#[test]
fn export_metrics_is_idempotent_under_repeated_attacks() {
    let app = httpd1::app().expect("httpd1");
    let exploit = httpd1::exploit_crash(&app).input;
    let mut s = Sweeper::protect(&app, Config::producer(0xfeed)).expect("protect");

    let baseline = counters_of(&s.export_metrics());
    assert_eq!(
        baseline,
        counters_of(&s.export_metrics()),
        "back-to-back exports must be identical before any traffic"
    );

    for round in 0..3 {
        let out = s.offer_request(exploit.clone());
        // First round is a fresh attack; later rounds are filtered by
        // the deployed signature. Either way the host survives.
        assert!(
            !matches!(out, RequestOutcome::Served { .. }),
            "round {round}: exploit must never be served"
        );
        let a = counters_of(&s.export_metrics());
        let b = counters_of(&s.export_metrics());
        let c = counters_of(&s.export_metrics());
        assert_eq!(a, b, "round {round}: export must be idempotent");
        assert_eq!(b, c, "round {round}: export must be idempotent (3x)");
        // Monotone mirrors must not have been inflated by exporting:
        // three consecutive exports, same instruction count.
        let insns = |cs: &[(String, u64)]| {
            cs.iter()
                .find(|(k, _)| k == "svm.insns_retired")
                .map(|(_, v)| *v)
                .expect("svm.insns_retired exported")
        };
        assert_eq!(insns(&a), insns(&c));
    }
}
