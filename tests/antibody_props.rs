//! Property tests for `antibody::signature` matching and for the
//! deployed-filter false-positive guarantee (PR 4 satellite).
//!
//! The paper's §3.3 argument for exact-match-first signatures is "very
//! low false positives". These properties pin the matching semantics
//! that argument rests on:
//!
//! 1. an [`Signature::Exact`] signature never matches any mutation of
//!    its own input — a single flipped bit anywhere defeats it;
//! 2. a [`Signature::Substring`] signature derived from taint offsets
//!    keeps matching when the input is mutated *outside* the signature
//!    window (the attacker can't shake the signature off by perturbing
//!    unimplicated bytes);
//! 3. [`Signature::TokenSeq`] matching is *ordered*: the same tokens in
//!    the wrong order do not match;
//! 4. `tokens_from_samples` output matches every sample it was derived
//!    from;
//! 5. end to end, for each of the four Table 1 guests: after an attack
//!    deploys real antibodies (VSEFs + signatures), the benign workload
//!    corpus is still served — zero false positives on benign traffic.

use proptest::collection::vec;
use proptest::prelude::*;
use sweeper_repro::antibody::{exact_from, substring_from_taint, tokens_from_samples, Signature};
use sweeper_repro::apps::workload::{Target, Workload};
use sweeper_repro::apps::{cvs, httpd1, httpd2, squid};
use sweeper_repro::sweeper::{Config, RequestOutcome, Sweeper};

/// Every byte position at which `needle` occurs in `hay`.
fn occurrences(hay: &[u8], needle: &[u8]) -> Vec<usize> {
    if needle.is_empty() || needle.len() > hay.len() {
        return Vec::new();
    }
    hay.windows(needle.len())
        .enumerate()
        .filter(|(_, w)| *w == needle)
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact signatures match only their exact bytes: flipping any
    /// single bit anywhere produces a non-match.
    #[test]
    fn exact_signature_rejects_every_single_byte_mutation(
        input in vec(any::<u8>(), 1..64),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let sig = exact_from(&input);
        prop_assert!(sig.matches(&input));
        let mut mutant = input.clone();
        let at = pos % mutant.len();
        mutant[at] ^= 1 << bit;
        prop_assert!(!sig.matches(&mutant));
    }

    /// A taint-derived substring signature is insensitive to mutations
    /// outside its window: flipping a byte that lies inside no
    /// occurrence of the signature bytes leaves the match intact.
    #[test]
    fn substring_signature_survives_mutations_outside_its_window(
        input in vec(any::<u8>(), 8..64),
        offsets in vec(any::<u32>(), 1..8),
        pos in any::<usize>(),
    ) {
        let Some(sig) = substring_from_taint(&input, &offsets, 4) else {
            // All offsets out of range: nothing to derive, nothing to check.
            return Ok(());
        };
        prop_assert!(sig.matches(&input), "signature must match its own input");
        let Signature::Substring(window) = &sig else {
            prop_assert!(false, "taint derivation yields Substring");
            return Ok(());
        };
        // Pick a mutation site covered by no occurrence of the window.
        let occs = occurrences(&input, window);
        let covered = |i: usize| occs.iter().any(|&o| i >= o && i < o + window.len());
        let free: Vec<usize> = (0..input.len()).filter(|&i| !covered(i)).collect();
        if free.is_empty() {
            return Ok(()); // window spans the whole input; outside is empty.
        }
        let at = free[pos % free.len()];
        let mut mutant = input.clone();
        mutant[at] ^= 0xff;
        prop_assert!(
            sig.matches(&mutant),
            "mutation at {at} outside window {window:02x?} must not evade"
        );
    }

    /// TokenSeq matching is ordered: tokens present but in the wrong
    /// order do not match. (Disjoint alphabets per region rule out
    /// accidental occurrences.)
    #[test]
    fn token_seq_matching_is_ordered(
        t1 in vec(b'A'..b'M', 2..6),
        t2 in vec(b'N'..b'Z', 2..6),
        pre in vec(b'a'..=b'z', 0..8),
        mid in vec(b'a'..=b'z', 1..8),
        post in vec(b'a'..=b'z', 0..8),
    ) {
        let sig = Signature::TokenSeq(vec![t1.clone(), t2.clone()]);
        let in_order: Vec<u8> =
            [&pre[..], &t1, &mid, &t2, &post].concat();
        let reversed: Vec<u8> =
            [&pre[..], &t2, &mid, &t1, &post].concat();
        prop_assert!(sig.matches(&in_order));
        prop_assert!(!sig.matches(&reversed));
    }

    /// `tokens_from_samples` output (when derivable) matches every
    /// sample it was derived from.
    #[test]
    fn derived_token_seq_matches_all_its_samples(
        core in vec(b'A'..=b'Z', 6..16),
        w1 in vec(b'a'..=b'z', 0..10),
        w2 in vec(b'a'..=b'z', 0..10),
        w3 in vec(b'a'..=b'z', 0..10),
        w4 in vec(b'a'..=b'z', 0..10),
    ) {
        let s1: Vec<u8> = [&w1[..], &core, &w2].concat();
        let s2: Vec<u8> = [&w3[..], &core, &w4].concat();
        if let Some(sig) = tokens_from_samples(&[&s1, &s2], 4) {
            prop_assert!(sig.matches(&s1), "must match sample 1");
            prop_assert!(sig.matches(&s2), "must match sample 2");
        }
    }
}

/// Drive one guest through an attack (deploying its real antibody),
/// then assert the whole benign workload corpus is still served.
fn benign_corpus_survives(target: Target, workload_seed: u64) {
    let (app, exploit) = match target {
        Target::Apache1 => {
            let a = httpd1::app().expect("httpd1");
            let e = httpd1::exploit_crash(&a);
            (a, e.input)
        }
        Target::Apache2 => {
            let a = httpd2::app().expect("httpd2");
            let e = httpd2::exploit_crash(&a);
            (a, e.input)
        }
        Target::Cvs => {
            let a = cvs::app().expect("cvs");
            let e = cvs::exploit_crash(&a);
            (a, e.input)
        }
        Target::Squid => {
            let a = squid::app().expect("squid");
            let e = squid::exploit_crash(&a);
            (a, e.input)
        }
    };
    let mut s = Sweeper::protect(&app, Config::producer(0x5eed ^ workload_seed)).expect("protect");
    let out = s.offer_request(exploit);
    assert!(
        matches!(out, RequestOutcome::Attack(_)),
        "{target:?}: exploit must be detected"
    );
    assert!(s.deployed_vsefs() > 0, "{target:?}: VSEF must deploy");
    assert!(
        !s.signatures.is_empty(),
        "{target:?}: signature must deploy"
    );
    let corpus = Workload::new(target, workload_seed).batch(12);
    for (i, req) in corpus.into_iter().enumerate() {
        let out = s.offer_request(req);
        assert!(
            matches!(out, RequestOutcome::Served { .. }),
            "{target:?}: benign request {i} (workload seed {workload_seed:#x}) \
             not served after antibody deployment: {out:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Zero false positives: for every guest, deployed VSEFs and
    /// signatures accept the benign workload corpus.
    #[test]
    fn deployed_filters_accept_benign_corpus_for_every_guest(seed in any::<u64>()) {
        for target in [Target::Apache1, Target::Apache2, Target::Cvs, Target::Squid] {
            benign_corpus_survives(target, seed);
        }
    }
}
