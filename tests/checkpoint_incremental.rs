//! Property tests for the incremental checkpoint engine (PR 7).
//!
//! A multi-page striding-writer guest is driven through random
//! interleavings of bounded `Machine::run` bursts, host page patches,
//! snapshot takes, pre-copy drains, ring evictions, and rollbacks,
//! under the **differential** engine — every snapshot keeps both the
//! base+delta representation and a full clone, and every materialize
//! rebuilds the former and compares it page-by-page against the
//! latter. After **every** operation, every retained checkpoint must
//! still materialize, twice, bit-identically, with zero parity
//! mismatches and zero materialize failures. Any divergence means the
//! delta chain dropped a dirty page, the dedupe store returned the
//! wrong content for a key, or the drain folded a stale generation.
//!
//! Two deterministic companions pin the fail-closed paths the chaos
//! harness relies on: a truncated delta chain and an evicted dedupe
//! slot must turn materialization into `None` (counted as a
//! materialize failure, degrading to a restart) — never into a
//! silently wrong machine.

use proptest::collection::vec;
use proptest::prelude::*;
use sweeper_repro::checkpoint::{mem_digest, CheckpointManager, Engine};
use sweeper_repro::svm::asm::assemble;
use sweeper_repro::svm::loader::Aslr;
use sweeper_repro::svm::{Machine, NopHook};

/// A writer that strides across eight 4 KiB pages forever, so every few
/// hundred cycles dirties a different page: checkpoints taken at random
/// points see genuinely different dirty sets, and a delta chain that
/// loses any one page changes the image digest.
const STRIDING_WRITER: &str = "
.text
main:
    movi r2, 0           ; monotonically changing value
outer:
    movi r1, buf         ; page cursor
    movi r5, 8           ; pages per sweep
sweep:
    st [r1, 0], r2       ; dirty the page under the cursor
    ld r6, [r1, 0]       ; read it back (keeps the page hot)
    movi r4, 4096
    add r1, r1, r4
    addi r2, r2, 1
    subi r5, r5, 1
    cmpi r5, 0
    jnz sweep
    jmp outer
.data
buf: .space 32768
";

/// One host-side action in the interleaving.
#[derive(Debug, Clone)]
enum HostOp {
    /// Run the guest for this many virtual cycles.
    Run(u32),
    /// Host-patch 8 bytes into one of the buffer's pages.
    Patch { page: u8, val: u8 },
    /// Take a snapshot (base + delta under the differential engine).
    Take,
    /// Pre-copy drain: fold dirty pages into the pending delta.
    Drain,
    /// Evict the oldest retained checkpoint (memory pressure).
    Evict,
    /// Roll back to a retained checkpoint selected by this value.
    Rollback(u64),
}

fn arb_op() -> impl Strategy<Value = HostOp> {
    prop_oneof![
        (50u32..2_000).prop_map(HostOp::Run),
        (0u8..8, any::<u8>()).prop_map(|(page, val)| HostOp::Patch { page, val }),
        Just(HostOp::Take),
        Just(HostOp::Drain),
        Just(HostOp::Evict),
        any::<u64>().prop_map(HostOp::Rollback),
    ]
}

/// The identity of a materialized machine, for round-trip comparison.
fn fingerprint(m: &Machine) -> (u64, u32, u64, u64) {
    (
        mem_digest(&m.mem),
        m.cpu.pc,
        m.insns_retired,
        m.clock.cycles(),
    )
}

struct Leg {
    m: Machine,
    mgr: CheckpointManager,
}

impl Leg {
    fn boot(engine: Engine) -> Leg {
        let prog = assemble(STRIDING_WRITER).expect("asm");
        let m = Machine::boot(&prog, Aslr::off()).expect("boot");
        Leg {
            m,
            // Interval u64::MAX: the schedule, not the clock, decides
            // when snapshots happen.
            mgr: CheckpointManager::new(u64::MAX, 4).with_engine(engine),
        }
    }

    fn apply(&mut self, op: &HostOp) {
        match op {
            HostOp::Run(cycles) => {
                self.m.run(&mut NopHook, u64::from(*cycles));
            }
            HostOp::Patch { page, val } => {
                let buf = self.m.symbols.addr_of("buf").expect("buf");
                let addr = buf + u32::from(*page) * 4096;
                self.m
                    .mem
                    .write_bytes_host(addr, &[*val; 8])
                    .expect("patch");
            }
            HostOp::Take => {
                self.mgr.take(&mut self.m);
            }
            HostOp::Drain => {
                self.mgr.drain(&self.m);
            }
            HostOp::Evict => {
                self.mgr.evict_oldest();
            }
            HostOp::Rollback(sel) => {
                let ids: Vec<_> = self.mgr.ids().collect();
                if ids.is_empty() {
                    return;
                }
                let id = ids[(*sel as usize) % ids.len()];
                if let Some(rolled) = self.mgr.rollback(id) {
                    self.m = rolled;
                    // Mirror the runtime (runtime.rs, recovery): the
                    // pre-rollback drain set is discarded — its pages
                    // were recorded under generations the rewound
                    // machine will re-reach with different bytes — and
                    // a fresh snapshot of the recovered state is taken
                    // before any new writes, rebuilding the cumulative
                    // table from the live image so later generations
                    // can never collide with pre-rollback entries.
                    self.mgr.discard_pending();
                    self.mgr.take(&mut self.m);
                }
            }
        }
    }

    /// The invariant checked after every operation: every retained
    /// snapshot materializes (twice, identically), and the differential
    /// engine saw no incremental/full divergence and no damage.
    fn check(&self) -> Result<(), TestCaseError> {
        for id in self.mgr.ids().collect::<Vec<_>>() {
            let a = self.mgr.materialize(id);
            prop_assert!(a.is_some(), "undamaged {id:?} failed to materialize");
            let b = self.mgr.materialize(id).expect("second rebuild");
            prop_assert_eq!(
                fingerprint(&a.expect("first rebuild")),
                fingerprint(&b),
                "double materialize of {:?} diverged",
                id
            );
        }
        prop_assert_eq!(
            self.mgr.parity_mismatches(),
            0,
            "incremental image diverged from the full-copy oracle"
        );
        prop_assert_eq!(
            self.mgr.materialize_failures(),
            0,
            "materialization failed without injected damage"
        );
        Ok(())
    }
}

proptest! {
    // 16 cases: the parity property checks every retained snapshot
    // (twice) after every op under the differential engine, so each
    // case already performs hundreds of oracle-compared rebuilds.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of runs, patches, takes, drains, evictions,
    /// and rollbacks keep the incremental engine bit-identical to the
    /// full-copy oracle after every single operation.
    #[test]
    fn interleaved_schedules_keep_engine_parity(
        ops in vec(arb_op(), 1..18),
    ) {
        let mut leg = Leg::boot(Engine::Differential);
        leg.mgr.take(&mut leg.m); // base snapshot, like the runtime
        for (i, op) in ops.iter().enumerate() {
            leg.apply(op);
            leg.check().map_err(|e| {
                TestCaseError::fail(format!("after op {i} = {op:?}: {e:?}"))
            })?;
        }
    }

    /// A snapshot taken at any point reproduces the live machine it
    /// captured, exactly — under the pure incremental engine, with no
    /// oracle to lean on.
    #[test]
    fn latest_snapshot_reproduces_the_live_machine(
        ops in vec(arb_op(), 1..18),
    ) {
        let mut leg = Leg::boot(Engine::Incremental);
        leg.mgr.take(&mut leg.m);
        for op in &ops {
            leg.apply(op);
            if matches!(op, HostOp::Take) {
                let id = leg.mgr.ids().last().expect("just taken");
                let rebuilt = leg.mgr.materialize(id).expect("materialize");
                prop_assert_eq!(
                    fingerprint(&rebuilt),
                    fingerprint(&leg.m),
                    "snapshot does not reproduce the machine it captured"
                );
            }
        }
        prop_assert_eq!(leg.mgr.materialize_failures(), 0);
    }
}

/// Regression (stale-delta leak across rollback): a pre-copy drain
/// taken *before* a rollback must not be folded into the delta captured
/// *after* it. The drain records `(page, generation)` pairs; rollback
/// rewinds `write_seq`, so the replayed execution re-reaches the very
/// same generation numbers with different bytes. Pre-fix, the next
/// `take` saw a matching generation in the pending set and reused the
/// stale pre-rollback page content, so the snapshot's image digest
/// (computed from the live machine) could never match what
/// materialization rebuilds — a spurious fail-closed materialize
/// failure that degraded perfectly good rollback-replay recoveries to
/// restarts. The runtime now calls `discard_pending` between rollback
/// and the post-recovery snapshot; this test drives that exact
/// sequence at the manager level.
#[test]
fn pending_drain_does_not_leak_across_rollback() {
    let mut leg = Leg::boot(Engine::Incremental);
    let buf = leg.m.symbols.addr_of("buf").expect("buf");
    let base = leg.mgr.take(&mut leg.m);
    // Dirty one page and drain it: the pending set now holds the page
    // under the current write generation, content [1; 8].
    leg.m.mem.write_bytes_host(buf, &[1u8; 8]).expect("patch");
    assert_eq!(leg.mgr.drain(&leg.m), 1, "the patched page drains");
    // Roll back to the base: write_seq rewinds past the drained
    // generation.
    let rolled = leg.mgr.rollback(base).expect("base materializes");
    leg.m = rolled;
    // The replayed execution re-reaches the drained generation — same
    // (page, generation) pair, different bytes.
    leg.m.mem.write_bytes_host(buf, &[2u8; 8]).expect("patch");
    // The runtime's post-recovery sequence: discard the stale drain
    // set, then snapshot the recovered state. (Pre-fix there was no
    // discard, the stale [1; 8] page was captured under the matching
    // generation, and the assertions below failed.)
    leg.mgr.discard_pending();
    let id = leg.mgr.take(&mut leg.m);
    let rebuilt = leg.mgr.materialize(id);
    assert!(
        rebuilt.is_some(),
        "post-rollback snapshot must materialize (stale drained page leaked into the delta)"
    );
    assert_eq!(
        fingerprint(&rebuilt.expect("checked")),
        fingerprint(&leg.m),
        "snapshot must reproduce the live post-rollback machine"
    );
    assert_eq!(leg.mgr.materialize_failures(), 0, "no fail-closed damage");
}

/// A truncated delta chain must fail closed: the damaged snapshot
/// refuses to materialize (degrading to a restart) rather than handing
/// back a machine missing a page — and the damage stays contained to
/// the truncated record; older snapshots still round-trip.
#[test]
fn truncated_delta_chain_fails_closed() {
    let mut leg = Leg::boot(Engine::Incremental);
    leg.m.run(&mut NopHook, 3_000); // dirty several pages
    let base = leg.mgr.take(&mut leg.m);
    leg.m.run(&mut NopHook, 3_000); // advance the dirty set
    let latest = leg.mgr.take(&mut leg.m);
    assert!(
        leg.mgr.chaos_truncate_latest_delta(2) > 0,
        "the delta chain had pages to drop"
    );
    assert!(
        leg.mgr.materialize(latest).is_none(),
        "truncated snapshot must not materialize"
    );
    assert!(leg.mgr.materialize_failures() > 0, "failure was counted");
    assert_eq!(leg.mgr.parity_mismatches(), 0, "fail closed, not wrong");
    assert!(
        leg.mgr.materialize(base).is_some(),
        "damage is contained to the truncated record"
    );
}

/// The dedupe-store eviction race must fail closed the same way: once
/// every slot a snapshot references is gone, materialization returns
/// `None` for every retained checkpoint — never a partial image.
#[test]
fn dedupe_store_eviction_fails_closed() {
    let mut leg = Leg::boot(Engine::Differential);
    leg.m.run(&mut NopHook, 3_000);
    leg.mgr.take(&mut leg.m);
    leg.m.run(&mut NopHook, 3_000);
    leg.mgr.take(&mut leg.m);
    assert!(leg.mgr.store_pages() > 0, "snapshots hold store pages");
    while leg.mgr.chaos_evict_store_page() {}
    for id in leg.mgr.ids().collect::<Vec<_>>() {
        assert!(
            leg.mgr.materialize(id).is_none(),
            "{id:?} materialized from an emptied store"
        );
    }
    assert!(leg.mgr.materialize_failures() > 0, "failures were counted");
    assert_eq!(
        leg.mgr.parity_mismatches(),
        0,
        "fail closed is not a parity mismatch"
    );
}
