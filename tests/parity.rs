//! Serial vs sharded community-engine parity.
//!
//! The §6 community simulation must produce **bit-identical** infection
//! and containment curves for a fixed seed regardless of how many
//! shards/threads it runs on. This is the contract that makes the
//! parallel engine trustworthy: `K` is a pure performance knob.

use sweeper_repro::epidemic::community::{run, CommunityEngine, CommunityParams};
use sweeper_repro::epidemic::{DistNetParams, FailContParams, Parallelism, Scenario};

/// The comparable core of an outcome (timing counters excluded).
fn essence(p: &CommunityParams) -> (Option<u64>, u64, Vec<u64>, u64) {
    let o = run(p);
    (o.t0_tick, o.infected, o.curve, o.ticks)
}

#[test]
fn sharded_runs_match_serial_for_all_seeds_and_shard_counts() {
    for seed in [1u64, 2, 3] {
        // Dense hot-start population: crosses the engine's inline
        // threshold, so K > 1 genuinely runs on worker threads.
        let base = CommunityParams {
            hosts: 30_000,
            alpha: 0.004,
            rho: 1.0,
            gamma_ticks: 12,
            attempts_per_tick: 2,
            attempt_prob: 1.0,
            i0: 9_000,
            max_ticks: 4_000,
            seed,
            parallelism: Parallelism::Fixed(1),
            engine: CommunityEngine::default(),
            distnet: DistNetParams::disabled(),
            failcont: FailContParams::disabled(),
        };
        let serial = essence(&base);
        assert!(serial.1 > 9_000, "seed {seed}: the outbreak must spread");
        for k in [2usize, 4, 8] {
            let sharded = essence(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                ..base
            });
            assert_eq!(serial, sharded, "seed {seed}, k={k}");
        }
    }
}

#[test]
fn parity_holds_for_paper_scenarios_with_fractional_attempts() {
    // Slammer-style slow worm (β·Δt < 1) exercises the fractional
    // attempt-probability path on top of the sharded merge.
    for seed in [1u64, 2, 3] {
        let scenario = Scenario {
            n: 4_000.0,
            ..Scenario::slammer(0.002, 20.0)
        };
        let base = CommunityParams::from_scenario(&scenario, 1.0, seed, Parallelism::Fixed(1));
        let serial = essence(&base);
        for k in [2usize, 4, 8] {
            let sharded = essence(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                ..base
            });
            assert_eq!(serial, sharded, "seed {seed}, k={k}");
        }
    }
}

#[test]
fn auto_parallelism_matches_the_serial_legacy_path() {
    let base = CommunityParams {
        hosts: 5_000,
        alpha: 0.01,
        rho: 1.0,
        gamma_ticks: 20,
        attempts_per_tick: 1,
        attempt_prob: 1.0,
        i0: 1,
        max_ticks: 4_000,
        seed: 7,
        parallelism: Parallelism::Fixed(1),
        engine: CommunityEngine::default(),
        distnet: DistNetParams::disabled(),
        failcont: FailContParams::disabled(),
    };
    let serial = essence(&base);
    let auto = essence(&CommunityParams {
        parallelism: Parallelism::Auto,
        ..base
    });
    assert_eq!(serial, auto);
}
