//! Cross-tool consistency: the paper's verification argument, tested as
//! a property. Dynamic taint analysis tracks *value* flows; backward
//! slicing tracks value, pointer, and control flows. Therefore on any
//! execution, the input bytes taint implicates at a sink must be a
//! subset of the input dependencies of the slice from that sink — if a
//! taint result fell outside the slice, one of the tools would be wrong
//! (paper §2.2: "if they identify an issue which is not in the slice,
//! then they are incorrect").

use proptest::prelude::*;
use sweeper_repro::analysis::{backward_slice, TaintTool};
use sweeper_repro::dbi::{Instrumenter, TraceRecorder};
use sweeper_repro::svm::asm::assemble;
use sweeper_repro::svm::loader::Aslr;
use sweeper_repro::svm::Machine;

/// Build a random straight-line dataflow program: reads 8 input bytes,
/// then performs `ops` random moves/loads/stores/arithmetic over a small
/// register window and a scratch buffer, then uses r7 as an indirect
/// call target (the sink).
fn random_program(choices: &[u8]) -> String {
    let mut body = String::new();
    for (i, c) in choices.iter().enumerate() {
        let r1 = 1 + (c % 5); // r1..r5
        let r2 = 1 + ((c / 5) % 5);
        let off = (c % 8) as u32;
        match (c / 25) % 5 {
            0 => body.push_str(&format!("    ldb r{r1}, [r9, {off}]\n")),
            1 => body.push_str(&format!("    stb [r8, {off}], r{r1}\n")),
            2 => body.push_str(&format!("    add r{r1}, r{r1}, r{r2}\n")),
            3 => body.push_str(&format!("    mov r{r1}, r{r2}\n")),
            4 => body.push_str(&format!("    ldb r{r1}, [r8, {off}]\n")),
            _ => unreachable!(),
        }
        if i == choices.len() / 2 {
            // Mid-program: fold some state into the future sink value.
            body.push_str("    add r7, r7, r1\n");
        }
    }
    format!(
        "
.text
main:
    sys accept
    mov r10, r0
    movi r1, input
    movi r2, 8
    sys read
    movi r9, input     ; input base
    movi r8, scratch   ; scratch base
    movi r7, 0
{body}
    callr r7           ; the sink (wild by construction)
    halt
.data
input: .space 8
scratch: .space 8
"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn taint_sources_are_within_slice_input_deps(
        choices in proptest::collection::vec(any::<u8>(), 4..24),
        input in proptest::collection::vec(1u8..255, 8),
    ) {
        let src = random_program(&choices);
        let prog = assemble(&src).expect("random program assembles");

        // Run once with taint, once with tracing (deterministic VM: the
        // two replays see identical executions).
        let run = |tool: Box<dyn sweeper_repro::dbi::Tool>| -> (Machine, Instrumenter, sweeper_repro::dbi::ToolId) {
            let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
            m.net.push_connection(input.clone());
            let mut ins = Instrumenter::new();
            let id = ins.attach(tool);
            m.run(&mut ins, 100_000_000);
            (m, ins, id)
        };
        let (_m1, ins1, taint_id) = run(Box::new(TaintTool::new()));
        let (_m2, ins2, trace_id) = run(Box::new(TraceRecorder::new()));
        let taint = ins1.get::<TaintTool>(taint_id).expect("taint");
        let trace = ins2.get::<TraceRecorder>(trace_id).expect("trace");
        prop_assume!(!trace.is_empty());

        // Slice from the sink (the callr is the last executed entry —
        // the wild call faults immediately after).
        let crit = trace.len() - 1;
        let slice = backward_slice(trace, crit, true);

        // Property: every input byte taint blames at the sink is among
        // the slice's input dependencies.
        if let Some(alert) = taint.alerts().first() {
            for (conn, off) in &alert.sources {
                prop_assert!(
                    slice.input_deps.contains(&(*conn, *off)),
                    "taint blames input ({conn},{off}) but the slice does not: slice deps {:?}",
                    slice.input_deps
                );
            }
        }
    }
}

#[test]
fn slice_catches_control_dependence_that_taint_misses() {
    // The paper's §3.2 example, end to end: z's value depends on which
    // branch ran; taint sees no value flow, slicing (with control deps)
    // reaches the input byte steering the branch.
    let src = "
.text
main:
    sys accept
    movi r1, input
    movi r2, 4
    sys read
    movi r1, input
    ldb r3, [r1, 0]    ; w = input[0]
    cmpi r3, 0x61
    jz take_a
    movi r5, 111
    jmp done
take_a:
    movi r5, 222
done:
    mov r6, r5         ; z = x
    halt
.data
input: .space 4
";
    let prog = assemble(src).expect("asm");
    let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
    m.net.push_connection(b"aXXX".to_vec());
    let mut ins = Instrumenter::new();
    let taint_id = ins.attach(Box::new(TaintTool::new()));
    let trace_id = ins.attach(Box::new(TraceRecorder::new()));
    m.run(&mut ins, 100_000_000);
    let taint = ins.get::<TaintTool>(taint_id).expect("taint");
    let trace = ins.get::<TraceRecorder>(trace_id).expect("trace");
    // Taint: r6 is untainted (constant 222 moved through registers).
    assert!(
        taint.taint_of_reg(6).is_empty(),
        "taint misses control deps by design"
    );
    // Slice from the final mov: with control deps it reaches input[0].
    let crit = trace.len() - 2; // mov r6, r5 (last is halt)
    let with_ctrl = backward_slice(trace, crit, true);
    assert!(
        with_ctrl.input_deps.contains(&(0, 0)),
        "{:?}",
        with_ctrl.input_deps
    );
    let without_ctrl = backward_slice(trace, crit, false);
    assert!(
        !without_ctrl.input_deps.contains(&(0, 0)),
        "pure data slice must not"
    );
}
