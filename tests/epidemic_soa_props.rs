//! Property tests for the struct-of-arrays community engine (PR 9).
//!
//! The SoA backend (`epidemic::soa`) replaces the legacy dense per-tick
//! scan with a bitset plus an active-host queue, and the contract is
//! absolute: over *any* configuration — shard count, wire faults,
//! Byzantine producers, degraded-host throttling, the failure
//! estimator — both engines must produce **bit-equal** outcome digests
//! and metric registries, because they consume the identical
//! counter-based RNG stream and the coordinator's canonical inbox sort
//! erases enumeration order. The differential engine re-checks the same
//! thing field-by-field in-process (`epidemic.soa_parity_mismatches`).
//!
//! A pinned regression at the bottom nails the zero-fault anchor under
//! the SoA engine to values captured on the pre-PR-9 dense engine, so a
//! silent engine-wide drift cannot hide behind self-consistent parity.

use chaos::digest_community;
use proptest::prelude::*;
use sweeper_repro::epidemic::community::{run, CommunityEngine, CommunityOutcome, CommunityParams};
use sweeper_repro::epidemic::{DistNetParams, FailContParams, Parallelism};

/// Deterministic counters plus the non-wall gauges of a run, as one
/// comparable value. Wall-clock gauges legitimately differ between two
/// executions; everything else must not.
type NamedCounts = Vec<(String, u64)>;

fn registry_essence(o: &CommunityOutcome) -> (NamedCounts, NamedCounts) {
    let m = o.metrics();
    let counters = m
        .counters()
        .map(|(n, v)| (n.to_string(), v))
        .collect::<Vec<_>>();
    let gauges = m
        .gauges()
        .filter(|(n, _)| !n.contains("wall"))
        .map(|(n, v)| (n.to_string(), v.to_bits()))
        .collect::<Vec<_>>();
    (counters, gauges)
}

/// FNV-1a over a curve, for compact pinning of long outcomes.
fn curve_fnv(curve: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in curve {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Over random configurations (hosts ≤ 20k, K ∈ {1, 4}, wire loss /
    /// Byzantine / throttle knobs, the failure estimator on half the
    /// cases), the SoA and legacy engines are bit-identical: same
    /// outcome digest, same counters, same non-wall gauges — and the
    /// in-process differential oracle agrees (zero mismatches).
    #[test]
    fn soa_and_legacy_engines_are_bit_identical(
        hosts in 500u64..=20_000,
        alpha_pm in 0u32..=80,
        rho_pct in 20u32..=100,
        gamma in 0u64..=12,
        seed in 1u64..5_000,
        wire in any::<bool>(),
        loss_pct in 0u32..50,
        byz_sel in 0u32..3,
        throttle_pct in 0u32..=50,
        failcont in any::<bool>(),
    ) {
        let distnet = if wire {
            DistNetParams {
                throttle: f64::from(throttle_pct) / 100.0,
                ..DistNetParams::lossy(
                    f64::from(loss_pct) / 100.0,
                    f64::from(byz_sel * 20) / 100.0,
                )
            }
        } else {
            DistNetParams::disabled()
        };
        let base = CommunityParams {
            hosts,
            alpha: f64::from(alpha_pm) / 1_000.0,
            rho: f64::from(rho_pct) / 100.0,
            gamma_ticks: gamma,
            attempts_per_tick: 1,
            attempt_prob: 1.0,
            i0: 1,
            max_ticks: 400,
            seed,
            parallelism: Parallelism::Fixed(1),
            engine: CommunityEngine::Legacy,
            distnet,
            failcont: if failcont {
                FailContParams::standard()
            } else {
                FailContParams::disabled()
            },
        };
        for k in [1usize, 4] {
            let legacy = run(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                engine: CommunityEngine::Legacy,
                ..base
            });
            let soa = run(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                engine: CommunityEngine::Soa,
                ..base
            });
            prop_assert_eq!(
                digest_community(&legacy),
                digest_community(&soa),
                "outcome digest diverged at K={}",
                k
            );
            prop_assert_eq!(
                registry_essence(&legacy),
                registry_essence(&soa),
                "metric registries diverged at K={}",
                k
            );
            let diff = run(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                engine: CommunityEngine::Differential,
                ..base
            });
            prop_assert_eq!(diff.soa_parity_mismatches, Some(0));
            // The differential leg returns the SoA outcome (plus its
            // parity counter, so compare the epidemic essence, not the
            // registry-bearing digest).
            prop_assert_eq!(
                (diff.t0_tick, diff.infected, &diff.curve, diff.ticks),
                (soa.t0_tick, soa.infected, &soa.curve, soa.ticks),
                "differential leg must return the SoA outcome at K={}",
                k
            );
        }
    }
}

/// The zero-fault anchor, pinned under the SoA engine: exact values
/// captured on the pre-PR-9 dense engine. Parity alone cannot catch a
/// drift that moves *both* backends; this does.
#[test]
fn zero_fault_anchor_is_pinned_under_the_soa_engine() {
    let base = CommunityParams {
        hosts: 2_000,
        alpha: 0.05,
        rho: 0.5,
        gamma_ticks: 4,
        attempts_per_tick: 1,
        attempt_prob: 1.0,
        i0: 1,
        max_ticks: 5_000,
        seed: 42,
        parallelism: Parallelism::Fixed(2),
        engine: CommunityEngine::Soa,
        distnet: DistNetParams::ideal(),
        failcont: FailContParams::disabled(),
    };
    let ideal = run(&base);
    let d = ideal.dist.as_ref().expect("ideal wire activates");
    assert_eq!(
        (ideal.t0_tick, ideal.infected, ideal.ticks, d.protected),
        (Some(4), 35, 8, 1_900),
        "pinned ideal-wire outcome moved"
    );
    assert_eq!(curve_fnv(&ideal.curve), 0x7445_d04f_2455_a20a);

    // The anchor itself: the legacy instantaneous-γ clock (distnet
    // off) reproduces the same epidemic core bit-identically.
    let clock = run(&CommunityParams {
        distnet: DistNetParams::disabled(),
        ..base
    });
    assert_eq!(
        (clock.t0_tick, clock.infected, clock.ticks),
        (ideal.t0_tick, ideal.infected, ideal.ticks)
    );
    assert_eq!(clock.curve, ideal.curve);
}
