//! `obs` — the workspace-wide metrics and tracing layer.
//!
//! Sweeper's headline claims are *measurements*: Table 3 analysis
//! latencies, Figure 4 checkpoint overhead, §5.3 VSEF overhead. This
//! crate gives every layer of the repro one uniform, deterministic way
//! to expose those numbers instead of ad-hoc counters scattered across
//! crates:
//!
//! * **Counters** — monotone `u64` event counts (`svm.insns_retired`,
//!   `checkpoint.pages_copied`, `epidemic.antibodies_applied`, ...).
//! * **Gauges** — point-in-time `f64` readings (`checkpoint.ring_occupancy`,
//!   per-shard wall-clock phase times, ...).
//! * **Spans** — named `[start, end)` intervals stamped on the
//!   **virtual clock** (model cycles), with an optional wall-clock
//!   mirror in nanoseconds. The sweeper analysis pipeline records one
//!   span per phase, and Table 3 is now *read off those spans* rather
//!   than re-derived from the event log.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** All keys live in `BTreeMap`s, spans are recorded
//!    in program order, and nothing here ever reads the wall clock into
//!    a value that feeds back into simulation state. Merging per-shard
//!    registries in shard order yields identical counters at any
//!    parallelism level.
//! 2. **Allocation-light hot paths.** The VM interpreter loop and the
//!    community tick loop never touch a registry; they keep their
//!    existing plain `u64` fields and *export* into a registry at
//!    report points (`export_metrics`). No atomics anywhere.
//! 3. **Zero model-visible overhead.** Recording metrics never ticks
//!    the virtual clock, so the decode-cache and serial/parallel
//!    community parity suites remain bit-identical with metrics on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One named `[start, end)` interval on the virtual clock, with a
/// wall-clock mirror.
///
/// `start_cycles`/`end_cycles` are model cycles (2.4 GHz virtual
/// clock); `wall_nanos` is the measured host-side duration of the same
/// region, or 0 when no wall mirror was taken (e.g. spans reconstructed
/// from the event log).
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Dotted span name, e.g. `pipeline.memory_bug`.
    pub name: String,
    /// Virtual-clock stamp at span open (model cycles).
    pub start_cycles: u64,
    /// Virtual-clock stamp at span close (model cycles).
    pub end_cycles: u64,
    /// Wall-clock mirror of the span body in nanoseconds (0 = not measured).
    pub wall_nanos: u64,
}

impl Span {
    /// Span length on the virtual clock, in model cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycles.saturating_sub(self.start_cycles)
    }

    /// Span length in virtual milliseconds at the 2.4 GHz clock model.
    ///
    /// Computed as `(cycles / 2.4e9) * 1e3` — the *same operation
    /// order* as `svm::clock::cycles_to_secs(c) * 1e3` — so span-derived
    /// latencies are bit-identical to the inline Table 3 accounting
    /// (`obs` sits below `svm` and cannot call it directly; a fused
    /// single division differs in the last ulp).
    pub fn ms(&self) -> f64 {
        (self.cycles() as f64 / 2_400_000_000.0) * 1e3
    }
}

/// An open span: holds the virtual start stamp and a wall-clock anchor.
///
/// Obtain one from [`MetricsRegistry::start_span`], finish it with
/// [`MetricsRegistry::end_span`]. The timer itself is inert — dropping
/// it records nothing, so abandoned spans cost nothing.
#[derive(Debug)]
pub struct SpanTimer {
    name: String,
    start_cycles: u64,
    wall_start: Instant,
}

/// Deterministic container for counters, gauges and spans.
///
/// Cheap to create, `Clone` + `PartialEq` so tests can diff two
/// registries structurally, and mergeable so sharded engines can
/// combine per-shard registries into one deterministic whole.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: Vec<Span>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named counter (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Overwrite the named counter with an absolute value.
    ///
    /// Use for counters mirrored from an external monotone source
    /// (e.g. `Machine::insns_retired`), where repeated exports must not
    /// double-count.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge to a point-in-time reading.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read a gauge (`None` when absent).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Open a span at the given virtual-clock stamp.
    pub fn start_span(&self, name: &str, now_cycles: u64) -> SpanTimer {
        SpanTimer {
            name: name.to_string(),
            start_cycles: now_cycles,
            wall_start: Instant::now(),
        }
    }

    /// Close a span at the given virtual-clock stamp and record it.
    pub fn end_span(&mut self, timer: SpanTimer, now_cycles: u64) {
        let wall = timer.wall_start.elapsed().as_nanos() as u64;
        self.spans.push(Span {
            name: timer.name,
            start_cycles: timer.start_cycles,
            end_cycles: now_cycles,
            wall_nanos: wall,
        });
    }

    /// Close a span with an explicit virtual start stamp, keeping the
    /// timer's wall mirror.
    ///
    /// Used when a phase's *virtual* extent is only known at close time
    /// — e.g. the taint phase of the analysis pipeline, whose charged
    /// cycles exclude an interleaved antibody-release advance — while
    /// the wall mirror should still cover the whole timed region.
    pub fn end_span_at(&mut self, timer: SpanTimer, start_cycles: u64, end_cycles: u64) {
        let wall = timer.wall_start.elapsed().as_nanos() as u64;
        self.spans.push(Span {
            name: timer.name,
            start_cycles,
            end_cycles,
            wall_nanos: wall,
        });
    }

    /// Record a closed span directly from two virtual stamps (no wall
    /// mirror). Used when the region's endpoints are known after the
    /// fact, e.g. when reconstructing phases from an event log.
    pub fn record_span(&mut self, name: &str, start_cycles: u64, end_cycles: u64) {
        self.spans.push(Span {
            name: name.to_string(),
            start_cycles,
            end_cycles,
            wall_nanos: 0,
        });
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All spans with the given name, in recording order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The most recently recorded span with the given name.
    pub fn last_span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().rev().find(|s| s.name == name)
    }

    /// Iterate counters in sorted (deterministic) key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate gauges in sorted (deterministic) key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    /// Merge `other` into `self`: counters add, gauges overwrite (last
    /// writer wins), spans append in `other`'s order.
    ///
    /// Algebraically (and property-tested in `tests/obs_props.rs`):
    ///
    /// * **Counters** form a commutative monoid — merge is associative
    ///   *and* order-insensitive, so any shard fold order yields the
    ///   same counter map.
    /// * **Gauges** are *intentionally* order-sensitive: a gauge is a
    ///   point-in-time reading, so when several shards report the same
    ///   gauge, the fold keeps the **last shard's** value rather than
    ///   inventing a sum or mean. Merge is still associative — only the
    ///   fold *order* matters. Callers that fold shards must therefore
    ///   do so in a fixed order (as the sharded community engine does,
    ///   shard 0..K) for deterministic gauge output.
    /// * **Spans** append, preserving each input's recording order.
    ///
    /// Merging a fixed sequence of registries in a fixed order is fully
    /// deterministic, which is how the sharded community engine folds
    /// per-shard registries into one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Fold many registries into one, **in the order given** — the
    /// fleet aggregation primitive.
    ///
    /// Counters are a commutative monoid, so any order would yield the
    /// same sums; gauges are last-writer-wins and spans append, so the
    /// fold order *is* part of the result. Callers aggregating per-host
    /// registries must pass them in host-index order (as the fleet
    /// front-end and the sharded community engine do) for the merged
    /// registry to be bit-identical at any parallelism level.
    pub fn merge_all<'a, I>(regs: I) -> MetricsRegistry
    where
        I: IntoIterator<Item = &'a MetricsRegistry>,
    {
        let mut out = MetricsRegistry::new();
        for r in regs {
            out.merge(r);
        }
        out
    }

    /// Human-readable dump: counters, gauges, then spans, each section
    /// sorted or in recording order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<44} {v:>16}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<44} {v:>16.4}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (virtual ms; wall ms mirror):\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>12.3} ms  (wall {:>10.3} ms)",
                    s.name,
                    s.ms(),
                    s.wall_nanos as f64 / 1.0e6
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Compact JSON object (hand-rolled; the workspace is offline and
    /// carries no serde). Shape:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},
    ///  "spans":[{"name":..,"start_cycles":..,"end_cycles":..,"wall_nanos":..},..]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), json_f64(*v));
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"start_cycles\":{},\"end_cycles\":{},\"wall_nanos\":{}}}",
                json_str(&s.name),
                s.start_cycles,
                s.end_cycles,
                s.wall_nanos
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for embedding in JSON (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (finite values only; non-finite
/// readings degrade to 0 rather than emitting invalid JSON).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        r.set_counter("a.c", 10);
        r.set_counter("a.c", 7); // absolute: overwrite, not add
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("a.c"), 7);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn spans_record_virtual_durations() {
        let mut r = MetricsRegistry::new();
        let t = r.start_span("phase.x", 1_000);
        r.end_span(t, 2_400_001_000);
        let s = r.last_span("phase.x").unwrap();
        assert_eq!(s.cycles(), 2_400_000_000);
        assert!((s.ms() - 1_000.0).abs() < 1e-9);
        // record_span has no wall mirror
        r.record_span("phase.y", 0, 2_400_000);
        assert_eq!(r.last_span("phase.y").unwrap().wall_nanos, 0);
        assert!((r.last_span("phase.y").unwrap().ms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_deterministic_and_additive() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.gauge("g", 1.0);
        a.record_span("s", 0, 10);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.inc("m", 5);
        b.gauge("g", 2.0);
        b.record_span("s", 10, 30);

        let mut m1 = MetricsRegistry::new();
        m1.merge(&a);
        m1.merge(&b);
        assert_eq!(m1.counter("n"), 3);
        assert_eq!(m1.counter("m"), 5);
        assert_eq!(m1.gauge_value("g"), Some(2.0));
        assert_eq!(m1.spans().len(), 2);

        // Same inputs, same order => structurally identical result.
        let mut m2 = MetricsRegistry::new();
        m2.merge(&a);
        m2.merge(&b);
        assert_eq!(m1, m2);
    }

    #[test]
    fn merge_all_folds_in_the_given_order() {
        let mut per_host = Vec::new();
        for host in 0..4u64 {
            let mut r = MetricsRegistry::new();
            r.inc("served", host + 1);
            r.gauge("occupancy", host as f64);
            per_host.push(r);
        }
        let fleet = MetricsRegistry::merge_all(per_host.iter());
        // Counters sum across hosts...
        assert_eq!(fleet.counter("served"), 1 + 2 + 3 + 4);
        // ...and the last host in index order owns the gauges.
        assert_eq!(fleet.gauge_value("occupancy"), Some(3.0));
        // Same inputs, same order => structurally identical fold.
        assert_eq!(fleet, MetricsRegistry::merge_all(per_host.iter()));
    }

    #[test]
    fn render_and_json_are_stable() {
        let mut r = MetricsRegistry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.gauge("mid", 0.5);
        r.record_span("sp", 5, 15);
        let text = r.render();
        // BTreeMap ordering: a.first before z.last.
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z);
        let js = r.to_json();
        assert!(js.starts_with("{\"counters\":{"));
        assert!(js.contains("\"a.first\":2"));
        assert!(js.contains("\"spans\":[{\"name\":\"sp\",\"start_cycles\":5,\"end_cycles\":15"));
        assert!(js.ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = js.matches('{').count();
        let closes = js.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        let r = MetricsRegistry::new();
        assert!(r.is_empty());
        assert!(r.render().contains("no metrics recorded"));
        assert_eq!(r.to_json(), "{\"counters\":{},\"gauges\":{},\"spans\":[]}");
    }
}
