//! Antibody wire format: the bytes that actually travel between hosts.
//!
//! Paper §3.3: antibodies are *distributed* — which means a consumer
//! parses bytes that crossed an untrusted network. The encoder
//! ([`Antibody::to_bytes`]) is trivial; the decoder
//! ([`Antibody::from_bytes`]) is the security boundary: every read is
//! bounds-checked and every tag validated so that truncation or bit-flips
//! in transit produce a [`BundleError`], never a panic and never a
//! mis-typed filter. The chaos harness' antibody-bit-flip fault family
//! drives arbitrary corruption through this decoder.
//!
//! # Schema (version [`WIRE_VERSION`], all integers little-endian)
//!
//! The bundle starts with a fixed 9-byte header, followed by
//! `release_count` variable-length release records:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        = "SWAB" (0x53 0x57 0x41 0x42)
//! 4       1     version      = WIRE_VERSION (currently 1)
//! 5       4     release_count u32
//! 9       ...   release_count x release
//!
//! release:
//!   at_ms     u64   f64 bit pattern of the release virtual time (ms)
//!   item_tag  u8    0 VSEF | 1 Signature | 2 ExploitInput
//!   item_tag 0 (VSEF):    vsef_tag u8 + tag-specific fields:
//!     0 RetAddrGuard      func u32 | func_name bytes
//!     1 StoreSmashGuard   store_pc u32
//!     2 HeapBoundsCheck   store_pc u32 | has_caller u8 (0|1) [| caller u32]
//!     3 DoubleFreeGuard   free_pc u32
//!     4 HeapIntegrityGuard u32s
//!     5 NullCheck         insn_pc u32
//!     6 TaintFilter       prop_pcs u32s | sink_pc u32
//!   item_tag 1 (Sig):     sig_tag u8: 0 Exact | 1 Substring -> bytes;
//!                         2 TokenSeq -> count u32 + count x bytes
//!   item_tag 2 (Exploit): bytes
//!
//! bytes := len u32 | len raw bytes
//! u32s  := count u32 | count x u32
//! ```
//!
//! # Versioning contract
//!
//! The version byte at offset 4 is the compatibility gate. A decoder
//! MUST reject any version it does not implement with
//! [`BundleError::BadVersion`] — it must never "best-effort" parse a
//! future layout, because a mis-typed filter deployed on a consumer is
//! worse than no filter at all. Bumping [`WIRE_VERSION`] is required for
//! any change to the layout above (new tags within an existing enum are
//! also a bump: an old decoder would see them as corruption, which is
//! safe, but a new encoder must not feed them to old decoders silently).
//! Certified distribution bundles ([`crate::certify`]) carry this whole
//! buffer as an opaque payload, so their own version is independent.

use crate::bundle::{Antibody, AntibodyItem};
use crate::signature::Signature;
use crate::vsef::VsefSpec;

/// Current antibody wire-format version (byte at offset 4).
///
/// [`Antibody::to_bytes`] always emits this value and
/// [`Antibody::from_bytes`] rejects anything else with
/// [`BundleError::BadVersion`]. See the module docs for the versioning
/// contract.
pub const WIRE_VERSION: u8 = 1;

/// Why a serialized antibody failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// The buffer ends before the structure it promises.
    Truncated {
        /// Byte offset where more data was required.
        at: usize,
    },
    /// The buffer does not start with the `SWAB` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// An unknown item / vsef / signature tag (corruption).
    BadTag {
        /// Byte offset of the bad tag.
        offset: usize,
        /// The invalid tag value.
        tag: u8,
    },
    /// A function name failed UTF-8 validation (corruption).
    BadUtf8 {
        /// Byte offset of the string.
        offset: usize,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Truncated { at } => write!(f, "antibody bundle truncated at offset {at}"),
            BundleError::BadMagic => write!(f, "antibody bundle: bad magic"),
            BundleError::BadVersion(v) => write!(f, "antibody bundle: unknown version {v}"),
            BundleError::BadTag { offset, tag } => {
                write!(f, "antibody bundle: invalid tag {tag} at offset {offset}")
            }
            BundleError::BadUtf8 { offset } => {
                write!(f, "antibody bundle: invalid utf-8 at offset {offset}")
            }
        }
    }
}

impl std::error::Error for BundleError {}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn encode_vsef(out: &mut Vec<u8>, v: &VsefSpec) {
    match v {
        VsefSpec::RetAddrGuard { func, func_name } => {
            out.push(0);
            out.extend_from_slice(&func.to_le_bytes());
            put_bytes(out, func_name.as_bytes());
        }
        VsefSpec::StoreSmashGuard { store_pc } => {
            out.push(1);
            out.extend_from_slice(&store_pc.to_le_bytes());
        }
        VsefSpec::HeapBoundsCheck { store_pc, caller } => {
            out.push(2);
            out.extend_from_slice(&store_pc.to_le_bytes());
            match caller {
                Some(c) => {
                    out.push(1);
                    out.extend_from_slice(&c.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        VsefSpec::DoubleFreeGuard { free_pc } => {
            out.push(3);
            out.extend_from_slice(&free_pc.to_le_bytes());
        }
        VsefSpec::HeapIntegrityGuard { sites } => {
            out.push(4);
            put_u32s(out, sites);
        }
        VsefSpec::NullCheck { insn_pc } => {
            out.push(5);
            out.extend_from_slice(&insn_pc.to_le_bytes());
        }
        VsefSpec::TaintFilter { prop_pcs, sink_pc } => {
            out.push(6);
            put_u32s(out, prop_pcs);
            out.extend_from_slice(&sink_pc.to_le_bytes());
        }
    }
}

/// Bounds-checked reader over an untrusted buffer.
struct Cursor<'b> {
    buf: &'b [u8],
    off: usize,
}

impl<'b> Cursor<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], BundleError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(BundleError::Truncated { at: self.off })?;
        let s = &self.buf[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BundleError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BundleError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, BundleError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, BundleError> {
        let len = self.u32()? as usize;
        // A lying length can at most reach the end of the buffer; take()
        // rejects anything beyond it, so no over-allocation is possible.
        Ok(self.take(len)?.to_vec())
    }

    fn u32s(&mut self) -> Result<Vec<u32>, BundleError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(4) > self.buf.len() - self.off {
            return Err(BundleError::Truncated { at: self.off });
        }
        (0..count).map(|_| self.u32()).collect()
    }
}

fn decode_vsef(c: &mut Cursor<'_>) -> Result<VsefSpec, BundleError> {
    let tag_off = c.off;
    let tag = c.u8()?;
    Ok(match tag {
        0 => {
            let func = c.u32()?;
            let name_off = c.off;
            let raw = c.bytes()?;
            let func_name =
                String::from_utf8(raw).map_err(|_| BundleError::BadUtf8 { offset: name_off })?;
            VsefSpec::RetAddrGuard { func, func_name }
        }
        1 => VsefSpec::StoreSmashGuard { store_pc: c.u32()? },
        2 => {
            let store_pc = c.u32()?;
            let flag_off = c.off;
            let caller = match c.u8()? {
                0 => None,
                1 => Some(c.u32()?),
                t => {
                    return Err(BundleError::BadTag {
                        offset: flag_off,
                        tag: t,
                    })
                }
            };
            VsefSpec::HeapBoundsCheck { store_pc, caller }
        }
        3 => VsefSpec::DoubleFreeGuard { free_pc: c.u32()? },
        4 => VsefSpec::HeapIntegrityGuard { sites: c.u32s()? },
        5 => VsefSpec::NullCheck { insn_pc: c.u32()? },
        6 => {
            let prop_pcs = c.u32s()?;
            let sink_pc = c.u32()?;
            VsefSpec::TaintFilter { prop_pcs, sink_pc }
        }
        t => {
            return Err(BundleError::BadTag {
                offset: tag_off,
                tag: t,
            })
        }
    })
}

fn decode_signature(c: &mut Cursor<'_>) -> Result<Signature, BundleError> {
    let tag_off = c.off;
    let tag = c.u8()?;
    Ok(match tag {
        0 => Signature::Exact(c.bytes()?),
        1 => Signature::Substring(c.bytes()?),
        2 => {
            let count = c.u32()? as usize;
            // Each token costs at least its 4-byte length prefix.
            if count.saturating_mul(4) > c.buf.len() - c.off {
                return Err(BundleError::Truncated { at: c.off });
            }
            let tokens = (0..count)
                .map(|_| c.bytes())
                .collect::<Result<Vec<_>, _>>()?;
            Signature::TokenSeq(tokens)
        }
        t => {
            return Err(BundleError::BadTag {
                offset: tag_off,
                tag: t,
            })
        }
    })
}

impl Antibody {
    /// Serialize the antibody to its distribution wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SWAB");
        out.push(WIRE_VERSION);
        out.extend_from_slice(&(self.releases.len() as u32).to_le_bytes());
        for r in &self.releases {
            out.extend_from_slice(&r.at_ms.to_bits().to_le_bytes());
            match &r.item {
                AntibodyItem::Vsef(v) => {
                    out.push(0);
                    encode_vsef(&mut out, v);
                }
                AntibodyItem::Signature(s) => {
                    out.push(1);
                    match s {
                        Signature::Exact(b) => {
                            out.push(0);
                            put_bytes(&mut out, b);
                        }
                        Signature::Substring(b) => {
                            out.push(1);
                            put_bytes(&mut out, b);
                        }
                        Signature::TokenSeq(tokens) => {
                            out.push(2);
                            out.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
                            for t in tokens {
                                put_bytes(&mut out, t);
                            }
                        }
                    }
                }
                AntibodyItem::ExploitInput(b) => {
                    out.push(2);
                    put_bytes(&mut out, b);
                }
            }
        }
        out
    }

    /// Decode an antibody from untrusted wire bytes.
    ///
    /// Fails closed: truncation, unknown tags, lying length prefixes and
    /// invalid UTF-8 all return a [`BundleError`]. The decoder never
    /// panics and never allocates beyond the buffer's own length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Antibody, BundleError> {
        let mut c = Cursor { buf: bytes, off: 0 };
        if c.take(4)? != b"SWAB" {
            return Err(BundleError::BadMagic);
        }
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return Err(BundleError::BadVersion(version));
        }
        let count = c.u32()? as usize;
        // Each release costs at least 9 bytes (at_ms + item tag).
        if count.saturating_mul(9) > bytes.len().saturating_sub(c.off) {
            return Err(BundleError::Truncated { at: c.off });
        }
        let mut ab = Antibody::new();
        for _ in 0..count {
            let at_ms = f64::from_bits(c.u64()?);
            let tag_off = c.off;
            let item = match c.u8()? {
                0 => AntibodyItem::Vsef(decode_vsef(&mut c)?),
                1 => AntibodyItem::Signature(decode_signature(&mut c)?),
                2 => AntibodyItem::ExploitInput(c.bytes()?),
                t => {
                    return Err(BundleError::BadTag {
                        offset: tag_off,
                        tag: t,
                    })
                }
            };
            ab.push(item, at_ms);
        }
        Ok(ab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_antibody() -> Antibody {
        let mut ab = Antibody::new();
        ab.push(
            AntibodyItem::Vsef(VsefSpec::RetAddrGuard {
                func: 0x40,
                func_name: "victim".into(),
            }),
            12.5,
        );
        ab.push(
            AntibodyItem::Vsef(VsefSpec::HeapBoundsCheck {
                store_pc: 0x88,
                caller: Some(0x44),
            }),
            20.0,
        );
        ab.push(
            AntibodyItem::Vsef(VsefSpec::TaintFilter {
                prop_pcs: vec![1, 2, 3],
                sink_pc: 9,
            }),
            33.0,
        );
        ab.push(
            AntibodyItem::Vsef(VsefSpec::HeapIntegrityGuard { sites: vec![7, 8] }),
            34.0,
        );
        ab.push(
            AntibodyItem::Signature(Signature::TokenSeq(vec![b"GET".to_vec(), b"%n".to_vec()])),
            9000.0,
        );
        ab.push(
            AntibodyItem::Signature(Signature::Substring(b"\xcc\xcc".to_vec())),
            9100.0,
        );
        ab.push(AntibodyItem::ExploitInput(vec![0xde, 0xad, 0xbe]), 9500.0);
        ab
    }

    #[test]
    fn roundtrip_is_lossless() {
        let ab = full_antibody();
        let bytes = ab.to_bytes();
        let back = Antibody::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.releases.len(), ab.releases.len());
        for (a, b) in ab.releases.iter().zip(back.releases.iter()) {
            assert_eq!(a.at_ms.to_bits(), b.at_ms.to_bits());
            match (&a.item, &b.item) {
                (AntibodyItem::Vsef(x), AntibodyItem::Vsef(y)) => assert_eq!(x, y),
                (AntibodyItem::Signature(x), AntibodyItem::Signature(y)) => assert_eq!(x, y),
                (AntibodyItem::ExploitInput(x), AntibodyItem::ExploitInput(y)) => assert_eq!(x, y),
                other => panic!("item kind changed: {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_fails_closed() {
        let bytes = full_antibody().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Antibody::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn single_bit_flips_never_panic() {
        let bytes = full_antibody().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut b = bytes.clone();
                b[i] ^= 1 << bit;
                // Either decodes to *something* or errors — never panics.
                let _ = Antibody::from_bytes(&b);
            }
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = full_antibody().to_bytes();
        assert_eq!(bytes[4], WIRE_VERSION, "version byte sits at offset 4");
        // Every other version value — future or garbage — must be
        // rejected with BadVersion carrying the offending byte.
        for v in (0..=u8::MAX).filter(|&v| v != WIRE_VERSION) {
            bytes[4] = v;
            assert_eq!(
                Antibody::from_bytes(&bytes),
                Err(BundleError::BadVersion(v)),
                "version {v} must be rejected"
            );
        }
        // And the current version still decodes.
        bytes[4] = WIRE_VERSION;
        assert!(Antibody::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn encoder_emits_current_version() {
        let bytes = Antibody::new().to_bytes();
        assert_eq!(&bytes[..4], b"SWAB");
        assert_eq!(bytes[4], WIRE_VERSION);
    }

    #[test]
    fn lying_lengths_are_rejected() {
        let mut ab = Antibody::new();
        ab.push(AntibodyItem::ExploitInput(vec![1, 2, 3]), 1.0);
        let mut bytes = ab.to_bytes();
        // The exploit-input length prefix sits right after header+at_ms+tag.
        let len_off = 4 + 1 + 4 + 8 + 1;
        bytes[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Antibody::from_bytes(&bytes),
            Err(BundleError::Truncated { .. })
        ));
        // Lying release count, too.
        let mut bytes2 = ab.to_bytes();
        bytes2[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Antibody::from_bytes(&bytes2),
            Err(BundleError::Truncated { .. })
        ));
    }
}
