//! Antibody bundles: packaging, piecemeal distribution, and verification.
//!
//! Paper §3.3 "Distribution": "The concrete manifestation of an antibody
//! to be disseminated is a set of VSEFs and an exploit-triggering input."
//! Consumers may apply VSEFs immediately (they are safe by construction —
//! at worst they add unnecessary checks) and defer verification; to
//! verify, a host replays the exploit input against a sandboxed, fully
//! instrumented instance and confirms the detection. Results are
//! distributed piecemeal: each analysis stage's output is shared as soon
//! as it exists, so the first (weaker) VSEF races the worm while refined
//! VSEFs and signatures follow.

use svm::asm::Program;
use svm::loader::Aslr;
use svm::{Machine, Status};

use crate::signature::{Signature, SignatureSet};
use crate::vsef::{VsefRuntime, VsefSpec};

/// One distributable antibody item, stamped with its production time.
#[derive(Debug, Clone, PartialEq)]
pub enum AntibodyItem {
    /// A vulnerability-specific execution filter.
    Vsef(VsefSpec),
    /// An input signature.
    Signature(Signature),
    /// The exploit-triggering input (enables local verification and
    /// independent re-analysis by untrusting hosts).
    ExploitInput(Vec<u8>),
}

/// A timestamped antibody item as released by a producer.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// The item.
    pub item: AntibodyItem,
    /// Milliseconds (virtual time) after detection when it became
    /// available — first VSEF at tens of ms, refined ones later.
    pub at_ms: f64,
}

/// The full antibody for one vulnerability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Antibody {
    /// Releases in production order.
    pub releases: Vec<Release>,
}

impl Antibody {
    /// An empty antibody.
    pub fn new() -> Antibody {
        Antibody::default()
    }

    /// Record a release.
    pub fn push(&mut self, item: AntibodyItem, at_ms: f64) {
        self.releases.push(Release { item, at_ms });
    }

    /// Time of the first VSEF release (the worm-race-critical number).
    pub fn first_vsef_ms(&self) -> Option<f64> {
        self.releases
            .iter()
            .find(|r| matches!(r.item, AntibodyItem::Vsef(_)))
            .map(|r| r.at_ms)
    }

    /// All VSEF specs released so far.
    pub fn vsefs(&self) -> Vec<VsefSpec> {
        self.releases
            .iter()
            .filter_map(|r| match &r.item {
                AntibodyItem::Vsef(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    /// All signatures released so far, as a deployable set.
    pub fn signatures(&self) -> SignatureSet {
        let mut set = SignatureSet::new();
        for r in &self.releases {
            if let AntibodyItem::Signature(s) = &r.item {
                set.add(s.clone());
            }
        }
        set
    }

    /// The exploit input, if released.
    pub fn exploit_input(&self) -> Option<&[u8]> {
        self.releases.iter().find_map(|r| match &r.item {
            AntibodyItem::ExploitInput(i) => Some(i.as_slice()),
            _ => None,
        })
    }

    /// Releases available at or before `at_ms` (what a consumer that
    /// received the piecemeal stream up to that time has).
    pub fn available_at(&self, at_ms: f64) -> Antibody {
        Antibody {
            releases: self
                .releases
                .iter()
                .filter(|r| r.at_ms <= at_ms)
                .cloned()
                .collect(),
        }
    }
}

/// Verdict of sandboxed antibody verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// The exploit input tripped a deployed VSEF (best case).
    VsefDetected {
        /// Which kind fired.
        kind: &'static str,
    },
    /// The exploit input crashed the sandbox without a VSEF firing
    /// (the antibody is incomplete but the input is genuinely hostile).
    CrashOnly,
    /// The exploit input was matched by a signature before delivery.
    SignatureMatched,
    /// Nothing happened: the antibody failed verification.
    Failed,
}

/// Verify an antibody against a program in a fresh randomized sandbox.
///
/// Paper: "in a sandbox, feed the input to the vulnerable program while
/// performing heavy-weight analysis" — here the deployed VSEFs *are* the
/// checks; a crash without detection still certifies hostility.
///
/// Antibody VSEF addresses are (by distribution convention) normalized to
/// the nominal layout; they are rebased onto the sandbox's layout here.
pub fn verify(program: &Program, antibody: &Antibody, seed: u64) -> Verification {
    let Some(input) = antibody.exploit_input() else {
        return Verification::Failed;
    };
    if antibody.signatures().matches(input) {
        return Verification::SignatureMatched;
    }
    let Ok(mut m) = Machine::boot(program, Aslr::on(seed)) else {
        return Verification::Failed;
    };
    let nominal = svm::loader::Layout::nominal();
    let specs = antibody
        .vsefs()
        .iter()
        .map(|v| v.rebase(&nominal, &m.layout))
        .collect::<Vec<_>>();
    m.net.push_connection(input.to_vec());
    let mut ins = dbi::Instrumenter::new();
    let id = ins.attach(Box::new(VsefRuntime::new(specs)));
    let status = m.run(&mut ins, 1_000_000_000);
    let vr = ins.get::<VsefRuntime>(id).expect("tool");
    if let Some(d) = vr.detections().first() {
        return Verification::VsefDetected { kind: d.vsef_kind };
    }
    if matches!(status, Status::Faulted(_)) {
        return Verification::CrashOnly;
    }
    Verification::Failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::exact_from;
    use svm::asm::assemble;

    fn smasher_prog() -> Program {
        assemble(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    call victim
    halt
victim:
    push fp
    mov fp, sp
    movi r1, buf
    ld r1, [r1, 0]
    st [fp, 4], r1
    mov sp, fp
    pop fp
    ret
.data
buf: .space 8
",
        )
        .expect("asm")
    }

    fn exploit() -> Vec<u8> {
        0x6666_6666u32.to_le_bytes().to_vec()
    }

    #[test]
    fn piecemeal_releases_accumulate() {
        let mut ab = Antibody::new();
        ab.push(AntibodyItem::Vsef(VsefSpec::NullCheck { insn_pc: 4 }), 42.0);
        ab.push(AntibodyItem::Signature(exact_from(b"x")), 9000.0);
        ab.push(AntibodyItem::ExploitInput(b"x".to_vec()), 9500.0);
        assert_eq!(ab.first_vsef_ms(), Some(42.0));
        let early = ab.available_at(100.0);
        assert_eq!(early.releases.len(), 1);
        assert!(early.signatures().is_empty());
        assert!(early.exploit_input().is_none());
        let late = ab.available_at(10_000.0);
        assert_eq!(late.signatures().len(), 1);
        assert_eq!(late.exploit_input(), Some(b"x".as_slice()));
    }

    #[test]
    fn verification_detects_via_vsef() {
        let prog = smasher_prog();
        let img = svm::loader::load(&prog, svm::loader::Layout::nominal()).expect("load");
        let func = img.symbols.addr_of("victim").expect("victim");
        let mut ab = Antibody::new();
        ab.push(
            AntibodyItem::Vsef(VsefSpec::RetAddrGuard {
                func,
                func_name: "victim".into(),
            }),
            40.0,
        );
        ab.push(AntibodyItem::ExploitInput(exploit()), 50.0);
        // verify() rebases the nominal-layout VSEF addresses onto the
        // randomized sandbox's layout.
        for seed in [1u64, 7, 1234] {
            let v = verify(&prog, &ab, seed);
            assert_eq!(
                v,
                Verification::VsefDetected {
                    kind: "ret-addr-guard"
                },
                "seed {seed}"
            );
        }
    }

    #[test]
    fn verification_crash_only_without_vsefs() {
        let prog = smasher_prog();
        let mut ab = Antibody::new();
        ab.push(AntibodyItem::ExploitInput(exploit()), 50.0);
        assert_eq!(verify(&prog, &ab, 99), Verification::CrashOnly);
    }

    #[test]
    fn verification_fails_on_benign_input() {
        let prog = smasher_prog();
        let mut ab = Antibody::new();
        // A "benign" input that leaves the return address intact is not a
        // certifiable exploit... but any 4 bytes overwrite the slot here;
        // send EOF-only (empty input) so the read returns 0 bytes.
        ab.push(AntibodyItem::ExploitInput(Vec::new()), 1.0);
        // Empty input: victim writes stale buf (zeros) over the ret slot
        // and crashes at pc 0 -> still a crash. Use a signature-matched
        // path to exercise Failed vs SignatureMatched instead.
        ab.push(AntibodyItem::Signature(exact_from(b"")), 2.0);
        assert_eq!(verify(&prog, &ab, 1), Verification::SignatureMatched);
        let empty = Antibody::new();
        assert_eq!(
            verify(&prog, &empty, 1),
            Verification::Failed,
            "no input, no verdict"
        );
    }
}
