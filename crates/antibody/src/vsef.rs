//! Vulnerability-Specific Execution Filters (paper §3.3, after the VSEF
//! paper, Newsome/Brumley/Song NDSS'06).
//!
//! A VSEF re-applies the *same checks* the heavyweight analysis performed
//! — bounds checking, return-address protection, double-free detection,
//! taint tracking — but only at the handful of instructions the analysis
//! implicated. Because the watch set is tiny, overhead is negligible, and
//! because the check targets the *vulnerability* (not the exploit bytes),
//! poly- and meta-morphic variants of the attack are still caught.
//!
//! A [`VsefSpec`] is the shareable description (what gets distributed to
//! other hosts); [`VsefRuntime`] is the deployed instrumentation tool.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use analysis::ShadowStack;
use dbi::effects::{effects, Loc};
use dbi::tool::{Tool, Watch};
use svm::alloc::FreeKind;
use svm::isa::Op;
use svm::Machine;

/// A shareable VSEF description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VsefSpec {
    /// Keep a side stack of return addresses for one function; detect on
    /// mismatch at return (initial stack-smash VSEF).
    RetAddrGuard {
        /// Protected function entry address.
        func: u32,
        /// Function name (reporting only).
        func_name: String,
    },
    /// Detect writes from one store instruction onto any live return-
    /// address slot (refined stack-smash VSEF: targets the overflow
    /// itself, catching function-pointer-smash variants too).
    StoreSmashGuard {
        /// The overflowing store instruction.
        store_pc: u32,
    },
    /// Heap bounds check at one store instruction, optionally only when
    /// called from a particular function (the paper's Squid VSEF:
    /// "bounds-check `strcat` when called by `ftpBuildTitleUrl`").
    HeapBoundsCheck {
        /// The store instruction inside the (library) routine.
        store_pc: u32,
        /// Required caller function entry, if refined.
        caller: Option<u32>,
    },
    /// Detect double frees at one free callsite.
    DoubleFreeGuard {
        /// The `free` routine's syscall pc.
        free_pc: u32,
    },
    /// Validate heap metadata (arg header + free-list sanity) at an
    /// allocator callsite, before the allocator acts.
    HeapIntegrityGuard {
        /// The allocator syscall pcs to guard.
        sites: Vec<u32>,
    },
    /// NULL-pointer check before one memory-access instruction.
    NullCheck {
        /// The faulting instruction.
        insn_pc: u32,
    },
    /// Mini taint analysis over only the propagation instructions the
    /// full analysis identified, with one control-transfer sink.
    TaintFilter {
        /// Instructions that propagated taint in the analyzed exploit.
        prop_pcs: Vec<u32>,
        /// The sink instruction.
        sink_pc: u32,
    },
}

impl VsefSpec {
    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            VsefSpec::RetAddrGuard { .. } => "ret-addr-guard",
            VsefSpec::StoreSmashGuard { .. } => "store-smash-guard",
            VsefSpec::HeapBoundsCheck { .. } => "heap-bounds-check",
            VsefSpec::DoubleFreeGuard { .. } => "double-free-guard",
            VsefSpec::HeapIntegrityGuard { .. } => "heap-integrity-guard",
            VsefSpec::NullCheck { .. } => "null-check",
            VsefSpec::TaintFilter { .. } => "taint-filter",
        }
    }

    /// The pcs this spec needs instruction events for.
    pub fn watched_pcs(&self) -> Vec<u32> {
        match self {
            VsefSpec::RetAddrGuard { .. } | VsefSpec::DoubleFreeGuard { .. } => Vec::new(),
            VsefSpec::StoreSmashGuard { store_pc } => vec![*store_pc],
            VsefSpec::HeapBoundsCheck { store_pc, .. } => vec![*store_pc],
            VsefSpec::HeapIntegrityGuard { sites } => sites.clone(),
            VsefSpec::NullCheck { insn_pc } => vec![*insn_pc],
            VsefSpec::TaintFilter { prop_pcs, sink_pc } => {
                let mut v = prop_pcs.clone();
                v.push(*sink_pc);
                v
            }
        }
    }

    /// Number of instrumented sites (the paper's overhead argument: a
    /// handful, versus every instruction for the full tools).
    pub fn site_count(&self) -> usize {
        self.watched_pcs().len().max(1)
    }

    /// Translate every code address from one address-space layout to
    /// another.
    ///
    /// VSEF addresses are virtual addresses, but every Sweeper host
    /// randomizes its layout independently; antibodies are therefore
    /// distributed *normalized to the nominal layout* and rebased on
    /// deployment (the analogue of shipping binary+offset instead of an
    /// absolute address).
    pub fn rebase(&self, from: &svm::loader::Layout, to: &svm::loader::Layout) -> VsefSpec {
        let tr = |pc: u32| rebase_addr(pc, from, to);
        match self.clone() {
            VsefSpec::RetAddrGuard { func, func_name } => VsefSpec::RetAddrGuard {
                func: tr(func),
                func_name,
            },
            VsefSpec::StoreSmashGuard { store_pc } => VsefSpec::StoreSmashGuard {
                store_pc: tr(store_pc),
            },
            VsefSpec::HeapBoundsCheck { store_pc, caller } => VsefSpec::HeapBoundsCheck {
                store_pc: tr(store_pc),
                caller: caller.map(tr),
            },
            VsefSpec::DoubleFreeGuard { free_pc } => VsefSpec::DoubleFreeGuard {
                free_pc: tr(free_pc),
            },
            VsefSpec::HeapIntegrityGuard { sites } => VsefSpec::HeapIntegrityGuard {
                sites: sites.into_iter().map(tr).collect(),
            },
            VsefSpec::NullCheck { insn_pc } => VsefSpec::NullCheck {
                insn_pc: tr(insn_pc),
            },
            VsefSpec::TaintFilter { prop_pcs, sink_pc } => VsefSpec::TaintFilter {
                prop_pcs: prop_pcs.into_iter().map(tr).collect(),
                sink_pc: tr(sink_pc),
            },
        }
    }
}

/// Map an address across layouts by segment membership; addresses in no
/// known segment (e.g. a wild-jump target) pass through unchanged.
pub fn rebase_addr(addr: u32, from: &svm::loader::Layout, to: &svm::loader::Layout) -> u32 {
    // Segment extents are not known here: attribute the address to the
    // nearest base at or below it (bases are spaced wider than any
    // segment), bounded by a generous window.
    const WINDOW: u32 = 0x0100_0000;
    let pairs = [
        (from.code_base, to.code_base),
        (from.lib_base, to.lib_base),
        (from.data_base, to.data_base),
        (from.heap_base, to.heap_base),
    ];
    let best = pairs
        .iter()
        .filter(|(f, _)| addr >= *f && addr - *f < WINDOW)
        .min_by_key(|(f, _)| addr - *f);
    match best {
        Some((f, t)) => t + (addr - f),
        None => addr,
    }
}

/// One VSEF detection.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Kind of the firing VSEF.
    pub vsef_kind: &'static str,
    /// Instruction where the violation was observed.
    pub pc: u32,
    /// Human-readable detail.
    pub detail: String,
}

/// Deployed VSEF instrumentation: all of a host's VSEFs in one tool.
pub struct VsefRuntime {
    specs: Vec<VsefSpec>,
    by_pc: HashMap<u32, Vec<usize>>,
    shadow: ShadowStack,
    /// Per-RetAddrGuard side stacks: spec idx -> (slot, expected) stack.
    side_stacks: HashMap<usize, Vec<(u32, u32)>>,
    /// Live return-address slots (for StoreSmashGuard).
    ret_slots: BTreeMap<u32, u32>,
    /// Freed payload pointers (for DoubleFreeGuard).
    freed: HashSet<u32>,
    /// Mini-taint shadow (for TaintFilter).
    taint: HashMap<Loc, ()>,
    detections: Vec<Detection>,
}

impl VsefRuntime {
    /// Deploy a set of specs.
    pub fn new(specs: Vec<VsefSpec>) -> VsefRuntime {
        let mut by_pc: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, s) in specs.iter().enumerate() {
            for pc in s.watched_pcs() {
                by_pc.entry(pc).or_default().push(i);
            }
        }
        VsefRuntime {
            specs,
            by_pc,
            shadow: ShadowStack::new(),
            side_stacks: HashMap::new(),
            ret_slots: BTreeMap::new(),
            freed: HashSet::new(),
            taint: HashMap::new(),
            detections: Vec::new(),
        }
    }

    /// Add another spec to a deployed runtime (piecemeal distribution).
    /// The caller must re-register watch sets via
    /// [`dbi::Instrumenter::refresh`].
    pub fn add(&mut self, spec: VsefSpec) {
        let idx = self.specs.len();
        for pc in spec.watched_pcs() {
            self.by_pc.entry(pc).or_default().push(idx);
        }
        self.specs.push(spec);
    }

    /// Deployed specs.
    pub fn specs(&self) -> &[VsefSpec] {
        &self.specs
    }

    /// Detections so far.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Drain detections (the runtime module polls per request).
    pub fn take_detections(&mut self) -> Vec<Detection> {
        std::mem::take(&mut self.detections)
    }

    /// Total instrumented instruction sites.
    pub fn total_sites(&self) -> usize {
        self.by_pc.len()
    }

    /// Clear all per-execution state (shadow stacks, watched slots, taint,
    /// freed set) while keeping the deployed specs. Must be called when
    /// the protected process is rolled back or restarted — the runtime is
    /// logically re-attached to a different execution.
    pub fn reset_state(&mut self) {
        self.shadow = ShadowStack::new();
        self.side_stacks.clear();
        self.ret_slots.clear();
        self.freed.clear();
        self.taint.clear();
        self.detections.clear();
    }

    fn detect(&mut self, spec_idx: usize, pc: u32, detail: String) {
        let kind = self.specs[spec_idx].kind();
        self.detections.push(Detection {
            vsef_kind: kind,
            pc,
            detail,
        });
    }
}

impl Tool for VsefRuntime {
    fn name(&self) -> &str {
        "vsef-runtime"
    }

    fn watches(&self) -> Watch {
        Watch::Pcs(self.by_pc.keys().copied().collect())
    }

    fn insn_cost(&self) -> u64 {
        // A handful of checks at a handful of sites.
        8
    }

    fn on_insn(&mut self, m: &Machine, pc: u32, op: &Op) {
        let Some(idxs) = self.by_pc.get(&pc).cloned() else {
            return;
        };
        let e = effects(m, op);
        for i in idxs {
            match self.specs[i].clone() {
                VsefSpec::StoreSmashGuard { .. } => {
                    if let Some((addr, len)) = e.mem_write {
                        let overlap: Vec<u32> = self
                            .ret_slots
                            .range(addr.saturating_sub(3)..addr.wrapping_add(len))
                            .map(|(&s, _)| s)
                            .filter(|&s| addr < s + 4 && s < addr.wrapping_add(len))
                            .collect();
                        if let Some(slot) = overlap.first() {
                            self.detect(
                                i,
                                pc,
                                format!("store hits return-address slot {slot:#010x}"),
                            );
                        }
                    }
                }
                VsefSpec::HeapBoundsCheck { caller, .. } => {
                    if let Some((addr, _len)) = e.mem_write {
                        let heap_lo = m.layout.heap_base;
                        let heap_hi = m.layout.heap_base + m.layout.heap_size;
                        if addr < heap_lo || addr >= heap_hi {
                            continue;
                        }
                        if let Some(req) = caller {
                            // Refined VSEF: only when called (transitively
                            // directly) by the implicated function.
                            let caller_ok = self.shadow.frames().iter().any(|f| {
                                m.symbols
                                    .resolve(f.ret_addr)
                                    .and_then(|s| m.symbols.addr_of(&s.name))
                                    .map(|a| a == req)
                                    .unwrap_or(false)
                            });
                            if !caller_ok {
                                continue;
                            }
                        }
                        if m.heap.live_chunk_containing(&m.mem, addr).is_none() {
                            self.detect(i, pc, format!("out-of-bounds heap write to {addr:#010x}"));
                        }
                    }
                }
                VsefSpec::HeapIntegrityGuard { .. } => {
                    // Validate the free list before the allocator acts.
                    let mut cur = m.heap.free_head;
                    let mut hops = 0;
                    while cur != 0 && hops < 64 {
                        let ok = m
                            .mem
                            .read_u32(0, cur + 4)
                            .ok()
                            .map(|w| {
                                let size = w & !1;
                                size >= 24 && size % 8 == 0 && cur + size <= m.heap.brk
                            })
                            .unwrap_or(false);
                        let fd = m.mem.read_u32(0, cur + 8).unwrap_or(u32::MAX);
                        let fd_ok = fd == 0
                            || (fd >= m.layout.heap_base
                                && fd < m.layout.heap_base + m.layout.heap_size);
                        if !ok || !fd_ok {
                            self.detect(
                                i,
                                pc,
                                format!("heap free-list corruption at chunk {cur:#010x}"),
                            );
                            break;
                        }
                        cur = fd;
                        hops += 1;
                    }
                    // For `free(ptr)`, also validate the argument header.
                    if matches!(op, Op::Sys { num } if *num == svm::isa::Syscall::Free.num()) {
                        let ptr = m.cpu.get(svm::isa::Reg::R0);
                        let c = ptr.wrapping_sub(8);
                        let bad = m
                            .mem
                            .read_u32(0, c + 4)
                            .ok()
                            .map(|w| {
                                let size = w & !1;
                                size < 24 || size % 8 != 0 || c + size > m.heap.brk
                            })
                            .unwrap_or(true);
                        if bad {
                            self.detect(i, pc, format!("corrupt chunk header at {c:#010x}"));
                        }
                    }
                }
                VsefSpec::NullCheck { .. } => {
                    let addr = e.mem_read.map(|(a, _)| a).or(e.mem_write.map(|(a, _)| a));
                    if let Some(a) = addr {
                        if a < svm::mem::PAGE_SIZE as u32 {
                            self.detect(i, pc, format!("NULL dereference of {a:#x}"));
                        }
                    }
                }
                VsefSpec::TaintFilter { sink_pc, .. } => {
                    if pc == sink_pc {
                        if let Some((loc, target)) = &e.indirect_target {
                            let tainted = match loc {
                                Loc::MemByte(a) => {
                                    (0..4).any(|k| self.taint.contains_key(&Loc::MemByte(a + k)))
                                }
                                other => self.taint.contains_key(other),
                            };
                            if tainted {
                                self.detect(
                                    i,
                                    pc,
                                    format!("tainted control transfer to {target:#010x}"),
                                );
                            }
                        }
                    }
                    // Propagate along the watched instructions, using the
                    // same per-destination value flows as full taint.
                    for f in &e.flows {
                        if f.from.iter().any(|l| self.taint.contains_key(l)) {
                            self.taint.insert(f.to, ());
                        } else {
                            self.taint.remove(&f.to);
                        }
                    }
                }
                VsefSpec::RetAddrGuard { .. } | VsefSpec::DoubleFreeGuard { .. } => {}
            }
        }
    }

    fn on_call(&mut self, _m: &Machine, _pc: u32, target: u32, ret_addr: u32, sp: u32) {
        self.shadow.push(target, ret_addr, sp);
        self.ret_slots.insert(sp, target);
        for (i, s) in self.specs.iter().enumerate() {
            if let VsefSpec::RetAddrGuard { func, .. } = s {
                if *func == target {
                    self.side_stacks.entry(i).or_default().push((sp, ret_addr));
                }
            }
        }
    }

    fn on_ret(&mut self, _m: &Machine, pc: u32, ret_target: u32, sp: u32) {
        self.shadow.pop_to(sp);
        let dead: Vec<u32> = self.ret_slots.range(..=sp).map(|(&s, _)| s).collect();
        for s in dead {
            self.ret_slots.remove(&s);
        }
        let mut hits = Vec::new();
        for (i, stack) in self.side_stacks.iter_mut() {
            while let Some(&(slot, expected)) = stack.last() {
                if slot > sp {
                    break;
                }
                stack.pop();
                if slot == sp && expected != ret_target {
                    hits.push((*i, expected));
                }
            }
        }
        for (i, expected) in hits {
            self.detect(
                i,
                pc,
                format!(
                    "return address changed: expected {expected:#010x}, got {ret_target:#010x}"
                ),
            );
        }
    }

    fn on_free(&mut self, _m: &Machine, pc: u32, ptr: u32, kind: FreeKind) {
        for (i, s) in self.specs.clone().iter().enumerate() {
            if let VsefSpec::DoubleFreeGuard { free_pc } = s {
                if *free_pc == pc && (kind == FreeKind::DoubleFree || self.freed.contains(&ptr)) {
                    self.detect(i, pc, format!("double free of {ptr:#010x}"));
                }
            }
        }
        self.freed.insert(ptr);
    }

    fn on_alloc(&mut self, _m: &Machine, _pc: u32, _size: u32, ptr: u32) {
        self.freed.remove(&ptr);
    }

    fn on_input(&mut self, _m: &Machine, _conn: u32, _off: u32, addr: u32, data: &[u8]) {
        // Taint sources for TaintFilter specs.
        if self
            .specs
            .iter()
            .any(|s| matches!(s, VsefSpec::TaintFilter { .. }))
        {
            for i in 0..data.len() as u32 {
                self.taint.insert(Loc::MemByte(addr + i), ());
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Collect the union of taint sources from a `BTreeSet` helper.
pub fn sources_to_offsets(sources: &BTreeSet<(u32, u32)>, conn: u32) -> Vec<u32> {
    sources
        .iter()
        .filter(|(c, _)| *c == conn)
        .map(|(_, o)| *o)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi::instr::Instrumenter;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::Status;

    fn boot(src: &str, input: &[u8]) -> Machine {
        let prog = assemble(src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.net.push_connection(input.to_vec());
        m
    }

    const SMASHER: &str = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    call victim
    halt
victim:
    push fp
    mov fp, sp
    movi r1, buf
    ld r1, [r1, 0]
smash:
    st [fp, 4], r1
    mov sp, fp
    pop fp
    ret
.data
buf: .space 8
";

    #[test]
    fn ret_addr_guard_detects_smash_before_wild_jump() {
        let mut m = boot(SMASHER, &0x6666_6666u32.to_le_bytes());
        let func = m.symbols.addr_of("victim").expect("victim");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(VsefRuntime::new(vec![VsefSpec::RetAddrGuard {
            func,
            func_name: "victim".into(),
        }])));
        m.run(&mut ins, 10_000_000);
        let v = ins.get::<VsefRuntime>(id).expect("tool");
        let d = v.detections().first().expect("detected");
        assert_eq!(d.vsef_kind, "ret-addr-guard");
        assert!(d.detail.contains("0x66666666"));
    }

    #[test]
    fn store_smash_guard_fires_at_the_overflowing_store() {
        let mut m = boot(SMASHER, &0x6666_6666u32.to_le_bytes());
        let store_pc = m.symbols.addr_of("smash").expect("smash");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(VsefRuntime::new(vec![
            VsefSpec::StoreSmashGuard { store_pc },
        ])));
        m.run(&mut ins, 10_000_000);
        let v = ins.get::<VsefRuntime>(id).expect("tool");
        assert_eq!(v.detections().len(), 1);
        assert_eq!(v.detections()[0].pc, store_pc);
    }

    #[test]
    fn ret_addr_guard_silent_on_benign_run() {
        let benign = "
.text
main:
    sys accept
    call victim
    halt
victim:
    push fp
    mov fp, sp
    movi r1, 5
    st [fp, -4], r1
    mov sp, fp
    pop fp
    ret
";
        let mut m = boot(benign, b"x");
        let func = m.symbols.addr_of("victim").expect("victim");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(VsefRuntime::new(vec![VsefSpec::RetAddrGuard {
            func,
            func_name: "victim".into(),
        }])));
        let s = m.run(&mut ins, 10_000_000);
        assert!(matches!(s, Status::Halted(_)));
        assert!(ins
            .get::<VsefRuntime>(id)
            .expect("t")
            .detections()
            .is_empty());
    }

    #[test]
    fn null_check_fires_before_the_crash_would() {
        let src = "
.text
main:
    sys accept
    movi r0, 0
look:
    ldb r1, [r0, 4]
    halt
";
        let mut m = boot(src, b"x");
        let pc = m.symbols.addr_of("look").expect("look");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(VsefRuntime::new(vec![VsefSpec::NullCheck {
            insn_pc: pc,
        }])));
        m.run(&mut ins, 10_000_000);
        let v = ins.get::<VsefRuntime>(id).expect("tool");
        assert_eq!(v.detections().len(), 1, "detected at the instruction");
    }

    #[test]
    fn double_free_guard_detects_at_site() {
        let src = "
.text
main:
    sys accept
    movi r0, 32
    sys alloc
    mov r4, r0
    mov r0, r4
    call libfree
    mov r0, r4
    call libfree
    halt
.lib
libfree:
freesys:
    sys free
    ret
";
        let mut m = boot(src, b"x");
        let free_pc = m.symbols.addr_of("freesys").expect("freesys");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(VsefRuntime::new(vec![
            VsefSpec::DoubleFreeGuard { free_pc },
        ])));
        m.run(&mut ins, 10_000_000);
        let v = ins.get::<VsefRuntime>(id).expect("tool");
        assert_eq!(v.detections().len(), 1);
        assert!(v.detections()[0].detail.contains("double free"));
    }

    #[test]
    fn taint_filter_detects_tainted_sink_cheaply() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r1, buf
p1:
    ld r3, [r1, 0]
p2:
    mov r4, r3
sink:
    callr r4
    halt
.data
buf: .space 8
";
        let mut m = boot(src, &0x5555_5555u32.to_le_bytes());
        let p1 = m.symbols.addr_of("p1").expect("p1");
        let p2 = m.symbols.addr_of("p2").expect("p2");
        let sink = m.symbols.addr_of("sink").expect("sink");
        let spec = VsefSpec::TaintFilter {
            prop_pcs: vec![p1, p2],
            sink_pc: sink,
        };
        assert_eq!(spec.site_count(), 3, "only three instrumented sites");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(VsefRuntime::new(vec![spec])));
        m.run(&mut ins, 10_000_000);
        let v = ins.get::<VsefRuntime>(id).expect("tool");
        assert_eq!(v.detections().len(), 1);
        assert!(v.detections()[0]
            .detail
            .contains("tainted control transfer"));
    }

    #[test]
    fn vsef_overhead_is_tiny_versus_full_instrumentation() {
        // The paper's core overhead claim, at the accounting level: the
        // VSEF is charged only at its watched sites.
        let mut m = boot(SMASHER, b"ok\0\0");
        let store_pc = m.symbols.addr_of("smash").expect("smash");
        let mut ins = Instrumenter::new();
        ins.attach(Box::new(VsefRuntime::new(vec![
            VsefSpec::StoreSmashGuard { store_pc },
        ])));
        m.run(&mut ins, 10_000_000);
        let vsef_overhead = ins.pending_overhead();
        assert!(vsef_overhead <= 8, "one site, one visit: {vsef_overhead}");
    }
}
