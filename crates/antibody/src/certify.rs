//! Certified antibody bundles: what actually travels over the (lossy,
//! adversarial) distribution network.
//!
//! The §6 community model originally assumed antibody sharing is free
//! and perfect. Real dissemination is a P2P problem where the alert
//! channel itself is an attack surface (cf. Phagocytes): a worm that has
//! compromised a producer can flood the community with *forged*
//! antibodies — corrupt payloads, valid-looking bundles whose evidence
//! does not match, or filters that do nothing. A consumer therefore
//! never deploys what it receives; it deploys what it can **verify**.
//!
//! A [`CertifiedBundle`] packages three things:
//!
//! 1. the antibody in its PR-4 wire encoding ([`Antibody::to_bytes`],
//!    carried as an opaque, independently versioned payload),
//! 2. the minimized exploit **evidence** (the input that must trip the
//!    antibody when replayed), and
//! 3. a keyed integrity [`tag`](CertifiedBundle::tag) over the whole
//!    content, bound to the producer identity and sequence number.
//!
//! Verification is layered, cheapest first:
//!
//! * [`CertifiedBundle::verify`] — deterministic, sandbox-free: checks
//!   the tag, decodes the antibody fail-closed through the PR-4 wire
//!   decoder, and requires the attached evidence to equal the antibody's
//!   own exploit input. This is the per-delivery check the §6 community
//!   simulation runs on every received bundle.
//! * [`verify_with_sandbox`] — additionally replays the evidence against
//!   the bundle's VSEFs/signatures in a fresh randomized `svm` sandbox
//!   ([`crate::bundle::verify`]); the bundle is accepted only if a
//!   deployed filter actually catches the evidence. This is the check a
//!   real consumer host ([`Sweeper::receive_certified`]) runs before
//!   deploying, and what defeats an *insider* Byzantine producer that
//!   knows the community key and can mint valid tags.
//!
//! The tag is a keyed splitmix-style hash — an integrity check against
//! in-flight corruption and lazy forgeries, **not** a cryptographic
//! signature. The threat model deliberately includes key-holding
//! Byzantine producers, which is why the sandbox replay (untrusting
//! re-verification, as the paper's §3.3 suggests) is the real gate.
//!
//! # Wire format (version [`CERT_VERSION`], little-endian)
//!
//! ```text
//! "SWCB" | version u8 | producer u32 | seq u64 | tag u64
//!        | antibody bytes | evidence bytes
//! bytes := len u32 | len raw bytes
//! ```
//!
//! [`Sweeper::receive_certified`]: https://docs.rs/sweeper

use crate::bundle::{verify as sandbox_verify, Antibody, Verification};
use crate::wire::BundleError;
use svm::asm::Program;

/// Current certified-bundle wire-format version (byte at offset 4).
///
/// Independent of the inner antibody payload's
/// [`crate::wire::WIRE_VERSION`]; the payload is carried opaquely.
pub const CERT_VERSION: u8 = 1;

/// Why a certified bundle was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The buffer ends before the structure it promises.
    Truncated {
        /// Byte offset where more data was required.
        at: usize,
    },
    /// The buffer does not start with the `SWCB` magic.
    BadMagic,
    /// Unknown certified-bundle version.
    BadVersion(u8),
    /// The keyed integrity tag does not match the content (in-flight
    /// corruption, or a forger without the community key).
    TagMismatch,
    /// The tag checked out but the inner antibody payload failed the
    /// fail-closed PR-4 wire decoder.
    CorruptAntibody(BundleError),
    /// The attached evidence is not the antibody's own exploit input
    /// (a mismatched-evidence forgery).
    EvidenceMismatch,
    /// The bundle carries no evidence at all — nothing to verify, so
    /// nothing to deploy.
    NoEvidence,
    /// Sandbox replay did not confirm the antibody: the evidence failed
    /// to trip any deployed VSEF or signature.
    SandboxRejected {
        /// What the sandbox observed instead (e.g. `"crash-only"`,
        /// `"no-detection"`).
        observed: &'static str,
    },
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Truncated { at } => {
                write!(f, "certified bundle truncated at offset {at}")
            }
            CertifyError::BadMagic => write!(f, "certified bundle: bad magic"),
            CertifyError::BadVersion(v) => {
                write!(f, "certified bundle: unknown version {v}")
            }
            CertifyError::TagMismatch => write!(f, "certified bundle: integrity tag mismatch"),
            CertifyError::CorruptAntibody(e) => {
                write!(f, "certified bundle: corrupt antibody payload: {e}")
            }
            CertifyError::EvidenceMismatch => {
                write!(f, "certified bundle: evidence does not match antibody")
            }
            CertifyError::NoEvidence => write!(f, "certified bundle: no evidence attached"),
            CertifyError::SandboxRejected { observed } => {
                write!(f, "certified bundle: sandbox replay rejected ({observed})")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// splitmix64 finalizer: the same bijective mixer the epidemic PRNG and
/// the PR-3 ASLR reseed use.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Keyed tag over (producer, seq, antibody bytes, evidence bytes).
///
/// Length-prefixed absorption so `(ab="AB", ev="")` and `(ab="A",
/// ev="B")` hash differently.
fn keyed_tag(key: u64, producer: u32, seq: u64, antibody_bytes: &[u8], evidence: &[u8]) -> u64 {
    // Domain separation: "SWCBtag".
    let mut h = mix64(key ^ 0x0053_5743_4274_6167);
    h = mix64(h ^ u64::from(producer));
    h = mix64(h ^ seq);
    for part in [antibody_bytes, evidence] {
        h = mix64(h ^ part.len() as u64);
        for chunk in part.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            h = mix64(h ^ u64::from_le_bytes(b));
        }
    }
    h
}

/// A certified antibody bundle: the unit of antibody distribution.
///
/// Built by a producer with [`CertifiedBundle::seal`]; consumers check
/// it with [`CertifiedBundle::verify`] (cheap, deterministic) and/or
/// [`verify_with_sandbox`] (full replay) before deploying anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedBundle {
    /// Producer host identity the tag is bound to.
    pub producer: u32,
    /// Producer-local sequence number (anti-replay / retry bookkeeping).
    pub seq: u64,
    /// The antibody in PR-4 wire encoding, carried opaquely.
    pub antibody_bytes: Vec<u8>,
    /// Minimized exploit evidence: the input that must trip the antibody.
    pub evidence: Vec<u8>,
    /// Keyed integrity tag over all of the above.
    pub tag: u64,
}

impl CertifiedBundle {
    /// Seal an antibody into a certified bundle under the community key.
    ///
    /// The evidence is taken from the antibody's own exploit-input
    /// release; returns `None` if the antibody carries no exploit input
    /// (nothing a consumer could verify, so nothing worth shipping).
    pub fn seal(producer: u32, seq: u64, antibody: &Antibody, key: u64) -> Option<CertifiedBundle> {
        let evidence = antibody.exploit_input()?.to_vec();
        let antibody_bytes = antibody.to_bytes();
        let tag = keyed_tag(key, producer, seq, &antibody_bytes, &evidence);
        Some(CertifiedBundle {
            producer,
            seq,
            antibody_bytes,
            evidence,
            tag,
        })
    }

    /// Cheap deterministic verification: tag, fail-closed payload
    /// decode, and evidence consistency. Returns the decoded antibody
    /// on success — the *only* way to get a deployable antibody out of
    /// a bundle, which is what makes "deploy unverified" unconstructible
    /// for honest consumers (chaos invariant I8).
    pub fn verify(&self, key: u64) -> Result<Antibody, CertifyError> {
        let want = keyed_tag(
            key,
            self.producer,
            self.seq,
            &self.antibody_bytes,
            &self.evidence,
        );
        if want != self.tag {
            return Err(CertifyError::TagMismatch);
        }
        let antibody =
            Antibody::from_bytes(&self.antibody_bytes).map_err(CertifyError::CorruptAntibody)?;
        match antibody.exploit_input() {
            None => return Err(CertifyError::NoEvidence),
            Some(input) if input != self.evidence.as_slice() => {
                return Err(CertifyError::EvidenceMismatch)
            }
            Some(_) => {}
        }
        Ok(antibody)
    }

    /// Serialize to the certified-bundle wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SWCB");
        out.push(CERT_VERSION);
        out.extend_from_slice(&self.producer.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        for part in [&self.antibody_bytes, &self.evidence] {
            out.extend_from_slice(&(part.len() as u32).to_le_bytes());
            out.extend_from_slice(part);
        }
        out
    }

    /// Decode from untrusted wire bytes. Fails closed: truncation, bad
    /// magic, unknown versions and lying length prefixes all error;
    /// never panics. (The integrity tag is *not* checked here — that is
    /// [`CertifiedBundle::verify`]'s job, which needs the key.)
    pub fn from_bytes(bytes: &[u8]) -> Result<CertifiedBundle, CertifyError> {
        let need = |off: usize, n: usize| -> Result<usize, CertifyError> {
            off.checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or(CertifyError::Truncated { at: off })
        };
        let mut off = 0usize;
        let end = need(off, 4)?;
        if &bytes[off..end] != b"SWCB" {
            return Err(CertifyError::BadMagic);
        }
        off = end;
        let end = need(off, 1)?;
        let version = bytes[off];
        if version != CERT_VERSION {
            return Err(CertifyError::BadVersion(version));
        }
        off = end;
        let end = need(off, 4)?;
        let producer = u32::from_le_bytes(bytes[off..end].try_into().expect("4 bytes"));
        off = end;
        let end = need(off, 8)?;
        let seq = u64::from_le_bytes(bytes[off..end].try_into().expect("8 bytes"));
        off = end;
        let end = need(off, 8)?;
        let tag = u64::from_le_bytes(bytes[off..end].try_into().expect("8 bytes"));
        off = end;
        let mut parts: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
        for slot in &mut parts {
            let end = need(off, 4)?;
            let len = u32::from_le_bytes(bytes[off..end].try_into().expect("4 bytes")) as usize;
            off = end;
            let end = need(off, len)?;
            *slot = bytes[off..end].to_vec();
            off = end;
        }
        let [antibody_bytes, evidence] = parts;
        Ok(CertifiedBundle {
            producer,
            seq,
            antibody_bytes,
            evidence,
            tag,
        })
    }

    /// A forgery with a flipped integrity tag (models a forger without
    /// the community key, or tag corruption in transit). Rejected by the
    /// cheap tag check.
    pub fn forged_bad_tag(&self) -> CertifiedBundle {
        let mut f = self.clone();
        f.tag ^= 0x1;
        f
    }

    /// A forgery whose antibody payload was corrupted *and* re-tagged
    /// with the community key (models an insider Byzantine producer).
    /// Survives the tag check; rejected by the fail-closed payload
    /// decoder or the evidence-consistency check.
    pub fn forged_corrupt_payload(&self, key: u64, flip_at: usize) -> CertifiedBundle {
        let mut f = self.clone();
        if !f.antibody_bytes.is_empty() {
            let at = flip_at % f.antibody_bytes.len();
            f.antibody_bytes[at] ^= 0xff;
        }
        f.tag = keyed_tag(key, f.producer, f.seq, &f.antibody_bytes, &f.evidence);
        f
    }

    /// A forgery whose evidence was swapped for `fake` and re-tagged
    /// (insider Byzantine producer shipping benign "evidence" so the
    /// antibody can never be confirmed). Survives the tag check;
    /// rejected by the evidence-consistency check or sandbox replay.
    pub fn forged_mismatched_evidence(&self, key: u64, fake: Vec<u8>) -> CertifiedBundle {
        let mut f = self.clone();
        f.evidence = fake;
        f.tag = keyed_tag(key, f.producer, f.seq, &f.antibody_bytes, &f.evidence);
        f
    }
}

/// Full consumer-side verification: the cheap checks of
/// [`CertifiedBundle::verify`] *plus* a sandboxed `svm` replay of the
/// evidence against the bundle's own VSEFs/signatures.
///
/// The bundle is accepted only if a deployed filter actually catches
/// the evidence ([`Verification::VsefDetected`] or
/// [`Verification::SignatureMatched`]). A crash without detection means
/// the evidence is hostile but the antibody does not filter it — a
/// useless (or malicious) filter, rejected with
/// [`CertifyError::SandboxRejected`].
pub fn verify_with_sandbox(
    program: &Program,
    bundle: &CertifiedBundle,
    key: u64,
    sandbox_seed: u64,
) -> Result<Antibody, CertifyError> {
    let antibody = bundle.verify(key)?;
    match sandbox_verify(program, &antibody, sandbox_seed) {
        Verification::VsefDetected { .. } | Verification::SignatureMatched => Ok(antibody),
        Verification::CrashOnly => Err(CertifyError::SandboxRejected {
            observed: "crash-only",
        }),
        Verification::Failed => Err(CertifyError::SandboxRejected {
            observed: "no-detection",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::AntibodyItem;
    use crate::signature::exact_from;
    use crate::vsef::VsefSpec;

    const KEY: u64 = 0x1234_5678_9abc_def0;

    fn sample_antibody() -> Antibody {
        let mut ab = Antibody::new();
        ab.push(
            AntibodyItem::Vsef(VsefSpec::RetAddrGuard {
                func: 0x40,
                func_name: "victim".into(),
            }),
            40.0,
        );
        ab.push(AntibodyItem::Signature(exact_from(b"evil")), 9000.0);
        ab.push(AntibodyItem::ExploitInput(b"evil".to_vec()), 9500.0);
        ab
    }

    fn sealed() -> CertifiedBundle {
        CertifiedBundle::seal(7, 3, &sample_antibody(), KEY).expect("seal")
    }

    #[test]
    fn seal_verify_roundtrip() {
        let b = sealed();
        let ab = b.verify(KEY).expect("verify");
        assert_eq!(ab.exploit_input(), Some(b"evil".as_slice()));
        assert_eq!(ab.releases.len(), 3);
    }

    #[test]
    fn seal_requires_evidence() {
        let mut ab = Antibody::new();
        ab.push(AntibodyItem::Signature(exact_from(b"x")), 1.0);
        assert!(CertifiedBundle::seal(0, 0, &ab, KEY).is_none());
    }

    #[test]
    fn wrong_key_rejected() {
        let b = sealed();
        assert_eq!(b.verify(KEY ^ 1), Err(CertifyError::TagMismatch));
    }

    #[test]
    fn wire_roundtrip_is_lossless() {
        let b = sealed();
        let bytes = b.to_bytes();
        let back = CertifiedBundle::from_bytes(&bytes).expect("decode");
        assert_eq!(back, b);
        assert!(back.verify(KEY).is_ok());
    }

    #[test]
    fn every_truncation_fails_closed() {
        let bytes = sealed().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CertifiedBundle::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn unknown_cert_version_is_rejected() {
        let mut bytes = sealed().to_bytes();
        assert_eq!(bytes[4], CERT_VERSION);
        bytes[4] = CERT_VERSION + 1;
        assert_eq!(
            CertifiedBundle::from_bytes(&bytes),
            Err(CertifyError::BadVersion(CERT_VERSION + 1))
        );
    }

    #[test]
    fn single_bit_flips_never_verify() {
        // Flip any single bit of the wire image: either the decode
        // fails, or the decoded bundle fails verification. Never does a
        // tampered image yield a verified antibody, and never a panic.
        let b = sealed();
        let bytes = b.to_bytes();
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x10;
            if let Ok(decoded) = CertifiedBundle::from_bytes(&m) {
                assert!(
                    decoded.verify(KEY).is_err(),
                    "bit flip at byte {i} must not verify"
                );
            }
        }
    }

    #[test]
    fn forgeries_are_rejected_in_layers() {
        let b = sealed();
        // Outsider forgery: bad tag, caught immediately.
        assert_eq!(
            b.forged_bad_tag().verify(KEY),
            Err(CertifyError::TagMismatch)
        );
        // Insider forgery: corrupt payload with a valid tag — tag check
        // passes, so the payload decoder / evidence check must catch it.
        for at in 0..b.antibody_bytes.len() {
            let f = b.forged_corrupt_payload(KEY, at);
            let want = keyed_tag(KEY, f.producer, f.seq, &f.antibody_bytes, &f.evidence);
            assert_eq!(f.tag, want, "insider forgery has a valid tag");
            match f.verify(KEY) {
                Err(
                    CertifyError::CorruptAntibody(_)
                    | CertifyError::EvidenceMismatch
                    | CertifyError::NoEvidence,
                ) => {}
                Ok(ab) => {
                    // A byte flip may land in "don't care" bits (e.g.
                    // inside an at_ms float) and decode to a consistent
                    // antibody; that is corruption the cheap layer can't
                    // see, but the evidence must still match.
                    assert_eq!(ab.exploit_input(), Some(f.evidence.as_slice()));
                }
                Err(e) => panic!("unexpected rejection {e:?} for flip at {at}"),
            }
        }
        // Insider forgery: mismatched evidence with a valid tag.
        let f = b.forged_mismatched_evidence(KEY, b"benign".to_vec());
        assert_eq!(f.verify(KEY), Err(CertifyError::EvidenceMismatch));
    }

    #[test]
    fn tag_is_deterministic_and_binds_identity() {
        let ab = sample_antibody();
        let a = CertifiedBundle::seal(7, 3, &ab, KEY).unwrap();
        let b = CertifiedBundle::seal(7, 3, &ab, KEY).unwrap();
        assert_eq!(a.tag, b.tag, "sealing is deterministic");
        let other_producer = CertifiedBundle::seal(8, 3, &ab, KEY).unwrap();
        assert_ne!(a.tag, other_producer.tag, "tag binds producer id");
        let other_seq = CertifiedBundle::seal(7, 4, &ab, KEY).unwrap();
        assert_ne!(a.tag, other_seq.tag, "tag binds sequence number");
    }
}
