//! # antibody — VSEFs, input signatures, and antibody distribution
//!
//! Paper §3.3: after analysis, Sweeper derives two kinds of antibodies —
//! [`vsef::VsefSpec`] vulnerability-specific execution filters (the same
//! checks the heavyweight tools perform, but pinned to the handful of
//! instructions the analysis implicated, so cheap enough for production)
//! and [`signature::Signature`] input filters (exact-match first, with
//! substring and Polygraph-style token-sequence generalizations).
//!
//! [`bundle::Antibody`] packages them for piecemeal distribution (each
//! analysis stage's result is released as soon as it exists) together
//! with the exploit-triggering input, and [`bundle::verify`] implements
//! consumer-side sandboxed verification. VSEF addresses are distributed
//! normalized to the nominal layout and rebased per-host
//! ([`vsef::VsefSpec::rebase`]) because every host randomizes its own
//! address space.

pub mod bundle;
pub mod certify;
pub mod signature;
pub mod vsef;
pub mod wire;

pub use bundle::{verify, Antibody, AntibodyItem, Release, Verification};
pub use certify::{verify_with_sandbox, CertifiedBundle, CertifyError};
pub use signature::{
    exact_from, substring_from_taint, tokens_from_samples, Signature, SignatureSet,
};
pub use vsef::{rebase_addr, Detection, VsefRuntime, VsefSpec};
pub use wire::BundleError;
