//! Input signatures (paper §3.3).
//!
//! Sweeper starts with *exact-match* signatures ("very low false
//! positives, and impervious to malicious training") because VSEFs
//! provide the safety net, then optionally generalizes: a substring
//! signature covering the taint-implicated bytes, or a token-sequence
//! signature (Polygraph-style ordered disjoint substrings) derived from
//! multiple exploit samples.

/// A deployable input signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signature {
    /// Matches only the exact exploit bytes.
    Exact(Vec<u8>),
    /// Matches any input containing the substring.
    Substring(Vec<u8>),
    /// Matches inputs containing all tokens, in order (Polygraph-lite).
    TokenSeq(Vec<Vec<u8>>),
}

impl Signature {
    /// Whether `input` matches this signature.
    pub fn matches(&self, input: &[u8]) -> bool {
        match self {
            Signature::Exact(e) => input == e.as_slice(),
            Signature::Substring(s) => {
                !s.is_empty() && input.windows(s.len()).any(|w| w == s.as_slice())
            }
            Signature::TokenSeq(tokens) => {
                let mut pos = 0usize;
                for t in tokens {
                    if t.is_empty() {
                        continue;
                    }
                    match find_from(input, pos, t) {
                        Some(at) => pos = at + t.len(),
                        None => return false,
                    }
                }
                !tokens.is_empty()
            }
        }
    }

    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Signature::Exact(_) => "exact",
            Signature::Substring(_) => "substring",
            Signature::TokenSeq(_) => "token-seq",
        }
    }
}

fn find_from(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    let avail = hay.len().checked_sub(from)?;
    if needle.len() > avail {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Build an exact-match signature from the exploit input.
pub fn exact_from(input: &[u8]) -> Signature {
    Signature::Exact(input.to_vec())
}

/// Build a substring signature from the taint-implicated byte offsets:
/// the longest contiguous implicated run, widened to `min_len` with
/// surrounding context when the run alone is too short to be selective.
pub fn substring_from_taint(input: &[u8], offsets: &[u32], min_len: usize) -> Option<Signature> {
    if offsets.is_empty() {
        return None;
    }
    let mut offs: Vec<u32> = offsets
        .iter()
        .copied()
        .filter(|&o| (o as usize) < input.len())
        .collect();
    offs.sort_unstable();
    offs.dedup();
    if offs.is_empty() {
        return None;
    }
    // Longest contiguous run.
    let (mut best_start, mut best_len) = (offs[0], 1usize);
    let (mut cur_start, mut cur_len) = (offs[0], 1usize);
    for w in offs.windows(2) {
        if w[1] == w[0] + 1 {
            cur_len += 1;
        } else {
            cur_start = w[1];
            cur_len = 1;
        }
        if cur_len > best_len {
            best_start = cur_start;
            best_len = cur_len;
        }
    }
    let mut start = best_start as usize;
    let mut end = start + best_len;
    // Widen with context to reach min_len.
    while end - start < min_len && (start > 0 || end < input.len()) {
        start = start.saturating_sub(1);
        if end < input.len() && end - start < min_len {
            end += 1;
        }
    }
    Some(Signature::Substring(input[start..end].to_vec()))
}

/// Derive an ordered token-sequence signature common to all samples
/// (for polymorphic exploits): greedy longest-common-substring chaining.
pub fn tokens_from_samples(samples: &[&[u8]], min_token: usize) -> Option<Signature> {
    if samples.len() < 2 {
        return None;
    }
    let mut tokens: Vec<Vec<u8>> = Vec::new();
    // Cursors into every sample.
    let mut cursors = vec![0usize; samples.len()];
    loop {
        // Longest substring of samples[0][cursors[0]..] present (at or
        // after each cursor) in every other sample.
        let base = &samples[0][cursors[0]..];
        let mut best: Option<(usize, usize)> = None; // (start in base, len)
        for s in 0..base.len() {
            // Grow the match at this start as far as all samples allow.
            let mut len = 0usize;
            'grow: loop {
                let cand = &base[s..s + len + 1];
                for (i, samp) in samples.iter().enumerate().skip(1) {
                    if find_from(samp, cursors[i], cand).is_none() {
                        break 'grow;
                    }
                }
                len += 1;
                if s + len >= base.len() {
                    break;
                }
            }
            if len >= min_token && best.map(|(_, bl)| len > bl).unwrap_or(true) {
                best = Some((s, len));
            }
        }
        let Some((s, len)) = best else { break };
        let token = base[s..s + len].to_vec();
        // Advance all cursors past this token.
        cursors[0] += s + len;
        for (i, samp) in samples.iter().enumerate().skip(1) {
            let at = find_from(samp, cursors[i], &token).expect("checked present");
            cursors[i] = at + token.len();
        }
        tokens.push(token);
        if tokens.len() >= 8 {
            break;
        }
    }
    if tokens.is_empty() {
        None
    } else {
        Some(Signature::TokenSeq(tokens))
    }
}

/// A deployable set of signatures (the proxy-side filter).
#[derive(Debug, Clone, Default)]
pub struct SignatureSet {
    sigs: Vec<Signature>,
}

impl SignatureSet {
    /// An empty set.
    pub fn new() -> SignatureSet {
        SignatureSet::default()
    }

    /// Add a signature.
    pub fn add(&mut self, sig: Signature) {
        if !self.sigs.contains(&sig) {
            self.sigs.push(sig);
        }
    }

    /// Whether any signature matches.
    pub fn matches(&self, input: &[u8]) -> bool {
        self.sigs.iter().any(|s| s.matches(input))
    }

    /// Number of deployed signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The signatures.
    pub fn all(&self) -> &[Signature] {
        &self.sigs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_only_identical() {
        let s = exact_from(b"GET /evil");
        assert!(s.matches(b"GET /evil"));
        assert!(!s.matches(b"GET /evil "));
        assert!(!s.matches(b"get /evil"));
    }

    #[test]
    fn substring_matches_anywhere() {
        let s = Signature::Substring(b"~~~~@".to_vec());
        assert!(s.matches(b"ftp://~~~~@host/"));
        assert!(!s.matches(b"ftp://bob@host/"));
        assert!(
            !Signature::Substring(Vec::new()).matches(b"x"),
            "empty never matches"
        );
    }

    #[test]
    fn token_seq_requires_order() {
        let s = Signature::TokenSeq(vec![b"Directory ".to_vec(), b"Entry ".to_vec()]);
        assert!(s.matches(b"Directory a\nEntry b\n"));
        assert!(!s.matches(b"Entry b\nDirectory a\n"), "wrong order");
        assert!(!s.matches(b"Directory a\n"));
    }

    #[test]
    fn taint_substring_picks_longest_run() {
        let input = b"GET /AAAABBBBCCCC HTTP/1.0";
        // Offsets 9..17 contiguous; 2 isolated.
        let offsets: Vec<u32> = (9..17).chain([2]).collect();
        let sig = substring_from_taint(input, &offsets, 4).expect("sig");
        match &sig {
            Signature::Substring(s) => assert_eq!(s, b"BBBBCCCC"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn taint_substring_widens_short_runs() {
        let input = b"abcdefgh";
        let sig = substring_from_taint(input, &[3], 4).expect("sig");
        match &sig {
            Signature::Substring(s) => {
                assert_eq!(s.len(), 4);
                assert!(input.windows(4).any(|w| w == s.as_slice()));
                assert!(s.contains(&b'd'), "covers the implicated byte");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn taint_substring_handles_edges() {
        assert!(substring_from_taint(b"abc", &[], 2).is_none());
        assert!(
            substring_from_taint(b"abc", &[99], 2).is_none(),
            "out of range"
        );
        let s = substring_from_taint(b"ab", &[0, 1], 8).expect("sig");
        match s {
            Signature::Substring(v) => assert_eq!(v, b"ab", "capped at input length"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tokens_from_polymorphic_samples() {
        let a = b"GET /AAAA HTTP/1.0\nReferer: gopher://x/\n";
        let b = b"GET /zzzz HTTP/1.0\nReferer: wais://y/\n";
        let sig = tokens_from_samples(&[a.as_slice(), b.as_slice()], 4).expect("sig");
        // The common structure matches both samples and a fresh variant.
        assert!(sig.matches(a));
        assert!(sig.matches(b));
        assert!(sig.matches(b"GET /qq HTTP/1.0\nReferer: telnet://z/\n"));
        // And not a plain benign request without a Referer.
        assert!(!sig.matches(b"POST /form\n"));
    }

    #[test]
    fn signature_set_dedups_and_matches() {
        let mut set = SignatureSet::new();
        set.add(exact_from(b"x"));
        set.add(exact_from(b"x"));
        set.add(Signature::Substring(b"evil".to_vec()));
        assert_eq!(set.len(), 2);
        assert!(set.matches(b"x"));
        assert!(set.matches(b"so evil input"));
        assert!(!set.matches(b"benign"));
    }
}
