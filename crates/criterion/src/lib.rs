//! # criterion (offline shim)
//!
//! A minimal, dependency-free re-implementation of the slice of the
//! `criterion` benchmarking API this workspace uses. The real crate
//! cannot be fetched in the offline build environment, so this shim
//! provides the same surface — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`], [`black_box`], `criterion_group!` and
//! `criterion_main!` — backed by a simple wall-clock timer.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! adaptive batches until a small time budget is spent; the mean
//! iteration time is reported on stdout. This is deliberately modest —
//! the goal is honest relative numbers and a stable API, not
//! statistical machinery.

use std::time::{Duration, Instant};

/// Re-exported for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// Minimum measured iterations per benchmark.
const MIN_ITERS: u64 = 10;
/// Soft wall-clock budget per benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// How the measured routine's input is sized/batched (`iter_batched`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per measured call; suitable for small inputs.
    SmallInput,
    /// Accepted for API compatibility; treated like `SmallInput`.
    LargeInput,
}

/// Declared throughput of one iteration, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing accumulator handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Measure `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if self.iters >= MIN_ITERS && started.elapsed() >= TIME_BUDGET {
                break;
            }
        }
    }

    /// Measure `routine` over fresh inputs produced by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            if self.iters >= MIN_ITERS && started.elapsed() >= TIME_BUDGET {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<44} (no iterations)");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) if per_iter > 0.0 => {
                format!("  {:>10.1} elem/s", e as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{name:<44} {:>12}  ({} iters){rate}",
            format_time(per_iter),
            self.iters
        );
    }
}

/// Render seconds-per-iteration with a human unit.
fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark driver (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Build a driver, honouring an optional substring filter from the
    /// command line (`cargo bench -- <filter>`).
    pub fn from_args() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }

    fn enabled(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Criterion {
        let name = name.as_ref();
        if self.enabled(name) {
            let mut b = Bencher::new();
            f(&mut b);
            b.report(name, None);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's adaptive timer
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        if self.parent.enabled(&full) {
            let mut b = Bencher::new();
            f(&mut b);
            b.report(&full, self.throughput);
        }
        self
    }

    /// Close the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Generated benchmark group runner.
        pub fn $group() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new();
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters >= MIN_ITERS);
        assert_eq!(n, b.iters + 1); // +1 warm-up
    }

    #[test]
    fn group_filter_matches_full_name() {
        let mut c = Criterion {
            filter: Some("grp/x".into()),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("x", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
