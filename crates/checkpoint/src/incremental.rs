//! The incremental checkpoint representation: dirty-page delta records
//! over a content-hash deduplicating page store.
//!
//! A full-copy checkpoint clones the whole `Machine` (O(mapped pages)
//! `Arc` bumps). The incremental engine instead *interns* only the pages
//! whose write generation advanced since the previous capture into a
//! [`DedupeStore`] — identical page contents anywhere across the ring
//! share one store slot — and records a cumulative `page -> (slot, gen)`
//! table per snapshot (16 bytes per page, no data). Reconstruction
//! ([`DeltaRecord::materialize`]) rebuilds a `Machine` from the record's
//! machine skeleton plus the store, verifies the full-image digest
//! captured at take time, and is bit-identical to a full clone — a
//! property the manager's `Differential` engine and the
//! `checkpoint_incremental` proptests enforce page by page.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use svm::mem::{Mem, Page, PAGE_SIZE};
use svm::Machine;

/// FNV-1a over a byte slice (the workspace's standard offline hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content digest of one page.
pub fn page_digest(page: &Page) -> u64 {
    fnv1a(&page.0[..])
}

/// Deterministic digest of a full address-space image: page numbers,
/// per-page write generations and contents, the global write watermark
/// and the NX flag. Two `Mem`s with equal digests are observably
/// identical to the guest *and* to the generation-keyed caches above it.
pub fn mem_digest(mem: &Mem) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (pno, gen) in mem.page_table() {
        fold(pno as u64);
        fold(gen);
        fold(page_digest_bytes(mem.page_bytes(pno).expect("mapped")));
    }
    fold(mem.write_seq());
    fold(mem.nx as u64);
    h
}

fn page_digest_bytes(bytes: &[u8; PAGE_SIZE]) -> u64 {
    fnv1a(&bytes[..])
}

/// A key into the [`DedupeStore`] (derived from the page's content hash,
/// probed past collisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey(u64);

struct StoreSlot {
    data: Arc<Page>,
    /// Content digest of `data` (collision verification).
    digest: u64,
    /// How many delta-record entries reference this slot; the slot is
    /// compacted away when the count returns to zero.
    refs: u64,
}

/// Running statistics of a [`DedupeStore`] (all monotone counters, safe
/// to export as absolute metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pages interned that created a fresh slot.
    pub inserted: u64,
    /// Pages interned that deduplicated against a live slot.
    pub dedup_hits: u64,
    /// Slots compacted after their last reference was released.
    pub compacted: u64,
    /// Slots forcibly evicted by the chaos seam.
    pub force_evicted: u64,
}

/// Content-addressed, reference-counted page storage shared by every
/// incremental snapshot in a manager's ring.
///
/// Memory stays bounded: the store holds at most one copy of each
/// *distinct* page content referenced by a retained snapshot, and
/// compaction drops a slot the moment the last referencing snapshot is
/// evicted.
#[derive(Default)]
pub struct DedupeStore {
    slots: HashMap<u64, StoreSlot>,
    stats: StoreStats,
}

impl DedupeStore {
    /// An empty store.
    pub fn new() -> DedupeStore {
        DedupeStore::default()
    }

    /// Intern a captured page: returns the key of the slot holding this
    /// exact content, bumping its reference count. Hash collisions are
    /// verified byte-for-byte and resolved by quadratic-free re-probing
    /// (key + odd constant), so two different contents never share a
    /// slot.
    pub fn intern(&mut self, data: Arc<Page>) -> PageKey {
        let digest = page_digest(&data);
        let mut key = digest;
        loop {
            match self.slots.get_mut(&key) {
                Some(slot) if slot.digest == digest && slot.data.0[..] == data.0[..] => {
                    slot.refs += 1;
                    self.stats.dedup_hits += 1;
                    return PageKey(key);
                }
                Some(_) => key = key.wrapping_add(0x9e37_79b9_7f4a_7c15),
                None => {
                    self.slots.insert(
                        key,
                        StoreSlot {
                            data,
                            digest,
                            refs: 1,
                        },
                    );
                    self.stats.inserted += 1;
                    return PageKey(key);
                }
            }
        }
    }

    /// The page behind `key`, if the slot is still live.
    pub fn get(&self, key: PageKey) -> Option<Arc<Page>> {
        self.slots.get(&key.0).map(|s| Arc::clone(&s.data))
    }

    /// Release one reference to `key`, compacting the slot when the last
    /// reference drops.
    pub fn release(&mut self, key: PageKey) {
        if let Some(slot) = self.slots.get_mut(&key.0) {
            slot.refs = slot.refs.saturating_sub(1);
            if slot.refs == 0 {
                self.slots.remove(&key.0);
                self.stats.compacted += 1;
            }
        }
    }

    /// Number of live slots (distinct page contents retained).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Chaos seam: forcibly evict one live slot *despite outstanding
    /// references* — the dedupe-store eviction race. Any snapshot whose
    /// delta chain references the evicted content can no longer be
    /// materialized (its digest verification fails closed), which must
    /// degrade to a restart, never a panic or a silently-wrong rollback.
    /// Evicts the smallest live key for determinism; returns it.
    pub fn chaos_evict_one(&mut self) -> Option<PageKey> {
        let key = *self.slots.keys().min()?;
        self.slots.remove(&key);
        self.stats.force_evicted += 1;
        Some(PageKey(key))
    }
}

/// One incremental snapshot: a machine skeleton (cpu, heap, net, clock,
/// layout — everything but the page table) plus a cumulative
/// `page -> (store key, write gen)` table and the full-image digest for
/// verification at reconstruction time.
pub struct DeltaRecord {
    /// The checkpointed machine with `mem` reduced to its skeleton
    /// (permissions, regions, NX, `write_seq` — an empty page table).
    meta: Machine,
    /// Cumulative page table: every mapped page, referenced by store key.
    pages: BTreeMap<u32, (PageKey, u64)>,
    /// Pages newly interned by this snapshot (the delta; the rest of
    /// `pages` was inherited from the previous record or the drain).
    pub delta_len: usize,
    /// `mem_digest` of the captured image, verified on materialize.
    image_digest: u64,
}

impl DeltaRecord {
    /// Capture `m` incrementally: `prev` is the previous record's
    /// cumulative table (empty for the base snapshot) and `pending` the
    /// pre-copy drain's already-interned dirty pages. Only pages whose
    /// generation advanced past both are interned now — the snapshot
    /// instant is O(changed-since-drain).
    pub fn capture(
        m: &Machine,
        store: &mut DedupeStore,
        prev: &BTreeMap<u32, (PageKey, u64)>,
        pending: &BTreeMap<u32, (PageKey, u64)>,
    ) -> DeltaRecord {
        let mut pages = BTreeMap::new();
        let mut delta_len = 0usize;
        for (pno, gen) in m.mem.page_table() {
            // Prefer, in order: a pending drained capture at the live
            // generation, the previous record's entry at the live
            // generation, else intern fresh. Equal generations guarantee
            // identical bytes (the write-gen ladder contract).
            let entry = match pending.get(&pno) {
                Some(&(key, g)) if g == gen => {
                    store_bump(store, key);
                    (key, g)
                }
                _ => match prev.get(&pno) {
                    Some(&(key, g)) if g == gen => {
                        store_bump(store, key);
                        (key, g)
                    }
                    _ => {
                        let (arc, g) = m.mem.page_arc(pno).expect("mapped");
                        delta_len += 1;
                        (store.intern(arc), g)
                    }
                },
            };
            pages.insert(pno, entry);
        }
        let mut meta = m.clone();
        meta.mem = m.mem.skeleton();
        DeltaRecord {
            meta,
            pages,
            delta_len,
            image_digest: mem_digest(&m.mem),
        }
    }

    /// The cumulative page table (for chaining the next capture).
    pub fn pages(&self) -> &BTreeMap<u32, (PageKey, u64)> {
        &self.pages
    }

    /// The stored full-image digest.
    pub fn image_digest(&self) -> u64 {
        self.image_digest
    }

    /// Connection count and clock live on the meta machine if needed.
    pub fn meta(&self) -> &Machine {
        &self.meta
    }

    /// Reconstruct the checkpointed machine from the skeleton plus the
    /// store, verifying the full-image digest captured at take time.
    /// Returns `None` — fail closed, caller degrades to restart — when
    /// any referenced slot vanished (dedupe-store eviction race) or the
    /// rebuilt image's digest disagrees (delta-chain truncation or any
    /// other corruption).
    pub fn materialize(&self, store: &DedupeStore) -> Option<Machine> {
        let mut m = self.meta.clone();
        for (&pno, &(key, gen)) in &self.pages {
            let data = store.get(key)?;
            m.mem.restore_page(pno, data, gen);
        }
        if mem_digest(&m.mem) != self.image_digest {
            return None;
        }
        Some(m)
    }

    /// Release every store reference this record holds (eviction path).
    pub fn release(&self, store: &mut DedupeStore) {
        for &(key, _) in self.pages.values() {
            store.release(key);
        }
    }

    /// Chaos seam: truncate the delta chain by dropping the record's
    /// highest-numbered page entries (modelling a lost delta segment).
    /// Returns how many entries were dropped. Materialization afterwards
    /// fails its digest verification and degrades to a restart.
    pub fn chaos_truncate(&mut self, store: &mut DedupeStore, drop_pages: usize) -> usize {
        let mut dropped = 0;
        for _ in 0..drop_pages {
            let Some((&pno, _)) = self.pages.iter().next_back() else {
                break;
            };
            if let Some((key, _)) = self.pages.remove(&pno) {
                store.release(key);
                dropped += 1;
            }
        }
        dropped
    }
}

/// Bump a slot's refcount for an entry inherited from a previous table.
fn store_bump(store: &mut DedupeStore, key: PageKey) {
    if let Some(slot) = store.slots.get_mut(&key.0) {
        slot.refs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(b: u8) -> Arc<Page> {
        let mut p = Page::zeroed();
        p.0[0] = b;
        p.0[PAGE_SIZE - 1] = b.wrapping_mul(3);
        Arc::new(p)
    }

    #[test]
    fn store_dedupes_identical_content_and_compacts() {
        let mut store = DedupeStore::new();
        let a = store.intern(page_with(1));
        let b = store.intern(page_with(1));
        let c = store.intern(page_with(2));
        assert_eq!(a, b, "identical contents share a slot");
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().dedup_hits, 1);
        assert_eq!(store.stats().inserted, 2);
        store.release(a);
        assert_eq!(store.len(), 2, "one reference still outstanding");
        store.release(b);
        assert_eq!(store.len(), 1, "last release compacts the slot");
        assert!(store.get(a).is_none());
        assert!(store.get(c).is_some());
        assert_eq!(store.stats().compacted, 1);
    }

    #[test]
    fn forced_eviction_breaks_lookup_but_never_panics() {
        let mut store = DedupeStore::new();
        let a = store.intern(page_with(7));
        let evicted = store.chaos_evict_one().expect("one slot live");
        assert_eq!(evicted, a);
        assert!(store.get(a).is_none(), "evicted despite refs");
        store.release(a); // releasing a vanished key is a no-op
        assert_eq!(store.stats().force_evicted, 1);
        assert!(store.chaos_evict_one().is_none(), "empty store");
    }

    #[test]
    fn equal_gens_share_slots_across_records() {
        use svm::loader::Aslr;
        let prog = svm::asm::assemble(
            ".text\nmain:\n movi r1, v\nloop:\n ld r0, [r1, 0]\n addi r0, r0, 1\n st [r1, 0], r0\n jmp loop\n.data\nv: .word 0\n",
        )
        .expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        let mut store = DedupeStore::new();
        let empty = BTreeMap::new();
        let base = DeltaRecord::capture(&m, &mut store, &empty, &empty);
        assert_eq!(base.delta_len, m.mem.mapped_pages(), "base interns all");
        m.run(&mut svm::NopHook, 2000);
        let next = DeltaRecord::capture(&m, &mut store, base.pages(), &empty);
        assert!(
            next.delta_len < base.delta_len,
            "only dirtied pages re-interned: {} vs {}",
            next.delta_len,
            base.delta_len
        );
        // Both records materialize bit-identically to their captures.
        let rb = base.materialize(&store).expect("base materializes");
        assert_eq!(mem_digest(&rb.mem), base.image_digest());
        let rn = next.materialize(&store).expect("next materializes");
        assert_eq!(mem_digest(&rn.mem), next.image_digest());
        assert_eq!(rn.cpu, m.cpu);
        // Eviction of the base releases only its refs; next survives.
        base.release(&mut store);
        assert!(next.materialize(&store).is_some());
    }

    #[test]
    fn truncation_and_eviction_fail_materialize_closed() {
        use svm::loader::Aslr;
        let prog = svm::asm::assemble(".text\nmain:\n halt\n").expect("asm");
        let m = Machine::boot(&prog, Aslr::off()).expect("boot");
        let mut store = DedupeStore::new();
        let empty = BTreeMap::new();
        let rec = DeltaRecord::capture(&m, &mut store, &empty, &empty);
        assert!(rec.materialize(&store).is_some());
        // Dedupe-store eviction race: a referenced slot vanishes.
        store.chaos_evict_one().expect("live slot");
        assert!(rec.materialize(&store).is_none(), "fails closed");
        // Delta-chain truncation on a fresh capture.
        let mut store2 = DedupeStore::new();
        let mut rec2 = DeltaRecord::capture(&m, &mut store2, &empty, &empty);
        assert!(rec2.chaos_truncate(&mut store2, 2) > 0);
        assert!(rec2.materialize(&store2).is_none(), "fails closed");
    }
}
