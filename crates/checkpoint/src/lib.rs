//! # checkpoint — lightweight checkpointing, replay, and recovery
//!
//! The Rx/Flashback analogue of the reproduction (paper §3.1): periodic
//! in-memory copy-on-write checkpoints ([`manager`]), a logging/filtering
//! network proxy ([`proxy`]), sandboxed rollback-and-re-execute sessions
//! ([`replay`]) that drive Sweeper's post-attack analysis, and
//! output-commit-aware recovery ([`recovery`]) that resumes service
//! without the attacker's input — or falls back to demanding a restart
//! when the re-execution diverges from committed output.

pub mod domains;
pub mod incremental;
pub mod manager;
pub mod proxy;
pub mod recovery;
pub mod replay;
pub mod syscall_log;

pub use domains::{recovery_digest, DomainLedger, DomainRecovery, DomainRefusal};
pub use incremental::{mem_digest, DedupeStore, DeltaRecord, PageKey, StoreStats};
pub use manager::{Checkpoint, CheckpointManager, CkptId, Engine};
pub use proxy::{InputFilter, LoggedConn, Proxy};
pub use recovery::{
    recover, recover_domain, recover_with_fault, DomainConns, RecoveryKind, RecoveryOutcome,
    ResumeReport,
};
pub use replay::{NoFault, ReplayEnd, ReplayFault, ReplayOutcome, ReplaySession};
pub use syscall_log::{divergence, Divergence, SyscallLog, SyscallLogError, SyscallRecord};
