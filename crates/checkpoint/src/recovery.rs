//! Recovery: promote a drop-the-attack replay to the live process.
//!
//! Paper §3.1/§4.1: once the attack input is identified, Sweeper rolls
//! back, re-executes without the malicious input, and resumes service.
//! Two consistency concerns are handled here:
//!
//! - **Output commit**: bytes already released to clients must not be
//!   re-sent. The proxy remembers the exact released bytes; after the
//!   recovery replay they are treated as already delivered.
//! - **Session consistency** (the Flashback-style check): if a replayed
//!   connection's output *diverges* from bytes already released — the
//!   re-execution was sensitive to the dropped input — recovery aborts
//!   and reports that a restart is required, the fallback §4.1 describes.

use svm::Machine;

use crate::manager::{CheckpointManager, CkptId};
use crate::proxy::Proxy;
use crate::replay::{NoFault, ReplayEnd, ReplayFault, ReplaySession};

/// Outcome of a recovery attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The replayed machine was promoted to live; service continues.
    Resumed {
        /// Virtual cycles the recovery replay consumed (service pause).
        pause_cycles: u64,
        /// Post-checkpoint connections that were actually re-injected.
        ///
        /// Counted as the replay-segment length of the guest-id mapping
        /// (everything past the pre-checkpoint prefix), **not** as
        /// `mapping.len() - conns_at`: when previously dropped attack
        /// connections shrink the unfiltered log below `conns_at`, the
        /// old subtraction silently under-reported replay work as 0.
        replayed_conns: usize,
        /// Connections retroactively dropped by *this* recovery that had
        /// been delivered to the guest — excluded replay work, reported
        /// separately so the Figure 5 narration can't conflate "nothing
        /// replayed" with "attack connections dropped".
        dropped_conns: usize,
    },
    /// Replay diverged from committed output; a restart is required.
    RestartRequired {
        /// Log id of the diverging connection.
        diverged_conn: usize,
    },
    /// Replay itself faulted (e.g. a second attack in the window) —
    /// the caller should widen the drop set and retry.
    ReplayFaulted(svm::Fault),
}

/// Attempt recovery.
///
/// Replays from checkpoint `ckpt` with the attack connections `drop_ids`
/// excluded, verifies every committed output prefix, and on success marks
/// the dropped connections in the proxy and replaces `live` with the
/// recovered machine. On failure `live` and the proxy are untouched.
pub fn recover(
    live: &mut Machine,
    mgr: &CheckpointManager,
    proxy: &mut Proxy,
    ckpt: CkptId,
    drop_ids: &[usize],
) -> RecoveryOutcome {
    recover_with_fault(live, mgr, proxy, ckpt, drop_ids, &mut NoFault)
}

/// [`recover`], with `fault` mediating the recovery replay's input
/// injection (see [`ReplayFault`]).
///
/// Used by the chaos harness to model a lossy recovery path. Faults can
/// only make recovery *more* conservative: a corrupted, dropped or
/// reordered input either replays to the same committed output (resume)
/// or trips the session-consistency check (restart required) — the live
/// machine and proxy are untouched unless the check passes.
pub fn recover_with_fault(
    live: &mut Machine,
    mgr: &CheckpointManager,
    proxy: &mut Proxy,
    ckpt: CkptId,
    drop_ids: &[usize],
    fault: &mut dyn ReplayFault,
) -> RecoveryOutcome {
    let Some(session) = ReplaySession::new(mgr, proxy, ckpt) else {
        return RecoveryOutcome::RestartRequired {
            diverged_conn: usize::MAX,
        };
    };
    let out = session
        .dropping(drop_ids)
        .run_with_fault(&mut svm::NopHook, fault);
    match out.end {
        ReplayEnd::Faulted(f) => return RecoveryOutcome::ReplayFaulted(f),
        ReplayEnd::Quiescent | ReplayEnd::Halted(_) | ReplayEnd::StuckOnRead => {}
        ReplayEnd::BudgetExhausted => {
            return RecoveryOutcome::RestartRequired {
                diverged_conn: usize::MAX,
            }
        }
    }
    let replayed = out.machine;

    // Build the replayed machine's guest-id -> log-id mapping: the first
    // `conns_at` guest connections are the pre-checkpoint unfiltered log
    // entries (in order), followed by the replay set.
    let conns_at = mgr.get(ckpt).map(|c| c.conns_at).unwrap_or(0);
    let mut mapping: Vec<usize> = proxy
        .log()
        .iter()
        .filter(|c| !c.filtered)
        .take(conns_at)
        .map(|c| c.log_id)
        .collect();
    // The prefix can be *shorter* than `conns_at` when earlier recoveries
    // retroactively dropped pre-checkpoint connections; remember its real
    // length so the replay-work accounting below cannot be skewed by it.
    let prefix_len = mapping.len();
    mapping.extend(
        proxy
            .replay_set(conns_at, drop_ids)
            .iter()
            .map(|c| c.log_id),
    );

    // Session-consistency check against committed output.
    for (guest_id, &log_id) in mapping.iter().enumerate() {
        let Some(lc) = proxy.get(log_id) else {
            continue;
        };
        if lc.released.is_empty() {
            continue;
        }
        let got = replayed
            .net
            .conn(guest_id as u32)
            .map(|c| c.output.as_slice())
            .unwrap_or(&[]);
        if got.len() < lc.released.len() || got[..lc.released.len()] != lc.released[..] {
            return RecoveryOutcome::RestartRequired {
                diverged_conn: log_id,
            };
        }
    }

    // Consistent: drop the attack connections from the log so that future
    // `release_outputs` walks line up with the recovered machine, then
    // promote the replayed machine to live. Count how many of the dropped
    // ids were genuinely delivered connections (excluded replay work)
    // *before* marking, so repeated drops aren't double-counted.
    let dropped_conns = drop_ids
        .iter()
        .filter(|id| proxy.get(**id).is_some_and(|c| !c.filtered))
        .count();
    for id in drop_ids {
        proxy.mark_dropped(*id);
    }
    *live = replayed;
    RecoveryOutcome::Resumed {
        pause_cycles: out.cycles,
        replayed_conns: mapping.len() - prefix_len,
        dropped_conns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::{NopHook, Status};

    /// Echo server; input containing 'X' crashes it (stand-in exploit);
    /// input containing 'R' makes the reply depend on a per-boot counter
    /// (stand-in for the SSL-session-key sensitivity of §4.1).
    fn server() -> Machine {
        let src = format!(
            "
.text
main:
    sys accept
    mov r4, r0
    mov r0, r4
    movi r1, buf
    movi r2, 64
    sys read
    mov r5, r0
    movi r0, buf
    movi r1, 'X'
    call strchr
    cmpi r0, 0
    jnz boom
    movi r0, buf
    movi r1, 'R'
    call strchr
    cmpi r0, 0
    jnz counter_reply
    mov r0, r4
    movi r1, buf
    mov r2, r5
    sys write
    mov r0, r4
    sys close
    jmp main
counter_reply:
    movi r1, count
    ld r2, [r1, 0]
    addi r2, r2, 1
    st [r1, 0], r2
    addi r2, r2, '0'
    movi r1, cbuf
    stb [r1, 0], r2
    mov r0, r4
    movi r2, 1
    sys write
    mov r0, r4
    sys close
    jmp main
boom:
    movi r1, 0
    ld r0, [r1, 0]
    jmp main
.data
buf: .space 64
cbuf: .space 4
count: .word 0
{LIB_ASM}
"
        );
        Machine::boot(&assemble(&src).expect("asm"), Aslr::off()).expect("boot")
    }

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 100_000_000)
    }

    struct World {
        m: Machine,
        mgr: CheckpointManager,
        proxy: Proxy,
        ckpt: CkptId,
    }

    fn attacked_world() -> World {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        proxy.offer(&mut m, b"first".to_vec(), &[]);
        drive(&mut m);
        proxy.release_outputs(&m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]);
        drive(&mut m);
        proxy.offer(&mut m, b"third".to_vec(), &[]);
        assert!(matches!(m.status(), Status::Faulted(_)));
        World {
            m,
            mgr,
            proxy,
            ckpt,
        }
    }

    #[test]
    fn recovery_resumes_service_without_the_attack() {
        let mut w = attacked_world();
        let out = recover(&mut w.m, &w.mgr, &mut w.proxy, w.ckpt, &[1]);
        match out {
            RecoveryOutcome::Resumed {
                replayed_conns,
                pause_cycles,
                dropped_conns,
            } => {
                assert_eq!(replayed_conns, 2, "first + third replayed");
                assert_eq!(dropped_conns, 1, "the attack connection");
                assert!(pause_cycles > 0);
            }
            other => panic!("{other:?}"),
        }
        // Live machine is healthy and served the third request.
        assert!(!matches!(w.m.status(), Status::Faulted(_)));
        let rel = w.proxy.release_outputs(&w.m);
        // "first" was already committed pre-recovery; only "third" is new.
        assert_eq!(rel, vec![(2, b"third".to_vec())]);
        // And the server keeps serving.
        w.proxy.offer(&mut w.m, b"fourth".to_vec(), &[]);
        drive(&mut w.m);
        let rel2 = w.proxy.release_outputs(&w.m);
        assert_eq!(rel2, vec![(3, b"fourth".to_vec())]);
    }

    #[test]
    fn divergent_replay_demands_restart() {
        // §4.1 scenario: dropping the attack changes a *later* replayed
        // connection's output that the client has already seen.
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        proxy.offer(&mut m, b"R".to_vec(), &[]); // id 0 -> "1", committed
        drive(&mut m);
        proxy.offer(&mut m, b"R".to_vec(), &[]); // id 1 -> "2", committed
        drive(&mut m);
        proxy.offer(&mut m, b"R".to_vec(), &[]); // id 2 -> "3", committed
        drive(&mut m);
        proxy.release_outputs(&m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]); // id 3 faults
        drive(&mut m);
        assert!(matches!(m.status(), Status::Faulted(_)));
        // Analysis (wrongly or rightly) decides connections 1 and 3 were
        // the attack. Without connection 1, the counter replay gives
        // connection 2 the reply "2" — but the client already saw "3".
        let out = recover(&mut m, &mgr, &mut proxy, ckpt, &[1, 3]);
        assert!(
            matches!(out, RecoveryOutcome::RestartRequired { diverged_conn: 2 }),
            "got {out:?}"
        );
        // Live machine and proxy untouched on failure.
        assert!(matches!(m.status(), Status::Faulted(_)));
        assert!(!proxy.get(1).expect("c").filtered);
    }

    #[test]
    fn replay_fault_is_reported_when_wrong_input_dropped() {
        let mut w = attacked_world();
        // Drop the benign third connection; the attack replays and faults.
        let out = recover(&mut w.m, &w.mgr, &mut w.proxy, w.ckpt, &[2]);
        assert!(matches!(out, RecoveryOutcome::ReplayFaulted(f) if f.is_null_deref()));
        // Live machine untouched (still faulted), proxy unmodified.
        assert!(matches!(w.m.status(), Status::Faulted(_)));
        assert!(!w.proxy.get(2).expect("c").filtered);
    }

    #[test]
    fn dropped_conns_are_reported_when_nothing_replays() {
        // Regression: dropping every delivered connection produces an
        // empty replay, which the old `mapping.len() - conns_at`
        // arithmetic reported as plain "0 replayed" with no trace of the
        // excluded work. The dropped-conn count must surface it.
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m); // conns_at = 0
        proxy.offer(&mut m, b"stealth".to_vec(), &[]); // id 0: delivered, later deemed attack
        drive(&mut m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]); // id 1: faults
        drive(&mut m);
        assert!(matches!(m.status(), Status::Faulted(_)));
        let out = recover(&mut m, &mgr, &mut proxy, ckpt, &[0, 1]);
        match out {
            RecoveryOutcome::Resumed {
                replayed_conns,
                dropped_conns,
                ..
            } => {
                assert_eq!(replayed_conns, 0, "everything after the ckpt was dropped");
                assert_eq!(
                    dropped_conns, 2,
                    "both delivered attack connections are accounted as dropped work"
                );
            }
            other => panic!("{other:?}"),
        }
        // The proxy distinguishes retroactive drops from filter blocks.
        assert!(proxy.get(0).expect("c").dropped);
        assert!(proxy.get(0).expect("c").filtered);
        assert_eq!(proxy.dropped_total, 2);
        assert_eq!(proxy.filtered_total, 0, "no filter-time block happened");
        // A second recovery naming the same ids must not double-count.
        let mut m2 = server();
        drive(&mut m2);
        let out2 = recover(&mut m2, &mgr, &mut proxy, ckpt, &[0, 1]);
        if let RecoveryOutcome::Resumed { dropped_conns, .. } = out2 {
            assert_eq!(dropped_conns, 0, "already-dropped conns are not re-counted");
        } else {
            panic!("{out2:?}");
        }
        assert_eq!(proxy.dropped_total, 2);
    }

    #[test]
    fn consistent_counter_replay_resumes() {
        // Same counter server, but the committed counter output replays
        // identically when only the attack is dropped (order preserved).
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        proxy.offer(&mut m, b"R1".to_vec(), &[]);
        drive(&mut m);
        proxy.release_outputs(&m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]);
        drive(&mut m);
        let out = recover(&mut m, &mgr, &mut proxy, ckpt, &[1]);
        assert!(
            matches!(out, RecoveryOutcome::Resumed { .. }),
            "got {out:?}"
        );
    }
}
