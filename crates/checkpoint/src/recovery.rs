//! Recovery: promote a drop-the-attack replay to the live process.
//!
//! Paper §3.1/§4.1: once the attack input is identified, Sweeper rolls
//! back, re-executes without the malicious input, and resumes service.
//! Two consistency concerns are handled here:
//!
//! - **Output commit**: bytes already released to clients must not be
//!   re-sent. The proxy remembers the exact released bytes; after the
//!   recovery replay they are treated as already delivered.
//! - **Session consistency** (the Flashback-style check): if a replayed
//!   connection's output *diverges* from bytes already released — the
//!   re-execution was sensitive to the dropped input — recovery aborts
//!   and reports that a restart is required, the fallback §4.1 describes.

use svm::Machine;

use crate::domains::DomainRefusal;
use crate::manager::{CheckpointManager, CkptId};
use crate::proxy::Proxy;
use crate::replay::{NoFault, ReplayEnd, ReplayFault, ReplaySession};

/// Which rollback strategy produced a resumed machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Whole-machine rollback to the checkpoint + drop-the-attack replay.
    Full,
    /// Partial rollback of only the attacked connection's domain
    /// ([`CheckpointManager::rollback_domain`]); nothing was replayed.
    Domain,
}

impl RecoveryKind {
    /// Stable lowercase label (metrics and logs).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryKind::Full => "full",
            RecoveryKind::Domain => "domain",
        }
    }
}

/// Replay/drop work attributed to one rollback domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainConns {
    /// The domain (per-connection by default: the proxy log id).
    pub domain: u32,
    /// Connections of this domain re-injected by the recovery replay.
    pub replayed: usize,
    /// Delivered connections of this domain retroactively dropped by
    /// *this* recovery.
    pub dropped: usize,
}

/// Accounting of one successful recovery, split per recovery mode and
/// per domain — so a Domain recovery that silently fell back to Full is
/// visible in metrics, and invariant I12 (benign connections in
/// untouched domains are neither dropped nor replayed) is checkable
/// from the outcome alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeReport {
    /// Which rollback strategy ran.
    pub kind: RecoveryKind,
    /// Virtual cycles the recovery consumed (service pause).
    pub pause_cycles: u64,
    /// Guest connections that survived recovery *without* being
    /// replayed: the pre-checkpoint prefix under [`RecoveryKind::Full`],
    /// every benign connection under [`RecoveryKind::Domain`].
    pub preserved_conns: usize,
    /// Per-domain replay/drop accounting. Domains with neither replayed
    /// nor dropped work do not appear.
    pub per_domain: Vec<DomainConns>,
}

impl ResumeReport {
    /// Total connections re-injected by the recovery replay.
    ///
    /// Counted as the replay-segment length of the guest-id mapping
    /// (everything past the pre-checkpoint prefix), **not** as
    /// `mapping.len() - conns_at`: when previously dropped attack
    /// connections shrink the unfiltered log below `conns_at`, the old
    /// subtraction silently under-reported replay work as 0.
    pub fn replayed_conns(&self) -> usize {
        self.per_domain.iter().map(|d| d.replayed).sum()
    }

    /// Total delivered connections retroactively dropped by this
    /// recovery — excluded replay work, reported separately so the
    /// Figure 5 narration can't conflate "nothing replayed" with
    /// "attack connections dropped".
    pub fn dropped_conns(&self) -> usize {
        self.per_domain.iter().map(|d| d.dropped).sum()
    }

    /// Whether any domain **outside** `attacked` saw replay or drop work
    /// — the invariant-I12 predicate for a [`RecoveryKind::Domain`]
    /// resume (a Full recovery legitimately replays benign domains).
    pub fn disturbed_outside(&self, attacked: &[u32]) -> bool {
        self.per_domain
            .iter()
            .any(|d| !attacked.contains(&d.domain) && (d.replayed > 0 || d.dropped > 0))
    }
}

/// Outcome of a recovery attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The recovered machine was promoted to live; service continues.
    Resumed(ResumeReport),
    /// Replay diverged from committed output; a restart is required.
    RestartRequired {
        /// Log id of the diverging connection.
        diverged_conn: usize,
    },
    /// Replay itself faulted (e.g. a second attack in the window) —
    /// the caller should widen the drop set and retry.
    ReplayFaulted(svm::Fault),
}

/// Attempt recovery.
///
/// Replays from checkpoint `ckpt` with the attack connections `drop_ids`
/// excluded, verifies every committed output prefix, and on success marks
/// the dropped connections in the proxy and replaces `live` with the
/// recovered machine. On failure `live` and the proxy are untouched.
pub fn recover(
    live: &mut Machine,
    mgr: &CheckpointManager,
    proxy: &mut Proxy,
    ckpt: CkptId,
    drop_ids: &[usize],
) -> RecoveryOutcome {
    recover_with_fault(live, mgr, proxy, ckpt, drop_ids, &mut NoFault)
}

/// [`recover`], with `fault` mediating the recovery replay's input
/// injection (see [`ReplayFault`]).
///
/// Used by the chaos harness to model a lossy recovery path. Faults can
/// only make recovery *more* conservative: a corrupted, dropped or
/// reordered input either replays to the same committed output (resume)
/// or trips the session-consistency check (restart required) — the live
/// machine and proxy are untouched unless the check passes.
pub fn recover_with_fault(
    live: &mut Machine,
    mgr: &CheckpointManager,
    proxy: &mut Proxy,
    ckpt: CkptId,
    drop_ids: &[usize],
    fault: &mut dyn ReplayFault,
) -> RecoveryOutcome {
    let Some(session) = ReplaySession::new(mgr, proxy, ckpt) else {
        return RecoveryOutcome::RestartRequired {
            diverged_conn: usize::MAX,
        };
    };
    let out = session
        .dropping(drop_ids)
        .run_with_fault(&mut svm::NopHook, fault);
    match out.end {
        ReplayEnd::Faulted(f) => return RecoveryOutcome::ReplayFaulted(f),
        ReplayEnd::Quiescent | ReplayEnd::Halted(_) | ReplayEnd::StuckOnRead => {}
        ReplayEnd::BudgetExhausted => {
            return RecoveryOutcome::RestartRequired {
                diverged_conn: usize::MAX,
            }
        }
    }
    let replayed = out.machine;

    // Build the replayed machine's guest-id -> log-id mapping: the first
    // `conns_at` guest connections are the pre-checkpoint unfiltered log
    // entries (in order), followed by the replay set.
    let conns_at = mgr.get(ckpt).map(|c| c.conns_at).unwrap_or(0);
    let mut mapping: Vec<usize> = proxy
        .log()
        .iter()
        .filter(|c| !c.filtered)
        .take(conns_at)
        .map(|c| c.log_id)
        .collect();
    // The prefix can be *shorter* than `conns_at` when earlier recoveries
    // retroactively dropped pre-checkpoint connections; remember its real
    // length so the replay-work accounting below cannot be skewed by it.
    let prefix_len = mapping.len();
    mapping.extend(
        proxy
            .replay_set(conns_at, drop_ids)
            .iter()
            .map(|c| c.log_id),
    );

    // Session-consistency check against committed output.
    for (guest_id, &log_id) in mapping.iter().enumerate() {
        let Some(lc) = proxy.get(log_id) else {
            continue;
        };
        if lc.released.is_empty() {
            continue;
        }
        let got = replayed
            .net
            .conn(guest_id as u32)
            .map(|c| c.output.as_slice())
            .unwrap_or(&[]);
        if got.len() < lc.released.len() || got[..lc.released.len()] != lc.released[..] {
            return RecoveryOutcome::RestartRequired {
                diverged_conn: log_id,
            };
        }
    }

    // Consistent: drop the attack connections from the log so that future
    // `release_outputs` walks line up with the recovered machine, then
    // promote the replayed machine to live. Count the dropped ids that
    // were genuinely delivered connections (excluded replay work)
    // *before* marking, so repeated drops aren't double-counted.
    let mut per_domain: Vec<DomainConns> = Vec::new();
    for &log_id in &mapping[prefix_len..] {
        let domain = proxy.get(log_id).map(|c| c.domain).unwrap_or(log_id as u32);
        bump_domain(&mut per_domain, domain).replayed += 1;
    }
    for id in drop_ids {
        if proxy.get(*id).is_some_and(|c| !c.filtered) {
            let domain = proxy.get(*id).map(|c| c.domain).unwrap_or(*id as u32);
            bump_domain(&mut per_domain, domain).dropped += 1;
        }
        proxy.mark_dropped(*id);
    }
    *live = replayed;
    RecoveryOutcome::Resumed(ResumeReport {
        kind: RecoveryKind::Full,
        pause_cycles: out.cycles,
        preserved_conns: prefix_len,
        per_domain,
    })
}

fn bump_domain(per_domain: &mut Vec<DomainConns>, domain: u32) -> &mut DomainConns {
    if let Some(i) = per_domain.iter().position(|d| d.domain == domain) {
        &mut per_domain[i]
    } else {
        per_domain.push(DomainConns {
            domain,
            replayed: 0,
            dropped: 0,
        });
        per_domain.last_mut().expect("just pushed")
    }
}

/// Attempt a **partial** (domain) recovery: roll back only the dropped
/// connections' domains via [`CheckpointManager::rollback_domain`],
/// leaving every benign connection's state live — nothing is replayed,
/// nothing benign is dropped (invariant I12).
///
/// Structural preconditions are checked fail-closed before any state is
/// touched: every dropped connection must lie at or past the captured
/// service boundary, and no benign traffic may have been delivered after
/// it (either would require re-execution to subtract). On any
/// [`DomainRefusal`] the live machine and proxy are untouched and the
/// caller falls back to the full rollback/replay path ([`recover`]).
pub fn recover_domain(
    live: &mut Machine,
    mgr: &mut CheckpointManager,
    proxy: &mut Proxy,
    ckpt: CkptId,
    drop_ids: &[usize],
) -> Result<RecoveryOutcome, DomainRefusal> {
    let Some(boundary_conns) = mgr.ledger().boundary_conns() else {
        return Err(DomainRefusal::NoBoundary);
    };
    // Map each undropped log entry to its guest connection index and
    // split the delivered traffic at the boundary.
    let mut domains: Vec<u32> = Vec::new();
    let mut dropped_delivered: Vec<u32> = Vec::new();
    for (guest_idx, lc) in proxy.log().iter().filter(|c| !c.filtered).enumerate() {
        if drop_ids.contains(&lc.log_id) {
            if guest_idx < boundary_conns {
                // Its effects are baked into the boundary snapshot.
                return Err(DomainRefusal::PreBoundary);
            }
            domains.push(lc.domain);
            dropped_delivered.push(lc.domain);
        } else if guest_idx >= boundary_conns {
            // Benign traffic after the boundary would be silently
            // discarded by the truncation, not replayed.
            return Err(DomainRefusal::TrailingBenign);
        }
    }
    // Already-filtered drop ids contribute no domain (nothing delivered
    // to roll back), mirroring the full path's dropped accounting.
    let rec = mgr.rollback_domain(ckpt, live, &domains)?;
    let mut per_domain: Vec<DomainConns> = Vec::new();
    for &d in &dropped_delivered {
        bump_domain(&mut per_domain, d).dropped += 1;
    }
    for id in drop_ids {
        proxy.mark_dropped(*id);
    }
    Ok(RecoveryOutcome::Resumed(ResumeReport {
        kind: RecoveryKind::Domain,
        pause_cycles: rec.pause_cycles,
        preserved_conns: live.net.conns().len(),
        per_domain,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::{NopHook, Status};

    /// Echo server; input containing 'X' crashes it (stand-in exploit);
    /// input containing 'R' makes the reply depend on a per-boot counter
    /// (stand-in for the SSL-session-key sensitivity of §4.1).
    fn server() -> Machine {
        let src = format!(
            "
.text
main:
    sys accept
    mov r4, r0
    mov r0, r4
    movi r1, buf
    movi r2, 64
    sys read
    mov r5, r0
    movi r0, buf
    movi r1, 'X'
    call strchr
    cmpi r0, 0
    jnz boom
    movi r0, buf
    movi r1, 'R'
    call strchr
    cmpi r0, 0
    jnz counter_reply
    mov r0, r4
    movi r1, buf
    mov r2, r5
    sys write
    mov r0, r4
    sys close
    jmp main
counter_reply:
    movi r1, count
    ld r2, [r1, 0]
    addi r2, r2, 1
    st [r1, 0], r2
    addi r2, r2, '0'
    movi r1, cbuf
    stb [r1, 0], r2
    mov r0, r4
    movi r2, 1
    sys write
    mov r0, r4
    sys close
    jmp main
boom:
    movi r1, 0
    ld r0, [r1, 0]
    jmp main
.data
buf: .space 64
cbuf: .space 4
count: .word 0
{LIB_ASM}
"
        );
        Machine::boot(&assemble(&src).expect("asm"), Aslr::off()).expect("boot")
    }

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 100_000_000)
    }

    struct World {
        m: Machine,
        mgr: CheckpointManager,
        proxy: Proxy,
        ckpt: CkptId,
    }

    fn attacked_world() -> World {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        proxy.offer(&mut m, b"first".to_vec(), &[]);
        drive(&mut m);
        proxy.release_outputs(&m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]);
        drive(&mut m);
        proxy.offer(&mut m, b"third".to_vec(), &[]);
        assert!(matches!(m.status(), Status::Faulted(_)));
        World {
            m,
            mgr,
            proxy,
            ckpt,
        }
    }

    #[test]
    fn recovery_resumes_service_without_the_attack() {
        let mut w = attacked_world();
        let out = recover(&mut w.m, &w.mgr, &mut w.proxy, w.ckpt, &[1]);
        match out {
            RecoveryOutcome::Resumed(r) => {
                assert_eq!(r.kind, RecoveryKind::Full);
                assert_eq!(r.replayed_conns(), 2, "first + third replayed");
                assert_eq!(r.dropped_conns(), 1, "the attack connection");
                assert!(r.pause_cycles > 0);
                assert_eq!(r.preserved_conns, 0, "checkpoint preceded all conns");
                // Per-domain split: the attack's domain shows the drop,
                // the benign domains show the replays.
                let atk = r.per_domain.iter().find(|d| d.domain == 1).expect("atk");
                assert_eq!((atk.replayed, atk.dropped), (0, 1));
                assert!(r.disturbed_outside(&[1]), "full recovery replays benign");
            }
            other => panic!("{other:?}"),
        }
        // Live machine is healthy and served the third request.
        assert!(!matches!(w.m.status(), Status::Faulted(_)));
        let rel = w.proxy.release_outputs(&w.m);
        // "first" was already committed pre-recovery; only "third" is new.
        assert_eq!(rel, vec![(2, b"third".to_vec())]);
        // And the server keeps serving.
        w.proxy.offer(&mut w.m, b"fourth".to_vec(), &[]);
        drive(&mut w.m);
        let rel2 = w.proxy.release_outputs(&w.m);
        assert_eq!(rel2, vec![(3, b"fourth".to_vec())]);
    }

    #[test]
    fn divergent_replay_demands_restart() {
        // §4.1 scenario: dropping the attack changes a *later* replayed
        // connection's output that the client has already seen.
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        proxy.offer(&mut m, b"R".to_vec(), &[]); // id 0 -> "1", committed
        drive(&mut m);
        proxy.offer(&mut m, b"R".to_vec(), &[]); // id 1 -> "2", committed
        drive(&mut m);
        proxy.offer(&mut m, b"R".to_vec(), &[]); // id 2 -> "3", committed
        drive(&mut m);
        proxy.release_outputs(&m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]); // id 3 faults
        drive(&mut m);
        assert!(matches!(m.status(), Status::Faulted(_)));
        // Analysis (wrongly or rightly) decides connections 1 and 3 were
        // the attack. Without connection 1, the counter replay gives
        // connection 2 the reply "2" — but the client already saw "3".
        let out = recover(&mut m, &mgr, &mut proxy, ckpt, &[1, 3]);
        assert!(
            matches!(out, RecoveryOutcome::RestartRequired { diverged_conn: 2 }),
            "got {out:?}"
        );
        // Live machine and proxy untouched on failure.
        assert!(matches!(m.status(), Status::Faulted(_)));
        assert!(!proxy.get(1).expect("c").filtered);
    }

    #[test]
    fn replay_fault_is_reported_when_wrong_input_dropped() {
        let mut w = attacked_world();
        // Drop the benign third connection; the attack replays and faults.
        let out = recover(&mut w.m, &w.mgr, &mut w.proxy, w.ckpt, &[2]);
        assert!(matches!(out, RecoveryOutcome::ReplayFaulted(f) if f.is_null_deref()));
        // Live machine untouched (still faulted), proxy unmodified.
        assert!(matches!(w.m.status(), Status::Faulted(_)));
        assert!(!w.proxy.get(2).expect("c").filtered);
    }

    #[test]
    fn dropped_conns_are_reported_when_nothing_replays() {
        // Regression: dropping every delivered connection produces an
        // empty replay, which the old `mapping.len() - conns_at`
        // arithmetic reported as plain "0 replayed" with no trace of the
        // excluded work. The dropped-conn count must surface it.
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m); // conns_at = 0
        proxy.offer(&mut m, b"stealth".to_vec(), &[]); // id 0: delivered, later deemed attack
        drive(&mut m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]); // id 1: faults
        drive(&mut m);
        assert!(matches!(m.status(), Status::Faulted(_)));
        let out = recover(&mut m, &mgr, &mut proxy, ckpt, &[0, 1]);
        match out {
            RecoveryOutcome::Resumed(r) => {
                assert_eq!(
                    r.replayed_conns(),
                    0,
                    "everything after the ckpt was dropped"
                );
                assert_eq!(
                    r.dropped_conns(),
                    2,
                    "both delivered attack connections are accounted as dropped work"
                );
            }
            other => panic!("{other:?}"),
        }
        // The proxy distinguishes retroactive drops from filter blocks.
        assert!(proxy.get(0).expect("c").dropped);
        assert!(proxy.get(0).expect("c").filtered);
        assert_eq!(proxy.dropped_total, 2);
        assert_eq!(proxy.filtered_total, 0, "no filter-time block happened");
        // A second recovery naming the same ids must not double-count.
        let mut m2 = server();
        drive(&mut m2);
        let out2 = recover(&mut m2, &mgr, &mut proxy, ckpt, &[0, 1]);
        if let RecoveryOutcome::Resumed(r) = out2 {
            assert_eq!(
                r.dropped_conns(),
                0,
                "already-dropped conns are not re-counted"
            );
        } else {
            panic!("{out2:?}");
        }
        assert_eq!(proxy.dropped_total, 2);
    }

    #[test]
    fn consistent_counter_replay_resumes() {
        // Same counter server, but the committed counter output replays
        // identically when only the attack is dropped (order preserved).
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        proxy.offer(&mut m, b"R1".to_vec(), &[]);
        drive(&mut m);
        proxy.release_outputs(&m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]);
        drive(&mut m);
        let out = recover(&mut m, &mgr, &mut proxy, ckpt, &[1]);
        assert!(matches!(out, RecoveryOutcome::Resumed(_)), "got {out:?}");
    }

    /// An attacked world whose manager was fed the domain-attribution
    /// callbacks (note_service + drain) the runtime performs.
    fn attributed_world() -> World {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let ckpt = mgr.take(&mut m);
        let (first, _) = proxy.offer(&mut m, b"first".to_vec(), &[]);
        drive(&mut m);
        proxy.release_outputs(&m);
        mgr.note_service(&m, first as u32);
        mgr.drain(&m);
        let (atk, _) = proxy.offer(&mut m, b"atkX".to_vec(), &[]);
        drive(&mut m);
        assert!(matches!(m.status(), Status::Faulted(_)));
        mgr.note_attack(&m, atk as u32);
        World {
            m,
            mgr,
            proxy,
            ckpt,
        }
    }

    #[test]
    fn domain_recovery_preserves_benign_connections() {
        let mut w = attributed_world();
        let out = recover_domain(&mut w.m, &mut w.mgr, &mut w.proxy, w.ckpt, &[1])
            .expect("partial recovery");
        match out {
            RecoveryOutcome::Resumed(r) => {
                assert_eq!(r.kind, RecoveryKind::Domain);
                assert_eq!(r.replayed_conns(), 0, "nothing replays under I12");
                assert_eq!(r.dropped_conns(), 1, "only the attack dropped");
                assert_eq!(r.preserved_conns, 1, "the benign conn survived live");
                assert!(!r.disturbed_outside(&[1]), "I12: benign domains untouched");
                assert!(r.pause_cycles > 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(!matches!(w.m.status(), Status::Faulted(_)));
        // The benign connection's served output is still committed; no
        // re-release happens.
        assert!(w.proxy.release_outputs(&w.m).is_empty());
        // And the server keeps serving with a consistent log↔guest map.
        w.proxy.offer(&mut w.m, b"third".to_vec(), &[]);
        drive(&mut w.m);
        assert_eq!(w.proxy.release_outputs(&w.m), vec![(2, b"third".to_vec())]);
    }

    #[test]
    fn domain_and_full_recovery_agree_on_guest_state() {
        // The differential oracle's core claim: both strategies land on
        // bit-identical guest-observable state (content digest; clock
        // and write generations legitimately differ).
        let mut dom = attributed_world();
        let out = recover_domain(&mut dom.m, &mut dom.mgr, &mut dom.proxy, dom.ckpt, &[1])
            .expect("partial");
        assert!(matches!(out, RecoveryOutcome::Resumed(_)));
        let mut full = attributed_world();
        let out = recover(&mut full.m, &full.mgr, &mut full.proxy, full.ckpt, &[1]);
        assert!(matches!(out, RecoveryOutcome::Resumed(_)));
        assert_eq!(
            crate::domains::recovery_digest(&dom.m),
            crate::domains::recovery_digest(&full.m),
            "domain and full recovery must agree bit-for-bit"
        );
    }

    #[test]
    fn trailing_benign_traffic_refuses_partial_recovery() {
        let mut w = attributed_world();
        // A benign connection delivered after the boundary (the runtime
        // never does this mid-recovery, but the seam must fail closed).
        w.proxy.offer(&mut w.m, b"late".to_vec(), &[]);
        let err =
            recover_domain(&mut w.m, &mut w.mgr, &mut w.proxy, w.ckpt, &[1]).expect_err("refused");
        assert_eq!(err, DomainRefusal::TrailingBenign);
        assert!(matches!(w.m.status(), Status::Faulted(_)), "live untouched");
        assert!(!w.proxy.get(1).expect("c").filtered, "proxy untouched");
    }

    #[test]
    fn pre_boundary_drop_refuses_partial_recovery() {
        let mut w = attributed_world();
        // Widened drop set naming the already-served benign connection:
        // its effects are baked into the boundary snapshot.
        let err = recover_domain(&mut w.m, &mut w.mgr, &mut w.proxy, w.ckpt, &[0, 1])
            .expect_err("refused");
        assert_eq!(err, DomainRefusal::PreBoundary);
        assert!(matches!(w.m.status(), Status::Faulted(_)), "live untouched");
    }
}
