//! Rollback domains: attribution of guest state to connections, and the
//! fail-closed partial-rollback ledger behind
//! [`CheckpointManager::rollback_domain`](crate::CheckpointManager::rollback_domain).
//!
//! "Unlimited Lives" (arXiv:2205.03205) motivates the mode: rolling back
//! *only* the attack-touched state lets benign connections on the same
//! host keep their served results — they are neither dropped nor replayed
//! (invariant I12). The ledger attributes every page dirtied inside the
//! current checkpoint window to the connection (**domain**) that was
//! being serviced, using the write-generation ladder the incremental
//! engine already maintains. Partial rollback is only *attempted*; it is
//! never *trusted*:
//!
//! - a page overwritten across domains whose earlier content was not
//!   captured by a pre-copy drain is a **spill** — the overwriting
//!   domain becomes non-rollbackable (`checkpoint.domain_spills`);
//! - the ledger carries an integrity checksum over its attribution
//!   entries, recomputed on every legitimate mutation, so a corrupted
//!   page→domain map (chaos family `domain-tag`) is detected before any
//!   page is restored;
//! - any missing restore source (evicted dedupe slot, damaged delta
//!   chain) refuses the partial path.
//!
//! Every refusal degrades to the existing full rollback/replay pipeline:
//! correctness never depends on domain isolation actually holding.

use std::collections::{BTreeMap, BTreeSet};

use svm::alloc::HeapState;
use svm::cpu::Cpu;
use svm::rng::XorShift64;
use svm::{Machine, Status};

use crate::manager::CkptId;

/// Why a partial (domain) rollback was refused. Every variant is
/// fail-closed: the caller falls back to full rollback + replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainRefusal {
    /// The ledger's attribution window does not cover the chosen
    /// checkpoint (e.g. recovery picked an older snapshot).
    StaleWindow,
    /// No service boundary was captured inside the window.
    NoBoundary,
    /// The ledger integrity checksum does not verify — the page→domain
    /// map cannot be trusted (chaos family `domain-tag`).
    CorruptLedger,
    /// An attacked domain overwrote (or was built on) uncovered
    /// cross-domain state (chaos family `domain-spill`, or a genuine
    /// spill under the full-copy engine, which has no pre-copy drain).
    Spilled,
    /// A page's pre-attack content is unavailable (store eviction or
    /// checkpoint damage).
    PageUnavailable,
    /// A dropped connection predates the service boundary: its effects
    /// are baked into the boundary register/heap snapshot and cannot be
    /// subtracted without re-execution.
    PreBoundary,
    /// Benign traffic was delivered after the service boundary; partial
    /// rollback would silently discard it instead of replaying it.
    TrailingBenign,
}

impl DomainRefusal {
    /// Stable lowercase label (metrics and logs).
    pub fn name(&self) -> &'static str {
        match self {
            DomainRefusal::StaleWindow => "stale-window",
            DomainRefusal::NoBoundary => "no-boundary",
            DomainRefusal::CorruptLedger => "corrupt-ledger",
            DomainRefusal::Spilled => "spilled",
            DomainRefusal::PageUnavailable => "page-unavailable",
            DomainRefusal::PreBoundary => "pre-boundary",
            DomainRefusal::TrailingBenign => "trailing-benign",
        }
    }

    /// Whether the refusal is the structural-taint (spill) escape hatch,
    /// as opposed to damage/staleness.
    pub fn is_spill(&self) -> bool {
        matches!(self, DomainRefusal::Spilled)
    }
}

/// A successful partial rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainRecovery {
    /// Attack-owned pages restored to their pre-attack content.
    pub pages_restored: usize,
    /// Virtual cycles charged to the live clock for the restore.
    pub pause_cycles: u64,
}

/// Idle machine state captured at a service boundary (after a benign
/// connection completed, before the next was offered). Domain rollback
/// restores exactly this — plus the attack-owned pages — so the machine
/// resumes as if the attack connection had never been accepted.
#[derive(Debug, Clone)]
pub struct ServiceBoundary {
    cpu: Cpu,
    heap: HeapState,
    rng: XorShift64,
    status: Status,
    /// Guest connection count at the boundary; later connections (the
    /// attack) are truncated away on restore.
    conns: usize,
}

/// Per-page attribution entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageOwner {
    /// Domain (proxy log id) of the connection that last dirtied the page.
    domain: u32,
    /// Write generation of that last dirty.
    gen: u64,
    /// Whether a pre-copy drain captured the page's content *after* the
    /// owning domain's writes — i.e. whether a later domain may
    /// overwrite it without losing recoverable state.
    covered: bool,
}

/// The page→domain attribution ledger for the current checkpoint window.
///
/// Owned by the [`CheckpointManager`](crate::CheckpointManager), which
/// resets it at every [`take`](crate::CheckpointManager::take), feeds it
/// from `note_service`/`note_attack` at connection boundaries, and marks
/// coverage on every pre-copy drain.
#[derive(Debug, Default)]
pub struct DomainLedger {
    /// The checkpoint this window's attribution is anchored to.
    window: Option<CkptId>,
    /// Write-generation watermark of the last attribution scan.
    covered_gen: u64,
    owner: BTreeMap<u32, PageOwner>,
    /// Domains whose rollback is structurally unsafe (they overwrote
    /// uncovered cross-domain state).
    spilled: BTreeSet<u32>,
    boundary: Option<ServiceBoundary>,
    /// Cross-domain spills observed in this window and all previous ones
    /// (monotone counter, exported as `checkpoint.domain_spills`).
    pub spills: u64,
    /// Integrity checksum over the attribution entries, recomputed on
    /// every legitimate mutation and verified before any restore.
    checksum: u64,
}

impl DomainLedger {
    /// An empty ledger (no window open).
    pub fn new() -> DomainLedger {
        DomainLedger::default()
    }

    /// Open a fresh attribution window anchored to checkpoint `window`,
    /// capturing the machine's current idle state as the initial service
    /// boundary. Spill history (the counter) is preserved; attribution
    /// is not.
    pub fn reset(&mut self, window: CkptId, m: &Machine) {
        self.window = Some(window);
        self.covered_gen = m.mem.write_seq();
        self.owner.clear();
        self.spilled.clear();
        self.boundary = Some(capture_boundary(m));
        self.checksum = self.compute_checksum();
    }

    /// The checkpoint id this window is anchored to.
    pub fn window(&self) -> Option<CkptId> {
        self.window
    }

    /// Connection count at the captured service boundary.
    pub fn boundary_conns(&self) -> Option<usize> {
        self.boundary.as_ref().map(|b| b.conns)
    }

    /// Attribute every page dirtied since the last scan to `domain`, and
    /// advance the service boundary to the machine's current idle state.
    /// Call after a *benign* connection completes.
    pub fn note_service(&mut self, m: &Machine, domain: u32) {
        self.attribute(m, domain);
        self.boundary = Some(capture_boundary(m));
    }

    /// Attribute every page dirtied since the last scan to `domain`
    /// *without* moving the service boundary. Call for the attack
    /// connection after detection: the boundary must stay at the last
    /// benign idle state.
    pub fn note_attack(&mut self, m: &Machine, domain: u32) {
        self.attribute(m, domain);
    }

    fn attribute(&mut self, m: &Machine, domain: u32) {
        if self.window.is_none() {
            return;
        }
        let dirty: Vec<(u32, u64)> = m.mem.dirty_pages_since(self.covered_gen).collect();
        for (pno, gen) in dirty {
            if let Some(prev) = self.owner.get(&pno) {
                if prev.domain != domain && !prev.covered {
                    // Cross-domain overwrite of uncovered state: the
                    // overwriting domain can no longer be rolled back in
                    // isolation (the overwritten content is lost).
                    self.spills += 1;
                    self.spilled.insert(domain);
                }
            }
            self.owner.insert(
                pno,
                PageOwner {
                    domain,
                    gen,
                    covered: false,
                },
            );
        }
        self.covered_gen = m.mem.write_seq();
        self.checksum = self.compute_checksum();
    }

    /// A pre-copy drain just captured every page dirtied in this window:
    /// all current attribution entries become overwrite-safe.
    pub fn mark_all_covered(&mut self) {
        for o in self.owner.values_mut() {
            o.covered = true;
        }
        self.checksum = self.compute_checksum();
    }

    /// Whether `domain`'s rollback is structurally unsafe.
    pub fn is_spilled(&self, domain: u32) -> bool {
        self.spilled.contains(&domain)
    }

    /// Verify the integrity checksum over the attribution entries.
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }

    /// Pages currently attributed in this window.
    pub fn pages_tracked(&self) -> usize {
        self.owner.len()
    }

    /// The captured service boundary (cloned).
    pub(crate) fn boundary(&self) -> Option<ServiceBoundary> {
        self.boundary.clone()
    }

    /// Page numbers owned by any of `domains`, ascending.
    pub(crate) fn owned_pages(&self, domains: &[u32]) -> Vec<u32> {
        self.owner
            .iter()
            .filter(|(_, o)| domains.contains(&o.domain))
            .map(|(&pno, _)| pno)
            .collect()
    }

    /// Chaos seam: mis-attribute one tracked page (selected by
    /// `selector`) to a different domain **without** recomputing the
    /// checksum — modelling attribution-map corruption. Returns whether
    /// the fault landed (a page was tracked). A later
    /// [`DomainLedger::verify`] fails and partial rollback refuses.
    pub fn chaos_corrupt_tag(&mut self, selector: u64) -> bool {
        if self.owner.is_empty() {
            return false;
        }
        let idx = (selector as usize) % self.owner.len();
        let pno = *self.owner.keys().nth(idx).expect("idx < len");
        let o = self.owner.get_mut(&pno).expect("tracked");
        o.domain ^= 0x8000_0000;
        // Deliberately no checksum recompute: the corruption must be
        // *detected*, not legitimized.
        true
    }

    /// Chaos seam: force every tracked domain into the spilled set (one
    /// counted spill), modelling uncovered cross-domain writes. Returns
    /// whether the fault landed (a page was tracked). Rollback of any
    /// attacked domain then takes the fail-closed path to full recovery.
    pub fn chaos_force_spill(&mut self) -> bool {
        if self.owner.is_empty() {
            return false;
        }
        self.spills += 1;
        for o in self.owner.values() {
            self.spilled.insert(o.domain);
        }
        self.checksum = self.compute_checksum();
        true
    }

    fn compute_checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.window.map(|w| w.0 + 1).unwrap_or(0));
        for (&pno, o) in &self.owner {
            fold(pno as u64);
            fold(o.domain as u64);
            fold(o.gen);
            fold(o.covered as u64);
        }
        for &d in &self.spilled {
            fold(d as u64);
        }
        h
    }
}

/// Apply a captured boundary to the live machine (everything except
/// pages, which the manager restores separately, and the clock, which
/// stays monotone).
pub(crate) fn apply_boundary(live: &mut Machine, b: &ServiceBoundary) {
    live.cpu = b.cpu.clone();
    live.heap = b.heap;
    live.rng = b.rng;
    live.restore_status(b.status);
    live.net.truncate_conns(b.conns);
    live.flush_decode_cache();
}

fn capture_boundary(m: &Machine) -> ServiceBoundary {
    ServiceBoundary {
        cpu: m.cpu.clone(),
        heap: m.heap,
        rng: m.rng,
        status: m.status(),
        conns: m.net.conns().len(),
    }
}

/// Content-only digest of guest-observable machine state, for comparing
/// the *results* of two recovery strategies.
///
/// Deliberately **not** [`mem_digest`](crate::incremental::mem_digest):
/// that digest folds per-page write generations and the global write
/// watermark, which legitimately differ between a full rollback+replay
/// (generations restart from the snapshot) and a partial in-place
/// restore (generations keep counting). Folded here: CPU registers,
/// flags and PC; page numbers and page *contents* (plus NX); heap
/// allocator state; RNG state; every connection's id, input, read
/// position, EOF/closed flags and output; and the status discriminant.
/// Excluded: the virtual clock, retirement counters, cache state, write
/// generations, and the host-side diagnostics log.
pub fn recovery_digest(m: &Machine) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    macro_rules! fold_bytes {
        ($bytes:expr) => {
            for &b in $bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
    }
    macro_rules! fold {
        ($v:expr) => {
            fold_bytes!(&u64::to_le_bytes($v))
        };
    }
    for r in m.cpu.regs {
        fold!(r as u64);
    }
    fold!(m.cpu.pc as u64);
    fold!(m.cpu.flags.zero as u64);
    fold!(m.cpu.flags.below as u64);
    for (pno, _gen) in m.mem.page_table() {
        fold!(pno as u64);
        fold_bytes!(&m.mem.page_bytes(pno).expect("mapped")[..]);
    }
    fold!(m.mem.nx as u64);
    fold!(m.heap.base as u64);
    fold!(m.heap.end as u64);
    fold!(m.heap.brk as u64);
    fold!(m.heap.free_head as u64);
    fold!(m.heap.allocs);
    fold!(m.heap.frees);
    fold!(m.rng.state());
    for c in m.net.conns() {
        fold!(c.id as u64);
        fold_bytes!(&c.input[..]);
        fold!(c.read_pos as u64);
        fold!(c.eof as u64);
        fold_bytes!(&c.output[..]);
        fold!(c.closed as u64);
    }
    fold_bytes!(format!("{:?}", m.status()).as_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::NopHook;

    fn boot_counter() -> Machine {
        let prog = assemble(
            ".text\nmain:\n movi r1, v\nloop:\n ld r0, [r1, 0]\n addi r0, r0, 1\n st [r1, 0], r0\n jmp loop\n.data\nv: .word 0\n",
        )
        .expect("asm");
        Machine::boot(&prog, Aslr::off()).expect("boot")
    }

    #[test]
    fn uncovered_cross_domain_overwrite_spills() {
        let mut m = boot_counter();
        let mut led = DomainLedger::new();
        led.reset(CkptId(0), &m);
        m.run(&mut NopHook, 500);
        led.note_service(&m, 0);
        assert_eq!(led.spills, 0);
        // Domain 1 overwrites the same data page; nothing drained it.
        m.run(&mut NopHook, 500);
        led.note_attack(&m, 1);
        assert_eq!(led.spills, 1);
        assert!(led.is_spilled(1));
        assert!(!led.is_spilled(0), "the overwritten domain stays safe");
        assert!(led.verify());
    }

    #[test]
    fn drain_coverage_prevents_the_spill() {
        let mut m = boot_counter();
        let mut led = DomainLedger::new();
        led.reset(CkptId(0), &m);
        m.run(&mut NopHook, 500);
        led.note_service(&m, 0);
        led.mark_all_covered(); // a drain captured domain 0's writes
        m.run(&mut NopHook, 500);
        led.note_attack(&m, 1);
        assert_eq!(led.spills, 0);
        assert!(!led.is_spilled(1));
    }

    #[test]
    fn tag_corruption_is_detected() {
        let mut m = boot_counter();
        let mut led = DomainLedger::new();
        led.reset(CkptId(0), &m);
        m.run(&mut NopHook, 500);
        led.note_service(&m, 0);
        assert!(led.verify());
        assert!(led.chaos_corrupt_tag(7));
        assert!(!led.verify(), "mis-attribution must not verify");
    }

    #[test]
    fn corrupting_an_empty_ledger_does_not_land() {
        let m = boot_counter();
        let mut led = DomainLedger::new();
        led.reset(CkptId(0), &m);
        assert!(!led.chaos_corrupt_tag(3));
        assert!(!led.chaos_force_spill());
        assert!(led.verify());
    }

    #[test]
    fn recovery_digest_ignores_clock_and_generations() {
        let mut a = boot_counter();
        let mut b = a.clone();
        a.run(&mut NopHook, 1000);
        b.run(&mut NopHook, 1000);
        assert_eq!(recovery_digest(&a), recovery_digest(&b));
        // Pure clock skew is invisible…
        a.clock.tick(123_456);
        assert_eq!(recovery_digest(&a), recovery_digest(&b));
        // …but guest-visible divergence is not.
        b.run(&mut NopHook, 100);
        assert_ne!(recovery_digest(&a), recovery_digest(&b));
    }
}
