//! The network proxy: input logging, filtering, and replay injection.
//!
//! Paper §3.1: "Network state is logged by a separate proxy process; this
//! proxy facilitates replaying messages for re-execution and can also
//! implement signature-based input filtering." The proxy sits between
//! clients and the protected machine: every connection is logged with its
//! virtual arrival time, deployed input signatures can drop connections
//! before the server sees them, and on replay the proxy re-injects the
//! post-checkpoint connections (optionally excluding the attack).

use svm::Machine;

/// Verdict-producing input filter (implemented by antibody signatures).
pub trait InputFilter {
    /// Whether this input must be dropped before reaching the server.
    fn blocks(&self, input: &[u8]) -> bool;

    /// Filter name for logging.
    fn name(&self) -> &str {
        "filter"
    }
}

/// A logged client connection.
#[derive(Debug, Clone)]
pub struct LoggedConn {
    /// Index in the proxy log (== guest connection id when delivered
    /// undropped in order, which the proxy guarantees for live traffic).
    pub log_id: usize,
    /// Full input bytes.
    pub input: Vec<u8>,
    /// Virtual cycle count of the protected machine at arrival.
    pub arrival_cycles: u64,
    /// Whether this connection is excluded from delivery, replay and
    /// output accounting — either blocked by a deployed filter up front
    /// (never delivered) or retroactively dropped during recovery.
    pub filtered: bool,
    /// Whether the exclusion was a *retroactive* drop (`mark_dropped`):
    /// the connection **was** delivered to the guest and later identified
    /// as an attack. Always implies `filtered`. Distinguishing the two
    /// keeps recovery accounting honest — dropped connections represent
    /// real replay work excluded, not traffic that never existed.
    pub dropped: bool,
    /// Server output bytes already released to the client (the output
    /// commit point; replays must neither duplicate nor contradict them).
    pub released: Vec<u8>,
    /// Rollback domain this connection's guest-state writes are
    /// attributed to (per-connection by default: the log id). Partial
    /// recovery rolls back only the attacked connection's domain; see
    /// [`crate::domains`].
    pub domain: u32,
}

/// The logging/filtering proxy.
#[derive(Debug, Default)]
pub struct Proxy {
    log: Vec<LoggedConn>,
    /// Count of connections dropped by filters (statistics).
    pub filtered_total: u64,
    /// Count of connections retroactively dropped during recovery.
    pub dropped_total: u64,
}

impl Proxy {
    /// An empty proxy.
    pub fn new() -> Proxy {
        Proxy::default()
    }

    /// Offer a new client connection: logs it, applies `filters`, and (if
    /// not blocked) delivers it to the live machine. Returns the log id
    /// and whether it was delivered.
    pub fn offer(
        &mut self,
        m: &mut Machine,
        input: Vec<u8>,
        filters: &[&dyn InputFilter],
    ) -> (usize, bool) {
        let log_id = self.log.len();
        let blocked = filters.iter().any(|f| f.blocks(&input));
        self.log.push(LoggedConn {
            log_id,
            input: input.clone(),
            arrival_cycles: m.clock.cycles(),
            filtered: blocked,
            dropped: false,
            released: Vec::new(),
            domain: log_id as u32,
        });
        if blocked {
            self.filtered_total += 1;
            return (log_id, false);
        }
        m.net.push_connection(input);
        m.unblock();
        (log_id, true)
    }

    /// The full connection log.
    pub fn log(&self) -> &[LoggedConn] {
        &self.log
    }

    /// A logged connection by id.
    pub fn get(&self, log_id: usize) -> Option<&LoggedConn> {
        self.log.get(log_id)
    }

    /// Retroactively drop a logged connection (identified as an attack):
    /// it will be excluded from future replays and output accounting.
    ///
    /// Unlike filter-time blocking, the connection *was* delivered;
    /// `LoggedConn::dropped` records that distinction so recovery can
    /// report dropped-attack work separately from never-delivered traffic.
    pub fn mark_dropped(&mut self, log_id: usize) {
        if let Some(c) = self.log.get_mut(log_id) {
            if !c.dropped {
                c.dropped = true;
                self.dropped_total += 1;
            }
            c.filtered = true;
        }
    }

    /// Export proxy counters into an [`obs::MetricsRegistry`] under the
    /// `proxy.` prefix. Absolute mirrors — safe to re-export.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.set_counter("proxy.conns_logged", self.log.len() as u64);
        reg.set_counter("proxy.filtered_total", self.filtered_total);
        reg.set_counter("proxy.dropped_total", self.dropped_total);
        let released: usize = self.log.iter().map(|c| c.released.len()).sum();
        reg.set_counter("proxy.released_bytes", released as u64);
    }

    /// Release all pending output of the live machine, committing it.
    ///
    /// Returns the newly released `(log_id, bytes)` pairs. The mapping
    /// from guest connection id to log id assumes in-order undropped
    /// delivery; filtered connections never exist guest-side, so the
    /// proxy tracks the correspondence explicitly.
    pub fn release_outputs(&mut self, m: &Machine) -> Vec<(usize, Vec<u8>)> {
        let mut released = Vec::new();
        let mut guest_idx = 0usize;
        for lc in self.log.iter_mut() {
            if lc.filtered {
                continue;
            }
            let Some(conn) = m.net.conn(guest_idx as u32) else {
                break;
            };
            guest_idx += 1;
            if conn.output.len() > lc.released.len() {
                let new = conn.output[lc.released.len()..].to_vec();
                lc.released.extend_from_slice(&new);
                released.push((lc.log_id, new));
            }
        }
        released
    }

    /// Connections that arrived *after* the machine had `conns_at`
    /// delivered connections — the ones a replay from that checkpoint must
    /// re-inject (in arrival order), excluding filtered ones and any log
    /// ids in `drop`.
    pub fn replay_set(&self, conns_at: usize, drop: &[usize]) -> Vec<&LoggedConn> {
        self.log
            .iter()
            .filter(|c| !c.filtered)
            .skip(conns_at)
            .filter(|c| !drop.contains(&c.log_id))
            .collect()
    }

    /// The log id of the most recent delivered (unfiltered) connection at
    /// or before the given cycle count — the usual attack suspect.
    pub fn last_delivered_before(&self, cycles: u64) -> Option<usize> {
        self.log
            .iter()
            .rev()
            .find(|c| !c.filtered && c.arrival_cycles <= cycles)
            .map(|c| c.log_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;

    struct Contains(&'static [u8]);
    impl InputFilter for Contains {
        fn blocks(&self, input: &[u8]) -> bool {
            input.windows(self.0.len()).any(|w| w == self.0)
        }
    }

    fn idle_machine() -> Machine {
        let prog = assemble(".text\nmain:\n jmp main\n").expect("asm");
        Machine::boot(&prog, Aslr::off()).expect("boot")
    }

    #[test]
    fn offer_logs_and_delivers() {
        let mut m = idle_machine();
        let mut p = Proxy::new();
        let (id, delivered) = p.offer(&mut m, b"hello".to_vec(), &[]);
        assert!(delivered);
        assert_eq!(id, 0);
        assert_eq!(m.net.conns().len(), 1);
        assert_eq!(p.log()[0].input, b"hello");
    }

    #[test]
    fn filters_block_before_delivery() {
        let mut m = idle_machine();
        let mut p = Proxy::new();
        let f = Contains(b"evil");
        let (_, d1) = p.offer(&mut m, b"benign".to_vec(), &[&f]);
        let (_, d2) = p.offer(&mut m, b"very evil input".to_vec(), &[&f]);
        assert!(d1);
        assert!(!d2);
        assert_eq!(
            m.net.conns().len(),
            1,
            "blocked input never reaches the guest"
        );
        assert_eq!(p.filtered_total, 1);
        assert!(p.log()[1].filtered);
    }

    #[test]
    fn replay_set_skips_pre_checkpoint_filtered_and_dropped() {
        let mut m = idle_machine();
        let mut p = Proxy::new();
        let f = Contains(b"evil");
        p.offer(&mut m, b"a".to_vec(), &[&f]); // id 0, pre-checkpoint
        let conns_at = m.net.conns().len();
        p.offer(&mut m, b"b".to_vec(), &[&f]); // id 1
        p.offer(&mut m, b"evil".to_vec(), &[&f]); // id 2, filtered
        p.offer(&mut m, b"c".to_vec(), &[&f]); // id 3
        p.offer(&mut m, b"d".to_vec(), &[&f]); // id 4
        let rs = p.replay_set(conns_at, &[3]);
        let inputs: Vec<&[u8]> = rs.iter().map(|c| c.input.as_slice()).collect();
        assert_eq!(inputs, vec![b"b".as_slice(), b"d".as_slice()]);
    }

    #[test]
    fn output_commit_tracks_released_bytes() {
        let mut m = idle_machine();
        let mut p = Proxy::new();
        p.offer(&mut m, b"req".to_vec(), &[]);
        m.net.write(0, b"partial").expect("w");
        let rel = p.release_outputs(&m);
        assert_eq!(rel, vec![(0, b"partial".to_vec())]);
        // No double release.
        assert!(p.release_outputs(&m).is_empty());
        m.net.write(0, b"+more").expect("w");
        let rel2 = p.release_outputs(&m);
        assert_eq!(rel2, vec![(0, b"+more".to_vec())]);
        assert_eq!(p.get(0).expect("c").released, b"partial+more");
    }

    #[test]
    fn last_delivered_before_finds_suspect() {
        let mut m = idle_machine();
        let mut p = Proxy::new();
        p.offer(&mut m, b"a".to_vec(), &[]);
        m.clock.tick(1000);
        p.offer(&mut m, b"b".to_vec(), &[]);
        assert_eq!(p.last_delivered_before(m.clock.cycles()), Some(1));
        assert_eq!(p.last_delivered_before(500), Some(0));
    }
}
