//! Flashback-style syscall logging for replay-consistency verification
//! (paper §4.1).
//!
//! Rx-style recovery can silently diverge when execution depends on
//! nondeterministic inputs; the paper's alternative is Flashback's
//! approach: "log all of the system calls made by the process, in order
//! to allow deterministic re-execution ... Sweeper can compare the
//! re-execution's calls to `write()` to the previous results Flashback
//! recorded; if they match, we know that we have been successful."
//!
//! [`SyscallLog`] is a hook that records every syscall's `(pc, number,
//! args, result)`; [`divergence`] compares a live log against a replay
//! log and reports the first mismatch. Our VM is deterministic given the
//! same inputs, so matching logs certify that a recovery replay really
//! did re-execute the same computation — and a mismatch pinpoints where
//! a drop-the-attack replay started to differ.

use svm::isa::{Op, Syscall};
use svm::{Hook, Machine};

/// One recorded syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Program counter of the `sys` instruction.
    pub pc: u32,
    /// Syscall performed.
    pub syscall: Syscall,
    /// Argument registers r0..r3 at entry.
    pub args: [u32; 4],
    /// Result placed in r0.
    pub ret: u32,
}

/// A recording hook (attach to any run via `Pair` or directly).
#[derive(Debug, Clone, Default)]
pub struct SyscallLog {
    records: Vec<SyscallRecord>,
}

impl SyscallLog {
    /// An empty log.
    pub fn new() -> SyscallLog {
        SyscallLog::default()
    }

    /// Recorded syscalls in execution order.
    pub fn records(&self) -> &[SyscallRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Only the `write` records (the §4.1 output-consistency subset).
    pub fn writes(&self) -> Vec<&SyscallRecord> {
        self.records
            .iter()
            .filter(|r| r.syscall == Syscall::Write)
            .collect()
    }
}

impl Hook for SyscallLog {
    fn on_syscall(&mut self, _m: &Machine, pc: u32, sc: Syscall, args: [u32; 4], ret: u32) {
        self.records.push(SyscallRecord {
            pc,
            syscall: sc,
            args,
            ret,
        });
    }
    fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {}
}

/// The first point where two syscall logs diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Logs are identical over the compared prefix.
    None,
    /// Record `index` differs.
    At {
        /// Index of the first differing record.
        index: usize,
        /// The original record (if present).
        original: Option<SyscallRecord>,
        /// The replayed record (if present).
        replayed: Option<SyscallRecord>,
    },
}

/// Compare an original log against a replay log.
///
/// `writes_only` restricts the comparison to `write` syscalls, which is
/// the §4.1 criterion (a recovery replay legitimately *omits* the
/// dropped attack's reads, but committed output must not change).
pub fn divergence(original: &SyscallLog, replayed: &SyscallLog, writes_only: bool) -> Divergence {
    let a: Vec<&SyscallRecord> = if writes_only {
        original.writes()
    } else {
        original.records().iter().collect()
    };
    let b: Vec<&SyscallRecord> = if writes_only {
        replayed.writes()
    } else {
        replayed.records().iter().collect()
    };
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] != b[i] {
            return Divergence::At {
                index: i,
                original: Some(*a[i]),
                replayed: Some(*b[i]),
            };
        }
    }
    if a.len() != b.len() {
        return Divergence::At {
            index: n,
            original: a.get(n).map(|r| **r),
            replayed: b.get(n).map(|r| **r),
        };
    }
    Divergence::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::CheckpointManager;
    use crate::proxy::Proxy;
    use crate::replay::ReplaySession;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::{Machine, NopHook};

    fn echo_server() -> Machine {
        let src = format!(
            "
.text
main:
    sys accept
    mov r10, r0
    mov r0, r10
    movi r1, buf
    movi r2, 64
    sys read
    mov r3, r0
    mov r0, r10
    movi r1, buf
    mov r2, r3
    sys write
    mov r0, r10
    sys close
    jmp main
.data
buf: .space 64
{LIB_ASM}
"
        );
        Machine::boot(&assemble(&src).expect("asm"), Aslr::off()).expect("boot")
    }

    #[test]
    fn log_records_syscalls_in_order() {
        let mut m = echo_server();
        m.net.push_connection(b"ping".to_vec());
        let mut log = SyscallLog::new();
        m.run(&mut log, 50_000_000);
        let kinds: Vec<Syscall> = log.records().iter().map(|r| r.syscall).collect();
        assert_eq!(
            kinds,
            vec![
                Syscall::Accept,
                Syscall::Read,
                Syscall::Write,
                Syscall::Close
            ],
            "one request's syscall sequence"
        );
        assert_eq!(log.writes().len(), 1);
        assert_eq!(log.records()[1].ret, 4, "read returned 4 bytes");
    }

    #[test]
    fn identical_replay_has_no_divergence() {
        let mut m = echo_server();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut proxy = Proxy::new();
        m.run(&mut NopHook, 50_000_000);
        let ck = mgr.take(&mut m);
        // Live run with logging.
        let mut live_log = SyscallLog::new();
        proxy.offer(&mut m, b"hello".to_vec(), &[]);
        m.run(&mut live_log, 50_000_000);
        // Replay the same inputs with logging.
        let mut replay_log = SyscallLog::new();
        ReplaySession::new(&mgr, &proxy, ck)
            .expect("session")
            .run(&mut replay_log);
        assert_eq!(divergence(&live_log, &replay_log, false), Divergence::None);
        assert_eq!(divergence(&live_log, &replay_log, true), Divergence::None);
    }

    #[test]
    fn dropped_input_diverges_fully_but_not_on_earlier_writes() {
        let mut m = echo_server();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut proxy = Proxy::new();
        m.run(&mut NopHook, 50_000_000);
        let ck = mgr.take(&mut m);
        let mut live_log = SyscallLog::new();
        proxy.offer(&mut m, b"first".to_vec(), &[]);
        m.run(&mut live_log, 50_000_000);
        proxy.offer(&mut m, b"evil!".to_vec(), &[]);
        m.run(&mut live_log, 50_000_000);
        // Replay without the second ("attack") connection.
        let mut replay_log = SyscallLog::new();
        ReplaySession::new(&mgr, &proxy, ck)
            .expect("session")
            .dropping(&[1])
            .run(&mut replay_log);
        // Full comparison diverges (the attack's syscalls are missing)...
        assert!(matches!(
            divergence(&live_log, &replay_log, false),
            Divergence::At { .. }
        ));
        // ...and the writes-only comparison flags exactly the missing
        // second write, while the first request's write matched.
        match divergence(&live_log, &replay_log, true) {
            Divergence::At {
                index: 1,
                original: Some(_),
                replayed: None,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn changed_output_is_pinpointed() {
        let mut a = SyscallLog::new();
        let mut b = SyscallLog::new();
        let rec = |ret| SyscallRecord {
            pc: 0x100,
            syscall: Syscall::Write,
            args: [0, 0x2000, 4, 0],
            ret,
        };
        a.records.push(rec(4));
        b.records.push(rec(3));
        match divergence(&a, &b, true) {
            Divergence::At {
                index: 0,
                original: Some(o),
                replayed: Some(r),
            } => {
                assert_ne!(o.ret, r.ret);
            }
            other => panic!("{other:?}"),
        }
    }
}
