//! Flashback-style syscall logging for replay-consistency verification
//! (paper §4.1).
//!
//! Rx-style recovery can silently diverge when execution depends on
//! nondeterministic inputs; the paper's alternative is Flashback's
//! approach: "log all of the system calls made by the process, in order
//! to allow deterministic re-execution ... Sweeper can compare the
//! re-execution's calls to `write()` to the previous results Flashback
//! recorded; if they match, we know that we have been successful."
//!
//! [`SyscallLog`] is a hook that records every syscall's `(pc, number,
//! args, result)`; [`divergence`] compares a live log against a replay
//! log and reports the first mismatch. Our VM is deterministic given the
//! same inputs, so matching logs certify that a recovery replay really
//! did re-execute the same computation — and a mismatch pinpoints where
//! a drop-the-attack replay started to differ.

use svm::isa::{Op, Syscall};
use svm::{Hook, Machine};

/// One recorded syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Program counter of the `sys` instruction.
    pub pc: u32,
    /// Syscall performed.
    pub syscall: Syscall,
    /// Argument registers r0..r3 at entry.
    pub args: [u32; 4],
    /// Result placed in r0.
    pub ret: u32,
}

/// A recording hook (attach to any run via `Pair` or directly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallLog {
    records: Vec<SyscallRecord>,
}

impl SyscallLog {
    /// An empty log.
    pub fn new() -> SyscallLog {
        SyscallLog::default()
    }

    /// Recorded syscalls in execution order.
    pub fn records(&self) -> &[SyscallRecord] {
        &self.records
    }

    /// Append a record (used when reconstructing logs outside a hook,
    /// e.g. in verifiers and test fixtures).
    pub fn push(&mut self, rec: SyscallRecord) {
        self.records.push(rec);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Only the `write` records (the §4.1 output-consistency subset).
    pub fn writes(&self) -> Vec<&SyscallRecord> {
        self.records
            .iter()
            .filter(|r| r.syscall == Syscall::Write)
            .collect()
    }

    /// Serialize the log to a flat byte buffer (magic `SWSL`, version 1,
    /// record count, then fixed-width little-endian records).
    ///
    /// A persisted Flashback log survives the process it describes; the
    /// chaos harness truncates and bit-flips these buffers to prove the
    /// decoder ([`SyscallLog::from_bytes`]) fails closed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.records.len() * 26);
        out.extend_from_slice(b"SWSL");
        out.push(1); // version
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.pc.to_le_bytes());
            out.push(r.syscall.num());
            for a in r.args {
                out.extend_from_slice(&a.to_le_bytes());
            }
            out.extend_from_slice(&r.ret.to_le_bytes());
        }
        out
    }

    /// Decode a buffer produced by [`SyscallLog::to_bytes`].
    ///
    /// Every read is bounds-checked: truncated buffers, bad magic,
    /// unknown versions, impossible record counts and invalid syscall
    /// numbers all return a [`SyscallLogError`] — never a panic. This is
    /// the seam the chaos harness' truncated/corrupted-log fault family
    /// exercises.
    pub fn from_bytes(bytes: &[u8]) -> Result<SyscallLog, SyscallLogError> {
        let header = bytes.get(..9).ok_or(SyscallLogError::Truncated {
            at: bytes.len(),
            need: 9,
        })?;
        if &header[..4] != b"SWSL" {
            return Err(SyscallLogError::BadMagic);
        }
        if header[4] != 1 {
            return Err(SyscallLogError::BadVersion(header[4]));
        }
        let count = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
        const REC: usize = 4 + 1 + 16 + 4;
        let need = 9 + count.saturating_mul(REC);
        if bytes.len() < need {
            return Err(SyscallLogError::Truncated {
                at: bytes.len(),
                need,
            });
        }
        let mut records = Vec::with_capacity(count.min(1 << 16));
        let mut off = 9usize;
        let word = |b: &[u8], o: usize| u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
        for _ in 0..count {
            let pc = word(bytes, off);
            let sc = bytes[off + 4];
            let syscall = Syscall::from_num(sc).ok_or(SyscallLogError::BadSyscall {
                offset: off + 4,
                num: sc,
            })?;
            let args = [
                word(bytes, off + 5),
                word(bytes, off + 9),
                word(bytes, off + 13),
                word(bytes, off + 17),
            ];
            let ret = word(bytes, off + 21);
            records.push(SyscallRecord {
                pc,
                syscall,
                args,
                ret,
            });
            off += REC;
        }
        Ok(SyscallLog { records })
    }
}

/// Why a serialized syscall log failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallLogError {
    /// The buffer ends before the structure it promises (`need` bytes
    /// required, only `at` present). Truncated logs land here.
    Truncated {
        /// Actual buffer length.
        at: usize,
        /// Bytes the declared structure requires.
        need: usize,
    },
    /// The buffer does not start with the `SWSL` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// A record carries an invalid syscall number (corruption).
    BadSyscall {
        /// Byte offset of the bad value.
        offset: usize,
        /// The invalid syscall number found.
        num: u8,
    },
}

impl std::fmt::Display for SyscallLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyscallLogError::Truncated { at, need } => {
                write!(f, "syscall log truncated: {at} bytes, need {need}")
            }
            SyscallLogError::BadMagic => write!(f, "syscall log: bad magic"),
            SyscallLogError::BadVersion(v) => write!(f, "syscall log: unknown version {v}"),
            SyscallLogError::BadSyscall { offset, num } => {
                write!(f, "syscall log: invalid syscall {num} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for SyscallLogError {}

impl Hook for SyscallLog {
    fn on_syscall(&mut self, _m: &Machine, pc: u32, sc: Syscall, args: [u32; 4], ret: u32) {
        self.records.push(SyscallRecord {
            pc,
            syscall: sc,
            args,
            ret,
        });
    }
    fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {}
}

/// The first point where two syscall logs diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Logs are identical over the compared prefix.
    None,
    /// Record `index` differs.
    At {
        /// Index of the first differing record.
        index: usize,
        /// The original record (if present).
        original: Option<SyscallRecord>,
        /// The replayed record (if present).
        replayed: Option<SyscallRecord>,
    },
}

/// Compare an original log against a replay log.
///
/// `writes_only` restricts the comparison to `write` syscalls, which is
/// the §4.1 criterion (a recovery replay legitimately *omits* the
/// dropped attack's reads, but committed output must not change).
pub fn divergence(original: &SyscallLog, replayed: &SyscallLog, writes_only: bool) -> Divergence {
    let a: Vec<&SyscallRecord> = if writes_only {
        original.writes()
    } else {
        original.records().iter().collect()
    };
    let b: Vec<&SyscallRecord> = if writes_only {
        replayed.writes()
    } else {
        replayed.records().iter().collect()
    };
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] != b[i] {
            return Divergence::At {
                index: i,
                original: Some(*a[i]),
                replayed: Some(*b[i]),
            };
        }
    }
    if a.len() != b.len() {
        return Divergence::At {
            index: n,
            original: a.get(n).map(|r| **r),
            replayed: b.get(n).map(|r| **r),
        };
    }
    Divergence::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::CheckpointManager;
    use crate::proxy::Proxy;
    use crate::replay::ReplaySession;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::{Machine, NopHook};

    fn echo_server() -> Machine {
        let src = format!(
            "
.text
main:
    sys accept
    mov r10, r0
    mov r0, r10
    movi r1, buf
    movi r2, 64
    sys read
    mov r3, r0
    mov r0, r10
    movi r1, buf
    mov r2, r3
    sys write
    mov r0, r10
    sys close
    jmp main
.data
buf: .space 64
{LIB_ASM}
"
        );
        Machine::boot(&assemble(&src).expect("asm"), Aslr::off()).expect("boot")
    }

    #[test]
    fn log_records_syscalls_in_order() {
        let mut m = echo_server();
        m.net.push_connection(b"ping".to_vec());
        let mut log = SyscallLog::new();
        m.run(&mut log, 50_000_000);
        let kinds: Vec<Syscall> = log.records().iter().map(|r| r.syscall).collect();
        assert_eq!(
            kinds,
            vec![
                Syscall::Accept,
                Syscall::Read,
                Syscall::Write,
                Syscall::Close
            ],
            "one request's syscall sequence"
        );
        assert_eq!(log.writes().len(), 1);
        assert_eq!(log.records()[1].ret, 4, "read returned 4 bytes");
    }

    #[test]
    fn identical_replay_has_no_divergence() {
        let mut m = echo_server();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut proxy = Proxy::new();
        m.run(&mut NopHook, 50_000_000);
        let ck = mgr.take(&mut m);
        // Live run with logging.
        let mut live_log = SyscallLog::new();
        proxy.offer(&mut m, b"hello".to_vec(), &[]);
        m.run(&mut live_log, 50_000_000);
        // Replay the same inputs with logging.
        let mut replay_log = SyscallLog::new();
        ReplaySession::new(&mgr, &proxy, ck)
            .expect("session")
            .run(&mut replay_log);
        assert_eq!(divergence(&live_log, &replay_log, false), Divergence::None);
        assert_eq!(divergence(&live_log, &replay_log, true), Divergence::None);
    }

    #[test]
    fn dropped_input_diverges_fully_but_not_on_earlier_writes() {
        let mut m = echo_server();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut proxy = Proxy::new();
        m.run(&mut NopHook, 50_000_000);
        let ck = mgr.take(&mut m);
        let mut live_log = SyscallLog::new();
        proxy.offer(&mut m, b"first".to_vec(), &[]);
        m.run(&mut live_log, 50_000_000);
        proxy.offer(&mut m, b"evil!".to_vec(), &[]);
        m.run(&mut live_log, 50_000_000);
        // Replay without the second ("attack") connection.
        let mut replay_log = SyscallLog::new();
        ReplaySession::new(&mgr, &proxy, ck)
            .expect("session")
            .dropping(&[1])
            .run(&mut replay_log);
        // Full comparison diverges (the attack's syscalls are missing)...
        assert!(matches!(
            divergence(&live_log, &replay_log, false),
            Divergence::At { .. }
        ));
        // ...and the writes-only comparison flags exactly the missing
        // second write, while the first request's write matched.
        match divergence(&live_log, &replay_log, true) {
            Divergence::At {
                index: 1,
                original: Some(_),
                replayed: None,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_roundtrip_is_lossless() {
        let mut m = echo_server();
        m.net.push_connection(b"ping".to_vec());
        let mut log = SyscallLog::new();
        m.run(&mut NopHook, 1_000_000); // park on accept first
        m.run(&mut log, 50_000_000);
        let bytes = log.to_bytes();
        let back = SyscallLog::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.records(), log.records());
    }

    #[test]
    fn truncated_and_corrupt_logs_fail_closed() {
        let mut log = SyscallLog::new();
        log.records.push(SyscallRecord {
            pc: 0x40,
            syscall: Syscall::Write,
            args: [1, 2, 3, 4],
            ret: 4,
        });
        let bytes = log.to_bytes();
        // Every truncation point decodes to Err, never panics.
        for cut in 0..bytes.len() {
            let r = SyscallLog::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
        // A count claiming more records than the buffer holds is caught.
        let mut lying = bytes.clone();
        lying[5] = 0xff;
        lying[6] = 0xff;
        assert!(matches!(
            SyscallLog::from_bytes(&lying),
            Err(SyscallLogError::Truncated { .. })
        ));
        // Bad magic and version.
        let mut nomagic = bytes.clone();
        nomagic[0] = b'X';
        assert_eq!(
            SyscallLog::from_bytes(&nomagic),
            Err(SyscallLogError::BadMagic)
        );
        let mut badver = bytes.clone();
        badver[4] = 9;
        assert_eq!(
            SyscallLog::from_bytes(&badver),
            Err(SyscallLogError::BadVersion(9))
        );
        // An invalid syscall number inside a record is corruption.
        let mut badsc = bytes;
        badsc[9 + 4] = 0x7f;
        assert!(matches!(
            SyscallLog::from_bytes(&badsc),
            Err(SyscallLogError::BadSyscall { num: 0x7f, .. })
        ));
    }

    #[test]
    fn changed_output_is_pinpointed() {
        let mut a = SyscallLog::new();
        let mut b = SyscallLog::new();
        let rec = |ret| SyscallRecord {
            pc: 0x100,
            syscall: Syscall::Write,
            args: [0, 0x2000, 4, 0],
            ret,
        };
        a.records.push(rec(4));
        b.records.push(rec(3));
        match divergence(&a, &b, true) {
            Divergence::At {
                index: 0,
                original: Some(o),
                replayed: Some(r),
            } => {
                assert_ne!(o.ret, r.ret);
            }
            other => panic!("{other:?}"),
        }
    }
}
