//! Rollback-and-re-execute: sandboxed replay from a checkpoint.
//!
//! Paper §2.1: after an attack, the runtime "rolls back and re-executes
//! repeatedly", each time with different instrumentation, replaying "all
//! of or a selected subset of incoming network messages received since
//! that checkpoint"; "all side-effects such as outgoing network messages
//! are sandboxed and silently dropped."
//!
//! A [`ReplaySession`] packages that: it clones the checkpointed machine,
//! re-injects the proxy's post-checkpoint connections (optionally dropping
//! suspects), and drives execution under a caller-supplied hook until the
//! guest halts, faults, or quiesces waiting for input that will never
//! come. The live machine and proxy are untouched; outputs accumulate in
//! the replay clone and are discarded with it.

use svm::net::BlockedOn;
use svm::{Hook, Machine, Status};

use crate::manager::{CheckpointManager, CkptId};
use crate::proxy::Proxy;

/// Why a replay stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEnd {
    /// The guest processed every injected input and is idle (blocked on
    /// `accept` with nothing pending).
    Quiescent,
    /// The guest halted.
    Halted(u32),
    /// The guest faulted (the expected outcome when replaying an attack).
    Faulted(svm::Fault),
    /// The cycle budget ran out.
    BudgetExhausted,
    /// The guest blocked on a read that can never be satisfied.
    StuckOnRead,
}

/// Result of one replay run.
pub struct ReplayOutcome {
    /// Why the replay ended.
    pub end: ReplayEnd,
    /// The replayed machine at its final state (for post-mortem
    /// inspection; outputs inside are sandboxed, i.e. never released).
    pub machine: Machine,
    /// Instructions retired during the replay window.
    pub insns: u64,
    /// Virtual cycles consumed by the replay window (uninstrumented
    /// guest cost only; instrumentation overhead is accounted by the
    /// caller's instrumenter).
    pub cycles: u64,
}

/// Adversarial mutation hooks applied to a replay's input injection.
///
/// The chaos fault-injection harness implements this to model a lossy or
/// corrupted proxy log (truncated inputs, bit-flips, dropped or reordered
/// connections) while replaying; production code paths use [`NoFault`],
/// which leaves every input untouched. The trait only mediates *what the
/// replay clone is fed* — the live machine and the proxy log itself are
/// never modified through it.
pub trait ReplayFault {
    /// Called once per re-injected connection, in injection order, with
    /// the connection's log id and a mutable copy of its input bytes.
    /// Mutate `input` to corrupt it; return `false` to drop the
    /// connection from the replay entirely.
    fn on_replay_input(&mut self, _log_id: usize, _input: &mut Vec<u8>) -> bool {
        true
    }

    /// Called once with the full collected replay set (log id, input)
    /// before injection; permute the vector to reorder delivery.
    fn reorder(&mut self, _inputs: &mut Vec<(usize, Vec<u8>)>) {}
}

/// The do-nothing [`ReplayFault`]: production replay behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFault;

impl ReplayFault for NoFault {}

/// A configured replay: which checkpoint, which inputs to drop.
pub struct ReplaySession<'a> {
    /// The checkpointed machine, materialized once at session creation
    /// (a clone for full-copy snapshots, a digest-verified delta-chain
    /// reconstruction for incremental ones) and cloned per run.
    machine: Machine,
    /// Connection count at the checkpoint (the replay-set cut point).
    conns_at: usize,
    proxy: &'a Proxy,
    drop: Vec<usize>,
    budget: u64,
}

impl<'a> ReplaySession<'a> {
    /// Replay from checkpoint `id`, re-injecting all logged
    /// post-checkpoint connections. `None` when the checkpoint is not
    /// retained **or** cannot be reconstructed (a damaged delta chain
    /// fails closed here, and the caller degrades to a restart).
    pub fn new(mgr: &CheckpointManager, proxy: &'a Proxy, id: CkptId) -> Option<Self> {
        let conns_at = mgr.get(id)?.conns_at;
        Some(ReplaySession {
            machine: mgr.materialize(id)?,
            conns_at,
            proxy,
            drop: Vec::new(),
            budget: u64::MAX,
        })
    }

    /// Exclude a logged connection from re-injection (recovery drops the
    /// attacker's input this way).
    pub fn dropping(mut self, log_ids: &[usize]) -> Self {
        self.drop.extend_from_slice(log_ids);
        self
    }

    /// Bound the replay's virtual-cycle budget.
    pub fn with_budget(mut self, cycles: u64) -> Self {
        self.budget = cycles;
        self
    }

    /// Run the replay under `hook`.
    pub fn run(&self, hook: &mut dyn Hook) -> ReplayOutcome {
        self.run_with_fault(hook, &mut NoFault)
    }

    /// Run the replay under `hook`, with `fault` mediating every
    /// re-injected input (see [`ReplayFault`]). `run` is exactly this
    /// with [`NoFault`].
    pub fn run_with_fault(
        &self,
        hook: &mut dyn Hook,
        fault: &mut dyn ReplayFault,
    ) -> ReplayOutcome {
        let mut m = self.machine.clone();
        m.clock.tick(svm::clock::cost::ROLLBACK);
        let insns_start = m.insns_retired;
        let cycles_start = m.clock.cycles();
        // Re-inject every post-checkpoint connection up front: the proxy
        // has the complete log, so replay need not respect original
        // arrival times (this is why replay runs faster than the original
        // execution, per the paper).
        let mut pending: Vec<(usize, Vec<u8>)> = self
            .proxy
            .replay_set(self.conns_at, &self.drop)
            .into_iter()
            .map(|lc| (lc.log_id, lc.input.clone()))
            .collect();
        fault.reorder(&mut pending);
        for (log_id, mut input) in pending {
            if fault.on_replay_input(log_id, &mut input) {
                m.net.push_connection(input);
            }
        }
        m.unblock();
        let end = loop {
            let elapsed = m.clock.cycles() - cycles_start;
            if elapsed > self.budget {
                break ReplayEnd::BudgetExhausted;
            }
            let chunk = (self.budget - elapsed).clamp(1, 1_000_000);
            match m.run(hook, chunk) {
                Status::Running => continue,
                Status::Halted(c) => break ReplayEnd::Halted(c),
                Status::Faulted(f) => break ReplayEnd::Faulted(f),
                Status::Blocked(BlockedOn::Accept) => break ReplayEnd::Quiescent,
                Status::Blocked(BlockedOn::Read { .. }) => break ReplayEnd::StuckOnRead,
            }
        };
        ReplayOutcome {
            end,
            insns: m.insns_retired - insns_start,
            cycles: m.clock.cycles() - cycles_start,
            machine: m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::NopHook;

    /// A server that echoes requests; a request containing `X` makes it
    /// dereference NULL (a stand-in exploit).
    fn server() -> Machine {
        let src = format!(
            "
.text
main:
    sys accept
    mov r4, r0
    mov r0, r4
    movi r1, buf
    movi r2, 64
    sys read
    mov r5, r0           ; n
    ; scan for 'X'
    movi r0, buf
    movi r1, 'X'
    call strchr
    cmpi r0, 0
    jnz boom
    mov r0, r4
    movi r1, buf
    mov r2, r5
    sys write
    mov r0, r4
    sys close
    jmp main
boom:
    movi r1, 0
    ld r0, [r1, 0]
    jmp main
.data
buf: .space 64
{LIB_ASM}
"
        );
        Machine::boot(&assemble(&src).expect("asm"), Aslr::off()).expect("boot")
    }

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 50_000_000)
    }

    #[test]
    fn replay_reproduces_the_fault() {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m); // Block on accept.
        let id = mgr.take(&mut m);
        proxy.offer(&mut m, b"hello".to_vec(), &[]);
        drive(&mut m);
        proxy.offer(&mut m, b"atkX!".to_vec(), &[]);
        let s = drive(&mut m);
        assert!(
            matches!(s, Status::Faulted(_)),
            "live machine faulted: {s:?}"
        );
        // Replay everything: fault reproduces deterministically.
        let out = ReplaySession::new(&mgr, &proxy, id)
            .expect("session")
            .run(&mut NopHook);
        assert!(
            matches!(out.end, ReplayEnd::Faulted(f) if f.is_null_deref()),
            "{:?}",
            out.end
        );
        assert!(out.insns > 0);
    }

    #[test]
    fn replay_dropping_attack_quiesces_cleanly() {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let id = mgr.take(&mut m);
        proxy.offer(&mut m, b"one".to_vec(), &[]);
        drive(&mut m);
        proxy.offer(&mut m, b"atkX".to_vec(), &[]);
        drive(&mut m);
        // Third request arrived while the server was dying.
        proxy.offer(&mut m, b"three".to_vec(), &[]);
        let out = ReplaySession::new(&mgr, &proxy, id)
            .expect("session")
            .dropping(&[1])
            .run(&mut NopHook);
        assert_eq!(out.end, ReplayEnd::Quiescent);
        // The replayed machine served requests 0 and 2 (guest ids 0, 1).
        assert_eq!(out.machine.net.conn(0).expect("c0").output, b"one");
        assert_eq!(out.machine.net.conn(1).expect("c1").output, b"three");
    }

    #[test]
    fn replay_outputs_are_sandboxed() {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let id = mgr.take(&mut m);
        proxy.offer(&mut m, b"hi".to_vec(), &[]);
        drive(&mut m);
        proxy.release_outputs(&m);
        let released_before = proxy.get(0).expect("c").released.clone();
        let _ = ReplaySession::new(&mgr, &proxy, id)
            .expect("s")
            .run(&mut NopHook);
        // Replay produced output in its sandboxed clone only.
        assert_eq!(proxy.get(0).expect("c").released, released_before);
        assert_eq!(
            m.net.conn(0).expect("c").output.len(),
            released_before.len()
        );
    }

    #[test]
    fn budget_bounds_replay() {
        let mut m = server();
        let mut mgr = CheckpointManager::new(0, 8);
        let mut proxy = Proxy::new();
        drive(&mut m);
        let id = mgr.take(&mut m);
        proxy.offer(&mut m, b"hello".to_vec(), &[]);
        let out = ReplaySession::new(&mgr, &proxy, id)
            .expect("s")
            .with_budget(10)
            .run(&mut NopHook);
        assert_eq!(out.end, ReplayEnd::BudgetExhausted);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let mgr = CheckpointManager::new(0, 2);
        let proxy = Proxy::new();
        assert!(ReplaySession::new(&mgr, &proxy, CkptId(42)).is_none());
    }
}
