//! Periodic lightweight checkpointing (the Rx/Flashback analogue).
//!
//! A checkpoint is a copy-on-write clone of the whole [`Machine`] — the
//! shadow-process equivalent: taking one costs O(mapped pages) pointer
//! copies plus (in the virtual cost model) the COW page copies dirtied
//! since the previous checkpoint. The manager keeps a bounded ring of
//! recent checkpoints (paper default: 20 checkpoints, 200 ms interval)
//! and can roll the live machine back to any retained one.

use std::collections::VecDeque;

use svm::clock::cost;
use svm::Machine;

/// Identifier of a retained checkpoint (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CkptId(pub u64);

/// One retained checkpoint.
pub struct Checkpoint {
    /// Identifier.
    pub id: CkptId,
    /// Virtual cycle count of the protected machine when taken.
    pub taken_at_cycles: u64,
    /// Number of connections that existed when taken (used by the proxy
    /// to know which logged connections must be re-injected on replay).
    pub conns_at: usize,
    /// The shadow machine state.
    pub machine: Machine,
}

/// Checkpointing policy and storage.
pub struct CheckpointManager {
    /// Interval between checkpoints, in virtual cycles.
    pub interval_cycles: u64,
    /// Maximum retained checkpoints (oldest evicted first).
    pub max_retained: usize,
    /// The retention ring. A `VecDeque` so that evicting the oldest
    /// snapshot is O(1) (`pop_front`) instead of the O(n) front-shift a
    /// `Vec::remove(0)` costs on *every* checkpoint past `max_retained`
    /// — at the paper's 200 ms cadence that shift ran ~5×/s forever.
    ring: VecDeque<Checkpoint>,
    next_id: u64,
    last_taken_cycles: Option<u64>,
    /// Total checkpoints ever taken (statistics).
    pub taken_total: u64,
    /// Total virtual cycles charged for checkpointing (statistics).
    pub overhead_cycles: u64,
    /// Total COW page copies charged across all checkpoints taken.
    pub pages_copied_total: u64,
    /// Pages copied by the most recent checkpoint.
    pub last_pages_copied: usize,
}

impl CheckpointManager {
    /// A manager with the paper's defaults: 200 ms interval, 20 retained.
    pub fn with_defaults() -> CheckpointManager {
        CheckpointManager::new(svm::clock::secs_to_cycles(0.2), 20)
    }

    /// A manager with an explicit interval (cycles) and retention count.
    pub fn new(interval_cycles: u64, max_retained: usize) -> CheckpointManager {
        CheckpointManager {
            interval_cycles,
            max_retained: max_retained.max(1),
            ring: VecDeque::new(),
            next_id: 0,
            last_taken_cycles: None,
            taken_total: 0,
            overhead_cycles: 0,
            pages_copied_total: 0,
            last_pages_copied: 0,
        }
    }

    /// Whether the interval policy says a checkpoint is due.
    pub fn due(&self, m: &Machine) -> bool {
        match self.last_taken_cycles {
            None => true,
            Some(t) => m.clock.cycles().saturating_sub(t) >= self.interval_cycles,
        }
    }

    /// Take a checkpoint now, charging its cost to the machine's clock.
    ///
    /// The charged cost models the `fork()`-like page-table copy plus the
    /// copy-on-write copies of pages dirtied since the last checkpoint
    /// (accounted here, deferred, rather than per-write).
    pub fn take(&mut self, m: &mut Machine) -> CkptId {
        let dirty = m.mem.mapped_pages() - m.mem.shared_pages();
        let cost = cost::CHECKPOINT_BASE + cost::PAGE_COPY * dirty as u64;
        m.clock.tick(cost);
        self.overhead_cycles += cost;
        self.pages_copied_total += dirty as u64;
        self.last_pages_copied = dirty;
        let id = CkptId(self.next_id);
        self.next_id += 1;
        self.taken_total += 1;
        self.last_taken_cycles = Some(m.clock.cycles());
        let ckpt = Checkpoint {
            id,
            taken_at_cycles: m.clock.cycles(),
            conns_at: m.net.conns().len(),
            machine: m.clone(),
        };
        self.ring.push_back(ckpt);
        if self.ring.len() > self.max_retained {
            self.ring.pop_front();
        }
        id
    }

    /// Take a checkpoint if one is due; returns its id if taken.
    pub fn maybe_take(&mut self, m: &mut Machine) -> Option<CkptId> {
        if self.due(m) {
            Some(self.take(m))
        } else {
            None
        }
    }

    /// The retained checkpoint with the given id.
    pub fn get(&self, id: CkptId) -> Option<&Checkpoint> {
        self.ring.iter().find(|c| c.id == id)
    }

    /// The most recent retained checkpoint.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.ring.back()
    }

    /// The oldest retained checkpoint.
    pub fn oldest(&self) -> Option<&Checkpoint> {
        self.ring.front()
    }

    /// Forcibly evict the oldest retained checkpoint, returning its id.
    ///
    /// Models memory-pressure eviction racing a rollback decision: the
    /// chaos harness calls this between "pick a checkpoint" and "recover
    /// from it" to prove the pipeline degrades to a restart (never a
    /// panic) when the chosen snapshot vanishes. `None` when the ring is
    /// empty.
    pub fn evict_oldest(&mut self) -> Option<CkptId> {
        self.ring.pop_front().map(|c| c.id)
    }

    /// The most recent checkpoint taken at or before `cycles` — used to
    /// pick a rollback point prior to a suspect connection's arrival.
    pub fn latest_before(&self, cycles: u64) -> Option<&Checkpoint> {
        self.ring.iter().rev().find(|c| c.taken_at_cycles <= cycles)
    }

    /// Number of retained checkpoints.
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// Produce a fresh machine rolled back to checkpoint `id`, charging
    /// the (cheap, context-switch-like) rollback cost to it.
    ///
    /// The rolled-back machine starts with a *cold* predecoded
    /// instruction cache: any decode state accumulated by the live
    /// machine after the checkpoint (or by the snapshot before it was
    /// frozen) must not leak into replay, or a page rewritten between
    /// checkpoint and rollback could execute stale instructions.
    /// `Machine::clone` already yields a cold cache; the explicit flush
    /// pins the invariant here rather than leaving it an implementation
    /// detail of `Clone`.
    pub fn rollback(&self, id: CkptId) -> Option<Machine> {
        let ckpt = self.get(id)?;
        let mut m = ckpt.machine.clone();
        m.flush_decode_cache();
        m.clock.tick(cost::ROLLBACK);
        Some(m)
    }

    /// Exact extra memory held by the retained checkpoints, in pages.
    ///
    /// Counts the distinct page storages reachable from the snapshot
    /// ring that the live machine does *not* also reference. Thanks to
    /// copy-on-write sharing this stays far below
    /// `retained × mapped_pages` — which is why keeping checkpoints "for
    /// a short time ... and then discard" them in memory is feasible
    /// (paper §3.1), and the measurable cost of the retention-count
    /// design lever (DESIGN.md §6).
    pub fn retained_unique_pages(&self, live: &Machine) -> usize {
        use std::collections::HashSet;
        let live_ids: HashSet<usize> = live.mem.page_storage_ids().collect();
        let mut snapshot_ids: HashSet<usize> = HashSet::new();
        for c in &self.ring {
            snapshot_ids.extend(c.machine.mem.page_storage_ids());
        }
        snapshot_ids.difference(&live_ids).count()
    }

    /// Export checkpointing counters into an [`obs::MetricsRegistry`]
    /// under the `checkpoint.` prefix: checkpoints taken, total/last COW
    /// page copies, total charged overhead, ring occupancy, and (COW-aware)
    /// unique retained pages relative to `live`. Absolute mirrors —
    /// safe to re-export at any cadence.
    pub fn export_metrics(&self, live: &Machine, reg: &mut obs::MetricsRegistry) {
        reg.set_counter("checkpoint.taken_total", self.taken_total);
        reg.set_counter("checkpoint.pages_copied_total", self.pages_copied_total);
        reg.set_counter("checkpoint.overhead_cycles", self.overhead_cycles);
        reg.gauge(
            "checkpoint.last_pages_copied",
            self.last_pages_copied as f64,
        );
        reg.gauge("checkpoint.ring_occupancy", self.ring.len() as f64);
        reg.gauge("checkpoint.ring_capacity", self.max_retained as f64);
        reg.gauge(
            "checkpoint.retained_unique_pages",
            self.retained_unique_pages(live) as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::{NopHook, Status};

    fn boot_counter() -> Machine {
        // Increments a data word forever; preemptible.
        let prog = assemble(
            ".text\nmain:\n movi r1, v\nloop:\n ld r0, [r1, 0]\n addi r0, r0, 1\n st [r1, 0], r0\n jmp loop\n.data\nv: .word 0\n",
        )
        .expect("asm");
        Machine::boot(&prog, Aslr::off()).expect("boot")
    }

    #[test]
    fn interval_policy() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(1000, 4);
        assert!(mgr.due(&m), "first checkpoint is always due");
        mgr.take(&mut m);
        assert!(!mgr.due(&m));
        m.run(&mut NopHook, 2000);
        assert!(mgr.due(&m));
        assert!(mgr.maybe_take(&mut m).is_some());
        assert!(mgr.maybe_take(&mut m).is_none());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 3);
        let ids: Vec<CkptId> = (0..5).map(|_| mgr.take(&mut m)).collect();
        assert_eq!(mgr.retained(), 3);
        assert!(mgr.get(ids[0]).is_none(), "oldest evicted");
        assert!(mgr.get(ids[4]).is_some());
        assert_eq!(mgr.oldest().map(|c| c.id), Some(ids[2]));
        assert_eq!(mgr.latest().map(|c| c.id), Some(ids[4]));
        assert_eq!(mgr.taken_total, 5);
    }

    #[test]
    fn rollback_restores_execution_state() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        m.run(&mut NopHook, 500);
        let v_addr = m.symbols.addr_of("v").expect("v");
        let id = mgr.take(&mut m);
        let v_at_ckpt = m.mem.read_u32(0, v_addr).expect("r");
        m.run(&mut NopHook, 5000);
        let v_later = m.mem.read_u32(0, v_addr).expect("r");
        assert!(v_later > v_at_ckpt);
        let rb = mgr.rollback(id).expect("rollback");
        assert_eq!(rb.mem.read_u32(0, v_addr).expect("r"), v_at_ckpt);
        assert_eq!(rb.cpu, mgr.get(id).expect("ckpt").machine.cpu);
    }

    #[test]
    fn replay_from_rollback_is_deterministic() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        let v_addr = m.symbols.addr_of("v").expect("v");
        // Retire a fixed number of instructions on the live machine.
        let insns = 1234;
        for _ in 0..insns {
            assert!(matches!(m.step(), Status::Running));
        }
        let v_final = m.mem.read_u32(0, v_addr).expect("r");
        // Replay the same instruction count from the checkpoint.
        let mut rb = mgr.rollback(id).expect("rollback");
        for _ in 0..insns {
            assert!(matches!(rb.step(), Status::Running));
        }
        assert_eq!(
            rb.mem.read_u32(0, v_addr).expect("r"),
            v_final,
            "identical replay"
        );
        assert_eq!(rb.cpu, m.cpu, "register state identical");
    }

    #[test]
    fn rollback_starts_with_cold_decode_cache() {
        let mut m = boot_counter();
        assert!(m.decode_cache_enabled(), "cache on by default");
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        // Warm the live machine's cache well past the checkpoint.
        m.run(&mut NopHook, 5000);
        assert!(m.icache_stats().hits > 0, "live cache warmed");
        let mut rb = mgr.rollback(id).expect("rollback");
        let cold = rb.icache_stats();
        assert_eq!(
            (cold.hits, cold.misses, cold.invalidations),
            (0, 0, 0),
            "no decode state survives rollback"
        );
        // Replay repopulates the cache from the restored memory image.
        rb.run(&mut NopHook, 1000);
        let warm = rb.icache_stats();
        assert!(warm.misses > 0 && warm.hits > 0, "replay re-decodes fresh");
    }

    #[test]
    fn rollback_starts_with_cold_superblock_cache() {
        let mut m = boot_counter();
        assert!(m.superblocks_enabled(), "superblock tier on by default");
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        // Warm the live machine's superblock tier well past the checkpoint.
        m.run(&mut NopHook, 5000);
        assert!(m.superblock_stats().dispatches > 0, "live tier warmed");
        let mut rb = mgr.rollback(id).expect("rollback");
        let cold = rb.superblock_stats();
        assert_eq!(
            (cold.built, cold.dispatches, cold.insns),
            (0, 0, 0),
            "no superblock state survives rollback"
        );
        // Replay rebuilds blocks from the restored memory image and the
        // replayed machine stays bit-identical to the pre-rollback run.
        rb.run(&mut NopHook, 1000);
        let warm = rb.superblock_stats();
        assert!(
            warm.built > 0 && warm.dispatches > 0,
            "replay rebuilds fresh"
        );
    }

    #[test]
    fn latest_before_selects_pre_attack_checkpoint() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let a = mgr.take(&mut m);
        m.run(&mut NopHook, 1000);
        let mid_cycles = m.clock.cycles();
        m.run(&mut NopHook, 1000);
        let b = mgr.take(&mut m);
        assert_eq!(mgr.latest_before(mid_cycles).map(|c| c.id), Some(a));
        assert_eq!(mgr.latest_before(u64::MAX).map(|c| c.id), Some(b));
        let ckpt_a_cycles = mgr.get(a).expect("a").taken_at_cycles;
        assert!(mgr.latest_before(ckpt_a_cycles.saturating_sub(1)).is_none());
    }

    #[test]
    fn retained_memory_stays_bounded_by_cow() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        assert_eq!(mgr.retained_unique_pages(&m), 0, "no checkpoints yet");
        mgr.take(&mut m);
        // Immediately after a checkpoint, everything is shared.
        assert_eq!(mgr.retained_unique_pages(&m), 0);
        // Run: the counter loop dirties one data page; the snapshot now
        // privately owns exactly the old copy of that page.
        m.run(&mut NopHook, 5000);
        let unique = mgr.retained_unique_pages(&m);
        assert!(
            (1..=3).contains(&unique),
            "one-ish diverged page, not a full copy: {unique} of {}",
            m.mem.mapped_pages()
        );
        // Several checkpoints of near-identical states share storage.
        for _ in 0..5 {
            mgr.take(&mut m);
        }
        let total = mgr.retained_unique_pages(&m);
        assert!(
            total <= 4,
            "ring of similar snapshots dedups via COW: {total}"
        );
    }

    #[test]
    fn deque_ring_preserves_eviction_order_and_page_accounting() {
        // Regression guard for the Vec -> VecDeque ring switch: many
        // evictions must preserve FIFO order, `latest_before`/`get`
        // semantics, and the COW `retained_unique_pages` accounting.
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut ids = Vec::new();
        let mut stamps = Vec::new();
        for _ in 0..12 {
            m.run(&mut NopHook, 700); // dirty the data page between snapshots
            ids.push(mgr.take(&mut m));
            stamps.push(m.clock.cycles());
        }
        assert_eq!(mgr.retained(), 4);
        // Exactly the last four survive, oldest-first.
        for id in &ids[..8] {
            assert!(mgr.get(*id).is_none(), "{id:?} must have been evicted");
        }
        let survivors: Vec<CkptId> = (0..4).map(|i| ids[8 + i]).collect();
        assert_eq!(mgr.oldest().map(|c| c.id), Some(survivors[0]));
        assert_eq!(mgr.latest().map(|c| c.id), Some(survivors[3]));
        // latest_before walks the ring newest-first and still honours stamps.
        assert_eq!(mgr.latest_before(stamps[9]).map(|c| c.id), Some(ids[9]));
        assert_eq!(
            mgr.latest_before(stamps[8].saturating_sub(1)).map(|c| c.id),
            None,
            "nothing retained before the oldest survivor"
        );
        // Page accounting: totals are monotone sums over all 12 takes,
        // and the COW-unique count only covers the 4 retained snapshots.
        assert_eq!(mgr.taken_total, 12);
        assert!(mgr.pages_copied_total >= mgr.last_pages_copied as u64);
        let unique = mgr.retained_unique_pages(&m);
        assert!(
            unique <= 4 * 3,
            "retained-unique pages bounded by the surviving ring: {unique}"
        );
        let mut reg = obs::MetricsRegistry::new();
        mgr.export_metrics(&m, &mut reg);
        assert_eq!(reg.counter("checkpoint.taken_total"), 12);
        assert_eq!(reg.gauge_value("checkpoint.ring_occupancy"), Some(4.0));
        assert_eq!(
            reg.gauge_value("checkpoint.retained_unique_pages"),
            Some(unique as f64)
        );
    }

    #[test]
    fn checkpoint_cost_scales_with_dirty_pages() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        mgr.take(&mut m);
        let first_cost = mgr.overhead_cycles;
        // Immediately re-checkpoint: almost no dirty pages.
        let before = mgr.overhead_cycles;
        mgr.take(&mut m);
        let second_cost = mgr.overhead_cycles - before;
        assert!(
            second_cost < first_cost,
            "clean re-checkpoint is cheaper: {second_cost} vs {first_cost}"
        );
    }
}
