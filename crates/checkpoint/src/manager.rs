//! Periodic lightweight checkpointing (the Rx/Flashback analogue).
//!
//! Snapshots are **incremental by default**: a checkpoint captures only
//! the pages whose write generation advanced since the previous capture
//! (base snapshot + dirty deltas) into a content-hash deduplicating
//! store shared across the ring ([`crate::incremental`]), and a pre-copy
//! [`CheckpointManager::drain`] folds dirty pages in *between* service
//! ticks so the snapshot instant itself is O(changed-since-drain). The
//! legacy full-copy engine (a copy-on-write clone of the whole
//! [`Machine`]) is retained both as a selectable [`Engine`] and as the
//! lockstep oracle of [`Engine::Differential`], which keeps **both**
//! representations per snapshot and compares page-level digests at every
//! reconstruction — the bit-identical-rollback contract, enforced in CI
//! by `tables ckptparity` and the `checkpoint_incremental` proptests.
//!
//! The manager keeps a bounded ring of recent checkpoints (paper
//! default: 20 checkpoints, 200 ms interval) and can roll the live
//! machine back to any retained one.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

use svm::clock::cost;
use svm::Machine;

use crate::domains::{DomainLedger, DomainRecovery, DomainRefusal};
use crate::incremental::{mem_digest, DedupeStore, DeltaRecord, PageKey};

/// Identifier of a retained checkpoint (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CkptId(pub u64);

/// Which snapshot representation the manager maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Legacy whole-machine copy-on-write clone per snapshot.
    Full,
    /// Dirty-page delta records over the dedupe store (production
    /// default).
    #[default]
    Incremental,
    /// Both representations in lockstep; every materialization rebuilds
    /// from the delta chain **and** compares page-level digests against
    /// the full clone, counting `checkpoint.parity_mismatches`. Charges
    /// virtual cost exactly like [`Engine::Incremental`] — the full
    /// clone is a cost-free debugging oracle, so a differential run's
    /// clock stays bit-identical to an incremental run's.
    Differential,
}

impl Engine {
    /// Stable lowercase name (used by benches and scenario labels).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Full => "full",
            Engine::Incremental => "incremental",
            Engine::Differential => "differential",
        }
    }
}

/// The stored representation(s) of one checkpoint.
enum Repr {
    Full(Machine),
    Delta(DeltaRecord),
    Both {
        full: Box<Machine>,
        delta: DeltaRecord,
    },
}

/// One retained checkpoint.
pub struct Checkpoint {
    /// Identifier.
    pub id: CkptId,
    /// Virtual cycle count of the protected machine when taken.
    pub taken_at_cycles: u64,
    /// Number of connections that existed when taken (used by the proxy
    /// to know which logged connections must be re-injected on replay).
    pub conns_at: usize,
    /// The snapshot representation (reconstruct via
    /// [`CheckpointManager::materialize`]).
    repr: Repr,
}

/// Checkpointing policy and storage.
pub struct CheckpointManager {
    /// Interval between checkpoints, in virtual cycles.
    pub interval_cycles: u64,
    /// Maximum retained checkpoints (oldest evicted first).
    pub max_retained: usize,
    /// Snapshot engine (see [`Engine`]).
    engine: Engine,
    /// The retention ring. A `VecDeque` so that evicting the oldest
    /// snapshot is O(1) (`pop_front`) instead of the O(n) front-shift a
    /// `Vec::remove(0)` costs on *every* checkpoint past `max_retained`
    /// — at the paper's 200 ms cadence that shift ran ~5×/s forever.
    ring: VecDeque<Checkpoint>,
    /// Content-addressed page storage shared by the incremental records.
    store: DedupeStore,
    /// Pages captured by the pre-copy drain since the last take,
    /// already interned (one store reference held per entry).
    pending: BTreeMap<u32, (PageKey, u64)>,
    /// Highest `write_seq` already covered by a capture or drain.
    covered_gen: u64,
    next_id: u64,
    last_taken_cycles: Option<u64>,
    /// Total checkpoints ever taken (statistics).
    pub taken_total: u64,
    /// Total virtual cycles charged for checkpointing (statistics).
    pub overhead_cycles: u64,
    /// Total page captures charged across all checkpoints taken (COW
    /// copies for the full engine, fresh delta interns for the
    /// incremental one).
    pub pages_copied_total: u64,
    /// Pages captured by the most recent checkpoint.
    pub last_pages_copied: usize,
    /// Total pages folded by the pre-copy drain (background work, never
    /// charged to the service path).
    pub pages_drained_total: u64,
    /// Virtual cycles of background pre-copy work (drain page interns).
    pub precopy_cycles: u64,
    /// Differential-engine page-level digest mismatches between the
    /// incremental reconstruction and the full-copy oracle. Must stay 0
    /// (chaos invariant I9, `tables ckptparity`).
    parity_mismatches: Cell<u64>,
    /// Reconstructions that failed closed (delta-chain truncation or
    /// dedupe-store eviction damage detected by digest verification).
    materialize_failures: Cell<u64>,
    /// Page→domain attribution for the current checkpoint window (see
    /// [`crate::domains`]).
    ledger: DomainLedger,
    /// Successful partial (domain) rollbacks.
    pub domain_rollbacks: u64,
    /// Pages restored across all partial rollbacks.
    pub domain_pages_restored: u64,
}

impl CheckpointManager {
    /// A manager with the paper's defaults: 200 ms interval, 20 retained.
    pub fn with_defaults() -> CheckpointManager {
        CheckpointManager::new(svm::clock::secs_to_cycles(0.2), 20)
    }

    /// A manager with an explicit interval (cycles) and retention count,
    /// on the default ([`Engine::Incremental`]) engine.
    pub fn new(interval_cycles: u64, max_retained: usize) -> CheckpointManager {
        CheckpointManager {
            interval_cycles,
            max_retained: max_retained.max(1),
            engine: Engine::default(),
            ring: VecDeque::new(),
            store: DedupeStore::new(),
            pending: BTreeMap::new(),
            covered_gen: 0,
            next_id: 0,
            last_taken_cycles: None,
            taken_total: 0,
            overhead_cycles: 0,
            pages_copied_total: 0,
            last_pages_copied: 0,
            pages_drained_total: 0,
            precopy_cycles: 0,
            parity_mismatches: Cell::new(0),
            materialize_failures: Cell::new(0),
            ledger: DomainLedger::new(),
            domain_rollbacks: 0,
            domain_pages_restored: 0,
        }
    }

    /// Select the snapshot engine (builder style; call before the first
    /// checkpoint is taken).
    pub fn with_engine(mut self, engine: Engine) -> CheckpointManager {
        self.engine = engine;
        self
    }

    /// The active snapshot engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Whether the interval policy says a checkpoint is due.
    pub fn due(&self, m: &Machine) -> bool {
        match self.last_taken_cycles {
            None => true,
            Some(t) => m.clock.cycles().saturating_sub(t) >= self.interval_cycles,
        }
    }

    /// Pre-copy drain: fold the pages dirtied since the last capture or
    /// drain into the pending delta, off the service path. Returns how
    /// many pages were drained. The work is accounted as background
    /// (`precopy_cycles`, `pages_drained_total`) and **never** charged
    /// to the machine's clock — it models the checkpoint thread copying
    /// pages while the server waits on the network, which is exactly why
    /// the snapshot instant itself ([`CheckpointManager::take`]) only
    /// pays for pages dirtied *since the drain*. No-op for the full
    /// engine and before the base snapshot exists.
    pub fn drain(&mut self, m: &Machine) -> usize {
        if self.engine == Engine::Full || self.last_taken_cycles.is_none() {
            return 0;
        }
        let mut drained = 0usize;
        let dirty: Vec<(u32, u64)> = m.mem.dirty_pages_since(self.covered_gen).collect();
        for (pno, gen) in dirty {
            let (arc, g) = m.mem.page_arc(pno).expect("dirty page is mapped");
            debug_assert_eq!(g, gen);
            let key = self.store.intern(arc);
            if let Some((old, _)) = self.pending.insert(pno, (key, gen)) {
                self.store.release(old);
            }
            drained += 1;
        }
        self.covered_gen = m.mem.write_seq();
        self.pages_drained_total += drained as u64;
        self.precopy_cycles += cost::PAGE_COPY * drained as u64;
        // Every page dirtied in this window is now captured in `pending`:
        // later cross-domain overwrites no longer lose recoverable state.
        self.ledger.mark_all_covered();
        drained
    }

    /// Discard the pending pre-copy drain set without capturing it.
    ///
    /// Must be called after the live machine is **rolled back or
    /// replaced**: a rollback rewinds `write_seq`, so the forward
    /// execution resumed from the snapshot re-reaches generation
    /// numbers the drained pages were recorded under — with different
    /// bytes. The "equal generations ⇒ identical bytes" contract that
    /// lets [`DeltaRecord::capture`] reuse a pending page holds only
    /// within one forward execution; folding a pre-rollback drain into
    /// a post-rollback delta leaks stale page content into the next
    /// snapshot (caught as a materialize digest mismatch, degrading
    /// recovery to a restart for no reason). Releases every held store
    /// reference and rewinds the coverage watermark so the next drain
    /// or capture rescans from the snapshot's own generation floor.
    pub fn discard_pending(&mut self) {
        for (key, _) in std::mem::take(&mut self.pending).into_values() {
            self.store.release(key);
        }
        self.covered_gen = 0;
    }

    /// Take a checkpoint now, charging its cost to the machine's clock.
    ///
    /// Full engine: the `fork()`-like page-table copy plus the
    /// copy-on-write copies of pages dirtied since the last checkpoint
    /// (accounted here, deferred, rather than per-write). Incremental
    /// and differential engines: the base snapshot pays the full-copy
    /// price once at boot; every later snapshot pays only
    /// [`cost::CHECKPOINT_DELTA`] plus a page copy per page dirtied
    /// since the last [`CheckpointManager::drain`].
    pub fn take(&mut self, m: &mut Machine) -> CkptId {
        let base = self.last_taken_cycles.is_none();
        let (cost, pages) = match self.engine {
            Engine::Full => {
                let dirty = m.mem.mapped_pages() - m.mem.shared_pages();
                (
                    cost::CHECKPOINT_BASE + cost::PAGE_COPY * dirty as u64,
                    dirty,
                )
            }
            Engine::Incremental | Engine::Differential => {
                if base {
                    let all = m.mem.mapped_pages();
                    (cost::CHECKPOINT_BASE + cost::PAGE_COPY * all as u64, all)
                } else {
                    let fresh = m.mem.dirty_pages_since(self.covered_gen).count();
                    (
                        cost::CHECKPOINT_DELTA + cost::PAGE_COPY * fresh as u64,
                        fresh,
                    )
                }
            }
        };
        m.clock.tick(cost);
        self.overhead_cycles += cost;
        self.pages_copied_total += pages as u64;
        self.last_pages_copied = pages;
        let id = CkptId(self.next_id);
        self.next_id += 1;
        self.taken_total += 1;
        self.last_taken_cycles = Some(m.clock.cycles());
        let repr = match self.engine {
            Engine::Full => Repr::Full(m.clone()),
            Engine::Incremental => Repr::Delta(self.capture_delta(m)),
            Engine::Differential => Repr::Both {
                full: Box::new(m.clone()),
                delta: self.capture_delta(m),
            },
        };
        let ckpt = Checkpoint {
            id,
            taken_at_cycles: m.clock.cycles(),
            conns_at: m.net.conns().len(),
            repr,
        };
        self.ring.push_back(ckpt);
        if self.ring.len() > self.max_retained {
            self.evict_oldest();
        }
        self.ledger.reset(id, m);
        id
    }

    /// Capture an incremental record, consuming the pending drain set.
    fn capture_delta(&mut self, m: &Machine) -> DeltaRecord {
        let prev = self
            .ring
            .back()
            .and_then(|c| match &c.repr {
                Repr::Delta(d) | Repr::Both { delta: d, .. } => Some(d.pages()),
                Repr::Full(_) => None,
            })
            .cloned()
            .unwrap_or_default();
        let rec = DeltaRecord::capture(m, &mut self.store, &prev, &self.pending);
        // The record holds its own references now; drop the drain's.
        for (key, _) in std::mem::take(&mut self.pending).into_values() {
            self.store.release(key);
        }
        self.covered_gen = m.mem.write_seq();
        rec
    }

    /// Take a checkpoint if one is due; returns its id if taken.
    pub fn maybe_take(&mut self, m: &mut Machine) -> Option<CkptId> {
        if self.due(m) {
            Some(self.take(m))
        } else {
            None
        }
    }

    /// The retained checkpoint with the given id.
    pub fn get(&self, id: CkptId) -> Option<&Checkpoint> {
        self.ring.iter().find(|c| c.id == id)
    }

    /// The most recent retained checkpoint.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.ring.back()
    }

    /// The oldest retained checkpoint.
    pub fn oldest(&self) -> Option<&Checkpoint> {
        self.ring.front()
    }

    /// Forcibly evict the oldest retained checkpoint, returning its id.
    ///
    /// Models memory-pressure eviction racing a rollback decision: the
    /// chaos harness calls this between "pick a checkpoint" and "recover
    /// from it" to prove the pipeline degrades to a restart (never a
    /// panic) when the chosen snapshot vanishes. `None` when the ring is
    /// empty. Evicting an incremental record releases its store
    /// references, compacting now-unreferenced page contents.
    pub fn evict_oldest(&mut self) -> Option<CkptId> {
        let c = self.ring.pop_front()?;
        if let Repr::Delta(d) | Repr::Both { delta: d, .. } = &c.repr {
            d.release(&mut self.store);
        }
        Some(c.id)
    }

    /// Chaos seam: truncate the newest retained snapshot's delta chain
    /// (drop its highest page entries), modelling a lost delta segment.
    /// Returns how many page entries were dropped (0 on an empty ring or
    /// a full-engine ring, where there is no chain to truncate).
    /// Materializing the damaged snapshot afterwards fails closed.
    pub fn chaos_truncate_latest_delta(&mut self, drop_pages: usize) -> usize {
        let Some(c) = self.ring.back_mut() else {
            return 0;
        };
        match &mut c.repr {
            Repr::Delta(d) | Repr::Both { delta: d, .. } => {
                d.chaos_truncate(&mut self.store, drop_pages)
            }
            Repr::Full(_) => 0,
        }
    }

    /// Chaos seam: forcibly evict one dedupe-store slot despite
    /// outstanding references (the dedupe-store eviction race). Returns
    /// whether a slot was evicted. Snapshots referencing the evicted
    /// content fail their digest verification on materialize and degrade
    /// to a restart.
    pub fn chaos_evict_store_page(&mut self) -> bool {
        self.store.chaos_evict_one().is_some()
    }

    /// The most recent checkpoint taken at or before `cycles` — used to
    /// pick a rollback point prior to a suspect connection's arrival.
    pub fn latest_before(&self, cycles: u64) -> Option<&Checkpoint> {
        self.ring.iter().rev().find(|c| c.taken_at_cycles <= cycles)
    }

    /// Number of retained checkpoints.
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// Ids of every retained checkpoint, oldest first.
    pub fn ids(&self) -> impl Iterator<Item = CkptId> + '_ {
        self.ring.iter().map(|c| c.id)
    }

    /// Reconstruct the machine state of checkpoint `id` (no rollback
    /// cost charged — see [`CheckpointManager::rollback`] for the
    /// service-path entry point).
    ///
    /// Full engine: a clone. Incremental: rebuilt from the delta chain
    /// and digest-verified — `None` (fail closed, caller degrades to a
    /// restart) when truncation or store eviction damaged the chain.
    /// Differential: rebuilt incrementally, then compared page-by-page
    /// against the full-copy oracle; a divergence bumps
    /// `checkpoint.parity_mismatches` but still returns the incremental
    /// reconstruction (the oracle is an observer, not a fallback — a
    /// mismatch must surface as a gate failure, not be silently papered
    /// over).
    pub fn materialize(&self, id: CkptId) -> Option<Machine> {
        let c = self.get(id)?;
        match &c.repr {
            Repr::Full(m) => Some(m.clone()),
            Repr::Delta(d) => match d.materialize(&self.store) {
                Some(m) => Some(m),
                None => {
                    self.materialize_failures
                        .set(self.materialize_failures.get() + 1);
                    None
                }
            },
            Repr::Both { full, delta } => match delta.materialize(&self.store) {
                None => {
                    self.materialize_failures
                        .set(self.materialize_failures.get() + 1);
                    None
                }
                Some(m) => {
                    if !lockstep_identical(&m, full) {
                        self.parity_mismatches.set(self.parity_mismatches.get() + 1);
                    }
                    Some(m)
                }
            },
        }
    }

    /// Differential-engine digest mismatches observed so far (must be 0).
    pub fn parity_mismatches(&self) -> u64 {
        self.parity_mismatches.get()
    }

    /// Reconstructions that failed closed on damage detection.
    pub fn materialize_failures(&self) -> u64 {
        self.materialize_failures.get()
    }

    /// Distinct page contents currently retained by the dedupe store.
    pub fn store_pages(&self) -> usize {
        self.store.len()
    }

    /// Produce a fresh machine rolled back to checkpoint `id`, charging
    /// the (cheap, context-switch-like) rollback cost to it.
    ///
    /// The rolled-back machine starts with a *cold* predecoded
    /// instruction cache: any decode state accumulated by the live
    /// machine after the checkpoint (or by the snapshot before it was
    /// frozen) must not leak into replay, or a page rewritten between
    /// checkpoint and rollback could execute stale instructions.
    /// `Machine::clone` already yields a cold cache; the explicit flush
    /// pins the invariant here rather than leaving it an implementation
    /// detail of `Clone` (and the incremental reconstruction path never
    /// had decode state to begin with).
    pub fn rollback(&self, id: CkptId) -> Option<Machine> {
        let mut m = self.materialize(id)?;
        m.flush_decode_cache();
        m.clock.tick(cost::ROLLBACK);
        Some(m)
    }

    /// Attribute the pages dirtied since the last attribution scan to
    /// `domain` (a benign connection that just completed service), and
    /// advance the ledger's service boundary to the machine's current
    /// idle state. See [`crate::domains`].
    pub fn note_service(&mut self, m: &Machine, domain: u32) {
        self.ledger.note_service(m, domain);
    }

    /// Attribute the pages dirtied since the last attribution scan to
    /// `domain` (the detected attack connection) *without* moving the
    /// service boundary.
    pub fn note_attack(&mut self, m: &Machine, domain: u32) {
        self.ledger.note_attack(m, domain);
    }

    /// The page→domain attribution ledger for the current window.
    pub fn ledger(&self) -> &DomainLedger {
        &self.ledger
    }

    /// Cross-domain spills observed so far (monotone).
    pub fn domain_spills(&self) -> u64 {
        self.ledger.spills
    }

    /// Partial rollback: restore *only* the pages owned by `domains`
    /// (the attacked connections) to their pre-attack content and rewind
    /// CPU/heap/RNG/status/connections to the captured service boundary,
    /// leaving every other page — and the work of every benign
    /// connection — live and untouched. The clock stays monotone; the
    /// restore cost is charged forward.
    ///
    /// Fail-closed on every structural doubt: a stale window, a missing
    /// boundary, a failing ledger checksum, a spilled domain, or a
    /// missing restore source refuses the partial path (the caller runs
    /// full rollback + replay instead). The pre-attack content of each
    /// owned page comes from the pre-copy drain's `pending` set when
    /// present (captured *after* the last benign write), else from the
    /// checkpoint image (the page was untouched between the snapshot and
    /// the attack).
    pub fn rollback_domain(
        &mut self,
        id: CkptId,
        live: &mut Machine,
        domains: &[u32],
    ) -> Result<DomainRecovery, DomainRefusal> {
        if self.ledger.window() != Some(id) {
            return Err(DomainRefusal::StaleWindow);
        }
        if !self.ledger.verify() {
            return Err(DomainRefusal::CorruptLedger);
        }
        let Some(boundary) = self.ledger.boundary() else {
            return Err(DomainRefusal::NoBoundary);
        };
        if domains.iter().any(|d| self.ledger.is_spilled(*d)) {
            return Err(DomainRefusal::Spilled);
        }
        // Gather every restore source before touching `live`.
        let owned = self.ledger.owned_pages(domains);
        let mut restores = Vec::with_capacity(owned.len());
        let mut ckpt_image: Option<Machine> = None;
        for pno in owned {
            let arc = match self.pending.get(&pno) {
                Some(&(key, _)) => self.store.get(key),
                None => {
                    if ckpt_image.is_none() {
                        ckpt_image = self.materialize(id);
                        if ckpt_image.is_none() {
                            return Err(DomainRefusal::PageUnavailable);
                        }
                    }
                    ckpt_image
                        .as_ref()
                        .expect("just materialized")
                        .mem
                        .page_arc(pno)
                        .map(|(arc, _)| arc)
                }
            };
            match arc {
                Some(a) => restores.push((pno, a)),
                None => return Err(DomainRefusal::PageUnavailable),
            }
        }
        // Commit: restore pages at the current write watermark (they are
        // "dirty now"; the caller discards pending state and takes a
        // fresh checkpoint right after recovery anyway), then rewind the
        // non-memory state to the boundary.
        let pages = restores.len();
        let gen = live.mem.write_seq();
        for (pno, data) in restores {
            live.mem.restore_page(pno, data, gen);
        }
        crate::domains::apply_boundary(live, &boundary);
        let pause = cost::ROLLBACK + cost::PAGE_COPY * pages as u64;
        live.clock.tick(pause);
        self.domain_rollbacks += 1;
        self.domain_pages_restored += pages as u64;
        Ok(DomainRecovery {
            pages_restored: pages,
            pause_cycles: pause,
        })
    }

    /// Chaos seam: mis-attribute one ledger entry to a different domain
    /// without updating the integrity checksum (chaos family
    /// `domain-tag`). Returns whether the fault landed. The next
    /// [`CheckpointManager::rollback_domain`] must detect the corruption
    /// and refuse.
    pub fn chaos_corrupt_domain_tag(&mut self, selector: u64) -> bool {
        self.ledger.chaos_corrupt_tag(selector)
    }

    /// Chaos seam: force every tracked domain into the spilled set
    /// (chaos family `domain-spill`). Returns whether the fault landed.
    /// The next partial rollback of any attacked domain must take the
    /// fail-closed path to full recovery.
    pub fn chaos_force_domain_spill(&mut self) -> bool {
        self.ledger.chaos_force_spill()
    }

    /// Exact extra memory held by the retained checkpoints, in pages.
    ///
    /// Counts the distinct page storages reachable from the snapshot
    /// ring (full clones and dedupe-store slots alike) that the live
    /// machine does *not* also reference. Thanks to copy-on-write
    /// sharing and cross-ring dedupe this stays far below
    /// `retained × mapped_pages` — which is why keeping checkpoints "for
    /// a short time ... and then discard" them in memory is feasible
    /// (paper §3.1), and the measurable cost of the retention-count
    /// design lever (DESIGN.md §6).
    pub fn retained_unique_pages(&self, live: &Machine) -> usize {
        use std::collections::HashSet;
        let live_ids: HashSet<usize> = live.mem.page_storage_ids().collect();
        let mut snapshot_ids: HashSet<usize> = HashSet::new();
        for c in &self.ring {
            match &c.repr {
                Repr::Full(m) => snapshot_ids.extend(m.mem.page_storage_ids()),
                Repr::Delta(d) => snapshot_ids.extend(self.delta_storage_ids(d)),
                Repr::Both { full, delta } => {
                    snapshot_ids.extend(full.mem.page_storage_ids());
                    snapshot_ids.extend(self.delta_storage_ids(delta));
                }
            }
        }
        snapshot_ids.difference(&live_ids).count()
    }

    fn delta_storage_ids<'a>(&'a self, d: &'a DeltaRecord) -> impl Iterator<Item = usize> + 'a {
        d.pages()
            .values()
            .filter_map(|&(key, _)| self.store.get(key))
            .map(|arc| std::sync::Arc::as_ptr(&arc) as usize)
    }

    /// Export checkpointing counters into an [`obs::MetricsRegistry`]
    /// under the `checkpoint.` prefix: checkpoints taken, total/last
    /// page captures, charged overhead, pre-copy drain work, dedupe
    /// store activity, differential parity, ring occupancy, and
    /// (COW-aware) unique retained pages relative to `live`. Absolute
    /// mirrors — safe to re-export at any cadence.
    pub fn export_metrics(&self, live: &Machine, reg: &mut obs::MetricsRegistry) {
        reg.set_counter("checkpoint.taken_total", self.taken_total);
        reg.set_counter("checkpoint.pages_copied_total", self.pages_copied_total);
        reg.set_counter("checkpoint.overhead_cycles", self.overhead_cycles);
        reg.set_counter("checkpoint.pages_drained_total", self.pages_drained_total);
        reg.set_counter("checkpoint.precopy_cycles", self.precopy_cycles);
        let st = self.store.stats();
        reg.set_counter("checkpoint.dedupe_hits", st.dedup_hits);
        reg.set_counter("checkpoint.store_inserted", st.inserted);
        reg.set_counter("checkpoint.store_compacted", st.compacted);
        reg.set_counter("checkpoint.parity_mismatches", self.parity_mismatches.get());
        reg.set_counter(
            "checkpoint.materialize_failures",
            self.materialize_failures.get(),
        );
        reg.set_counter("checkpoint.domain_spills", self.ledger.spills);
        reg.set_counter("checkpoint.domain_rollbacks", self.domain_rollbacks);
        reg.set_counter(
            "checkpoint.domain_pages_restored",
            self.domain_pages_restored,
        );
        reg.gauge(
            "checkpoint.domain_pages_tracked",
            self.ledger.pages_tracked() as f64,
        );
        reg.gauge(
            "checkpoint.last_pages_copied",
            self.last_pages_copied as f64,
        );
        reg.gauge("checkpoint.ring_occupancy", self.ring.len() as f64);
        reg.gauge("checkpoint.ring_capacity", self.max_retained as f64);
        reg.gauge("checkpoint.store_pages", self.store.len() as f64);
        reg.gauge(
            "checkpoint.retained_unique_pages",
            self.retained_unique_pages(live) as f64,
        );
    }
}

/// Page-level lockstep comparison between the incremental reconstruction
/// and the full-copy oracle: execution-visible machine state (registers,
/// retirement counters, virtual clock) plus the full image digest (page
/// set, per-page generations and contents, write watermark, NX).
fn lockstep_identical(a: &Machine, b: &Machine) -> bool {
    a.cpu == b.cpu
        && a.clock == b.clock
        && a.insns_retired == b.insns_retired
        && a.syscalls_retired == b.syscalls_retired
        && mem_digest(&a.mem) == mem_digest(&b.mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::DomainRefusal;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::{NopHook, Status};

    fn boot_counter() -> Machine {
        // Increments a data word forever; preemptible.
        let prog = assemble(
            ".text\nmain:\n movi r1, v\nloop:\n ld r0, [r1, 0]\n addi r0, r0, 1\n st [r1, 0], r0\n jmp loop\n.data\nv: .word 0\n",
        )
        .expect("asm");
        Machine::boot(&prog, Aslr::off()).expect("boot")
    }

    #[test]
    fn interval_policy() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(1000, 4);
        assert!(mgr.due(&m), "first checkpoint is always due");
        mgr.take(&mut m);
        assert!(!mgr.due(&m));
        m.run(&mut NopHook, 2000);
        assert!(mgr.due(&m));
        assert!(mgr.maybe_take(&mut m).is_some());
        assert!(mgr.maybe_take(&mut m).is_none());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 3);
        let ids: Vec<CkptId> = (0..5).map(|_| mgr.take(&mut m)).collect();
        assert_eq!(mgr.retained(), 3);
        assert!(mgr.get(ids[0]).is_none(), "oldest evicted");
        assert!(mgr.get(ids[4]).is_some());
        assert_eq!(mgr.oldest().map(|c| c.id), Some(ids[2]));
        assert_eq!(mgr.latest().map(|c| c.id), Some(ids[4]));
        assert_eq!(mgr.taken_total, 5);
    }

    #[test]
    fn rollback_restores_execution_state() {
        for engine in [Engine::Full, Engine::Incremental, Engine::Differential] {
            let mut m = boot_counter();
            let mut mgr = CheckpointManager::new(0, 8).with_engine(engine);
            m.run(&mut NopHook, 500);
            let v_addr = m.symbols.addr_of("v").expect("v");
            let id = mgr.take(&mut m);
            let v_at_ckpt = m.mem.read_u32(0, v_addr).expect("r");
            let cpu_at_ckpt = m.cpu.clone();
            m.run(&mut NopHook, 5000);
            let v_later = m.mem.read_u32(0, v_addr).expect("r");
            assert!(v_later > v_at_ckpt);
            let rb = mgr.rollback(id).expect("rollback");
            assert_eq!(rb.mem.read_u32(0, v_addr).expect("r"), v_at_ckpt);
            assert_eq!(rb.cpu, cpu_at_ckpt, "{engine:?}");
            assert_eq!(mgr.parity_mismatches(), 0);
        }
    }

    #[test]
    fn replay_from_rollback_is_deterministic() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        let v_addr = m.symbols.addr_of("v").expect("v");
        // Retire a fixed number of instructions on the live machine.
        let insns = 1234;
        for _ in 0..insns {
            assert!(matches!(m.step(), Status::Running));
        }
        let v_final = m.mem.read_u32(0, v_addr).expect("r");
        // Replay the same instruction count from the checkpoint.
        let mut rb = mgr.rollback(id).expect("rollback");
        for _ in 0..insns {
            assert!(matches!(rb.step(), Status::Running));
        }
        assert_eq!(
            rb.mem.read_u32(0, v_addr).expect("r"),
            v_final,
            "identical replay"
        );
        assert_eq!(rb.cpu, m.cpu, "register state identical");
    }

    #[test]
    fn rollback_starts_with_cold_decode_cache() {
        let mut m = boot_counter();
        assert!(m.decode_cache_enabled(), "cache on by default");
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        // Warm the live machine's cache well past the checkpoint.
        m.run(&mut NopHook, 5000);
        assert!(m.icache_stats().hits > 0, "live cache warmed");
        let mut rb = mgr.rollback(id).expect("rollback");
        let cold = rb.icache_stats();
        assert_eq!(
            (cold.hits, cold.misses, cold.invalidations),
            (0, 0, 0),
            "no decode state survives rollback"
        );
        // Replay repopulates the cache from the restored memory image.
        rb.run(&mut NopHook, 1000);
        let warm = rb.icache_stats();
        assert!(warm.misses > 0 && warm.hits > 0, "replay re-decodes fresh");
    }

    #[test]
    fn rollback_starts_with_cold_superblock_cache() {
        let mut m = boot_counter();
        assert!(m.superblocks_enabled(), "superblock tier on by default");
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        // Warm the live machine's superblock tier well past the checkpoint.
        m.run(&mut NopHook, 5000);
        assert!(m.superblock_stats().dispatches > 0, "live tier warmed");
        let mut rb = mgr.rollback(id).expect("rollback");
        let cold = rb.superblock_stats();
        assert_eq!(
            (cold.built, cold.dispatches, cold.insns),
            (0, 0, 0),
            "no superblock state survives rollback"
        );
        // Replay rebuilds blocks from the restored memory image and the
        // replayed machine stays bit-identical to the pre-rollback run.
        rb.run(&mut NopHook, 1000);
        let warm = rb.superblock_stats();
        assert!(
            warm.built > 0 && warm.dispatches > 0,
            "replay rebuilds fresh"
        );
    }

    #[test]
    fn latest_before_selects_pre_attack_checkpoint() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let a = mgr.take(&mut m);
        m.run(&mut NopHook, 1000);
        let mid_cycles = m.clock.cycles();
        m.run(&mut NopHook, 1000);
        let b = mgr.take(&mut m);
        assert_eq!(mgr.latest_before(mid_cycles).map(|c| c.id), Some(a));
        assert_eq!(mgr.latest_before(u64::MAX).map(|c| c.id), Some(b));
        let ckpt_a_cycles = mgr.get(a).expect("a").taken_at_cycles;
        assert!(mgr.latest_before(ckpt_a_cycles.saturating_sub(1)).is_none());
    }

    #[test]
    fn retained_memory_stays_bounded_by_cow() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        assert_eq!(mgr.retained_unique_pages(&m), 0, "no checkpoints yet");
        mgr.take(&mut m);
        // Immediately after a checkpoint, everything is shared.
        assert_eq!(mgr.retained_unique_pages(&m), 0);
        // Run: the counter loop dirties one data page; the snapshot now
        // privately owns exactly the old copy of that page.
        m.run(&mut NopHook, 5000);
        let unique = mgr.retained_unique_pages(&m);
        assert!(
            (1..=3).contains(&unique),
            "one-ish diverged page, not a full copy: {unique} of {}",
            m.mem.mapped_pages()
        );
        // Several checkpoints of near-identical states share storage.
        for _ in 0..5 {
            mgr.take(&mut m);
        }
        let total = mgr.retained_unique_pages(&m);
        assert!(
            total <= 4,
            "ring of similar snapshots dedups via COW: {total}"
        );
    }

    #[test]
    fn deque_ring_preserves_eviction_order_and_page_accounting() {
        // Regression guard for the Vec -> VecDeque ring switch: many
        // evictions must preserve FIFO order, `latest_before`/`get`
        // semantics, and the COW `retained_unique_pages` accounting.
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut ids = Vec::new();
        let mut stamps = Vec::new();
        for _ in 0..12 {
            m.run(&mut NopHook, 700); // dirty the data page between snapshots
            ids.push(mgr.take(&mut m));
            stamps.push(m.clock.cycles());
        }
        assert_eq!(mgr.retained(), 4);
        // Exactly the last four survive, oldest-first.
        for id in &ids[..8] {
            assert!(mgr.get(*id).is_none(), "{id:?} must have been evicted");
        }
        let survivors: Vec<CkptId> = (0..4).map(|i| ids[8 + i]).collect();
        assert_eq!(mgr.oldest().map(|c| c.id), Some(survivors[0]));
        assert_eq!(mgr.latest().map(|c| c.id), Some(survivors[3]));
        // latest_before walks the ring newest-first and still honours stamps.
        assert_eq!(mgr.latest_before(stamps[9]).map(|c| c.id), Some(ids[9]));
        assert_eq!(
            mgr.latest_before(stamps[8].saturating_sub(1)).map(|c| c.id),
            None,
            "nothing retained before the oldest survivor"
        );
        // Page accounting: totals are monotone sums over all 12 takes,
        // and the COW-unique count only covers the 4 retained snapshots.
        assert_eq!(mgr.taken_total, 12);
        assert!(mgr.pages_copied_total >= mgr.last_pages_copied as u64);
        let unique = mgr.retained_unique_pages(&m);
        assert!(
            unique <= 4 * 3,
            "retained-unique pages bounded by the surviving ring: {unique}"
        );
        let mut reg = obs::MetricsRegistry::new();
        mgr.export_metrics(&m, &mut reg);
        assert_eq!(reg.counter("checkpoint.taken_total"), 12);
        assert_eq!(reg.gauge_value("checkpoint.ring_occupancy"), Some(4.0));
        assert_eq!(
            reg.gauge_value("checkpoint.retained_unique_pages"),
            Some(unique as f64)
        );
    }

    #[test]
    fn checkpoint_cost_scales_with_dirty_pages() {
        for engine in [Engine::Full, Engine::Incremental] {
            let mut m = boot_counter();
            let mut mgr = CheckpointManager::new(0, 8).with_engine(engine);
            mgr.take(&mut m);
            let first_cost = mgr.overhead_cycles;
            // Immediately re-checkpoint: almost no dirty pages.
            let before = mgr.overhead_cycles;
            mgr.take(&mut m);
            let second_cost = mgr.overhead_cycles - before;
            assert!(
                second_cost < first_cost,
                "{engine:?}: clean re-checkpoint is cheaper: {second_cost} vs {first_cost}"
            );
        }
    }

    #[test]
    fn incremental_take_is_cheaper_than_full_after_drain() {
        // The production property behind the <1% @ 200 ms gate: with a
        // pre-copy drain folding dirty pages between ticks, the snapshot
        // instant itself charges only CHECKPOINT_DELTA + fresh pages —
        // far below the full engine's fork-like CHECKPOINT_BASE.
        let mut full_m = boot_counter();
        let mut inc_m = boot_counter();
        let mut full = CheckpointManager::new(0, 8).with_engine(Engine::Full);
        let mut inc = CheckpointManager::new(0, 8).with_engine(Engine::Incremental);
        full.take(&mut full_m);
        inc.take(&mut inc_m);
        full_m.run(&mut NopHook, 5000);
        inc_m.run(&mut NopHook, 5000);
        let drained = inc.drain(&inc_m);
        assert!(drained > 0, "the counter loop dirtied at least one page");
        let before_full = full.overhead_cycles;
        let before_inc = inc.overhead_cycles;
        full.take(&mut full_m);
        inc.take(&mut inc_m);
        let full_cost = full.overhead_cycles - before_full;
        let inc_cost = inc.overhead_cycles - before_inc;
        assert!(
            inc_cost < full_cost / 5,
            "drained incremental take must be much cheaper: {inc_cost} vs {full_cost}"
        );
        assert_eq!(inc.last_pages_copied, 0, "drain pre-copied every page");
        assert_eq!(inc.pages_drained_total, drained as u64);
        assert!(inc.precopy_cycles > 0, "background work is accounted");
        // And both engines still roll back to identical guest state.
        let f = full.rollback(CkptId(1)).expect("full rollback");
        let i = inc.rollback(CkptId(1)).expect("incremental rollback");
        assert_eq!(f.cpu, i.cpu);
        assert_eq!(
            crate::incremental::mem_digest(&f.mem),
            crate::incremental::mem_digest(&i.mem)
        );
    }

    #[test]
    fn differential_engine_observes_parity_and_damage_fails_closed() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8).with_engine(Engine::Differential);
        let a = mgr.take(&mut m);
        m.run(&mut NopHook, 3000);
        mgr.drain(&m);
        m.run(&mut NopHook, 3000);
        let b = mgr.take(&mut m);
        // Every materialization compares the two representations.
        assert!(mgr.materialize(a).is_some());
        assert!(mgr.materialize(b).is_some());
        assert_eq!(mgr.parity_mismatches(), 0);
        assert_eq!(mgr.materialize_failures(), 0);
        // Delta-chain truncation: the damaged snapshot fails closed and
        // is counted as a failure, never as a parity mismatch.
        assert!(mgr.chaos_truncate_latest_delta(1) > 0);
        assert!(mgr.materialize(b).is_none(), "truncated chain fails closed");
        assert_eq!(mgr.materialize_failures(), 1);
        assert_eq!(mgr.parity_mismatches(), 0);
        // Dedupe-store eviction race: the same degradation contract.
        // (Evict every slot — one eviction may hit a page snapshot `a`
        // does not reference.)
        while mgr.chaos_evict_store_page() {}
        assert!(mgr.materialize(a).is_none(), "evicted store fails closed");
        assert_eq!(mgr.materialize_failures(), 2);
        let mut reg = obs::MetricsRegistry::new();
        mgr.export_metrics(&m, &mut reg);
        assert_eq!(reg.counter("checkpoint.materialize_failures"), 2);
        assert_eq!(reg.counter("checkpoint.parity_mismatches"), 0);
    }

    #[test]
    fn domain_rollback_restores_pre_attack_state_under_drain_coverage() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        let v_addr = m.symbols.addr_of("v").expect("v");
        m.run(&mut NopHook, 1000);
        mgr.note_service(&m, 0); // benign connection 0 completed
        let v_boundary = m.mem.read_u32(0, v_addr).expect("r");
        let cpu_boundary = m.cpu.clone();
        mgr.drain(&m); // pre-copy captures domain 0's writes
        m.run(&mut NopHook, 1000); // the "attack" dirties the same page
        mgr.note_attack(&m, 1);
        assert!(m.mem.read_u32(0, v_addr).expect("r") > v_boundary);
        let rec = mgr.rollback_domain(id, &mut m, &[1]).expect("partial");
        assert!(rec.pages_restored >= 1);
        assert!(rec.pause_cycles > 0);
        assert_eq!(
            m.mem.read_u32(0, v_addr).expect("r"),
            v_boundary,
            "attack-owned page restored to the drained pre-attack content"
        );
        assert_eq!(m.cpu, cpu_boundary, "registers rewound to the boundary");
        assert_eq!(mgr.domain_rollbacks, 1);
        assert_eq!(mgr.domain_spills(), 0);
        // The machine resumes deterministically from the boundary.
        m.run(&mut NopHook, 500);
        assert!(m.mem.read_u32(0, v_addr).expect("r") > v_boundary);
    }

    #[test]
    fn uncovered_spill_refuses_partial_rollback() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        m.run(&mut NopHook, 1000);
        mgr.note_service(&m, 0);
        // No drain: domain 1 overwrites uncovered domain-0 state.
        m.run(&mut NopHook, 1000);
        mgr.note_attack(&m, 1);
        assert_eq!(mgr.domain_spills(), 1);
        assert_eq!(
            mgr.rollback_domain(id, &mut m, &[1]),
            Err(DomainRefusal::Spilled)
        );
        assert_eq!(mgr.domain_rollbacks, 0);
    }

    #[test]
    fn ledger_corruption_and_forced_spill_fail_closed() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let id = mgr.take(&mut m);
        m.run(&mut NopHook, 1000);
        mgr.note_service(&m, 0);
        mgr.drain(&m);
        m.run(&mut NopHook, 1000);
        mgr.note_attack(&m, 1);
        // Tag corruption: detected by the checksum, refused.
        assert!(mgr.chaos_corrupt_domain_tag(3));
        assert_eq!(
            mgr.rollback_domain(id, &mut m, &[1]),
            Err(DomainRefusal::CorruptLedger)
        );
        // Forced spill on a fresh world: refused via the spill set.
        let mut m2 = boot_counter();
        let mut mgr2 = CheckpointManager::new(0, 8);
        let id2 = mgr2.take(&mut m2);
        m2.run(&mut NopHook, 1000);
        mgr2.note_service(&m2, 0);
        mgr2.drain(&m2);
        m2.run(&mut NopHook, 1000);
        mgr2.note_attack(&m2, 1);
        assert!(mgr2.chaos_force_domain_spill());
        let out = mgr2.rollback_domain(id2, &mut m2, &[1]);
        assert_eq!(out, Err(DomainRefusal::Spilled));
        assert!(out.unwrap_err().is_spill());
        assert!(mgr2.domain_spills() > 0);
    }

    #[test]
    fn stale_window_and_evicted_store_refuse_partial_rollback() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 8);
        let old = mgr.take(&mut m);
        m.run(&mut NopHook, 500);
        mgr.take(&mut m); // opens a fresh window
        m.run(&mut NopHook, 500);
        mgr.note_attack(&m, 1);
        assert_eq!(
            mgr.rollback_domain(old, &mut m, &[1]),
            Err(DomainRefusal::StaleWindow)
        );
        // Evicted dedupe slots make the pending restore source vanish.
        let mut m2 = boot_counter();
        let mut mgr2 = CheckpointManager::new(0, 8);
        let id2 = mgr2.take(&mut m2);
        m2.run(&mut NopHook, 1000);
        mgr2.note_service(&m2, 0);
        mgr2.drain(&m2);
        m2.run(&mut NopHook, 1000);
        mgr2.note_attack(&m2, 1);
        while mgr2.chaos_evict_store_page() {}
        assert_eq!(
            mgr2.rollback_domain(id2, &mut m2, &[1]),
            Err(DomainRefusal::PageUnavailable)
        );
    }

    #[test]
    fn eviction_compacts_the_dedupe_store() {
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 2);
        mgr.take(&mut m);
        for _ in 0..6 {
            m.run(&mut NopHook, 900);
            mgr.take(&mut m);
        }
        let retained_pages = mgr.store_pages();
        // The store holds the base image plus per-snapshot dirty pages
        // for the *retained* ring only — eviction released the rest.
        assert!(
            retained_pages <= m.mem.mapped_pages() + 2 * mgr.max_retained,
            "store stays bounded by the ring: {retained_pages}"
        );
        let st_compacted = {
            let mut reg = obs::MetricsRegistry::new();
            mgr.export_metrics(&m, &mut reg);
            reg.counter("checkpoint.store_compacted")
        };
        assert!(st_compacted > 0, "eviction compacted unreferenced pages");
    }
}
