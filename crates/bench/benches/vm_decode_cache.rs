//! Execution-tier benchmarks: interpreter insns/sec on the pure
//! interpreter, the predecoded icache, and the icache + superblock
//! stack, on a straight-line microbench and on the branchy tight loop.
//! The PR-gate expectations (ISSUE/EXPERIMENTS): the cached
//! straight-line rate is at least 1.5x the uncached rate, and the
//! superblock rate at least 1.5x the icache rate on the same guest.
#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use svm::asm::{assemble, Program};
use svm::loader::Aslr;
use svm::{Machine, NopHook, Status};

/// A mostly-straight-line program: `iters` passes over a 64-insn unrolled
/// block (one branch per 67 retired instructions).
fn straight_line_program(iters: u32) -> (Program, u64) {
    let block = " addi r0, r0, 1\n".repeat(64);
    let src = format!(
        ".text\nmain:\n movi r1, {iters}\nloop:\n{block} subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n"
    );
    (assemble(&src).expect("asm"), iters as u64 * 67 + 2)
}

fn tight_loop_program(iters: u32) -> (Program, u64) {
    let src = format!(
        ".text\nmain:\n movi r1, {iters}\nloop:\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n"
    );
    (assemble(&src).expect("asm"), iters as u64 * 3 + 2)
}

fn run_to_halt(prog: &Program, cache: bool, superblocks: bool) -> u64 {
    let mut m = Machine::boot(prog, Aslr::off())
        .expect("boot")
        .with_decode_cache(cache)
        .with_superblocks(cache && superblocks);
    assert!(matches!(m.run(&mut NopHook, u64::MAX), Status::Halted(_)));
    m.insns_retired
}

fn bench_straight_line(c: &mut Criterion) {
    let (prog, insns) = straight_line_program(2_000);
    let mut g = c.benchmark_group("vm_decode_cache/straight_line");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("uncached", |b| b.iter(|| run_to_halt(&prog, false, false)));
    g.bench_function("cached", |b| b.iter(|| run_to_halt(&prog, true, false)));
    g.bench_function("superblock", |b| b.iter(|| run_to_halt(&prog, true, true)));
    g.finish();
}

fn bench_tight_loop(c: &mut Criterion) {
    let (prog, insns) = tight_loop_program(30_000);
    let mut g = c.benchmark_group("vm_decode_cache/tight_loop");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("uncached", |b| b.iter(|| run_to_halt(&prog, false, false)));
    g.bench_function("cached", |b| b.iter(|| run_to_halt(&prog, true, false)));
    g.bench_function("superblock", |b| b.iter(|| run_to_halt(&prog, true, true)));
    g.finish();
}

/// Worst case for the cache: every iteration rewrites an instruction in
/// the executed page, forcing an invalidation + page redecode per pass.
/// This pins the overhead of the invalidation path rather than hiding it.
fn bench_smc_invalidation(c: &mut Criterion) {
    // The guest copies a tiny function from .text into its (pre-NX,
    // executable) data segment, then on every pass rewrites one word of
    // it (same bytes — a write is a write) before calling it, forcing an
    // invalidation + page redecode per pass.
    let src = "
.text
main:
    movi r4, tmpl
    movi r5, buf
    movi r6, 4
copy:
    ld r7, [r4, 0]
    st [r5, 0], r7
    addi r4, r4, 4
    addi r5, r5, 4
    subi r6, r6, 1
    cmpi r6, 0
    jnz copy
    movi r1, 300
loop:
    movi r4, tmpl
    ld r7, [r4, 0]
    movi r5, buf
    st [r5, 0], r7
    call buf
    subi r1, r1, 1
    cmpi r1, 0
    jnz loop
    halt
tmpl:
    movi r2, 7
    ret
.data
buf: .space 16
";
    let prog = assemble(src).expect("asm");
    let mut g = c.benchmark_group("vm_decode_cache/smc_rewrite");
    g.bench_function("cached", |b| {
        b.iter(|| {
            let mut m = Machine::boot(&prog, Aslr::off())
                .expect("boot")
                .with_decode_cache(true)
                .with_superblocks(false);
            m.run(&mut NopHook, u64::MAX)
        })
    });
    g.bench_function("superblock", |b| {
        b.iter(|| {
            let mut m = Machine::boot(&prog, Aslr::off())
                .expect("boot")
                .with_decode_cache(true);
            m.run(&mut NopHook, u64::MAX)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_straight_line,
    bench_tight_loop,
    bench_smc_invalidation
);
criterion_main!(benches);
