//! Wall-clock benchmarks of the community-defense model: ODE solves,
//! full figure sweeps, and Monte-Carlo outbreaks.
#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use epidemic::{figure6, simulate, solve, Scenario};

fn bench_solve(c: &mut Criterion) {
    c.bench_function("epidemic/solve_slammer", |b| {
        b.iter(|| solve(&Scenario::slammer(0.001, 20.0)))
    });
    c.bench_function("epidemic/solve_hitlist_4000", |b| {
        b.iter(|| solve(&Scenario::hitlist(4000.0, 0.0001, 10.0)))
    });
}

fn bench_figure_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("epidemic/figure6_sweep");
    g.sample_size(10);
    g.bench_function("30_cells", |b| b.iter(figure6));
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let s = Scenario {
        beta: 0.1,
        n: 10_000.0,
        alpha: 0.001,
        rho: 1.0,
        gamma: 10.0,
        i0: 1.0,
    };
    c.bench_function("epidemic/monte_carlo_outbreak", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulate(&s, seed)
        })
    });
}

criterion_group!(benches, bench_solve, bench_figure_sweep, bench_monte_carlo);
criterion_main!(benches);
