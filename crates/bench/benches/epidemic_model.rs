//! Wall-clock benchmarks of the community-defense model: ODE solves,
//! full figure sweeps, Monte-Carlo outbreaks, and the sharded community
//! engine at several shard counts.
#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use epidemic::{figure6, simulate, solve, Parallelism, Scenario};

fn bench_solve(c: &mut Criterion) {
    c.bench_function("epidemic/solve_slammer", |b| {
        b.iter(|| solve(&Scenario::slammer(0.001, 20.0)))
    });
    c.bench_function("epidemic/solve_hitlist_4000", |b| {
        b.iter(|| solve(&Scenario::hitlist(4000.0, 0.0001, 10.0)))
    });
}

fn bench_figure_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("epidemic/figure6_sweep");
    g.sample_size(10);
    g.bench_function("30_cells", |b| b.iter(figure6));
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let s = Scenario {
        beta: 0.1,
        n: 10_000.0,
        alpha: 0.001,
        rho: 1.0,
        gamma: 10.0,
        i0: 1.0,
    };
    c.bench_function("epidemic/monte_carlo_outbreak", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulate(&s, seed)
        })
    });
}

fn bench_sharded_community(c: &mut Criterion) {
    // Figure-7-style hit-list run (β = 1000, ρ = 2⁻¹², γ = 5 s) with a
    // hot start so per-tick work is dense; see bench::model_campaign.
    let hosts = 100_000u64;
    let mut g = c.benchmark_group("epidemic/sharded_community_100k");
    g.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                bench::model_campaign(hosts, Parallelism::Fixed(k), 1)
                    .0
                    .infected
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_solve,
    bench_figure_sweep,
    bench_monte_carlo,
    bench_sharded_community
);
criterion_main!(benches);
