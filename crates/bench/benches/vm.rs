//! Wall-clock benchmarks of the VM substrate: interpreter rate, memory
//! access paths, assembler throughput.
#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use svm::asm::assemble;
use svm::loader::Aslr;
use svm::{Machine, NopHook, Status};

fn tight_loop_machine(iters: u32) -> Machine {
    let src = format!(
        ".text\nmain:\n movi r1, {iters}\nloop:\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n"
    );
    Machine::boot(&assemble(&src).expect("asm"), Aslr::off()).expect("boot")
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm/interpreter");
    let iters = 10_000u32;
    g.throughput(Throughput::Elements(iters as u64 * 3));
    g.bench_function("tight_loop", |b| {
        b.iter(|| {
            let mut m = tight_loop_machine(iters);
            assert!(matches!(m.run(&mut NopHook, u64::MAX), Status::Halted(_)));
            m.insns_retired
        })
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm/memory");
    let src = "
.text
main:
    movi r1, buf
    movi r2, 4096
loop:
    st [r1, 0], r2
    ld r3, [r1, 0]
    addi r1, r1, 4
    subi r2, r2, 4
    cmpi r2, 0
    jnz loop
    halt
.data
buf: .space 4096
";
    let prog = assemble(src).expect("asm");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("store_load_sweep", |b| {
        b.iter(|| {
            let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
            m.run(&mut NopHook, u64::MAX)
        })
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let src = apps::squid::app().expect("app").source;
    let mut g = c.benchmark_group("vm/assembler");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("assemble_mini_squid", |b| {
        b.iter(|| assemble(&src).expect("asm"))
    });
    g.finish();
}

fn bench_boot(c: &mut Criterion) {
    let app = apps::squid::app().expect("app");
    c.bench_function("vm/boot_randomized", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            app.boot(Aslr::on(seed)).expect("boot")
        })
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_memory,
    bench_assembler,
    bench_boot
);
criterion_main!(benches);
