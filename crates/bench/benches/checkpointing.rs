//! Wall-clock benchmarks of the checkpoint substrate: take, rollback,
//! COW write amplification, and replay — one bench per Figure 4 design
//! lever.
#![allow(missing_docs)] // criterion macros generate undocumented items

use checkpoint::{CheckpointManager, Proxy, ReplaySession};
use criterion::{criterion_group, criterion_main, Criterion};
use svm::loader::Aslr;
use svm::{Machine, NopHook};

fn busy_server() -> Machine {
    let app = apps::squid::app().expect("app");
    let mut m = app.boot(Aslr::off()).expect("boot");
    m.run(&mut NopHook, 100_000_000);
    m
}

fn bench_take(c: &mut Criterion) {
    let m = busy_server();
    c.bench_function("checkpoint/take", |b| {
        b.iter_batched(
            || (m.clone(), CheckpointManager::new(0, 4)),
            |(mut machine, mut mgr)| mgr.take(&mut machine),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_rollback(c: &mut Criterion) {
    let mut m = busy_server();
    let mut mgr = CheckpointManager::new(0, 4);
    let id = mgr.take(&mut m);
    c.bench_function("checkpoint/rollback", |b| {
        b.iter(|| mgr.rollback(id).expect("rb"))
    });
}

fn bench_cow_write(c: &mut Criterion) {
    // First write to a shared page pays the copy; measure the fault path.
    let mut m = busy_server();
    let mut mgr = CheckpointManager::new(0, 2);
    mgr.take(&mut m);
    let addr = m.layout.heap_base;
    c.bench_function("checkpoint/cow_first_write", |b| {
        b.iter_batched(
            || mgr.rollback(checkpoint::CkptId(0)).expect("rb"),
            |mut fresh| fresh.mem.write_u32(0, addr, 7).expect("w"),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_replay(c: &mut Criterion) {
    let app = apps::squid::app().expect("app");
    let mut m = app.boot(Aslr::off()).expect("boot");
    m.run(&mut NopHook, 100_000_000);
    let mut mgr = CheckpointManager::new(0, 4);
    let mut proxy = Proxy::new();
    let id = mgr.take(&mut m);
    for i in 0..10 {
        proxy.offer(
            &mut m,
            apps::squid::benign_request(&format!("u{i}"), "h"),
            &[],
        );
        m.run(&mut NopHook, 400_000_000);
    }
    c.bench_function("checkpoint/replay_10_requests", |b| {
        b.iter(|| {
            ReplaySession::new(&mgr, &proxy, id)
                .expect("session")
                .run(&mut NopHook)
        })
    });
}

criterion_group!(
    benches,
    bench_take,
    bench_rollback,
    bench_cow_write,
    bench_replay
);
criterion_main!(benches);
