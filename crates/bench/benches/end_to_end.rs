//! Wall-clock benchmarks of the whole Sweeper loop: protected request
//! service and complete attack handling (detect → analyze → antibody →
//! recover) per application.
#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use sweeper::{Config, RequestOutcome, Sweeper};

fn bench_protected_service(c: &mut Criterion) {
    let app = apps::squid::app().expect("app");
    c.bench_function("e2e/serve_request_protected", |b| {
        let mut s = Sweeper::protect(&app, Config::producer(1)).expect("protect");
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let out = s.offer_request(apps::squid::benign_request(&format!("u{i}"), "h"));
            assert!(matches!(out, RequestOutcome::Served { .. }));
        })
    });
}

fn bench_attack_handling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/attack_to_antibody");
    g.sample_size(10);
    for (app, exploit) in apps::all_crash_exploits().expect("exploits") {
        g.bench_function(app.name, |b| {
            b.iter_batched(
                || {
                    let mut s = Sweeper::protect(&app, Config::producer(5)).expect("protect");
                    s.offer_request(apps::squid::benign_request("warm", "up"));
                    s
                },
                |mut s| {
                    let out = s.offer_request(exploit.input.clone());
                    assert!(matches!(out, RequestOutcome::Attack(_)));
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_sampling_modes(c: &mut Criterion) {
    // §4.2 sampling: the wall-clock price of running a request under
    // full taint (sampled) vs the lightweight default.
    let app = apps::squid::app().expect("app");
    let mut g = c.benchmark_group("e2e/sampling");
    for (name, rate) in [("unsampled", 0.0), ("sampled", 1.0)] {
        g.bench_function(name, |b| {
            let mut s =
                Sweeper::protect(&app, Config::producer(2).with_sampling(rate)).expect("protect");
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                let out = s.offer_request(apps::squid::benign_request(&format!("s{i}"), "h"));
                assert!(matches!(out, RequestOutcome::Served { .. }));
            })
        });
    }
    g.finish();
}

fn bench_community_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/community_campaign");
    g.sample_size(10);
    g.bench_function("12_hosts_cvs_worm", |b| {
        b.iter(|| {
            bench::run_campaign(bench::CampaignConfig {
                hosts: 12,
                producer_every: 4,
                dissemination_attempts: 2,
                consumers_unrandomized: false,
                seed: 99,
                parallelism: epidemic::Parallelism::Fixed(1),
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_protected_service,
    bench_attack_handling,
    bench_sampling_modes,
    bench_community_campaign
);
criterion_main!(benches);
