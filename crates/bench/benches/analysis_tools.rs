//! Wall-clock benchmarks of the four analysis steps on the Squid exploit
//! — the real-time analogue of Table 3's component diagnosis times.
#![allow(missing_docs)] // criterion macros generate undocumented items

use analysis::{backward_slice, MemBugDetector, TaintTool};
use checkpoint::{CheckpointManager, CkptId, Proxy, ReplaySession};
use criterion::{criterion_group, criterion_main, Criterion};
use dbi::{Instrumenter, TraceRecorder};
use svm::loader::Aslr;
use svm::{Machine, NopHook};

struct AttackScene {
    mgr: CheckpointManager,
    proxy: Proxy,
    ckpt: CkptId,
    faulted: Machine,
}

fn scene() -> AttackScene {
    let app = apps::squid::app().expect("app");
    let mut m = app.boot(Aslr::on(7)).expect("boot");
    m.run(&mut NopHook, 100_000_000);
    let mut mgr = CheckpointManager::new(0, 4);
    let mut proxy = Proxy::new();
    let ckpt = mgr.take(&mut m);
    for i in 0..3 {
        proxy.offer(
            &mut m,
            apps::squid::benign_request(&format!("u{i}"), "h"),
            &[],
        );
        m.run(&mut NopHook, 400_000_000);
    }
    proxy.offer(&mut m, apps::squid::exploit_crash(&app).input, &[]);
    m.run(&mut NopHook, 400_000_000);
    AttackScene {
        mgr,
        proxy,
        ckpt,
        faulted: m,
    }
}

fn bench_memory_state(c: &mut Criterion) {
    let s = scene();
    c.bench_function("analysis/memory_state", |b| {
        b.iter(|| analysis::analyze(&s.faulted).expect("report"))
    });
}

fn bench_membug_replay(c: &mut Criterion) {
    let s = scene();
    c.bench_function("analysis/membug_replay", |b| {
        b.iter(|| {
            let det = MemBugDetector::attach_to(&s.mgr.materialize(s.ckpt).expect("ck"));
            let mut ins = Instrumenter::new();
            let id = ins.attach(Box::new(det));
            ReplaySession::new(&s.mgr, &s.proxy, s.ckpt)
                .expect("sess")
                .run(&mut ins);
            ins.get::<MemBugDetector>(id)
                .expect("tool")
                .findings()
                .len()
        })
    });
}

fn bench_taint_replay(c: &mut Criterion) {
    let s = scene();
    c.bench_function("analysis/taint_replay", |b| {
        b.iter(|| {
            let mut ins = Instrumenter::new();
            let id = ins.attach(Box::new(TaintTool::new()));
            ReplaySession::new(&s.mgr, &s.proxy, s.ckpt)
                .expect("sess")
                .run(&mut ins);
            ins.get::<TaintTool>(id).expect("tool").alerts().len()
        })
    });
}

fn bench_slicing(c: &mut Criterion) {
    let s = scene();
    // Record once; slicing itself (graph walk) is what we time.
    let mut ins = Instrumenter::new();
    let id = ins.attach(Box::new(TraceRecorder::new()));
    ReplaySession::new(&s.mgr, &s.proxy, s.ckpt)
        .expect("sess")
        .run(&mut ins);
    let tool = ins.detach(id).expect("tool");
    let trace = tool
        .as_any()
        .downcast_ref::<TraceRecorder>()
        .expect("downcast");
    let crit = trace.len() - 1;
    c.bench_function("analysis/backward_slice", |b| {
        b.iter(|| backward_slice(trace, crit, true).len())
    });
    c.bench_function("analysis/trace_record_replay", |b| {
        b.iter(|| {
            let mut ins = Instrumenter::new();
            let id = ins.attach(Box::new(TraceRecorder::new()));
            ReplaySession::new(&s.mgr, &s.proxy, s.ckpt)
                .expect("sess")
                .run(&mut ins);
            ins.get::<TraceRecorder>(id).expect("tool").len()
        })
    });
}

criterion_group!(
    benches,
    bench_memory_state,
    bench_membug_replay,
    bench_taint_replay,
    bench_slicing
);
criterion_main!(benches);
