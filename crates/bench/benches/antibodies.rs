//! Wall-clock benchmarks of antibody machinery: signature matching at
//! the proxy, VSEF-instrumented execution vs bare execution (the §5.3
//! overhead claim at real-time scale), and antibody verification.
#![allow(missing_docs)] // criterion macros generate undocumented items

use antibody::{exact_from, Signature, SignatureSet, VsefRuntime, VsefSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dbi::Instrumenter;
use svm::loader::Aslr;
use svm::{NopHook, Status};

fn bench_signature_matching(c: &mut Criterion) {
    let mut set = SignatureSet::new();
    set.add(exact_from(b"GET /exact-evil HTTP/1.0\n"));
    set.add(Signature::Substring(b"~~~~~~~~@".to_vec()));
    set.add(Signature::TokenSeq(vec![
        b"Directory ".to_vec(),
        b"Entry ".to_vec(),
    ]));
    let benign = b"GET /totally/normal/page.html HTTP/1.0\nHost: example\n";
    let mut g = c.benchmark_group("antibody/signature_match");
    g.throughput(Throughput::Bytes(benign.len() as u64));
    g.bench_function("benign_miss", |b| b.iter(|| set.matches(benign)));
    let hostile = b"ftp://~~~~~~~~@target/";
    g.bench_function("hostile_hit", |b| b.iter(|| set.matches(hostile)));
    g.finish();
}

fn bench_vsef_execution_overhead(c: &mut Criterion) {
    // The core §5.3 claim measured in *wall* time: running a request
    // under a deployed one-site VSEF costs about the same as bare.
    let app = apps::squid::app().expect("app");
    let m0 = {
        let mut m = app.boot(Aslr::off()).expect("boot");
        m.run(&mut NopHook, 100_000_000);
        m
    };
    let strcat_copy = m0.symbols.addr_of("strcat_copy").expect("sym");
    let req = apps::squid::benign_request("someuser", "example.com");
    let mut g = c.benchmark_group("antibody/vsef_exec");
    g.bench_function("bare", |b| {
        b.iter_batched(
            || {
                let mut m = m0.clone();
                m.net.push_connection(req.clone());
                m.unblock();
                m
            },
            |mut m| {
                let s = m.run(&mut NopHook, 1_000_000_000);
                assert!(matches!(s, Status::Blocked(_)));
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("one_site_vsef", |b| {
        b.iter_batched(
            || {
                let mut m = m0.clone();
                m.net.push_connection(req.clone());
                m.unblock();
                let mut ins = Instrumenter::new();
                ins.attach(Box::new(VsefRuntime::new(vec![
                    VsefSpec::HeapBoundsCheck {
                        store_pc: strcat_copy + 8,
                        caller: None,
                    },
                ])));
                (m, ins)
            },
            |(mut m, mut ins)| {
                let s = m.run(&mut ins, 1_000_000_000);
                assert!(matches!(s, Status::Blocked(_)));
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_verification(c: &mut Criterion) {
    let app = apps::squid::app().expect("app");
    let exploit = apps::squid::exploit_crash(&app).input;
    let mut ab = antibody::Antibody::new();
    ab.push(antibody::AntibodyItem::ExploitInput(exploit), 50.0);
    c.bench_function("antibody/verify_sandboxed", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            antibody::verify(&app.program, &ab, seed)
        })
    });
}

criterion_group!(
    benches,
    bench_signature_matching,
    bench_vsef_execution_overhead,
    bench_verification
);
criterion_main!(benches);
