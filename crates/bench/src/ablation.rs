//! Ablation experiments for the design choices DESIGN.md §6 calls out.
//!
//! - **Defense matrix**: signature-only vs VSEF-only vs both, under a
//!   polymorphic exploit campaign — quantifies why Sweeper deploys both
//!   ("signatures as exact matches ... VSEFs to provide a safety net").
//! - **Empirical ρ**: the measured probability that the layout-guessing
//!   compromise exploit beats address-space randomization, to validate
//!   the ρ = 2⁻¹² parameter the §6 community model borrows from Shacham
//!   et al.
//! - **NX ablation**: the same compromise against non-executable data.

use antibody::{Antibody, AntibodyItem};
use apps::{httpd1, is_compromised};
use svm::loader::{Aslr, Layout};
use svm::NopHook;
use sweeper::{Config, RequestOutcome, Sweeper};

/// Which antibody components a host deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// Antibody ignored entirely (ASLR-only baseline).
    None,
    /// Input signatures only.
    SignatureOnly,
    /// VSEFs only.
    VsefOnly,
    /// Both (Sweeper's default).
    Both,
}

/// Outcome counts of one campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Exploit variants dropped at the proxy by a signature.
    pub filtered: u32,
    /// Variants caught by a deployed VSEF before the fault.
    pub vsef_caught: u32,
    /// Variants that only crashed against ASLR (detected, but by luck).
    pub crash_detected: u32,
    /// Variants that ran shellcode (compromise).
    pub compromised: u32,
    /// Benign requests served without interference.
    pub benign_served: u32,
}

fn partial(antibody: &Antibody, signatures: bool, vsefs: bool) -> Antibody {
    Antibody {
        releases: antibody
            .releases
            .iter()
            .filter(|r| match r.item {
                AntibodyItem::Signature(_) => signatures,
                AntibodyItem::Vsef(_) => vsefs,
                AntibodyItem::ExploitInput(_) => true,
            })
            .cloned()
            .collect(),
    }
}

/// Run a polymorphic campaign of `variants` byte-distinct exploits (plus
/// interleaved benign traffic) against a consumer deploying `defense`,
/// where the antibody was produced from variant 0 only.
pub fn defense_matrix_run(defense: Defense, variants: u8, seed: u64) -> CampaignOutcome {
    let app = httpd1::app().expect("app");
    // Producer analyzes the *base* exploit.
    let mut producer = Sweeper::protect(&app, Config::producer(seed)).expect("producer");
    let base = httpd1::exploit_crash(&app);
    let RequestOutcome::Attack(rep) = producer.offer_request(base.input) else {
        panic!("producer missed the base exploit")
    };
    let full = rep.analysis.expect("analysis").antibody;
    let antibody = match defense {
        Defense::None => Antibody::new(),
        Defense::SignatureOnly => partial(&full, true, false),
        Defense::VsefOnly => partial(&full, false, true),
        Defense::Both => full,
    };
    let mut consumer = Sweeper::protect(&app, Config::consumer(seed + 1)).expect("consumer");
    consumer.deploy_antibody(&antibody);
    let mut out = CampaignOutcome::default();
    for v in 0..variants {
        if matches!(
            consumer.offer_request(httpd1::benign_request(&format!("page{v}.html"))),
            RequestOutcome::Served { .. }
        ) {
            out.benign_served += 1;
        }
        // Variant 0 is the exact exploit the antibody was built from;
        // the rest are polymorphic (byte-level different, same bug).
        let exploit = if v == 0 {
            httpd1::exploit_crash(&app)
        } else {
            httpd1::exploit_crash_poly(&app, v)
        };
        match consumer.offer_request(exploit.input) {
            RequestOutcome::Filtered { .. } => out.filtered += 1,
            RequestOutcome::Attack(r) => {
                if r.compromised {
                    out.compromised += 1;
                } else if r.cause.starts_with("vsef:") {
                    out.vsef_caught += 1;
                } else {
                    out.crash_detected += 1;
                }
            }
            RequestOutcome::Served { .. } => out.compromised += 1,
        }
    }
    out
}

/// Render the whole defense matrix.
pub fn defense_matrix(variants: u8) -> String {
    let mut s = String::from(
        "Ablation: antibody components vs a polymorphic campaign (Apache1)\n\
         defense         filtered  vsef-caught  crash-only  compromised  benign-served\n",
    );
    for (name, d) in [
        ("none", Defense::None),
        ("signature-only", Defense::SignatureOnly),
        ("vsef-only", Defense::VsefOnly),
        ("both", Defense::Both),
    ] {
        let o = defense_matrix_run(d, variants, 0x1234);
        s.push_str(&format!(
            "{name:<15} {:>8} {:>12} {:>11} {:>12} {:>14}\n",
            o.filtered, o.vsef_caught, o.crash_detected, o.compromised, o.benign_served
        ));
    }
    s
}

/// Empirically measure the ASLR bypass probability: fire the
/// layout-guessing compromise at `trials` independently randomized
/// hosts and count successes. With 12 bits of per-segment entropy the
/// expected rate is ~2⁻¹² (the paper's ρ).
pub fn empirical_rho(trials: u32, seed: u64) -> (u32, f64) {
    let app = httpd1::app().expect("app");
    let exploit = httpd1::exploit_compromise(&app, &Layout::nominal());
    let mut hits = 0u32;
    for k in 0..trials {
        let mut m = app
            .boot(Aslr::on(seed.wrapping_add(k as u64)))
            .expect("boot");
        m.net.push_connection(exploit.input.clone());
        m.run(&mut NopHook, 200_000_000);
        if is_compromised(&m) {
            hits += 1;
        }
    }
    (hits, hits as f64 / trials as f64)
}

/// The Vigilante-style baseline comparison (paper §1.1/§7.3): a host
/// that runs full dynamic taint analysis on *every* request (what
/// Vigilante's detectors do) versus Sweeper's lightweight monitoring
/// with deferred analysis.
///
/// Returns `(cpu_multiplier, always_on_overhead, sweeper_overhead)`:
/// - `cpu_multiplier`: instrumented vs bare cost of a CPU-bound guest
///   loop (the paper's "up to 30-40X slowdowns" claim);
/// - `always_on_overhead`: fractional throughput overhead of always-on
///   taint on benign server traffic;
/// - `sweeper_overhead`: the same for Sweeper's default configuration
///   (checkpointing only), which the paper keeps under 1%.
pub fn vigilante_comparison(requests: usize) -> (f64, f64, f64) {
    use analysis::TaintTool;
    use apps::workload::Target;
    use dbi::Instrumenter;
    use svm::asm::assemble;

    // CPU-bound multiplier: a tight arithmetic loop, bare vs tainted.
    let loop_src = ".text\nmain:\n movi r1, 20000\nloop:\n subi r1, r1, 1\n addi r2, r2, 3\n xor r3, r3, r2\n cmpi r1, 0\n jnz loop\n halt\n";
    let prog = assemble(loop_src).expect("asm");
    let bare_cycles = {
        let mut m = svm::Machine::boot(&prog, Aslr::off()).expect("boot");
        m.run(&mut NopHook, u64::MAX);
        m.clock.cycles()
    };
    let tainted_cycles = {
        let mut m = svm::Machine::boot(&prog, Aslr::off()).expect("boot");
        let mut ins = Instrumenter::new();
        ins.attach(Box::new(TaintTool::new()));
        m.run(&mut ins, u64::MAX);
        ins.charge(&mut m);
        m.clock.cycles()
    };
    let cpu_multiplier = tainted_cycles as f64 / bare_cycles as f64;

    // Server throughput: bare vs always-on taint (sampling at 1.0 *is*
    // always-on full taint) vs Sweeper default.
    let app = apps::squid::app().expect("app");
    let bare = crate::driver::run_protected(
        &app,
        Config {
            checkpoint_interval: u64::MAX,
            ..Config::producer(31)
        },
        Target::Squid,
        3,
        requests,
    );
    let vigilante = crate::driver::run_protected(
        &app,
        Config {
            checkpoint_interval: u64::MAX,
            ..Config::producer(31)
        }
        .with_sampling(1.0),
        Target::Squid,
        3,
        requests,
    );
    let sweeper =
        crate::driver::run_protected(&app, Config::producer(31), Target::Squid, 3, requests);
    let always_on = (vigilante.secs - bare.secs) / bare.secs;
    let sweeper_oh = (sweeper.secs - bare.secs) / bare.secs;
    (cpu_multiplier, always_on, sweeper_oh)
}

/// NX ablation: the compromise with a *correctly guessed* layout against
/// an NX-enforcing host. Returns whether shellcode ran and whether the
/// attempt was detected as an attack.
pub fn nx_ablation() -> (bool, bool) {
    let app = httpd1::app().expect("app");
    let exploit = httpd1::exploit_compromise(&app, &Layout::nominal());
    let cfg = Config {
        aslr: Aslr::off(),
        nx: true,
        ..Config::default()
    };
    let mut s = Sweeper::protect(&app, cfg).expect("protect");
    match s.offer_request(exploit.input) {
        RequestOutcome::Attack(r) => (r.compromised, true),
        _ => (is_compromised(&s.machine), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_layers_beat_either_alone() {
        let none = defense_matrix_run(Defense::None, 6, 7);
        let sig = defense_matrix_run(Defense::SignatureOnly, 6, 7);
        let vsef = defense_matrix_run(Defense::VsefOnly, 6, 7);
        let both = defense_matrix_run(Defense::Both, 6, 7);
        // Nothing compromises a randomized consumer in any configuration
        // (the crash exploit is layout-independent detection).
        for (name, o) in [("none", none), ("sig", sig), ("vsef", vsef), ("both", both)] {
            assert_eq!(o.compromised, 0, "{name}: {o:?}");
            assert_eq!(o.benign_served, 6, "{name}: benign unaffected");
        }
        // Byte-level signatures (exact + taint substring) stop some
        // variants but not all — the ones sharing overflow bytes match,
        // byte-level-fresh ones fall through to the ASLR crash. VSEFs
        // stop every variant before the fault, which is the paper's
        // polymorphism argument.
        assert!(
            sig.filtered >= 1 && sig.crash_detected >= 1,
            "signatures are partial against polymorphism: {sig:?}"
        );
        assert_eq!(sig.filtered + sig.crash_detected, 6, "{sig:?}");
        assert_eq!(
            vsef.vsef_caught, 6,
            "VSEF catches every variant pre-fault: {vsef:?}"
        );
        assert_eq!(
            both.filtered + both.vsef_caught,
            6,
            "with both layers nothing even reaches a crash: {both:?}"
        );
        assert!(both.vsef_caught >= 1, "{both:?}");
        assert_eq!(
            none.crash_detected, 6,
            "ASLR-only: all crash-detected: {none:?}"
        );
    }

    #[test]
    fn empirical_rho_is_small() {
        // 12-bit entropy: expected success rate 2^-12 ~ 0.024%. At 400
        // trials, more than 3 successes would be wildly out of model.
        let (hits, rate) = empirical_rho(400, 42);
        assert!(hits <= 3, "ASLR bypassed {hits}/400 times (rate {rate})");
    }

    #[test]
    fn always_on_taint_is_the_expensive_road_sweeper_avoids() {
        let (cpu_mult, always_on, sweeper) = vigilante_comparison(60);
        // Paper: TaintCheck-class tools impose "up to 30-40X slowdowns"
        // on CPU-bound work; our accounting charges exactly that band.
        assert!(
            (20.0..=60.0).contains(&cpu_mult),
            "CPU-bound taint multiplier out of band: {cpu_mult:.1}x"
        );
        // On server traffic the gap is the paper's deployment argument:
        // always-on heavyweight monitoring costs far more than Sweeper.
        assert!(
            always_on > 5.0 * sweeper.max(0.001),
            "always-on {always_on:.4} vs sweeper {sweeper:.4}"
        );
        assert!(sweeper < 0.05, "Sweeper stays lightweight: {sweeper:.4}");
    }

    #[test]
    fn nx_stops_data_shellcode_even_with_perfect_layout() {
        let (compromised, detected) = nx_ablation();
        assert!(!compromised, "NX must stop data-segment shellcode");
        assert!(
            detected,
            "the blocked attempt surfaces as a detected attack"
        );
    }
}
