//! A miniature community-defense simulation over *real* Sweeper hosts.
//!
//! The §6 epidemic figures are analytic; this module closes the loop by
//! running the same story against actual protected machines: a hit-list
//! worm walks a population of real servers firing a real exploit
//! (computed against the nominal layout). Each host randomizes
//! independently, so most attempts crash; hosts running full Sweeper
//! (producers) analyze the first attempt against them and publish an
//! antibody; after a dissemination delay every host deploys it, and
//! later attempts are filtered or VSEF-caught. The simulation reports
//! the same metrics as the model: time of first producer contact (T0),
//! compromised hosts, and who was protected by what.

use apps::cvs;
use epidemic::Parallelism;
use svm::loader::Layout;
use sweeper::{Config, RequestOutcome, Role, Sweeper};

/// Per-host outcome of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOutcome {
    /// Never attacked (worm stopped first).
    Untouched,
    /// Attacked; exploit crashed against this host's layout (detected).
    CrashDetected,
    /// Attacked after the antibody arrived: dropped by a signature.
    Filtered,
    /// Attacked after the antibody arrived: caught by a deployed VSEF.
    VsefCaught,
    /// The exploit ran shellcode on this host.
    Compromised,
}

/// Result of one community campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Outcome per host, in hit-list order.
    pub outcomes: Vec<HostOutcome>,
    /// Index of the attack that first hit a producer.
    pub first_producer_contact: Option<usize>,
    /// Index from which the antibody was deployed community-wide.
    pub antibody_live_from: Option<usize>,
    /// The producer's measured time-to-antibody (virtual ms).
    pub gamma1_ms: Option<f64>,
}

impl CampaignResult {
    /// Number of compromised hosts.
    pub fn compromised(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, HostOutcome::Compromised))
            .count()
    }

    /// Number of hosts saved by the distributed antibody.
    pub fn antibody_protected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, HostOutcome::Filtered | HostOutcome::VsefCaught))
            .count()
    }
}

/// Configuration of the miniature campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of hosts on the worm's hit list.
    pub hosts: usize,
    /// Every `producer_every`-th host runs full Sweeper (α analogue).
    pub producer_every: usize,
    /// Attacks between the producer's analysis finishing and every host
    /// having the antibody deployed (the dissemination delay, γ₂
    /// expressed in worm-attempts rather than seconds).
    pub dissemination_attempts: usize,
    /// Disable ASLR on consumer hosts (models ρ = 1: every attempt on an
    /// unprotected host succeeds).
    pub consumers_unrandomized: bool,
    /// Base RNG/ASLR seed.
    pub seed: u64,
    /// How many threads boot the host population. Each host's state is
    /// a pure function of `(app, seed + index)`, so any thread count
    /// yields the identical population; the subsequent hit-list walk is
    /// inherently sequential and stays on one thread.
    pub parallelism: Parallelism,
}

/// Build host `i`'s configuration (pure function of `cfg` and `i`).
fn host_config(cfg: &CampaignConfig, i: usize) -> Config {
    let is_producer = cfg.producer_every > 0 && i.is_multiple_of(cfg.producer_every);
    let mut c = if is_producer {
        Config::producer(cfg.seed + i as u64)
    } else {
        Config::consumer(cfg.seed + i as u64)
    };
    if cfg.consumers_unrandomized && !is_producer {
        c.aslr = svm::loader::Aslr::off();
    }
    c
}

/// Boot the host population, in parallel when configured.
fn boot_hosts(cfg: &CampaignConfig, app: &apps::App) -> Vec<Sweeper> {
    let k = cfg
        .parallelism
        .shards(cfg.hosts as u64)
        .min(cfg.hosts.max(1));
    if k <= 1 {
        return (0..cfg.hosts)
            .map(|i| Sweeper::protect(app, host_config(cfg, i)).expect("protect"))
            .collect();
    }
    // Contiguous index ranges, one per worker; concatenating the
    // workers' outputs in range order reproduces hit-list order.
    let per = cfg.hosts.div_ceil(k);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|w| {
                let lo = w * per;
                let hi = ((w + 1) * per).min(cfg.hosts);
                scope.spawn(move || {
                    (lo..hi)
                        .map(|i| Sweeper::protect(app, host_config(cfg, i)).expect("protect"))
                        .collect::<Vec<Sweeper>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("boot worker"))
            .collect()
    })
}

/// Run the campaign with the CVS unlink-hijack worm.
pub fn run_campaign(cfg: CampaignConfig) -> CampaignResult {
    let app = cvs::app().expect("app");
    let exploit = cvs::exploit_compromise(&app, &Layout::nominal());
    let mut hosts: Vec<Sweeper> = boot_hosts(&cfg, &app);

    let mut outcomes = vec![HostOutcome::Untouched; cfg.hosts];
    let mut first_producer_contact = None;
    let mut antibody: Option<(usize, antibody::Antibody, f64)> = None;
    let mut antibody_live_from = None;

    for i in 0..cfg.hosts {
        // Deploy the antibody once the dissemination delay has elapsed.
        if antibody_live_from.is_none() {
            if let Some((produced_at, ab, _)) = &antibody {
                if i >= produced_at + cfg.dissemination_attempts {
                    for h in hosts.iter_mut() {
                        h.deploy_antibody(ab);
                    }
                    antibody_live_from = Some(i);
                }
            }
        }
        let host = &mut hosts[i];
        let is_producer = host.config.role == Role::Producer;
        if is_producer && first_producer_contact.is_none() {
            first_producer_contact = Some(i);
        }
        match host.offer_request(exploit.input.clone()) {
            RequestOutcome::Filtered { .. } => outcomes[i] = HostOutcome::Filtered,
            RequestOutcome::Attack(report) => {
                outcomes[i] = if report.compromised {
                    HostOutcome::Compromised
                } else if report.cause.starts_with("vsef:") {
                    HostOutcome::VsefCaught
                } else {
                    HostOutcome::CrashDetected
                };
                if antibody.is_none() {
                    if let Some(a) = report.analysis {
                        antibody = Some((i, a.antibody.clone(), a.timings.initial_ms));
                    }
                }
            }
            RequestOutcome::Served { .. } => outcomes[i] = HostOutcome::Compromised,
        }
    }
    CampaignResult {
        outcomes,
        first_producer_contact,
        antibody_live_from,
        gamma1_ms: antibody.map(|(_, _, g)| g),
    }
}

/// A Figure-7-style large-N run of the sharded *model* engine (hit-list
/// worm, β = 1000, ρ = 2⁻¹², γ = 5 s) with a hot start (half the
/// community already infected) so the per-tick workload is dense enough
/// to measure sharding speedups. Returns the outcome plus wall-clock
/// seconds. Bit-identical results at any shard count for a fixed seed.
pub fn model_campaign(
    hosts: u64,
    parallelism: Parallelism,
    seed: u64,
) -> (epidemic::CommunityOutcome, f64) {
    let scenario = epidemic::Scenario {
        n: hosts as f64,
        ..epidemic::Scenario::hitlist(1000.0, 0.001, 5.0)
    };
    let params = epidemic::CommunityParams {
        i0: hosts / 2,
        ..epidemic::CommunityParams::from_scenario(&scenario, 0.01, seed, parallelism)
    };
    let start = std::time::Instant::now();
    let outcome = epidemic::community::run(&params);
    (outcome, start.elapsed().as_secs_f64())
}

/// Render a campaign summary line.
pub fn render(cfg: CampaignConfig, r: &CampaignResult) -> String {
    format!(
        "hosts={:<3} producers=1/{:<2} dissemination={:<2} attempts | compromised {:>2}, crash-detected {:>2}, antibody-protected {:>2} (gamma1 {:.0} ms)",
        cfg.hosts,
        cfg.producer_every,
        cfg.dissemination_attempts,
        r.compromised(),
        r.outcomes.iter().filter(|o| matches!(o, HostOutcome::CrashDetected)).count(),
        r.antibody_protected(),
        r.gamma1_ms.unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_community_contains_the_worm() {
        let cfg = CampaignConfig {
            hosts: 12,
            producer_every: 4,
            dissemination_attempts: 2,
            consumers_unrandomized: false,
            seed: 5000,
            parallelism: Parallelism::Fixed(1),
        };
        let r = run_campaign(cfg);
        assert_eq!(r.compromised(), 0, "{:?}", r.outcomes);
        // A producer was contacted and produced the antibody quickly.
        assert!(r.first_producer_contact.is_some());
        assert!(r.gamma1_ms.expect("antibody produced") < 500.0);
        // Once live, every later host is protected pre-crash.
        let live = r.antibody_live_from.expect("antibody went live");
        for (i, o) in r.outcomes.iter().enumerate().skip(live) {
            assert!(
                matches!(o, HostOutcome::Filtered | HostOutcome::VsefCaught),
                "host {i} after dissemination: {o:?}"
            );
        }
    }

    #[test]
    fn unrandomized_consumers_without_producers_are_slaughtered() {
        // ρ = 1 and α = 0: the hit-list worm owns every host — the
        // paper's "unimpeded ... infect every vulnerable host" baseline.
        let cfg = CampaignConfig {
            hosts: 8,
            producer_every: 0,
            dissemination_attempts: usize::MAX,
            consumers_unrandomized: true,
            seed: 6000,
            parallelism: Parallelism::Fixed(2),
        };
        let r = run_campaign(cfg);
        assert_eq!(r.compromised(), 8, "{:?}", r.outcomes);
    }

    #[test]
    fn unrandomized_consumers_with_a_producer_lose_only_the_window() {
        // ρ = 1 for consumers, but host 0 is a randomized producer: the
        // worm compromises exactly the consumers hit before the antibody
        // propagates — the infected count *is* the response window.
        let cfg = CampaignConfig {
            hosts: 10,
            producer_every: 10, // Only host 0.
            dissemination_attempts: 3,
            consumers_unrandomized: true,
            seed: 7000,
            parallelism: Parallelism::Fixed(1),
        };
        let r = run_campaign(cfg);
        assert_eq!(r.antibody_live_from, Some(3));
        assert_eq!(
            r.compromised(),
            2,
            "hosts 1,2 fall in the window: {:?}",
            r.outcomes
        );
        assert!(r.outcomes[3..]
            .iter()
            .all(|o| matches!(o, HostOutcome::Filtered | HostOutcome::VsefCaught)));
    }

    #[test]
    fn slower_dissemination_costs_more_hosts() {
        let base = CampaignConfig {
            hosts: 10,
            producer_every: 10,
            dissemination_attempts: 2,
            consumers_unrandomized: true,
            seed: 8000,
            parallelism: Parallelism::Fixed(1),
        };
        let fast = run_campaign(base);
        let slow = run_campaign(CampaignConfig {
            dissemination_attempts: 6,
            ..base
        });
        assert!(
            slow.compromised() > fast.compromised(),
            "gamma matters: fast {} vs slow {}",
            fast.compromised(),
            slow.compromised()
        );
    }

    #[test]
    fn parallel_boot_reproduces_the_serial_campaign() {
        let base = CampaignConfig {
            hosts: 12,
            producer_every: 4,
            dissemination_attempts: 2,
            consumers_unrandomized: true,
            seed: 9000,
            parallelism: Parallelism::Fixed(1),
        };
        let serial = run_campaign(base);
        for k in [2usize, 4, 8] {
            let parallel = run_campaign(CampaignConfig {
                parallelism: Parallelism::Fixed(k),
                ..base
            });
            assert_eq!(serial.outcomes, parallel.outcomes, "k={k}");
            assert_eq!(serial.antibody_live_from, parallel.antibody_live_from);
            assert_eq!(serial.gamma1_ms, parallel.gamma1_ms);
        }
    }
}
