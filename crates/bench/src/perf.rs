//! Machine-readable performance snapshots (`BENCH_*.json`).
//!
//! CI runs `tables benchjson` as a non-failing smoke step; developers run
//! it after perf-relevant changes and commit the refreshed
//! `BENCH_pr<N>.json` so the repository records the performance
//! trajectory PR by PR. Everything here is a *quick fixed-iteration*
//! pass — statistically rigorous numbers come from the Criterion
//! benchmarks (`cargo bench`); this file trades rigor for a cheap,
//! diff-able snapshot.
//!
//! The JSON is hand-rolled (flat, two levels deep) because the workspace
//! is offline and dependency-free; see [`PerfReport::to_json`].

use svm::asm::assemble;
use svm::clock::insns_per_sec;
use svm::loader::Aslr;
use svm::{CacheStats, Machine, NopHook, SbStats, Status};

use epidemic::community::CommunityParams;
use epidemic::{CommunityEngine, DistNetParams, FailContParams, Parallelism};

use crate::driver::{cadence_sweep, CadenceCell};

/// One interpreter-throughput measurement (fixed guest, NopHook).
#[derive(Debug, Clone, Copy)]
pub struct VmRate {
    /// Whether the predecoded instruction cache was enabled.
    pub cached: bool,
    /// Whether the superblock tier was enabled on top of the icache.
    pub superblocks: bool,
    /// Instructions retired per run.
    pub insns: u64,
    /// Wall-clock seconds of the fastest rep.
    pub wall_secs: f64,
    /// `insns / wall_secs` for the fastest rep.
    pub insns_per_sec: f64,
    /// Decode-cache counters at the end of the fastest rep.
    pub stats: CacheStats,
    /// Superblock-tier counters at the end of the fastest rep.
    pub sb_stats: SbStats,
}

/// One community-engine run at a fixed shard count.
#[derive(Debug, Clone)]
pub struct CommunityRate {
    /// Shard count (K).
    pub shards: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
    /// Ticks simulated.
    pub ticks: u64,
    /// `ticks / wall_secs`.
    pub ticks_per_sec: f64,
    /// Hosts infected at the end (outcome fingerprint).
    pub infected: u64,
    /// Tick of first producer contact (outcome fingerprint).
    pub t0_tick: Option<u64>,
    /// Hash-like fingerprint of the infection curve (outcome equality).
    pub curve_sum: u64,
}

/// One cell of the `fig9dist` containment-vs-loss/Byzantine sweep: a
/// contained outbreak run with the antibody distribution network over a
/// wire with the given loss probability and Byzantine producer fraction.
#[derive(Debug, Clone)]
pub struct DistNetCell {
    /// Per-transmission loss probability.
    pub loss: f64,
    /// Byzantine producer fraction.
    pub byzantine: f64,
    /// Hosts infected when the run ended (containment axis).
    pub infected: u64,
    /// Consumers protected by a verified bundle when the run ended.
    pub protected: u64,
    /// Emergent γ: ticks from first producer contact to full community
    /// protection (`None` if protection never completed).
    pub gamma_effective: Option<u64>,
    /// Ticks simulated.
    pub ticks: u64,
    /// Bundles that passed verify-before-deploy.
    pub verified: u64,
    /// Bundles rejected by verification (Byzantine forgeries).
    pub rejected: u64,
    /// `(consumer, producer)` quarantine events.
    pub quarantines: u64,
    /// Consumers that exhausted their retry budget.
    pub gave_up: u64,
    /// I8 counter: unverified deployments (must be 0 in every cell).
    pub deployed_unverified: u64,
}

/// The community parameters for one `fig9dist` cell: a contained
/// outbreak (high producer density, ρ = 0.5, short γ_production) so the
/// antibody race is winnable and the wire knobs — not saturation — are
/// what moves the containment numbers.
pub fn distnet_params(hosts: u64, seed: u64, distnet: DistNetParams) -> CommunityParams {
    CommunityParams {
        hosts,
        alpha: 0.05,
        rho: 0.5,
        gamma_ticks: 6,
        attempts_per_tick: 1,
        attempt_prob: 1.0,
        i0: 1,
        max_ticks: 4000,
        seed,
        parallelism: Parallelism::Fixed(1),
        engine: CommunityEngine::default(),
        distnet,
        failcont: FailContParams::disabled(),
    }
}

/// Run the `fig9dist` sweep: loss ∈ {0, 0.2, 0.4, 0.6} × Byzantine
/// fraction ∈ {0, 0.2}, each cell a deterministic contained outbreak
/// with the distribution network enabled.
pub fn distnet_sweep(hosts: u64, seed: u64) -> Vec<DistNetCell> {
    let mut cells = Vec::new();
    for &byzantine in &[0.0, 0.2] {
        for &loss in &[0.0, 0.2, 0.4, 0.6] {
            let dn = DistNetParams::lossy(loss, byzantine);
            let out = epidemic::community::run(&distnet_params(hosts, seed, dn));
            let d = out.dist.as_ref().expect("distnet enabled");
            let (mut verified, mut rejected, mut quarantines, mut gave_up) = (0, 0, 0, 0);
            for s in &d.shard_stats {
                verified += s.verified;
                rejected += s.rejected;
                quarantines += s.quarantines;
                gave_up += s.gave_up;
            }
            cells.push(DistNetCell {
                loss,
                byzantine,
                infected: out.infected,
                protected: d.protected,
                gamma_effective: out.t0_tick.and_then(|t0| d.gamma_effective(t0)),
                ticks: out.ticks,
                verified,
                rejected,
                quarantines,
                gave_up,
                deployed_unverified: d.deployed_unverified,
            });
        }
    }
    cells
}

/// Render the `fig9dist` sweep as the figure's text table.
pub fn render_distnet_sweep(hosts: u64, seed: u64, cells: &[DistNetCell]) -> String {
    let mut s = format!(
        "Figure 9 (distnet): containment vs wire loss and Byzantine fraction \
         (hosts={hosts}, seed={seed})\n\
         {:>5} {:>5} {:>9} {:>10} {:>10} {:>9} {:>9} {:>6} {:>8} {:>11}\n",
        "loss",
        "byz",
        "infected",
        "protected",
        "gamma_eff",
        "verified",
        "rejected",
        "quar",
        "gave_up",
        "unverified"
    );
    for c in cells {
        s.push_str(&format!(
            "{:>5.2} {:>5.2} {:>9} {:>10} {:>10} {:>9} {:>9} {:>6} {:>8} {:>11}\n",
            c.loss,
            c.byzantine,
            c.infected,
            c.protected,
            c.gamma_effective
                .map_or("never".to_string(), |g| g.to_string()),
            c.verified,
            c.rejected,
            c.quarantines,
            c.gave_up,
            c.deployed_unverified,
        ));
    }
    s
}

/// The quick chaos differential sweep recorded in the `"chaos"` block,
/// or its explicit skip marker.
///
/// The sweep is skipped on 1-core containers (its wall-secs figure is
/// meaningless there, matching the community `speedup_status`
/// convention) — but the block is **always emitted**. Silently dropping
/// it left `BENCH_*.json` consumers unable to tell "sweep clean" from
/// "sweep never ran"; the explicit `"SKIPPED (1 core)"` marker is the
/// fix.
#[derive(Debug, Clone, Default)]
pub struct ChaosSweep {
    /// `"ok"` or `"SKIPPED (1 core)"`.
    pub status: String,
    /// Cases executed (0 when skipped).
    pub cases: u64,
    /// Total pipeline executions across all differential legs.
    pub execs: u64,
    /// Invariant violations (must be 0 when status is `"ok"`).
    pub violations: u64,
    /// Wall-clock seconds for the batch.
    pub wall_secs: f64,
}

/// The schema-v6 `"checkpoint"` block: the `ckptcadence` sweep
/// (full-copy vs incremental engine overhead across production
/// cadences) plus the headline 200 ms cells. Always emitted — virtual
/// time, so there is nothing to skip on small hosts.
#[derive(Debug, Clone, Default)]
pub struct CheckpointBlock {
    /// `"ok"` always (explicit, matching the other blocks' convention).
    pub status: String,
    /// Guest server driven (the paper's Figure 4 subject).
    pub guest: String,
    /// Benign requests per measured run.
    pub requests: usize,
    /// The sweep cells: engine × interval.
    pub cells: Vec<CadenceCell>,
    /// Incremental-engine overhead at the paper's 200 ms default
    /// cadence — the PR-7 acceptance gate (< 0.01).
    pub incremental_200ms: f64,
    /// Full-copy overhead at 200 ms, for the same-row comparison.
    pub full_200ms: f64,
}

impl CheckpointBlock {
    /// Extract the overhead of `engine` at `interval_ms`, NaN if absent.
    fn cell_overhead(cells: &[CadenceCell], engine: &str, interval_ms: f64) -> f64 {
        cells
            .iter()
            .find(|c| c.engine == engine && c.interval_ms == interval_ms)
            .map_or(f64::NAN, |c| c.overhead)
    }
}

/// Percentile summary of one latency window of the fleet run
/// (quiescent or outbreak). All values in virtual milliseconds; NaN
/// (serialized as `null`) when the window collected no samples.
#[derive(Debug, Clone, Copy)]
pub struct FleetLatency {
    /// Benign requests completed in this window.
    pub samples: u64,
    /// Median service latency.
    pub p50_ms: f64,
    /// 99th-percentile service latency.
    pub p99_ms: f64,
    /// 99.9th-percentile service latency.
    pub p999_ms: f64,
    /// Worst observed service latency.
    pub max_ms: f64,
    /// Mean service latency.
    pub mean_ms: f64,
}

impl FleetLatency {
    fn from_book(book: &sweeper::LatencyBook) -> FleetLatency {
        FleetLatency {
            samples: book.len() as u64,
            p50_ms: book.percentile(0.5).unwrap_or(f64::NAN),
            p99_ms: book.percentile(0.99).unwrap_or(f64::NAN),
            p999_ms: book.percentile(0.999).unwrap_or(f64::NAN),
            max_ms: book.max_ms().unwrap_or(f64::NAN),
            mean_ms: book.mean_ms().unwrap_or(f64::NAN),
        }
    }
}

/// The schema-v7 `"fleet"` block: the virtual-clock reactor run
/// (`tables fleet`) — fleet-wide benign service latency during an
/// outbreak versus the quiescent baseline, plus the determinism
/// evidence.
///
/// Deliberately carries **no wall-clock time and no shard count**:
/// every field is a pure function of `(hosts, seed, …)`, which is what
/// makes the committed block reproducible bit-for-bit. Shard
/// invariance is reported *inside* the block (`shard_invariant`,
/// computed by running the same seed at 1 and N reactor shards and
/// comparing digests) rather than by leaking the shard knob into it.
#[derive(Debug, Clone)]
pub struct FleetBlock {
    /// `"ok"` always once produced (the skip marker is emitted by
    /// [`PerfReport::to_json`] when the block is absent).
    pub status: String,
    /// Guest Sweeper hosts simulated.
    pub hosts: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Guest application (`Apache1` etc.).
    pub target: String,
    /// Virtual-time horizon of the run, ms.
    pub horizon_ms: f64,
    /// Patient-zero instant, ms (NaN → `null` for quiescent-only runs).
    pub outbreak_at_ms: f64,
    /// Requests served normally.
    pub served: u64,
    /// Requests dropped by deployed signatures.
    pub filtered: u64,
    /// Attacks detected.
    pub attacks: u64,
    /// Worm contacts scheduled.
    pub contacts: u64,
    /// Certified bundles verified and deployed.
    pub bundles_deployed: u64,
    /// Certified bundles rejected at verification (must stay 0).
    pub bundles_rejected: u64,
    /// Hosts holding at least one antibody at the end.
    pub protected_hosts: u32,
    /// Latency of benign requests arriving before the outbreak.
    pub quiescent: FleetLatency,
    /// Latency of benign requests arriving during the outbreak.
    pub outbreak: FleetLatency,
    /// The run's determinism digest, hex-printed.
    pub digest: String,
    /// Whether 1-shard and N-shard runs produced bit-equal digests
    /// (chaos invariant I10; must be `true`).
    pub shard_invariant: bool,
}

/// Run the fleet reactor at 1 shard and at `check_shards` shards and
/// fold the (1-shard) outcome plus the shard-invariance verdict into
/// the schema-v7 `"fleet"` block.
pub fn fleet_block(cfg: &fleet::FleetConfig, check_shards: usize) -> Result<FleetBlock, String> {
    let serial = fleet::run(&cfg.with_shards(1))?;
    let sharded = fleet::run(&cfg.with_shards(check_shards.max(2)))?;
    Ok(FleetBlock {
        status: "ok".to_string(),
        hosts: serial.hosts,
        seed: serial.seed,
        target: format!("{:?}", cfg.target),
        horizon_ms: cfg.horizon_ms,
        outbreak_at_ms: cfg.outbreak_at_ms.unwrap_or(f64::NAN),
        served: serial.served,
        filtered: serial.filtered,
        attacks: serial.attacks,
        contacts: serial.contacts,
        bundles_deployed: serial.bundles_deployed,
        bundles_rejected: serial.bundles_rejected,
        protected_hosts: serial.protected_hosts,
        quiescent: FleetLatency::from_book(&serial.quiescent),
        outbreak: FleetLatency::from_book(&serial.outbreak),
        digest: format!("{:#018x}", serial.digest),
        shard_invariant: serial.digest == sharded.digest,
    })
}

/// Render the fleet block as a text table (what `tables fleet` prints).
pub fn render_fleet_block(b: &FleetBlock) -> String {
    let row = |name: &str, l: &FleetLatency| {
        format!(
            "{name:>10} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            l.samples, l.p50_ms, l.p99_ms, l.p999_ms, l.max_ms, l.mean_ms
        )
    };
    let mut s = format!(
        "fleet: {} hosts ({}), seed {}, horizon {} ms, outbreak @ {} ms\n\
         {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        b.hosts,
        b.target,
        b.seed,
        b.horizon_ms,
        if b.outbreak_at_ms.is_finite() {
            format!("{}", b.outbreak_at_ms)
        } else {
            "never".to_string()
        },
        "window",
        "samples",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "max_ms",
        "mean_ms"
    );
    s.push_str(&row("quiescent", &b.quiescent));
    s.push_str(&row("outbreak", &b.outbreak));
    s.push_str(&format!(
        "served {} | filtered {} | attacks {} | contacts {} | bundles +{}/-{} | \
         protected {}/{} | digest {} | shard_invariant {}",
        b.served,
        b.filtered,
        b.attacks,
        b.contacts,
        b.bundles_deployed,
        b.bundles_rejected,
        b.protected_hosts,
        b.hosts,
        b.digest,
        b.shard_invariant,
    ));
    s
}

/// The schema-v9 `"recovery"` block: the `tables fleetrecover` run —
/// the same fleet outbreak measured under Full recovery (whole-machine
/// rollback + drop-the-attack replay) and under Domain recovery
/// (partial rollback of only the attacked connection's domain, PR 10),
/// plus a Differential leg in which every attacked host runs both modes
/// for the same fault and asserts bit-equal post-recovery digests.
///
/// Follows the [`FleetBlock`] conventions: no wall-clock time, no shard
/// count — every field is a pure function of `(hosts, seed, …)`, with
/// shard invariance reported *inside* the block.
#[derive(Debug, Clone)]
pub struct RecoveryBlock {
    /// `"ok"` always once produced (the skip marker is emitted by
    /// [`PerfReport::to_json`] when the block is absent).
    pub status: String,
    /// Guest Sweeper hosts simulated (per leg).
    pub hosts: u32,
    /// Master seed of the run (identical across legs).
    pub seed: u64,
    /// Guest application (`Apache1` etc.).
    pub target: String,
    /// Outbreak-window benign latency under Full recovery.
    pub full_outbreak: FleetLatency,
    /// Quiescent benign latency under Full recovery.
    pub full_quiescent: FleetLatency,
    /// Outbreak-window benign latency under Domain recovery.
    pub domain_outbreak: FleetLatency,
    /// Quiescent benign latency under Domain recovery.
    pub domain_quiescent: FleetLatency,
    /// Partial rollbacks completed on the Domain leg.
    pub domain_rollbacks: u64,
    /// Fail-closed fallbacks from Domain to Full on the Domain leg.
    pub domain_fallbacks: u64,
    /// Cross-domain spills the page→domain ledger counted on the Domain
    /// leg (each one forces a fallback).
    pub domain_spills: u64,
    /// `recovery.i12_violations` summed over every leg: partial
    /// rollbacks that disturbed a benign domain. Must be 0.
    pub i12_violations: u64,
    /// Whether the Differential leg proved Domain ≡ Full: at least one
    /// in-lockstep parity check ran and none mismatched.
    pub domain_parity: bool,
    /// Hosts protected at the end of the Full leg.
    pub protected_full: u32,
    /// Hosts protected at the end of the Domain leg.
    pub protected_domain: u32,
    /// Domain outbreak p999 over Full outbreak p999 — the headline
    /// number: partial recovery keeps the analysis pause off the benign
    /// service path, so this must stay well below 1.
    pub p999_ratio: f64,
    /// Domain-leg determinism digest, hex-printed.
    pub digest_domain: String,
    /// Whether the Domain leg's digest is shard-count-invariant
    /// (invariant I10; must be `true`).
    pub shard_invariant: bool,
}

/// Run the fleet under Full, Domain (at 1 and `check_shards` shards),
/// and Differential recovery, and fold the comparison into the
/// schema-v9 `"recovery"` block.
pub fn recovery_block(
    cfg: &fleet::FleetConfig,
    check_shards: usize,
) -> Result<RecoveryBlock, String> {
    use sweeper::RecoveryMode;
    let full = fleet::run(&cfg.with_recovery(RecoveryMode::Full).with_shards(1))?;
    let domain = fleet::run(&cfg.with_recovery(RecoveryMode::Domain).with_shards(1))?;
    let sharded = fleet::run(
        &cfg.with_recovery(RecoveryMode::Domain)
            .with_shards(check_shards.max(2)),
    )?;
    let diff = fleet::run(&cfg.with_recovery(RecoveryMode::Differential).with_shards(1))?;
    let parity_checks = diff.metrics.counter("recovery.domain_parity_checks");
    let parity_mismatches = diff.metrics.counter("recovery.domain_parity_mismatches");
    let i12_violations = [&full, &domain, &sharded, &diff]
        .iter()
        .map(|o| o.metrics.counter("recovery.i12_violations"))
        .sum();
    Ok(RecoveryBlock {
        status: "ok".to_string(),
        hosts: domain.hosts,
        seed: domain.seed,
        target: format!("{:?}", cfg.target),
        full_outbreak: FleetLatency::from_book(&full.outbreak),
        full_quiescent: FleetLatency::from_book(&full.quiescent),
        domain_outbreak: FleetLatency::from_book(&domain.outbreak),
        domain_quiescent: FleetLatency::from_book(&domain.quiescent),
        domain_rollbacks: domain.metrics.counter("recovery.domain_rollbacks"),
        domain_fallbacks: domain.metrics.counter("recovery.domain_fallbacks"),
        domain_spills: domain.metrics.counter("checkpoint.domain_spills"),
        i12_violations,
        domain_parity: parity_checks > 0 && parity_mismatches == 0,
        protected_full: full.protected_hosts,
        protected_domain: domain.protected_hosts,
        p999_ratio: domain.outbreak.percentile(0.999).unwrap_or(f64::NAN)
            / full.outbreak.percentile(0.999).unwrap_or(f64::NAN),
        digest_domain: format!("{:#018x}", domain.digest),
        shard_invariant: domain.digest == sharded.digest,
    })
}

/// Render the recovery block as a text table (what `tables fleetrecover`
/// prints).
pub fn render_recovery_block(b: &RecoveryBlock) -> String {
    let row = |name: &str, l: &FleetLatency| {
        format!(
            "{name:>16} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            l.samples, l.p50_ms, l.p99_ms, l.p999_ms, l.max_ms, l.mean_ms
        )
    };
    let mut s = format!(
        "fleetrecover: {} hosts ({}), seed {} — Full vs Domain recovery\n\
         {:>16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        b.hosts,
        b.target,
        b.seed,
        "window",
        "samples",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "max_ms",
        "mean_ms"
    );
    s.push_str(&row("full quiescent", &b.full_quiescent));
    s.push_str(&row("full outbreak", &b.full_outbreak));
    s.push_str(&row("domain quiescent", &b.domain_quiescent));
    s.push_str(&row("domain outbreak", &b.domain_outbreak));
    s.push_str(&format!(
        "outbreak p999 ratio (domain/full) {:.4} | domain rollbacks {} | fallbacks {} | \
         spills {} | i12_violations {} | domain_parity {} | protected {}/{} (full) {}/{} (domain) | \
         digest {} | shard_invariant {}",
        b.p999_ratio,
        b.domain_rollbacks,
        b.domain_fallbacks,
        b.domain_spills,
        b.i12_violations,
        b.domain_parity,
        b.protected_full,
        b.hosts,
        b.protected_domain,
        b.hosts,
        b.digest_domain,
        b.shard_invariant,
    ));
    s
}

/// The PR-5 dense-engine baseline the `fig9fail` speedup gate compares
/// against: `BENCH_pr5.json` recorded 1741.78 ticks/s at 20 000 hosts
/// (K = 1), i.e. ≈ 34.84 M host·ticks/s — a dense engine visits every
/// host every tick, so hosts × ticks/s is its per-host tick rate.
pub const PR5_HOST_TICKS_PER_SEC: f64 = 20_000.0 * PR5_TICKS_PER_SEC_20K;

/// Ticks/s of the 20 000-host K = 1 community benchmark as committed in
/// `BENCH_pr5.json` — the "before" side of the PR-9 scratch-hoist note.
pub const PR5_TICKS_PER_SEC_20K: f64 = 1741.78;

/// One arm of the `fig9fail` containment-mechanism sweep: the same
/// scanning-worm outbreak with one combination of defenses switched on.
#[derive(Debug, Clone)]
pub struct FailArm {
    /// `"none"`, `"failest"`, `"antibody"`, or `"both"`.
    pub name: String,
    /// Consumers infected when the run ended.
    pub infected: u64,
    /// `infected / hosts`.
    pub infection_ratio: f64,
    /// Ticks simulated.
    pub ticks: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
    /// `hosts × ticks / wall_secs`: the event-driven engine's headline
    /// unit. A dense engine pays O(hosts) per tick no matter how sparse
    /// the outbreak; the SoA engine pays O(infected), so this number is
    /// what grows with sparsity.
    pub host_ticks_per_sec: f64,
    /// Sources flagged by the failure estimator (failest arms only).
    pub flagged_sources: u64,
    /// Attempt slots suppressed at flagged sources (failest arms only).
    pub suppressed_attempts: u64,
    /// Hosts holding the antibody at the end (antibody arms only).
    pub protected: u64,
}

/// The schema-v8 `"epidemic1m"` block: the `tables fig9fail` sweep —
/// connection-failure containment (Zhou-style hyper-compact failure
/// estimators) versus the paper's antibody distribution on the same
/// million-host outbreak, run on the struct-of-arrays engine, plus the
/// differential-parity evidence that makes the speedup trustworthy.
///
/// Follows the [`FleetBlock`] conventions: `status` is `"ok"` once the
/// block is produced (the skip marker is emitted by
/// [`PerfReport::to_json`] when it is absent), and the parity verdicts
/// are reported *inside* the block rather than as side channels.
#[derive(Debug, Clone)]
pub struct Epidemic1mBlock {
    /// `"ok"` always once produced.
    pub status: String,
    /// Community size of the sweep arms.
    pub hosts: u64,
    /// Run seed (shared by every arm and the parity gate).
    pub seed: u64,
    /// Contact-state backend of the sweep arms (`"soa"`).
    pub engine: String,
    /// Whether both K = 1 and K = 4 differential runs at
    /// `parity_hosts` reported zero SoA/legacy mismatches (invariant
    /// I11; must be `true`).
    pub soa_parity: bool,
    /// Whether the K = 1 and K = 4 differential outcomes were
    /// bit-identical to each other (must be `true`).
    pub k_invariant: bool,
    /// Hosts used for the differential parity gate (20k, or `hosts`
    /// when smaller).
    pub parity_hosts: u64,
    /// Headline per-host tick rate: the antibody arm (the contained,
    /// sparse regime the SoA active-queue engine is built for).
    pub host_ticks_per_sec: f64,
    /// The PR-5 dense-engine baseline ([`PR5_HOST_TICKS_PER_SEC`]).
    pub pr5_host_ticks_per_sec: f64,
    /// `host_ticks_per_sec / pr5_host_ticks_per_sec` (acceptance ≥ 50
    /// at 1 M hosts).
    pub speedup_vs_pr5: f64,
    /// Scratch-hoist note, "before" side: the 20k-host K = 1 tick rate
    /// committed in `BENCH_pr5.json`, when the coordinator allocated
    /// fresh outbox/inbox vectors every tick.
    pub hoist_before_ticks_per_sec: f64,
    /// Scratch-hoist note, "after" side: the same PR-5 workload on the
    /// *legacy* engine today, with the per-tick scratch hoisted to
    /// reused per-shard buffers (the coordinator is shared, so the
    /// dense engine benefits too — this isolates the hoist from the
    /// SoA rework).
    pub hoist_after_ticks_per_sec: f64,
    /// The four sweep arms, in none/failest/antibody/both order.
    pub arms: Vec<FailArm>,
}

/// Run the `fig9fail` sweep and fold it into the schema-v8
/// `"epidemic1m"` block.
///
/// The shared environment is a fast scanning worm (1 attempt per tick,
/// ρ = 0.1 proactive protection, one initial infection) over `hosts`
/// hosts on the SoA engine. The four arms switch defenses on one at a
/// time: `none` (die-out guard only), `failest` (the failure
/// estimator), `antibody` (α = 0.1 % producers, γ = 10 ticks), `both`.
/// The parity gate re-runs the failest shape at 20k hosts under
/// [`CommunityEngine::Differential`] at K ∈ {1, 4}.
pub fn epidemic1m_block(hosts: u64, seed: u64) -> Epidemic1mBlock {
    use epidemic::community::run;
    use std::time::Instant;

    let arm_params = |alpha: f64, gamma_ticks: u64, failcont: FailContParams| CommunityParams {
        hosts,
        alpha,
        rho: 0.1,
        gamma_ticks,
        attempts_per_tick: 1,
        attempt_prob: 1.0,
        i0: 1,
        max_ticks: 400,
        seed,
        parallelism: Parallelism::Fixed(1),
        engine: CommunityEngine::Soa,
        distnet: DistNetParams::disabled(),
        failcont,
    };
    let specs: [(&str, f64, u64, FailContParams); 4] = [
        ("none", 0.0, 0, FailContParams::disabled()),
        ("failest", 0.0, 0, FailContParams::standard()),
        ("antibody", 0.001, 10, FailContParams::disabled()),
        ("both", 0.001, 10, FailContParams::standard()),
    ];
    let mut arms = Vec::new();
    for (name, alpha, gamma, fc) in specs {
        let p = arm_params(alpha, gamma, fc);
        let start = Instant::now();
        let o = run(&p);
        let wall = start.elapsed().as_secs_f64();
        arms.push(FailArm {
            name: name.to_string(),
            infected: o.infected,
            infection_ratio: o.infection_ratio,
            ticks: o.ticks,
            wall_secs: wall,
            host_ticks_per_sec: ratio(hosts as f64 * o.ticks as f64, wall),
            flagged_sources: o.failcont.as_ref().map_or(0, |f| f.flagged_sources),
            suppressed_attempts: o.failcont.as_ref().map_or(0, |f| f.suppressed_attempts),
            protected: o.shard_stats.iter().map(|s| s.antibodies_applied).sum(),
        });
    }

    // The differential parity gate: the failest arm's shape (the
    // richest code path — estimator folds plus the epidemic core) at up
    // to 20k hosts, both backends in lockstep, at two shard counts.
    let parity_hosts = hosts.min(20_000);
    let parity = |k: usize| {
        run(&CommunityParams {
            hosts: parity_hosts,
            parallelism: Parallelism::Fixed(k),
            engine: CommunityEngine::Differential,
            ..arm_params(0.0, 0, FailContParams::standard())
        })
    };
    let d1 = parity(1);
    let d4 = parity(4);
    let soa_parity = d1.soa_parity_mismatches == Some(0) && d4.soa_parity_mismatches == Some(0);
    let k_invariant = (d1.t0_tick, d1.infected, &d1.curve, d1.ticks)
        == (d4.t0_tick, d4.infected, &d4.curve, d4.ticks);

    // Scratch-hoist before/after: replay the PR-5 dense benchmark
    // workload (hit-list worm, hot start, 20k hosts, K = 1) on the
    // legacy engine and compare against the committed BENCH_pr5 rate.
    // Best of 3 — a single run right after the sweep arms is dominated
    // by allocator/frequency noise.
    let hoist_after = (0..3)
        .map(|_| {
            let scenario = epidemic::Scenario {
                n: 20_000.0,
                ..epidemic::Scenario::hitlist(1000.0, 0.001, 5.0)
            };
            let p = CommunityParams {
                i0: 10_000,
                engine: CommunityEngine::Legacy,
                ..CommunityParams::from_scenario(&scenario, 0.01, seed, Parallelism::Fixed(1))
            };
            let start = Instant::now();
            let o = run(&p);
            ratio(o.ticks as f64, start.elapsed().as_secs_f64())
        })
        .fold(0.0f64, f64::max);

    let headline = arms
        .iter()
        .find(|a| a.name == "antibody")
        .map_or(0.0, |a| a.host_ticks_per_sec);
    Epidemic1mBlock {
        status: "ok".to_string(),
        hosts,
        seed,
        engine: "soa".to_string(),
        soa_parity,
        k_invariant,
        parity_hosts,
        host_ticks_per_sec: headline,
        pr5_host_ticks_per_sec: PR5_HOST_TICKS_PER_SEC,
        speedup_vs_pr5: ratio(headline, PR5_HOST_TICKS_PER_SEC),
        hoist_before_ticks_per_sec: PR5_TICKS_PER_SEC_20K,
        hoist_after_ticks_per_sec: hoist_after,
        arms,
    }
}

/// Render the epidemic1m block as a text table (what `tables fig9fail`
/// prints).
pub fn render_epidemic_block(b: &Epidemic1mBlock) -> String {
    let mut s = format!(
        "fig9fail: {} hosts, seed {}, engine {} (scanning worm, rho = 0.1)\n\
         {:>10} {:>10} {:>7} {:>9} {:>15} {:>9} {:>11} {:>10}\n",
        b.hosts,
        b.seed,
        b.engine,
        "arm",
        "infected",
        "ticks",
        "wall_s",
        "host_ticks/s",
        "flagged",
        "suppressed",
        "protected"
    );
    for a in &b.arms {
        s.push_str(&format!(
            "{:>10} {:>10} {:>7} {:>9.3} {:>15.0} {:>9} {:>11} {:>10}\n",
            a.name,
            a.infected,
            a.ticks,
            a.wall_secs,
            a.host_ticks_per_sec,
            a.flagged_sources,
            a.suppressed_attempts,
            a.protected
        ));
    }
    s.push_str(&format!(
        "headline (antibody arm): {:.3e} host·ticks/s = {:.1}x the PR-5 dense baseline ({:.3e})\n\
         scratch hoist (20k-host legacy engine): {:.2} ticks/s in BENCH_pr5 -> {:.2} ticks/s now\n\
         parity @ {} hosts: soa_parity {} | k_invariant {}",
        b.host_ticks_per_sec,
        b.speedup_vs_pr5,
        b.pr5_host_ticks_per_sec,
        b.hoist_before_ticks_per_sec,
        b.hoist_after_ticks_per_sec,
        b.parity_hosts,
        b.soa_parity,
        b.k_invariant,
    ));
    s
}

/// The full quick-pass snapshot written to `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Host cores visible to the process (1 on the CI container).
    pub cores: usize,
    /// Tight-loop instruction count per rep.
    pub vm_loop_insns: u64,
    /// Interpreter rate with the decode cache disabled.
    pub vm_uncached: VmRate,
    /// Interpreter rate with the decode cache enabled (icache only).
    pub vm_cached: VmRate,
    /// Full stack: icache + superblock tier.
    pub vm_superblock: VmRate,
    /// `cached.insns_per_sec / uncached.insns_per_sec`.
    pub vm_speedup: f64,
    /// `superblock.insns_per_sec / cached.insns_per_sec` (tight loop).
    pub vm_sb_speedup: f64,
    /// Straight-line-guest instruction count per rep.
    pub straight_insns: u64,
    /// Straight-line guest, pure interpreter.
    pub straight_uncached: VmRate,
    /// Straight-line guest, icache only.
    pub straight_cached: VmRate,
    /// Straight-line guest, full stack.
    pub straight_superblock: VmRate,
    /// Straight-line `cached / uncached` ratio.
    pub straight_speedup: f64,
    /// Straight-line `superblock / cached` ratio — the headline number
    /// for the superblock tier (acceptance: ≥ 1.5).
    pub straight_sb_speedup: f64,
    /// The chaos differential sweep (always present; see [`ChaosSweep`]).
    pub chaos: ChaosSweep,
    /// Community hosts used for the K sweep.
    pub hosts: u64,
    /// Seed used for the K sweep.
    pub seed: u64,
    /// Community engine at K = 1.
    pub k1: CommunityRate,
    /// Community engine at K = 4.
    pub k4: CommunityRate,
    /// `k1.wall_secs / k4.wall_secs`.
    pub community_speedup: f64,
    /// Whether K = 1 and K = 4 produced bit-identical outcomes.
    pub outcomes_identical: bool,
    /// `"ok"`, or `"SKIPPED (1 core)"` when the wall-clock ratio is
    /// meaningless because the host cannot run shards in parallel.
    pub speedup_status: String,
    /// Observability snapshot gathered during the quick pass: the
    /// cached-VM run's machine counters merged with the K = 1 community
    /// run's simulation counters. Written as the `"obs"` block of
    /// `BENCH_*.json`.
    pub obs: obs::MetricsRegistry,
    /// Hosts used for the `fig9dist` distnet sweep (capped so the sweep
    /// stays a quick pass even when `hosts` is large).
    pub distnet_hosts: u64,
    /// `"ok"` always today (the distnet sweep runs single-shard), but
    /// emitted explicitly so consumers never have to infer presence.
    pub distnet_status: String,
    /// The `fig9dist` containment-vs-loss/Byzantine sweep (the schema
    /// v4 `"distnet"` block).
    pub distnet: Vec<DistNetCell>,
    /// The `ckptcadence` sweep (the schema v6 `"checkpoint"` block).
    pub checkpoint: CheckpointBlock,
    /// The fleet reactor run (the schema v7 `"fleet"` block).
    ///
    /// `None` in the quick pass — a 1k-host fleet is far too heavy for
    /// `measure()`'s budget — in which case the JSON carries an
    /// explicit skip marker. Populated by `tables fleet` (optionally
    /// `--full`, which attaches it to a fresh full snapshot).
    pub fleet: Option<FleetBlock>,
    /// The `fig9fail` million-host containment sweep (the schema v8
    /// `"epidemic1m"` block).
    ///
    /// `None` in the quick pass — the sweep is sized by its `--hosts`
    /// flag and belongs to `tables fig9fail` — in which case the JSON
    /// carries an explicit skip marker. `tables fig9fail --full`
    /// attaches it to a fresh full snapshot.
    pub epidemic1m: Option<Epidemic1mBlock>,
    /// The `fleetrecover` Full-vs-Domain recovery comparison (the
    /// schema v9 `"recovery"` block).
    ///
    /// `None` in the quick pass — it runs the fleet four times — in
    /// which case the JSON carries an explicit skip marker. Populated
    /// by `tables fleetrecover`.
    pub recovery: Option<RecoveryBlock>,
}

/// The tight-loop guest: branch-dense, so the icache dominates and
/// superblocks have little straight-line run to fuse.
fn tight_src(loop_iters: u32) -> String {
    format!(
        ".text\nmain:\n movi r1, {loop_iters}\nloop:\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n"
    )
}

/// The straight-line-heavy guest: 64 unrolled `addi`s per loop-control
/// triple (67 insns between branches), the workload the superblock tier
/// is built for. Mirrors `benches/vm_decode_cache.rs`.
fn straight_src(loop_iters: u32) -> String {
    let mut src = format!(".text\nmain:\n movi r1, {loop_iters}\nloop:\n");
    for _ in 0..64 {
        src.push_str(" addi r0, r0, 1\n");
    }
    src.push_str(" subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n");
    src
}

/// Measure interpreter throughput over a `loop_iters`-iteration tight
/// loop, taking the fastest of `reps` runs (boot excluded from timing).
/// `cache` enables the predecoded icache; `superblocks` additionally
/// enables the superblock tier (ignored when `cache` is off).
pub fn vm_rate(cache: bool, superblocks: bool, loop_iters: u32, reps: u32) -> VmRate {
    vm_rate_with_metrics(cache, superblocks, loop_iters, reps).0
}

/// Like [`vm_rate`], also exporting the fastest rep's machine counters
/// as an [`obs::MetricsRegistry`].
pub fn vm_rate_with_metrics(
    cache: bool,
    superblocks: bool,
    loop_iters: u32,
    reps: u32,
) -> (VmRate, obs::MetricsRegistry) {
    vm_rate_src(&tight_src(loop_iters), cache, superblocks, reps)
}

/// Measure one tier over an arbitrary guest source.
fn vm_rate_src(
    src: &str,
    cache: bool,
    superblocks: bool,
    reps: u32,
) -> (VmRate, obs::MetricsRegistry) {
    let prog = assemble(src).expect("asm");
    let sb = cache && superblocks;
    let mut best: Option<(VmRate, obs::MetricsRegistry)> = None;
    for _ in 0..reps.max(1) {
        let mut m = Machine::boot(&prog, Aslr::off())
            .expect("boot")
            .with_decode_cache(cache)
            .with_superblocks(sb);
        let start = std::time::Instant::now();
        let status = m.run(&mut NopHook, u64::MAX);
        let wall = start.elapsed().as_secs_f64();
        assert!(matches!(status, Status::Halted(_)), "loop must halt");
        let r = VmRate {
            cached: cache,
            superblocks: sb,
            insns: m.insns_retired,
            wall_secs: wall,
            insns_per_sec: insns_per_sec(m.insns_retired, wall),
            stats: m.icache_stats(),
            sb_stats: m.superblock_stats(),
        };
        if best.as_ref().is_none_or(|(b, _)| wall < b.wall_secs) {
            let mut reg = obs::MetricsRegistry::new();
            m.export_metrics(&mut reg);
            best = Some((r, reg));
        }
    }
    best.expect("reps >= 1")
}

/// Run the sharded community model engine once at shard count `k`.
pub fn community_rate(hosts: u64, k: usize, seed: u64) -> CommunityRate {
    community_rate_with_metrics(hosts, k, seed).0
}

/// Like [`community_rate`], also returning the run's metrics snapshot
/// ([`epidemic::CommunityOutcome::metrics`]).
pub fn community_rate_with_metrics(
    hosts: u64,
    k: usize,
    seed: u64,
) -> (CommunityRate, obs::MetricsRegistry) {
    let (outcome, wall) = crate::model_campaign(hosts, Parallelism::Fixed(k), seed);
    let metrics = outcome.metrics();
    let rate = CommunityRate {
        shards: k,
        wall_secs: wall,
        ticks: outcome.ticks,
        ticks_per_sec: if wall > 0.0 {
            outcome.ticks as f64 / wall
        } else {
            0.0
        },
        infected: outcome.infected,
        t0_tick: outcome.t0_tick,
        curve_sum: outcome
            .curve
            .iter()
            .fold(0u64, |h, &v| h.wrapping_mul(0x100_0000_01b3) ^ v),
    };
    (rate, metrics)
}

/// Ratio of two rates, 0.0 when the denominator is degenerate.
fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Run the quick chaos differential sweep, or mark it skipped.
fn chaos_sweep(seed: u64, cores: usize) -> ChaosSweep {
    if cores <= 1 {
        return ChaosSweep {
            status: "SKIPPED (1 core)".to_string(),
            ..ChaosSweep::default()
        };
    }
    let s = chaos::run_many((0..2).map(|i| seed.wrapping_add(i)));
    ChaosSweep {
        status: "ok".to_string(),
        cases: s.cases,
        execs: s.execs,
        violations: s.violations.len() as u64,
        wall_secs: s.wall_secs,
    }
}

/// Run the whole quick pass: VM rates on all three execution tiers
/// (tight-loop and straight-line guests), the community engine at K = 1
/// and K = 4, the chaos differential sweep, and the distnet sweep.
pub fn measure(hosts: u64, seed: u64, vm_loop_iters: u32) -> PerfReport {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    measure_with_cores(hosts, seed, vm_loop_iters, cores)
}

/// [`measure`] with the core count injected — the testable seam for the
/// 1-core skip path (a 1-core container cannot force the multi-core
/// branch and vice versa).
pub fn measure_with_cores(hosts: u64, seed: u64, vm_loop_iters: u32, cores: usize) -> PerfReport {
    let uncached = vm_rate(false, false, vm_loop_iters, 3);
    let cached = vm_rate(true, false, vm_loop_iters, 3);
    let (superblock, vm_obs) = vm_rate_with_metrics(true, true, vm_loop_iters, 3);
    // Straight-line guest: scale iterations down so total retired insns
    // stay comparable to the tight loop (67 insns per iteration vs 3).
    let straight_iters = (vm_loop_iters / 22).max(8);
    let straight_uncached = vm_rate_src(&straight_src(straight_iters), false, false, 3).0;
    let straight_cached = vm_rate_src(&straight_src(straight_iters), true, false, 3).0;
    let straight_superblock = vm_rate_src(&straight_src(straight_iters), true, true, 3).0;
    let (k1, k1_obs) = community_rate_with_metrics(hosts, 1, seed);
    let k4 = community_rate(hosts, 4, seed);
    let mut obs_reg = vm_obs;
    obs_reg.merge(&k1_obs);
    let outcomes_identical = (k1.infected, k1.t0_tick, k1.ticks, k1.curve_sum)
        == (k4.infected, k4.t0_tick, k4.ticks, k4.curve_sum);
    let chaos = chaos_sweep(seed, cores);
    let distnet_hosts = hosts.clamp(400, 4_000);
    let distnet = distnet_sweep(distnet_hosts, seed);
    // The 200 ms cells only take periodic checkpoints once the run
    // spans several intervals (~1500 requests per 200 ms of virtual
    // time), so the committed snapshot uses a long run; the quick test
    // pass keeps a short one and gates on the denser cadences instead.
    let ckpt_requests = if vm_loop_iters >= 10_000 { 6_000 } else { 250 };
    let checkpoint = checkpoint_block(ckpt_requests);
    PerfReport {
        cores,
        vm_loop_insns: uncached.insns,
        vm_speedup: ratio(cached.insns_per_sec, uncached.insns_per_sec),
        vm_sb_speedup: ratio(superblock.insns_per_sec, cached.insns_per_sec),
        vm_uncached: uncached,
        vm_cached: cached,
        vm_superblock: superblock,
        straight_insns: straight_uncached.insns,
        straight_speedup: ratio(
            straight_cached.insns_per_sec,
            straight_uncached.insns_per_sec,
        ),
        straight_sb_speedup: ratio(
            straight_superblock.insns_per_sec,
            straight_cached.insns_per_sec,
        ),
        straight_uncached,
        straight_cached,
        straight_superblock,
        chaos,
        hosts,
        seed,
        community_speedup: k1.wall_secs / k4.wall_secs.max(1e-12),
        outcomes_identical,
        speedup_status: if cores <= 1 {
            "SKIPPED (1 core)".to_string()
        } else {
            "ok".to_string()
        },
        k1,
        k4,
        obs: obs_reg,
        distnet_hosts,
        distnet_status: "ok".to_string(),
        distnet,
        checkpoint,
        fleet: None,
        epidemic1m: None,
        recovery: None,
    }
}

/// Run the `ckptcadence` sweep on the Figure 4 guest (Squid) and fold
/// it into the schema-v6 `"checkpoint"` block.
pub fn checkpoint_block(requests: usize) -> CheckpointBlock {
    use apps::{squid, workload::Target};
    let app = squid::app().expect("squid assembles");
    let cells = cadence_sweep(&app, Target::Squid, requests);
    let incremental_200ms = CheckpointBlock::cell_overhead(&cells, "incremental", 200.0);
    let full_200ms = CheckpointBlock::cell_overhead(&cells, "full", 200.0);
    CheckpointBlock {
        status: "ok".to_string(),
        guest: "squid".to_string(),
        requests,
        cells,
        incremental_200ms,
        full_200ms,
    }
}

/// Render the `ckptcadence` sweep as a text table.
pub fn render_checkpoint_block(b: &CheckpointBlock) -> String {
    let mut s = format!(
        "ckptcadence: checkpoint overhead vs cadence and engine ({}, {} requests)\n\
         {:>12} {:>10} {:>11} {:>12}\n",
        b.guest, b.requests, "engine", "interval", "overhead", "checkpoints"
    );
    for c in &b.cells {
        s.push_str(&format!(
            "{:>12} {:>7} ms {:>10.4}% {:>12}\n",
            c.engine,
            c.interval_ms,
            c.overhead * 100.0,
            c.checkpoints
        ));
    }
    s.push_str(&format!(
        "incremental @ 200 ms: {:.4}% (gate: < 1%) | full @ 200 ms: {:.4}%",
        b.incremental_200ms * 100.0,
        b.full_200ms * 100.0
    ));
    s
}

/// Format a float as a JSON number (6 significant decimals, `null` for
/// non-finite values).
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn j_vm(r: &VmRate) -> String {
    format!(
        "{{\"insns\": {}, \"wall_secs\": {}, \"insns_per_sec\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_invalidations\": {}, \
         \"sb_dispatches\": {}, \"sb_insns\": {}, \"sb_bailouts\": {}}}",
        r.insns,
        jf(r.wall_secs),
        jf(r.insns_per_sec),
        r.stats.hits,
        r.stats.misses,
        r.stats.invalidations,
        r.sb_stats.dispatches,
        r.sb_stats.insns,
        r.sb_stats.bailouts,
    )
}

fn j_chaos(c: &ChaosSweep) -> String {
    format!(
        "{{\"status\": \"{}\", \"cases\": {}, \"execs\": {}, \
         \"violations\": {}, \"wall_secs\": {}}}",
        c.status,
        c.cases,
        c.execs,
        c.violations,
        jf(c.wall_secs),
    )
}

fn j_community(r: &CommunityRate) -> String {
    format!(
        "{{\"shards\": {}, \"wall_secs\": {}, \"ticks\": {}, \"ticks_per_sec\": {}, \
         \"infected\": {}, \"t0_tick\": {}, \"curve_fnv\": {}}}",
        r.shards,
        jf(r.wall_secs),
        r.ticks,
        jf(r.ticks_per_sec),
        r.infected,
        r.t0_tick.map_or("null".to_string(), |t| t.to_string()),
        r.curve_sum,
    )
}

fn j_distnet_cell(c: &DistNetCell) -> String {
    format!(
        "{{\"loss\": {}, \"byzantine\": {}, \"infected\": {}, \"protected\": {}, \
         \"gamma_effective\": {}, \"ticks\": {}, \"verified\": {}, \"rejected\": {}, \
         \"quarantines\": {}, \"gave_up\": {}, \"deployed_unverified\": {}}}",
        jf(c.loss),
        jf(c.byzantine),
        c.infected,
        c.protected,
        c.gamma_effective
            .map_or("null".to_string(), |g| g.to_string()),
        c.ticks,
        c.verified,
        c.rejected,
        c.quarantines,
        c.gave_up,
        c.deployed_unverified,
    )
}

fn j_cadence_cell(c: &CadenceCell) -> String {
    format!(
        "{{\"engine\": \"{}\", \"interval_ms\": {}, \"overhead\": {}, \"checkpoints\": {}}}",
        c.engine,
        jf(c.interval_ms),
        jf(c.overhead),
        c.checkpoints,
    )
}

fn j_fleet_latency(l: &FleetLatency) -> String {
    format!(
        "{{\"samples\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
         \"max_ms\": {}, \"mean_ms\": {}}}",
        l.samples,
        jf(l.p50_ms),
        jf(l.p99_ms),
        jf(l.p999_ms),
        jf(l.max_ms),
        jf(l.mean_ms),
    )
}

fn j_fleet(b: &Option<FleetBlock>) -> String {
    let Some(b) = b else {
        // Same convention as the chaos skip: the block always exists,
        // so consumers can tell "not run" from "silently dropped".
        return "{\"status\": \"SKIPPED (run tables fleet)\"}".to_string();
    };
    format!(
        "{{\n    \"status\": \"{}\",\n    \"hosts\": {},\n    \"seed\": {},\n    \
         \"target\": \"{}\",\n    \"horizon_ms\": {},\n    \"outbreak_at_ms\": {},\n    \
         \"served\": {},\n    \"filtered\": {},\n    \"attacks\": {},\n    \
         \"contacts\": {},\n    \"bundles_deployed\": {},\n    \"bundles_rejected\": {},\n    \
         \"protected_hosts\": {},\n    \"quiescent\": {},\n    \"outbreak\": {},\n    \
         \"digest\": \"{}\",\n    \"shard_invariant\": {}\n  }}",
        b.status,
        b.hosts,
        b.seed,
        b.target,
        jf(b.horizon_ms),
        jf(b.outbreak_at_ms),
        b.served,
        b.filtered,
        b.attacks,
        b.contacts,
        b.bundles_deployed,
        b.bundles_rejected,
        b.protected_hosts,
        j_fleet_latency(&b.quiescent),
        j_fleet_latency(&b.outbreak),
        b.digest,
        b.shard_invariant,
    )
}

fn j_recovery(b: &Option<RecoveryBlock>) -> String {
    let Some(b) = b else {
        // Same convention as the fleet skip: the block always exists,
        // so consumers can tell "not run" from "silently dropped".
        return "{\"status\": \"SKIPPED (run tables fleetrecover)\"}".to_string();
    };
    format!(
        "{{\n    \"status\": \"{}\",\n    \"hosts\": {},\n    \"seed\": {},\n    \
         \"target\": \"{}\",\n    \"full_quiescent\": {},\n    \"full_outbreak\": {},\n    \
         \"domain_quiescent\": {},\n    \"domain_outbreak\": {},\n    \
         \"domain_rollbacks\": {},\n    \"domain_fallbacks\": {},\n    \
         \"domain_spills\": {},\n    \"i12_violations\": {},\n    \"domain_parity\": {},\n    \
         \"protected_full\": {},\n    \"protected_domain\": {},\n    \"p999_ratio\": {},\n    \
         \"digest_domain\": \"{}\",\n    \"shard_invariant\": {}\n  }}",
        b.status,
        b.hosts,
        b.seed,
        b.target,
        j_fleet_latency(&b.full_quiescent),
        j_fleet_latency(&b.full_outbreak),
        j_fleet_latency(&b.domain_quiescent),
        j_fleet_latency(&b.domain_outbreak),
        b.domain_rollbacks,
        b.domain_fallbacks,
        b.domain_spills,
        b.i12_violations,
        b.domain_parity,
        b.protected_full,
        b.protected_domain,
        jf(b.p999_ratio),
        b.digest_domain,
        b.shard_invariant,
    )
}

fn j_fail_arm(a: &FailArm) -> String {
    format!(
        "{{\"name\": \"{}\", \"infected\": {}, \"infection_ratio\": {}, \"ticks\": {}, \
         \"wall_secs\": {}, \"host_ticks_per_sec\": {}, \"flagged_sources\": {}, \
         \"suppressed_attempts\": {}, \"protected\": {}}}",
        a.name,
        a.infected,
        jf(a.infection_ratio),
        a.ticks,
        jf(a.wall_secs),
        jf(a.host_ticks_per_sec),
        a.flagged_sources,
        a.suppressed_attempts,
        a.protected,
    )
}

fn j_epidemic1m(b: &Option<Epidemic1mBlock>) -> String {
    let Some(b) = b else {
        // Same convention as the fleet skip: the block always exists,
        // so consumers can tell "not run" from "silently dropped".
        return "{\"status\": \"SKIPPED (run tables fig9fail)\"}".to_string();
    };
    let arms: Vec<String> = b
        .arms
        .iter()
        .map(|a| format!("      {}", j_fail_arm(a)))
        .collect();
    format!(
        "{{\n    \"status\": \"{}\",\n    \"hosts\": {},\n    \"seed\": {},\n    \
         \"engine\": \"{}\",\n    \"soa_parity\": {},\n    \"k_invariant\": {},\n    \
         \"parity_hosts\": {},\n    \"host_ticks_per_sec\": {},\n    \
         \"pr5_host_ticks_per_sec\": {},\n    \"speedup_vs_pr5\": {},\n    \
         \"hoist_before_ticks_per_sec\": {},\n    \"hoist_after_ticks_per_sec\": {},\n    \
         \"arms\": [\n{}\n    ]\n  }}",
        b.status,
        b.hosts,
        b.seed,
        b.engine,
        b.soa_parity,
        b.k_invariant,
        b.parity_hosts,
        jf(b.host_ticks_per_sec),
        jf(b.pr5_host_ticks_per_sec),
        jf(b.speedup_vs_pr5),
        jf(b.hoist_before_ticks_per_sec),
        jf(b.hoist_after_ticks_per_sec),
        arms.join(",\n"),
    )
}

fn j_checkpoint(b: &CheckpointBlock) -> String {
    let cells: Vec<String> = b
        .cells
        .iter()
        .map(|c| format!("      {}", j_cadence_cell(c)))
        .collect();
    format!(
        "{{\n    \"status\": \"{}\",\n    \"guest\": \"{}\",\n    \"requests\": {},\n    \
         \"incremental_200ms_overhead\": {},\n    \"full_200ms_overhead\": {},\n    \
         \"cells\": [\n{}\n    ]\n  }}",
        b.status,
        b.guest,
        b.requests,
        jf(b.incremental_200ms),
        jf(b.full_200ms),
        cells.join(",\n"),
    )
}

impl PerfReport {
    /// Serialize as pretty-printed JSON (`sweeper-bench-v9` schema; v9
    /// added the always-present `"recovery"` block — the `fleetrecover`
    /// Full-vs-Domain recovery comparison with its I12 and differential
    /// parity verdicts, or an explicit skip marker when
    /// `tables fleetrecover` has not populated it; v8
    /// added the always-present `"epidemic1m"` block — the `fig9fail`
    /// million-host containment sweep on the SoA engine with its
    /// differential-parity verdicts, or an explicit skip marker when
    /// `tables fig9fail` has not populated it; v7
    /// added the always-present `"fleet"` block — the virtual-clock
    /// reactor's outbreak-vs-quiescent latency percentiles with its
    /// shard-invariance verdict, or an explicit skip marker when
    /// `tables fleet` has not populated it; v6 added the
    /// always-present `"checkpoint"` block — the `ckptcadence`
    /// engine × interval sweep with its headline 200 ms overhead
    /// cells; v5 added the `"superblock"` tier rows, the
    /// `"vm_straight"` block, the always-present `"chaos"` block, and
    /// explicit `"status"` markers on the skippable sweeps).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .distnet
            .iter()
            .map(|c| format!("      {}", j_distnet_cell(c)))
            .collect();
        format!(
            "{{\n  \"schema\": \"sweeper-bench-v9\",\n  \"cores\": {},\n  \"vm\": {{\n    \
             \"loop_insns\": {},\n    \"uncached\": {},\n    \"cached\": {},\n    \
             \"superblock\": {},\n    \"cached_over_uncached\": {},\n    \
             \"superblock_over_cached\": {}\n  }},\n  \"vm_straight\": {{\n    \
             \"loop_insns\": {},\n    \"uncached\": {},\n    \"cached\": {},\n    \
             \"superblock\": {},\n    \"cached_over_uncached\": {},\n    \
             \"superblock_over_cached\": {}\n  }},\n  \"community\": {{\n    \"hosts\": {},\n    \
             \"seed\": {},\n    \"k1\": {},\n    \"k4\": {},\n    \"k1_over_k4\": {},\n    \
             \"outcomes_identical\": {},\n    \"speedup_status\": \"{}\"\n  }},\n  \
             \"chaos\": {},\n  \
             \"distnet\": {{\n    \"status\": \"{}\",\n    \"hosts\": {},\n    \"seed\": {},\n    \
             \"cells\": [\n{}\n    ]\n  }},\n  \
             \"checkpoint\": {},\n  \
             \"fleet\": {},\n  \
             \"epidemic1m\": {},\n  \
             \"recovery\": {},\n  \
             \"obs\": {}\n}}\n",
            self.cores,
            self.vm_loop_insns,
            j_vm(&self.vm_uncached),
            j_vm(&self.vm_cached),
            j_vm(&self.vm_superblock),
            jf(self.vm_speedup),
            jf(self.vm_sb_speedup),
            self.straight_insns,
            j_vm(&self.straight_uncached),
            j_vm(&self.straight_cached),
            j_vm(&self.straight_superblock),
            jf(self.straight_speedup),
            jf(self.straight_sb_speedup),
            self.hosts,
            self.seed,
            j_community(&self.k1),
            j_community(&self.k4),
            jf(self.community_speedup),
            self.outcomes_identical,
            self.speedup_status,
            j_chaos(&self.chaos),
            self.distnet_status,
            self.distnet_hosts,
            self.seed,
            cells.join(",\n"),
            j_checkpoint(&self.checkpoint),
            j_fleet(&self.fleet),
            j_epidemic1m(&self.epidemic1m),
            j_recovery(&self.recovery),
            self.obs.to_json(),
        )
    }

    /// Human-readable summary (what `tables benchjson` prints).
    pub fn render(&self) -> String {
        let unverified: u64 = self.distnet.iter().map(|c| c.deployed_unverified).sum();
        let fleet_line = match &self.fleet {
            Some(f) => format!(
                "\nfleet       : {} hosts, p99 {:.3} ms quiescent -> {:.3} ms outbreak, \
                 protected {}/{}, shard_invariant {} [{}]",
                f.hosts,
                f.quiescent.p99_ms,
                f.outbreak.p99_ms,
                f.protected_hosts,
                f.hosts,
                f.shard_invariant,
                f.status,
            ),
            None => "\nfleet       : SKIPPED (run tables fleet)".to_string(),
        };
        let epi_line = match &self.epidemic1m {
            Some(e) => format!(
                "\nepidemic1m  : {} hosts, {:.3e} host·ticks/s = {:.1}x PR-5 dense, \
                 soa_parity {}, k_invariant {} [{}]",
                e.hosts,
                e.host_ticks_per_sec,
                e.speedup_vs_pr5,
                e.soa_parity,
                e.k_invariant,
                e.status,
            ),
            None => "\nepidemic1m  : SKIPPED (run tables fig9fail)".to_string(),
        };
        let recovery_line = match &self.recovery {
            Some(r) => format!(
                "\nrecovery    : {} hosts, outbreak p999 {:.3} ms domain vs {:.3} ms full \
                 ({:.2}x), i12 {}, parity {}, shard_invariant {} [{}]",
                r.hosts,
                r.domain_outbreak.p999_ms,
                r.full_outbreak.p999_ms,
                r.p999_ratio,
                r.i12_violations,
                r.domain_parity,
                r.shard_invariant,
                r.status,
            ),
            None => "\nrecovery    : SKIPPED (run tables fleetrecover)".to_string(),
        };
        format!(
            "interpreter : {:>12.0} insns/s uncached | {:>12.0} icache -> {:.2}x | {:>12.0} superblock -> {:.2}x\n\
             straight    : {:>12.0} insns/s uncached | {:>12.0} icache -> {:.2}x | {:>12.0} superblock -> {:.2}x\n\
             community   : K=1 {:.3} s ({:.0} ticks/s) | K=4 {:.3} s ({:.0} ticks/s) -> {:.2}x [{}]\n\
             outcomes    : identical across K = {}\n\
             chaos       : {} cases, {} execs, {} violations [{}]\n\
             distnet     : {} fig9dist cells over {} hosts, {} unverified deployments (I8) [{}]\n\
             checkpoint  : incremental {:.4}% vs full {:.4}% @ 200 ms ({} requests) [{}]{fleet_line}{epi_line}{recovery_line}",
            self.vm_uncached.insns_per_sec,
            self.vm_cached.insns_per_sec,
            self.vm_speedup,
            self.vm_superblock.insns_per_sec,
            self.vm_sb_speedup,
            self.straight_uncached.insns_per_sec,
            self.straight_cached.insns_per_sec,
            self.straight_speedup,
            self.straight_superblock.insns_per_sec,
            self.straight_sb_speedup,
            self.k1.wall_secs,
            self.k1.ticks_per_sec,
            self.k4.wall_secs,
            self.k4.ticks_per_sec,
            self.community_speedup,
            self.speedup_status,
            self.outcomes_identical,
            self.chaos.cases,
            self.chaos.execs,
            self.chaos.violations,
            self.chaos.status,
            self.distnet.len(),
            self.distnet_hosts,
            unverified,
            self.distnet_status,
            self.checkpoint.incremental_200ms * 100.0,
            self.checkpoint.full_200ms * 100.0,
            self.checkpoint.requests,
            self.checkpoint.status,
        )
    }
}

/// Write `report` to `path`, creating or truncating the file.
pub fn write_json(path: &str, report: &PerfReport) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

/// Write a fleet-only schema-v7 document (the CI `fleet-smoke` fast
/// path): the same `"fleet"` block a full snapshot carries, without
/// re-measuring everything else.
pub fn write_fleet_json(path: &str, block: &FleetBlock) -> std::io::Result<()> {
    let b = Some(block.clone());
    std::fs::write(
        path,
        format!(
            "{{\n  \"schema\": \"sweeper-bench-v9\",\n  \"fleet\": {}\n}}\n",
            j_fleet(&b)
        ),
    )
}

/// Write an epidemic1m-only schema-v8 document (the CI `epidemic-smoke`
/// fast path): the same `"epidemic1m"` block a full snapshot carries,
/// without re-measuring everything else.
pub fn write_epidemic_json(path: &str, block: &Epidemic1mBlock) -> std::io::Result<()> {
    let b = Some(block.clone());
    std::fs::write(
        path,
        format!(
            "{{\n  \"schema\": \"sweeper-bench-v9\",\n  \"epidemic1m\": {}\n}}\n",
            j_epidemic1m(&b)
        ),
    )
}

/// Write a recovery-only schema-v9 document (the CI `recovery-smoke`
/// fast path): the same `"recovery"` block a full snapshot carries,
/// without re-measuring everything else.
pub fn write_recovery_json(path: &str, block: &RecoveryBlock) -> std::io::Result<()> {
    let b = Some(block.clone());
    std::fs::write(
        path,
        format!(
            "{{\n  \"schema\": \"sweeper-bench-v9\",\n  \"recovery\": {}\n}}\n",
            j_recovery(&b)
        ),
    )
}

/// The superblock parity smoke behind `tables sbparity`: run a benign
/// workload on all four Table 1 guests on every execution tier
/// (interpreter, icache only, icache + superblocks) and require
/// bit-identical observable state. Returns one summary line per guest;
/// panics on any divergence (CI treats the panic as the gate failing).
pub fn superblock_parity_smoke() -> Vec<String> {
    use apps::{cvs, httpd1, httpd2, squid, App};
    use svm::loader::Layout;

    fn run_tier(app: &App, inputs: &[Vec<u8>], cache: bool, sb: bool) -> (u64, u64, u32, u64) {
        let mut m = app
            .boot_at(Layout::nominal())
            .expect("boot")
            .with_decode_cache(cache)
            .with_superblocks(cache && sb);
        for i in inputs {
            m.net.push_connection(i.clone());
        }
        let status = m.run(&mut NopHook, 400_000_000);
        assert!(!matches!(status, Status::Running), "must finish");
        (
            m.insns_retired,
            m.clock.cycles(),
            m.cpu.pc,
            m.superblock_stats().dispatches,
        )
    }

    let guests: Vec<(&str, App, Vec<Vec<u8>>)> = vec![
        (
            "httpd1",
            httpd1::app().expect("app"),
            vec![httpd1::benign_request("index.html")],
        ),
        (
            "httpd2",
            httpd2::app().expect("app"),
            vec![httpd2::benign_request("ok.html", None)],
        ),
        (
            "cvs",
            cvs::app().expect("app"),
            vec![cvs::benign_session(&["x"])],
        ),
        (
            "squid",
            squid::app().expect("app"),
            vec![squid::benign_request("bob", "example.com")],
        ),
    ];
    let mut lines = Vec::new();
    for (name, app, inputs) in &guests {
        let interp = run_tier(app, inputs, false, false);
        let icache = run_tier(app, inputs, true, false);
        let full = run_tier(app, inputs, true, true);
        assert_eq!(
            (interp.0, interp.1, interp.2),
            (icache.0, icache.1, icache.2),
            "{name}: icache tier diverged"
        );
        assert_eq!(
            (interp.0, interp.1, interp.2),
            (full.0, full.1, full.2),
            "{name}: superblock tier diverged"
        );
        assert!(full.3 > 0, "{name}: superblock tier never engaged");
        lines.push(format!(
            "{name:>7}: {} insns, {} cycles, {} superblock dispatches — all tiers bit-identical",
            full.0, full.1, full.3
        ));
    }
    lines
}

/// The checkpoint parity smoke behind `tables ckptparity`: drive a
/// benign workload (with the canonical exploit injected mid-stream) on
/// all four Table 1 guests under the **differential** snapshot engine —
/// every materialization rebuilds the incremental base+delta image *and*
/// compares it page-by-page against the full-copy oracle — then
/// round-trip every retained checkpoint through materialize/rollback.
/// Returns one summary line per guest; panics on any divergence (CI
/// treats the panic as the gate failing).
pub fn ckptparity_smoke() -> Vec<String> {
    use apps::workload::{Target, Workload};
    use apps::{cvs, httpd1, httpd2, squid, App};
    use checkpoint::{mem_digest, Engine};
    use sweeper::{Config, Sweeper};

    let guests: Vec<(&str, Target, App, Vec<u8>)> = vec![
        (
            "httpd1",
            Target::Apache1,
            httpd1::app().expect("app"),
            httpd1::app()
                .map(|a| httpd1::exploit_crash(&a).input)
                .expect("exploit"),
        ),
        (
            "httpd2",
            Target::Apache2,
            httpd2::app().expect("app"),
            httpd2::app()
                .map(|a| httpd2::exploit_crash(&a).input)
                .expect("exploit"),
        ),
        (
            "cvs",
            Target::Cvs,
            cvs::app().expect("app"),
            cvs::app()
                .map(|a| cvs::exploit_crash(&a).input)
                .expect("exploit"),
        ),
        (
            "squid",
            Target::Squid,
            squid::app().expect("app"),
            squid::app()
                .map(|a| squid::exploit_crash(&a).input)
                .expect("exploit"),
        ),
    ];
    let mut lines = Vec::new();
    for (name, target, app, exploit) in guests {
        let cfg = Config::producer(7)
            .with_interval_ms(30.0)
            .with_engine(Engine::Differential);
        let mut s = Sweeper::protect(&app, cfg).expect("protect");
        let mut w = Workload::new(target, 13);
        for i in 0..24 {
            if i == 12 {
                s.offer_request(exploit.clone());
            } else {
                s.offer_request(w.next_request());
            }
        }
        assert!(s.status().healthy, "{name}: service not restored");
        // Round-trip every retained checkpoint: each materialize runs
        // the engine lockstep (incremental rebuild vs full oracle), and
        // a second rebuild must be bit-identical to the first.
        let ids: Vec<_> = s.mgr.ids().collect();
        assert!(!ids.is_empty(), "{name}: no retained checkpoints");
        for id in &ids {
            let a = s.mgr.materialize(*id).expect("materialize");
            let b = s.mgr.rollback(*id).expect("rollback");
            assert_eq!(
                (mem_digest(&a.mem), a.cpu.pc, a.insns_retired),
                (mem_digest(&b.mem), b.cpu.pc, b.insns_retired),
                "{name}: rollback round-trip diverged at {id:?}"
            );
        }
        assert_eq!(
            s.mgr.parity_mismatches(),
            0,
            "{name}: incremental image diverged from the full-copy oracle"
        );
        assert_eq!(
            s.mgr.materialize_failures(),
            0,
            "{name}: undamaged chain failed to materialize"
        );
        lines.push(format!(
            "{name:>7}: {} checkpoints round-tripped, {} store pages, 0 parity mismatches — incremental ≡ full",
            ids.len(),
            s.mgr.store_pages(),
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_rate_counts_cache_activity() {
        let off = vm_rate(false, false, 500, 1);
        let on = vm_rate(true, false, 500, 1);
        let sb = vm_rate(true, true, 500, 1);
        assert_eq!(off.insns, on.insns, "same program, same retire count");
        assert_eq!(off.insns, sb.insns, "superblock tier retires identically");
        assert_eq!(off.stats, CacheStats::default(), "disabled cache is inert");
        assert!(on.stats.hits > 0, "enabled cache serves hits");
        assert_eq!(on.sb_stats, SbStats::default(), "sb off leaves tier inert");
        // The tight loop's 2-insn body is below the minimum fusion
        // length: the tier probes and caches it but hands it back to
        // the icache, so branch-dense code never pays block-dispatch
        // overhead (the pre-threshold tier ran it 0.82x of icache).
        // Only the one-shot boot prologue (movi + fall-through body)
        // is long enough to fuse, hence at most one dispatch.
        assert!(sb.sb_stats.dispatches <= 1, "short blocks stay on icache");
        assert!(sb.sb_stats.bypasses > 0, "probed and cached as bypasses");
        let (straight, _) = vm_rate_src(&straight_src(40), true, true, 1);
        assert!(
            straight.sb_stats.dispatches > 0,
            "straight-line guest dispatches fused blocks"
        );
        assert!(on.insns_per_sec > 0.0 && off.insns_per_sec > 0.0);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let r = measure(400, 7, 300);
        assert!(r.outcomes_identical, "K must not change the outcome");
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"schema\": \"sweeper-bench-v9\""));
        assert!(
            json.contains("\"recovery\": {\"status\": \"SKIPPED (run tables fleetrecover)\"}"),
            "the quick pass marks the recovery block skipped, never drops it"
        );
        assert!(json.contains("\"cached_over_uncached\""));
        assert!(json.contains("\"superblock_over_cached\""));
        assert!(json.contains("\"vm_straight\""));
        assert!(json.contains("\"speedup_status\""));
        // All three tiers retired the same instruction stream.
        assert_eq!(r.vm_uncached.insns, r.vm_superblock.insns);
        assert_eq!(r.straight_uncached.insns, r.straight_superblock.insns);
        assert!(
            r.straight_superblock.sb_stats.insns > 0,
            "superblock tier executed the straight-line guest"
        );
        // The distnet block is present and populated.
        assert!(json.contains("\"distnet\""));
        assert!(json.contains("\"deployed_unverified\""));
        assert_eq!(r.distnet.len(), 8, "4 loss x 2 byzantine cells");
        // The checkpoint block is present and carries the full sweep:
        // 2 engines x 4 intervals, with the headline 200 ms cells.
        assert!(json.contains("\"checkpoint\": {"));
        assert!(json.contains("\"incremental_200ms_overhead\""));
        assert_eq!(r.checkpoint.cells.len(), 8, "2 engines x 4 intervals");
        assert!(
            r.checkpoint.incremental_200ms < 0.01,
            "PR-7 gate: incremental engine must stay under 1% at 200 ms, got {:.4}",
            r.checkpoint.incremental_200ms
        );
        // The quick pass is too short for periodic 200 ms checkpoints
        // (both engines read 0 there), so the engine comparison gates on
        // the 20 ms cells, which take several checkpoints even here.
        let inc_20 = CheckpointBlock::cell_overhead(&r.checkpoint.cells, "incremental", 20.0);
        let full_20 = CheckpointBlock::cell_overhead(&r.checkpoint.cells, "full", 20.0);
        assert!(
            inc_20 < full_20,
            "incremental must beat the full copy at the same cadence: {inc_20:.4} vs {full_20:.4}"
        );
        assert!(
            r.checkpoint.incremental_200ms <= r.checkpoint.full_200ms,
            "incremental never costs more than full at 200 ms"
        );
        // The obs block carries both VM and community counters.
        assert!(json.contains("\"obs\": {\"counters\""));
        assert!(r.obs.counter("svm.insns_retired") > 0);
        assert!(r.obs.counter("epidemic.infected") > 0);
        // Non-finite floats must serialize as `null`, never bare tokens.
        assert!(!json.contains("NaN") && !json.contains(": inf"));
    }

    #[test]
    fn skipped_sweeps_still_emit_their_blocks() {
        // Regression: the v4 writer dropped the chaos block entirely
        // when the sweep was skipped on a 1-core container, so JSON
        // consumers could not tell "clean" from "never ran". Force the
        // 1-core path and require the block with its explicit marker.
        let r = measure_with_cores(400, 7, 300, 1);
        assert_eq!(r.chaos.status, "SKIPPED (1 core)");
        assert_eq!((r.chaos.cases, r.chaos.execs), (0, 0));
        let json = r.to_json();
        assert!(
            json.contains("\"chaos\": {\"status\": \"SKIPPED (1 core)\""),
            "chaos block must survive the skip with an explicit marker"
        );
        assert!(
            json.contains("\"distnet\": {\n    \"status\": \"ok\""),
            "distnet block carries an explicit status too"
        );
        assert!(
            json.contains("\"checkpoint\": {\n    \"status\": \"ok\""),
            "checkpoint block is never skipped (virtual time)"
        );
        assert!(
            json.contains("\"fleet\": {\"status\": \"SKIPPED (run tables fleet)\"}"),
            "the quick pass marks the fleet block skipped, never drops it"
        );
        assert!(
            json.contains("\"epidemic1m\": {\"status\": \"SKIPPED (run tables fig9fail)\"}"),
            "the quick pass marks the epidemic1m block skipped, never drops it"
        );
        assert!(
            json.contains("\"recovery\": {\"status\": \"SKIPPED (run tables fleetrecover)\"}"),
            "the quick pass marks the recovery block skipped, never drops it"
        );
        assert_eq!(r.speedup_status, "SKIPPED (1 core)");
    }

    #[test]
    fn epidemic_block_reports_parity_and_the_containment_ordering() {
        let b = epidemic1m_block(4_000, 21);
        assert_eq!(b.status, "ok");
        assert!(b.soa_parity, "I11 must hold in the committed block");
        assert!(b.k_invariant, "K must not change the parity-gate outcome");
        assert_eq!(b.parity_hosts, 4_000, "gate runs at min(hosts, 20k)");
        let arm = |name: &str| {
            b.arms
                .iter()
                .find(|a| a.name == name)
                .unwrap_or_else(|| panic!("missing arm {name}"))
        };
        // No defense saturates; the estimator flags and suppresses; the
        // antibody arms actually distribute protection.
        assert_eq!(arm("none").infected, 4_000, "undefended worm saturates");
        assert!(arm("failest").flagged_sources > 0, "estimator engaged");
        assert!(arm("failest").suppressed_attempts > 0);
        assert!(arm("antibody").protected > 0, "antibody arm protects");
        assert!(
            arm("antibody").infected < arm("none").infected,
            "antibody distribution must beat no defense"
        );
        assert!(
            arm("both").infected < arm("none").infected,
            "combined defenses must beat no defense"
        );
        // Headline fields are wired to the antibody arm and the PR-5
        // baseline constant.
        assert_eq!(b.host_ticks_per_sec, arm("antibody").host_ticks_per_sec);
        assert!(b.speedup_vs_pr5 > 0.0 && b.speedup_vs_pr5.is_finite());
        assert!(b.hoist_after_ticks_per_sec > 0.0);
        // The JSON cell round-trips without bare non-finite tokens.
        let json = j_epidemic1m(&Some(b));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"soa_parity\": true"));
        assert!(json.contains("\"k_invariant\": true"));
        assert!(!json.contains("NaN") && !json.contains(": inf"));
    }

    #[test]
    fn fleet_block_reports_latency_and_shard_invariance() {
        let cfg = fleet::FleetConfig::smoke(5, 9);
        let b = fleet_block(&cfg, 3).expect("fleet runs");
        assert_eq!(b.status, "ok");
        assert!(b.shard_invariant, "1 vs 3 shards must digest-match");
        assert!(b.quiescent.samples > 0);
        assert!(b.quiescent.p99_ms.is_finite() && b.quiescent.p99_ms > 0.0);
        assert!(b.attacks > 0, "smoke outbreak lands: {b:?}");
        // Same seed, same block — including through the JSON encoding.
        let again = fleet_block(&cfg, 3).expect("fleet runs");
        let (a, b2) = (Some(b), Some(again));
        assert_eq!(j_fleet(&a), j_fleet(&b2), "fleet block is bit-stable");
        let json = j_fleet(&a);
        assert!(json.contains("\"shard_invariant\": true"));
        // An empty window serializes its percentiles as null; a
        // populated one never does.
        let quiescent_cell = j_fleet_latency(&a.as_ref().expect("block").quiescent);
        assert!(!quiescent_cell.contains("null"), "{quiescent_cell}");
    }

    #[test]
    fn recovery_block_holds_i12_and_parity_at_smoke_scale() {
        let cfg = fleet::FleetConfig::smoke(5, 9);
        let b = recovery_block(&cfg, 3).expect("fleet runs");
        assert_eq!(b.status, "ok");
        assert!(b.shard_invariant, "Domain digest must be shard-invariant");
        assert_eq!(b.i12_violations, 0, "benign domains stay undisturbed");
        assert!(
            b.domain_parity,
            "differential legs must check and match: {b:?}"
        );
        assert_eq!(b.protected_full, b.protected_domain, "same protection");
        assert!(b.domain_rollbacks > 0, "Domain mode actually ran: {b:?}");
        // Same seed, same block — including through the JSON encoding.
        let again = recovery_block(&cfg, 3).expect("fleet runs");
        let (a, b2) = (Some(b), Some(again));
        assert_eq!(
            j_recovery(&a),
            j_recovery(&b2),
            "recovery block is bit-stable"
        );
        let json = j_recovery(&a);
        assert!(json.contains("\"domain_parity\": true"));
        assert!(!json.contains("NaN") && !json.contains(": inf"));
    }

    #[test]
    fn multi_core_path_runs_the_chaos_sweep() {
        let c = super::chaos_sweep(3, 2);
        assert_eq!(c.status, "ok");
        assert!(c.cases == 2 && c.execs > 0, "sweep actually ran");
        assert_eq!(c.violations, 0, "quick sweep must be clean");
    }

    #[test]
    fn distnet_sweep_contains_and_never_deploys_unverified() {
        let cells = distnet_sweep(600, 11);
        assert_eq!(cells.len(), 8);
        for c in &cells {
            // I8 holds in every cell of the committed figure.
            assert_eq!(
                c.deployed_unverified, 0,
                "loss={} byz={}: unverified deployment",
                c.loss, c.byzantine
            );
            assert!(c.infected <= 600);
        }
        // The zero-fault cell completes protection; lossier wires never
        // contain *better* than the perfect wire.
        let ideal = &cells[0];
        assert_eq!(ideal.loss, 0.0);
        assert_eq!(ideal.byzantine, 0.0);
        assert!(ideal.gamma_effective.is_some(), "ideal wire protects all");
        for c in &cells[1..4] {
            assert!(
                c.infected >= ideal.infected,
                "loss={} contained better than the perfect wire",
                c.loss
            );
        }
        // Byzantine cells actually exercise verify-before-deploy.
        let byz_rejected: u64 = cells
            .iter()
            .filter(|c| c.byzantine > 0.0)
            .map(|c| c.rejected)
            .sum();
        assert!(byz_rejected > 0, "no Byzantine bundle was ever rejected");
    }
}
