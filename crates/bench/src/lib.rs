//! # bench — experiment harnesses for every table and figure
//!
//! Shared drivers ([`driver`]) and per-experiment harnesses
//! ([`experiments`]) used by both the `tables` binary (which prints each
//! paper table/figure) and the Criterion benchmarks under `benches/`.

pub mod ablation;
pub mod community_sim;
pub mod driver;
pub mod experiments;
pub mod perf;

pub use ablation::{defense_matrix, empirical_rho, nx_ablation, CampaignOutcome, Defense};
pub use community_sim::{
    model_campaign, run_campaign, CampaignConfig, CampaignResult, HostOutcome,
};
pub use driver::{
    attack_timeline, cadence_sweep, checkpoint_overhead, checkpoint_overhead_with_engine,
    run_protected, CadenceCell, ThroughputRun,
};
pub use experiments::{end_to_end_gamma, obs_snapshot, table1, table2, table3, vsef_overhead};
pub use perf::{measure, PerfReport};
