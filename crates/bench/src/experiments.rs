//! The per-table/figure experiment harnesses (Tables 1-3, §5.3 numbers).

use apps::{all_apps, cvs, httpd1, httpd2, squid, App};
use sweeper::{Config, RequestOutcome, Sweeper};

/// Render Table 1 (the exploit inventory).
pub fn table1() -> String {
    let mut out = String::from(
        "Table 1: List of tested exploits\n\
         Name      Program (stands for)                  CVE             Bug Type              Threat\n",
    );
    for app in all_apps().expect("apps") {
        out.push_str(&format!(
            "{:<9} {:<37} {:<15} {:<21} {}\n",
            app.name,
            app.stands_for,
            app.cve,
            app.bug.to_string(),
            app.threat
        ));
    }
    out
}

/// Run one app's canonical crash exploit through a full Sweeper producer;
/// returns the protected instance and the attack report.
pub fn attack_run(app: &App, exploit: Vec<u8>, seed: u64) -> (Sweeper, sweeper::AttackReport) {
    let mut s = Sweeper::protect(app, Config::producer(seed)).expect("protect");
    // A little benign context before the attack, like the paper's setup.
    let benign: Vec<Vec<u8>> = match app.name {
        "Apache1" => (0..3)
            .map(|i| httpd1::benign_request(&format!("p{i}.html")))
            .collect(),
        "Apache2" => (0..3)
            .map(|i| httpd2::benign_request(&format!("q{i}"), None))
            .collect(),
        "CVS" => (0..2)
            .map(|i| cvs::benign_session(&[&format!("m{i}")]))
            .collect(),
        _ => (0..3)
            .map(|i| squid::benign_request(&format!("u{i}"), "host"))
            .collect(),
    };
    for b in benign {
        s.offer_request(b);
    }
    let out = s.offer_request(exploit);
    let RequestOutcome::Attack(report) = out else {
        panic!("{}: exploit did not register as attack: {out:?}", app.name)
    };
    (s, *report)
}

/// Render Table 2 (per-exploit functionality results).
pub fn table2() -> String {
    let mut out = String::from("Table 2: Overall Sweeper results\n\n");
    for (app, exploit) in apps::all_crash_exploits().expect("exploits") {
        let (s, report) = attack_run(&app, exploit.input, 0x7ab1e2);
        out.push_str(&sweeper::report::table2_block(
            app.name,
            &report,
            &s.machine.symbols,
        ));
        out.push('\n');
    }
    out
}

/// Render Table 3 (analysis times) for all four exploits.
pub fn table3() -> String {
    let mut out = String::from(
        "Table 3: Sweeper failure analysis time (virtual time; see EXPERIMENTS.md for the\n\
         scale argument — guest servers are ~1000x smaller than the paper's binaries)\n\n",
    );
    for (app, exploit) in apps::all_crash_exploits().expect("exploits") {
        let (_s, report) = attack_run(&app, exploit.input, 0x7ab1e3);
        if let Some(a) = &report.analysis {
            out.push_str(&sweeper::report::table3_row(app.name, a));
            out.push('\n');
        }
    }
    out
}

/// §5.3 "Vulnerability Monitoring": throughput with a deployed VSEF
/// versus without, on benign Squid traffic. Returns `(base_mbps,
/// vsef_mbps, overhead_fraction, vsef_sites)`.
pub fn vsef_overhead(n: usize) -> (f64, f64, f64, usize) {
    use apps::workload::Target;
    let app = squid::app().expect("app");
    let base = crate::driver::run_protected(
        &app,
        Config {
            checkpoint_interval: u64::MAX,
            ..Config::producer(21)
        },
        Target::Squid,
        7,
        n,
    );
    // Produce the antibody once, then deploy it on a fresh instance.
    let (_s, report) = attack_run(&app, squid::exploit_crash(&app).input, 0x5ca1e);
    let antibody = report.analysis.expect("analysis").antibody;
    let sites: usize = antibody.vsefs().iter().map(|v| v.site_count()).sum();
    let mut protected = Sweeper::protect(
        &app,
        Config {
            checkpoint_interval: u64::MAX,
            ..Config::producer(21)
        },
    )
    .expect("protect");
    protected.deploy_antibody(&antibody);
    let mut w = apps::workload::Workload::new(Target::Squid, 7);
    let start = protected.timeline.now();
    let mut bytes = 0usize;
    let mut served = 0usize;
    for _ in 0..n {
        let req = w.next_request();
        let l = req.len();
        if let RequestOutcome::Served { bytes: b, .. } = protected.offer_request(req) {
            bytes += b + l;
            served += 1;
        }
    }
    assert_eq!(served, n, "VSEF must not false-positive on benign traffic");
    let secs = svm::clock::cycles_to_secs(protected.timeline.now() - start);
    let vsef_mbps = bytes as f64 * 8.0 / 1e6 / secs;
    let overhead = (secs - base.secs) / base.secs;
    (base.mbps(), vsef_mbps, overhead, sites)
}

/// One end-to-end observability snapshot, for `tables obs[json]`: run
/// the canonical Squid exploit through a full producer and export the
/// merged metrics (VM, checkpoint ring, proxy, VSEF instrumentation,
/// pipeline phase spans, recovery counters).
pub fn obs_snapshot() -> obs::MetricsRegistry {
    let app = squid::app().expect("app");
    let (s, _report) = attack_run(&app, squid::exploit_crash(&app).input, 0x0b5);
    s.export_metrics()
}

/// §6.3 end-to-end γ: measured first-VSEF time (γ₁) plus the paper's
/// Vigilante-based dissemination estimate (γ₂ = 3 s), and the resulting
/// hit-list infection ratios.
pub fn end_to_end_gamma() -> String {
    let app = squid::app().expect("app");
    let (_s, report) = attack_run(&app, squid::exploit_crash(&app).input, 0xe2e);
    let a = report.analysis.expect("analysis");
    let gamma1 = a.timings.initial_ms / 1e3;
    let gamma2 = 3.0; // Vigilante's measured initial dissemination time.
    let gamma = gamma1 + gamma2;
    let mut out = format!(
        "End-to-end response time (paper §6.3):\n  gamma1 (detect+analyze+VSEF+input) = {gamma1:.3} s (measured)\n  gamma2 (dissemination, Vigilante)   = {gamma2:.1} s (literature)\n  gamma = {gamma:.2} s\n\nResulting hit-list infection ratios (alpha = 0.0001, rho = 2^-12):\n",
    );
    for beta in [1000.0, 4000.0] {
        let r = epidemic::solve(&epidemic::Scenario::hitlist(beta, 0.0001, gamma));
        out.push_str(&format!("  beta = {beta:>6}: {:.4}\n", r.infection_ratio));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_four() {
        let t = table1();
        for name in ["Apache1", "Apache2", "CVS", "Squid"] {
            assert!(t.contains(name), "{name} missing");
        }
        for cve in [
            "CVE-2003-0542",
            "CVE-2003-1054",
            "CVE-2003-0015",
            "CVE-2002-0068",
        ] {
            assert!(t.contains(cve));
        }
    }

    #[test]
    fn table2_reproduces_key_rows() {
        let t = table2();
        // Apache1: stack smash found by membug, input found.
        assert!(t.contains("Apache1"), "{t}");
        assert!(t.contains("StackSmash"), "{t}");
        // Apache2: NULL pointer, no memory bug.
        assert!(t.contains("no memory bug detected"), "{t}");
        // CVS: double free attributed to dirswitch's free.
        assert!(t.contains("DoubleFree"), "{t}");
        assert!(t.contains("dirswitch") || t.contains("free"), "{t}");
        // Squid: heap overflow in strcat called by ftp_build_title_url.
        assert!(t.contains("HeapOverflow"), "{t}");
        assert!(t.contains("strcat"), "{t}");
        assert!(t.contains("ftp_build_title_url"), "{t}");
        // Every exploit recovered by rollback-replay or restart.
        assert_eq!(t.matches("recovery").count(), 4, "{t}");
    }

    #[test]
    fn table3_orders_step_costs_like_the_paper() {
        for (app, exploit) in apps::all_crash_exploits().expect("exploits") {
            let (_s, report) = attack_run(&app, exploit.input, 0x123);
            let a = report.analysis.expect("analysis");
            let t = &a.timings;
            // First VSEF is available within tens of ms.
            assert!(
                t.first_vsef_ms > 0.0 && t.first_vsef_ms < 100.0,
                "{}: first VSEF at {:.1} ms",
                app.name,
                t.first_vsef_ms
            );
            // Slicing is the most expensive dynamic step.
            assert!(
                t.slicing_ms >= t.memory_bug_ms,
                "{}: slicing {:.2} ms < membug {:.2} ms",
                app.name,
                t.slicing_ms,
                t.memory_bug_ms
            );
            // Cumulative ordering.
            assert!(t.first_vsef_ms <= t.best_vsef_ms + 1e-9);
            assert!(t.best_vsef_ms <= t.initial_ms + 1e-9);
            assert!(t.initial_ms <= t.total_ms + 1e-9);
        }
    }

    #[test]
    fn vsef_overhead_is_under_a_few_percent() {
        let (base, vsef, overhead, sites) = vsef_overhead(150);
        assert!(base > 0.0 && vsef > 0.0);
        assert!(sites >= 1);
        // Paper: 0.93% throughput drop. Shape: small, single-digit %.
        assert!(overhead < 0.05, "VSEF overhead too high: {overhead:.4}");
        assert!(
            overhead > -0.01,
            "negative overhead is nonsense: {overhead:.4}"
        );
    }
}
