//! Throughput drivers for the overhead experiments (Figures 4/5, §5.3).
//!
//! All measurements are in *virtual* time: the VM charges every guest
//! instruction, syscall, network RTT, checkpoint, and instrumentation
//! event to its deterministic clock, so throughput numbers are exactly
//! reproducible.

use apps::workload::{Target, Workload};
use apps::App;
use checkpoint::Engine;
use svm::clock::cycles_to_secs;
use sweeper::{Config, RequestOutcome, Sweeper};

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputRun {
    /// Requests offered.
    pub offered: usize,
    /// Requests served.
    pub served: usize,
    /// Virtual seconds elapsed.
    pub secs: f64,
    /// Application payload bytes moved (requests + responses).
    pub bytes: usize,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

impl ThroughputRun {
    /// Requests per virtual second.
    pub fn rps(&self) -> f64 {
        self.served as f64 / self.secs
    }

    /// Payload megabits per virtual second (the paper's Figure 4 unit).
    pub fn mbps(&self) -> f64 {
        (self.bytes as f64 * 8.0 / 1e6) / self.secs
    }
}

/// Drive `n` benign requests through a Sweeper-protected server.
pub fn run_protected(
    app: &App,
    config: Config,
    target: Target,
    seed: u64,
    n: usize,
) -> ThroughputRun {
    let mut s = Sweeper::protect(app, config).expect("protect");
    let mut w = Workload::new(target, seed);
    let start = s.timeline.now();
    let mut served = 0usize;
    let mut bytes = 0usize;
    for _ in 0..n {
        let req = w.next_request();
        let req_len = req.len();
        match s.offer_request(req) {
            RequestOutcome::Served { bytes: b, .. } => {
                served += 1;
                bytes += b + req_len;
            }
            RequestOutcome::Filtered { .. } | RequestOutcome::Attack(_) => {}
        }
    }
    let secs = cycles_to_secs(s.timeline.now() - start);
    ThroughputRun {
        offered: n,
        served,
        secs,
        bytes,
        checkpoints: s.mgr.taken_total,
    }
}

/// Figure 4 cell: fractional throughput overhead of checkpointing at the
/// given interval versus the same system with checkpointing disabled.
///
/// Pinned to the legacy full-copy engine: Figure 4 reproduces the
/// paper's whole-image snapshot cost curve, which is the calibration
/// the incremental engine is measured *against* (see
/// [`cadence_sweep`]).
pub fn checkpoint_overhead(app: &App, target: Target, interval_ms: f64, n: usize) -> f64 {
    checkpoint_overhead_with_engine(app, target, Engine::Full, interval_ms, n)
}

/// [`checkpoint_overhead`] with the snapshot engine chosen explicitly.
/// Virtual-time arithmetic, so the result is exactly reproducible and
/// never negative: the checkpointed run differs from the baseline only
/// by the checkpoint costs charged to the clock.
pub fn checkpoint_overhead_with_engine(
    app: &App,
    target: Target,
    engine: Engine,
    interval_ms: f64,
    n: usize,
) -> f64 {
    let base_cfg = Config {
        checkpoint_interval: u64::MAX,
        ..Config::producer(11)
    }
    .with_engine(engine);
    let base = run_protected(app, base_cfg, target, 99, n);
    let cfg = Config::producer(11)
        .with_interval_ms(interval_ms)
        .with_engine(engine);
    let ck = run_protected(app, cfg, target, 99, n);
    (ck.secs - base.secs) / base.secs
}

/// One cell of the `ckptcadence` sweep: service-path overhead of one
/// snapshot engine at one production cadence.
#[derive(Debug, Clone)]
pub struct CadenceCell {
    /// Engine name (`"full"` or `"incremental"`).
    pub engine: &'static str,
    /// Checkpoint interval in virtual milliseconds.
    pub interval_ms: f64,
    /// Fractional throughput overhead vs the no-checkpoint baseline.
    pub overhead: f64,
    /// Checkpoints taken during the measured run.
    pub checkpoints: u64,
}

/// The `ckptcadence` sweep: overhead of the full-copy and incremental
/// engines across production cadences down to the paper's 200 ms
/// default. The incremental engine's 200 ms cell is the PR-7 headline
/// gate (< 1% service-path overhead).
pub fn cadence_sweep(app: &App, target: Target, n: usize) -> Vec<CadenceCell> {
    let mut cells = Vec::new();
    for engine in [Engine::Full, Engine::Incremental] {
        let base_cfg = Config {
            checkpoint_interval: u64::MAX,
            ..Config::producer(11)
        }
        .with_engine(engine);
        let base = run_protected(app, base_cfg, target, 99, n);
        for interval_ms in [20.0, 50.0, 100.0, 200.0] {
            let cfg = Config::producer(11)
                .with_interval_ms(interval_ms)
                .with_engine(engine);
            let ck = run_protected(app, cfg, target, 99, n);
            cells.push(CadenceCell {
                engine: engine.name(),
                interval_ms,
                overhead: (ck.secs - base.secs) / base.secs,
                checkpoints: ck.checkpoints,
            });
        }
    }
    cells
}

/// A Figure 5-style timeline: per-bin served request counts and bytes,
/// with an exploit injected at `attack_at` requests.
#[derive(Debug, Clone)]
pub struct AttackTimeline {
    /// Bin width in virtual seconds.
    pub bin_secs: f64,
    /// Megabits served per bin.
    pub mbps: Vec<f64>,
    /// Virtual second at which the attack arrived.
    pub attack_secs: f64,
    /// Virtual seconds of service pause (analysis + recovery).
    pub pause_secs: f64,
    /// Recovery method used.
    pub method: &'static str,
}

/// Run the Figure 5 experiment: benign load, one attack, continued load.
pub fn attack_timeline(
    app: &App,
    config: Config,
    target: Target,
    exploit: Vec<u8>,
    before: usize,
    after: usize,
    bin_secs: f64,
) -> AttackTimeline {
    let mut s = Sweeper::protect(app, config).expect("protect");
    let mut w = Workload::new(target, 5);
    let mut events: Vec<(f64, usize)> = Vec::new(); // (time, bytes served)
    let mut pause_secs = 0.0;
    let mut method: &'static str = "none";
    let serve = |s: &mut Sweeper, req: Vec<u8>, events: &mut Vec<(f64, usize)>| {
        let len = req.len();
        if let RequestOutcome::Served { bytes, .. } = s.offer_request(req) {
            events.push((s.timeline.now_secs(), bytes + len));
        }
    };
    for _ in 0..before {
        serve(&mut s, w.next_request(), &mut events);
    }
    let attack_secs = s.timeline.now_secs();
    if let RequestOutcome::Attack(rep) = s.offer_request(exploit) {
        pause_secs = rep.pause_ms / 1e3;
        method = rep.recovery_method;
    }
    for _ in 0..after {
        serve(&mut s, w.next_request(), &mut events);
    }
    let end = s.timeline.now_secs();
    let bins = (end / bin_secs).ceil() as usize + 1;
    let mut mbps = vec![0.0; bins];
    for (t, b) in events {
        let idx = (t / bin_secs) as usize;
        if idx < bins {
            mbps[idx] += b as f64 * 8.0 / 1e6 / bin_secs;
        }
    }
    AttackTimeline {
        bin_secs,
        mbps,
        attack_secs,
        pause_secs,
        method,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::squid;

    #[test]
    fn protected_run_serves_everything() {
        let app = squid::app().expect("app");
        let r = run_protected(&app, Config::producer(3), Target::Squid, 1, 50);
        assert_eq!(r.served, 50);
        assert!(r.secs > 0.0);
        assert!(r.rps() > 0.0);
        assert!(r.checkpoints >= 1);
    }

    #[test]
    fn checkpoint_overhead_is_positive_and_decreases_with_interval() {
        let app = squid::app().expect("app");
        let fast = checkpoint_overhead(&app, Target::Squid, 20.0, 300);
        let slow = checkpoint_overhead(&app, Target::Squid, 200.0, 300);
        assert!(
            fast > slow,
            "more frequent checkpoints cost more: {fast:.4} vs {slow:.4}"
        );
        assert!(slow >= 0.0);
        assert!(
            fast < 0.25,
            "even 20 ms interval stays lightweight: {fast:.4}"
        );
    }

    #[test]
    fn attack_timeline_shows_dip_and_recovery() {
        let app = squid::app().expect("app");
        let tl = attack_timeline(
            &app,
            Config::producer(8),
            Target::Squid,
            squid::exploit_crash(&app).input,
            200,
            200,
            0.05,
        );
        // Domain recovery is the default: the attacked connection's
        // domain rolls back alone, so the method is "domain-rollback"
        // (a fail-closed fallback would report "rollback-replay").
        assert_eq!(tl.method, "domain-rollback");
        assert!(tl.pause_secs > 0.0);
        // Service resumed: the last bins carry traffic again.
        let tail: f64 = tl.mbps.iter().rev().take(3).sum();
        assert!(tail > 0.0, "service resumed after the attack");
    }
}
