//! Regenerate every table and figure of the paper's evaluation.
//!
//! Usage: `tables [table1|table2|table3|fig4|fig5|fig6|fig7|fig8|vsef|endtoend|ablation|rho|nx|community|vigilante|all]`

use apps::{squid, workload::Target};
use bench::{
    attack_timeline, checkpoint_overhead, end_to_end_gamma, table1, table2, table3, vsef_overhead,
};
use sweeper::Config;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "table1" {
        println!("{}", table1());
    }
    if all || which == "table2" {
        println!("{}", table2());
    }
    if all || which == "table3" {
        println!("{}", table3());
    }
    if all || which == "fig4" {
        fig4();
    }
    if all || which == "fig5" {
        fig5();
    }
    if all || which == "fig6" {
        println!("{}", epidemic::figure6().render());
    }
    if all || which == "fig7" {
        println!("{}", epidemic::figure7().render());
    }
    if all || which == "fig8" {
        println!("{}", epidemic::figure8().render());
    }
    if all || which == "vsef" {
        let (base, vsef, overhead, sites) = vsef_overhead(200);
        println!(
            "VSEF overhead (section 5.3, Squid): baseline {base:.2} Mbps vs VSEF {vsef:.2} Mbps -> {:.2}% drop ({sites} instrumented sites)\n",
            overhead * 100.0
        );
    }
    if all || which == "endtoend" {
        println!("{}", end_to_end_gamma());
    }
    if all || which == "ablation" {
        println!("{}", bench::defense_matrix(6));
    }
    if all || which == "rho" {
        let trials = 2000;
        let (hits, rate) = bench::empirical_rho(trials, 0xabcde);
        println!(
            "Empirical ASLR bypass probability: {hits}/{trials} compromises (rate {rate:.5}; model rho = 2^-12 = {:.5})\n",
            (2.0f64).powi(-12)
        );
    }
    if all || which == "community" {
        println!("Community defense over real Sweeper hosts (CVS unlink worm, hit-list order):");
        for (producer_every, dissemination) in [(4usize, 2usize), (10, 3), (10, 6)] {
            let cfg = bench::CampaignConfig {
                hosts: 12,
                producer_every,
                dissemination_attempts: dissemination,
                consumers_unrandomized: true,
                seed: 0xc0117,
            };
            let r = bench::run_campaign(cfg);
            println!("  {}", bench::community_sim::render(cfg, &r));
        }
        println!();
    }
    if all || which == "vigilante" {
        let (cpu_mult, always_on, sweeper) = bench::ablation::vigilante_comparison(120);
        println!("Vigilante-style baseline (always-on taint) vs Sweeper:");
        println!("  CPU-bound taint multiplier      : {cpu_mult:.1}x (paper band: 30-40x)");
        println!(
            "  always-on taint server overhead : {:.2}%",
            always_on * 100.0
        );
        println!(
            "  Sweeper default server overhead : {:.2}%\n",
            sweeper * 100.0
        );
    }
    if all || which == "nx" {
        let (compromised, detected) = bench::nx_ablation();
        println!(
            "NX ablation (perfect layout guess): compromised = {compromised}, detected = {detected}\n"
        );
    }
}

fn fig4() {
    println!("Figure 4: throughput overhead vs checkpoint interval (Squid, benign load)");
    println!("{:>12} {:>12}", "interval", "overhead");
    let app = squid::app().expect("app");
    for ms in [
        20.0, 30.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0, 180.0, 200.0,
    ] {
        let o = checkpoint_overhead(&app, Target::Squid, ms, 6000);
        println!("{:>10} ms {:>11.3}%", ms, o * 100.0);
    }
    println!();
}

fn fig5() {
    println!("Figure 5: throughput during a single attack against Squid");
    let app = squid::app().expect("app");
    let tl = attack_timeline(
        &app,
        Config::producer(17),
        Target::Squid,
        squid::exploit_crash(&app).input,
        400,
        400,
        0.02,
    );
    println!(
        "attack at {:.3}s; recovery: {} ({:.3}s pause)",
        tl.attack_secs, tl.method, tl.pause_secs
    );
    let peak = tl.mbps.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    for (i, m) in tl.mbps.iter().enumerate() {
        let t = i as f64 * tl.bin_secs;
        let bar = "#".repeat(((m / peak) * 50.0) as usize);
        println!("{t:>7.2}s |{bar:<50}| {m:>8.2} Mbps");
    }
    println!();
}
