//! Differential suite for the observability layer: the Table 3 analysis
//! latencies must be derivable three independent ways — the inline
//! accounting in `analyze_attack` (what `report.timings` carries), the
//! `pipeline.*` spans recorded in the metrics registry, and the raw
//! event log — and all three must agree *exactly* (same f64 bits; every
//! path runs the same `cycles_to_secs` arithmetic over the same virtual
//! stamps) on every guest.

use bench::experiments::attack_run;
use sweeper::{timings_from_timeline, StepTimings};

#[test]
fn table3_from_spans_matches_inline_and_timeline_on_all_guests() {
    for (app, exploit) in apps::all_crash_exploits().expect("exploits") {
        let (s, report) = attack_run(&app, exploit.input, 0xd1ff);
        let analysis = report.analysis.as_ref().expect("producer analyzed");
        let inline = &analysis.timings;

        let from_spans = StepTimings::from_spans(&s.obs).expect("pipeline spans recorded");
        assert_eq!(&from_spans, inline, "{}: spans vs inline", app.name);

        let from_log = timings_from_timeline(&s.timeline).expect("event log re-derivation");
        assert_eq!(&from_log, inline, "{}: event log vs inline", app.name);

        // Sanity: span-derived values obey the paper's cumulative order.
        assert!(from_spans.first_vsef_ms <= from_spans.best_vsef_ms + 1e-12);
        assert!(from_spans.best_vsef_ms <= from_spans.initial_ms + 1e-12);
        assert!(from_spans.initial_ms <= from_spans.total_ms + 1e-12);
    }
}

#[test]
fn export_metrics_snapshot_is_idempotent_and_carries_spans() {
    let app = apps::squid::app().expect("app");
    let (s, _report) = attack_run(&app, apps::squid::exploit_crash(&app).input, 0x1de);
    let a = s.export_metrics();
    let b = s.export_metrics();
    assert_eq!(a, b, "snapshotting twice must not change any counter");
    assert!(a.counter("svm.insns_retired") > 0);
    assert!(a.counter("checkpoint.taken_total") >= 1);
    assert_eq!(a.counter("sweeper.attacks_detected"), 1);
    assert!(
        a.last_span("pipeline.total").is_some(),
        "spans survive export"
    );
}
