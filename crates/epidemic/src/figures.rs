//! Figure 6/7/8 sweeps: infection ratio vs deployment ratio per γ.

use crate::model::{solve, Scenario};

/// The γ values (seconds) the paper plots.
pub const GAMMAS: [f64; 6] = [5.0, 10.0, 20.0, 30.0, 50.0, 100.0];

/// The deployment ratios plotted in Figure 6 (Slammer).
pub const ALPHAS_FIG6: [f64; 5] = [0.1, 0.01, 0.005, 0.001, 0.0001];

/// The deployment ratios plotted in Figures 7/8 (hit-list worms).
pub const ALPHAS_FIG78: [f64; 5] = [0.5, 0.1, 0.01, 0.001, 0.0001];

/// One curve: a γ value with its infection ratio per α.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Response time γ (seconds).
    pub gamma: f64,
    /// `(alpha, infection_ratio)` points, in plotted α order.
    pub points: Vec<(f64, f64)>,
}

/// A whole figure: one curve per γ.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// Curves, one per γ.
    pub curves: Vec<Curve>,
}

fn sweep(title: &str, alphas: &[f64], make: impl Fn(f64, f64) -> Scenario) -> Figure {
    let curves = GAMMAS
        .iter()
        .map(|&gamma| Curve {
            gamma,
            points: alphas
                .iter()
                .map(|&alpha| (alpha, solve(&make(alpha, gamma)).infection_ratio))
                .collect(),
        })
        .collect();
    Figure {
        title: title.to_string(),
        curves,
    }
}

/// Figure 6: Sweeper community vs Slammer (β = 0.1, ρ = 1).
pub fn figure6() -> Figure {
    sweep(
        "Fig 6: Sweeper defense against Slammer (beta=0.1)",
        &ALPHAS_FIG6,
        Scenario::slammer,
    )
}

/// Figure 7: Sweeper + proactive protection vs hit-list β = 1000.
pub fn figure7() -> Figure {
    sweep(
        "Fig 7: Sweeper with proactive protection against hit-list (beta=1000)",
        &ALPHAS_FIG78,
        |a, g| Scenario::hitlist(1000.0, a, g),
    )
}

/// Figure 8: Sweeper + proactive protection vs hit-list β = 4000.
pub fn figure8() -> Figure {
    sweep(
        "Fig 8: Sweeper with proactive protection against hit-list (beta=4000)",
        &ALPHAS_FIG78,
        |a, g| Scenario::hitlist(4000.0, a, g),
    )
}

impl Figure {
    /// Render as an aligned text table (α columns, γ rows).
    pub fn render(&self) -> String {
        let alphas: Vec<f64> = self
            .curves
            .first()
            .map(|c| c.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!("{:>8} |", "gamma"));
        for a in &alphas {
            out.push_str(&format!(" a={a:<9}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(10 + alphas.len() * 12));
        out.push('\n');
        for c in &self.curves {
            out.push_str(&format!("{:>7}s |", c.gamma));
            for (_, r) in &c.points {
                out.push_str(&format!(" {:<10.4}", r));
            }
            out.push('\n');
        }
        out
    }

    /// The infection ratio for a given (γ, α) cell.
    pub fn at(&self, gamma: f64, alpha: f64) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| (c.gamma - gamma).abs() < 1e-9)?
            .points
            .iter()
            .find(|(a, _)| (a - alpha).abs() < 1e-12)
            .map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_matches_paper() {
        let f = figure6();
        // γ=5, α=0.0001 -> ~15%.
        let r = f.at(5.0, 0.0001).expect("cell");
        assert!(r > 0.05 && r < 0.3, "{r}");
        // γ=20, α=0.001 -> ~5%.
        let r2 = f.at(20.0, 0.001).expect("cell");
        assert!(r2 < 0.1, "{r2}");
        // Monotone: more deployment never hurts (within a γ row).
        for c in &f.curves {
            for w in c.points.windows(2) {
                // Points are ordered from high alpha to low alpha.
                assert!(w[0].1 <= w[1].1 + 1e-9, "non-monotone in alpha: {w:?}");
            }
        }
        // Monotone: slower response never helps (within an α column).
        for a_idx in 0..ALPHAS_FIG6.len() {
            for g in f.curves.windows(2) {
                assert!(g[0].points[a_idx].1 <= g[1].points[a_idx].1 + 1e-9);
            }
        }
    }

    #[test]
    fn figure7_gamma_cliff() {
        let f = figure7();
        // Paper: "Note that γ = 50 is much worse than γ = 30."
        for &alpha in &[0.01, 0.001] {
            let g30 = f.at(30.0, alpha).expect("g30");
            let g50 = f.at(50.0, alpha).expect("g50");
            assert!(
                g50 > g30 + 0.25,
                "cliff at alpha {alpha}: g30={g30:.3} g50={g50:.3}"
            );
        }
    }

    #[test]
    fn figure8_gamma_cliff_moves_earlier() {
        let f = figure8();
        // Paper: "Note that γ = 20 is much worse than γ = 10."
        for &alpha in &[0.01, 0.001] {
            let g10 = f.at(10.0, alpha).expect("g10");
            let g20 = f.at(20.0, alpha).expect("g20");
            assert!(
                g20 > g10 + 0.25,
                "cliff at alpha {alpha}: g10={g10:.3} g20={g20:.3}"
            );
        }
    }

    #[test]
    fn renders_a_complete_table() {
        let f = figure6();
        let txt = f.render();
        assert_eq!(txt.lines().count(), 3 + GAMMAS.len());
        assert!(txt.contains("a=0.0001"));
    }
}
