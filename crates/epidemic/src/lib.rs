//! # epidemic — the community-defense worm model (paper §6)
//!
//! The Susceptible-Infected community model of equations (1)-(4):
//! Producers (full Sweeper, ratio α) detect the first infection attempt
//! against them, produce antibodies within the response time γ, and
//! immunize everyone; Consumers rely on lightweight proactive protection
//! (per-attempt success probability ρ) until then.
//!
//! - [`model`] — RK4 integration of the ODEs plus the closed-form
//!   logistic used to validate it.
//! - [`agent`] — a Gillespie-style agent-based Monte-Carlo cross-check.
//! - [`figures`] — the α/γ sweeps regenerating Figures 6, 7, and 8.

pub mod agent;
pub mod figures;
pub mod model;

pub use agent::{simulate, simulate_mean, SimOutcome};
pub use figures::{figure6, figure7, figure8, Curve, Figure, ALPHAS_FIG6, ALPHAS_FIG78, GAMMAS};
pub use model::{logistic_i, required_gamma, solve, Outcome, Scenario};
