//! # epidemic — the community-defense worm model (paper §6)
//!
//! The Susceptible-Infected community model of equations (1)-(4):
//! Producers (full Sweeper, ratio α) detect the first infection attempt
//! against them, produce antibodies within the response time γ, and
//! immunize everyone; Consumers rely on lightweight proactive protection
//! (per-attempt success probability ρ) until then.
//!
//! - [`model`] — RK4 integration of the ODEs plus the closed-form
//!   logistic used to validate it.
//! - [`agent`] — a Gillespie-style agent-based Monte-Carlo cross-check.
//! - [`community`] — the discrete-tick community engine, shardable
//!   across threads with a deterministic merge (bit-identical to its
//!   serial run for the same seed).
//! - [`distnet`] — the antibody distribution network: a deterministic,
//!   lossy, Byzantine-adversarial message layer that replaces the
//!   idealized instantaneous-γ clock with certified-bundle broadcast,
//!   verify-before-deploy, retry/backoff, and graceful degradation.
//! - [`soa`] — struct-of-arrays host state: word-level bitsets plus an
//!   active-host queue, the backend that makes million-host community
//!   runs O(infected) per tick instead of O(hosts).
//! - [`failest`] — connection-failure containment: hyper-compact
//!   failure estimators flagging and throttling scanning sources, the
//!   network-side alternative to antibody distribution.
//! - [`contact`] — the event-driven contact process feeding the fleet
//!   reactor: each infection spawns counter-keyed exponential-delay
//!   contacts instead of dense per-tick scans.
//! - [`figures`] — the α/γ sweeps regenerating Figures 6, 7, and 8.
//! - [`rng`] — the counter-based deterministic RNG both engines share.

pub mod agent;
pub mod community;
pub mod contact;
pub mod distnet;
pub mod failest;
pub mod figures;
pub mod model;
pub mod rng;
pub mod soa;

pub use agent::{simulate, simulate_mean, SimOutcome};
pub use community::{
    CommunityEngine, CommunityOutcome, CommunityParams, Parallelism, ShardStats, TickStats,
};
pub use contact::ContactModel;
pub use distnet::{backoff_ticks, DistNet, DistNetParams, DistOutcome, DistShardStats};
pub use failest::{FailContOutcome, FailContParams};
pub use figures::{
    figure6, figure6_community, figure7, figure7_community, figure8, figure8_community,
    CommunitySweepConfig, Curve, Figure, ALPHAS_FIG6, ALPHAS_FIG78, GAMMAS,
};
pub use model::{logistic_i, required_gamma, solve, Outcome, Scenario};
pub use soa::{HostBits, HostSet, SoaHosts};
