//! The antibody distribution network: a deterministic, unreliable,
//! adversarial message layer for the §6 community model.
//!
//! The paper's §6 community assumes antibody sharing is free and
//! perfect: the first producer contact starts a clock and at `T0 + γ`
//! the whole community is immune. This module replaces that idealized
//! clock with a simulated P2P dissemination problem, making γ an
//! *emergent* property:
//!
//! * producers broadcast **certified antibody bundles**
//!   ([`antibody::CertifiedBundle`]: antibody + minimized exploit
//!   evidence, serialized via the PR-4 wire codecs);
//! * the wire is lossy and hostile — per-transmission loss, duplication
//!   and delay are seed-derived, and a configurable fraction of
//!   producers is **Byzantine**, emitting forged/corrupt/mismatched
//!   bundles;
//! * consumers run **verify-before-deploy**: every received bundle goes
//!   through [`antibody::CertifiedBundle::verify`] (keyed tag,
//!   fail-closed payload decode, evidence consistency); rejection
//!   quarantines the sender. A consumer deploys protection *only* via a
//!   successful verification — chaos invariant **I8** asserts the
//!   [`DistNet::deployed_unverified`] counter stays zero;
//! * unacknowledged sends are retried with capped exponential backoff
//!   plus deterministic jitter from the in-tree counter PRNG
//!   ([`backoff_ticks`]);
//! * while unprotected after a forged bundle, a consumer **degrades
//!   gracefully**: it throttles inbound contacts (probabilistic
//!   blocking) instead of being fully immune.
//!
//! ## Determinism and shard-count invariance
//!
//! Every wire roll (Byzantine assignment, loss, delay, duplication,
//! jitter) is a counter-based draw keyed on `(seed, host, attempt)` —
//! no evolving RNG state — and the whole distribution step runs in the
//! community coordinator between the barrier-separated generate/apply
//! phases. Per-delivery counters are attributed to the *receiving*
//! host's shard ([`DistShardStats`]) and folded in shard order by
//! [`crate::community::CommunityOutcome::metrics`], so simulation
//! counters are bit-identical at any shard count.
//!
//! ## The zero-fault differential anchor
//!
//! With `loss = dup = delay = byzantine = 0`, attempt 0 of every
//! consumer is sent and verified in the same tick the antibody becomes
//! ready (`T0 + γ`), so the community is fully protected at exactly the
//! legacy immunity instant — the engine reproduces the instantaneous-γ
//! results bit-identically (enforced by `tests/distnet_parity.rs` and
//! the chaos differential leg).
//!
//! ## Index-based state (PR 9)
//!
//! The million-host engine rework replaced this module's map-shaped
//! state with host-index structures: per-consumer `protected` /
//! `degraded` / `gave-up` flags live in [`crate::soa::HostBits`]
//! bitsets (3 bits per consumer instead of a struct), quarantine lists
//! in a host-indexed vector, and the send/arrival schedules in
//! fixed-size **tick rings** instead of `BTreeMap<tick, …>`. Every
//! scheduled entry lands strictly in the future and at most
//! `cap + base − 1` (retries) or `max_delay + 1` (duplicated
//! arrivals) ticks ahead, and the engine steps the network on every
//! consecutive tick — so a ring of `cap + base + max_delay + 2`
//! buckets indexed by `tick % horizon` can never collide. Bucket push
//! order is preserved exactly as the map kept it, so delivery order —
//! and therefore every outcome — is bit-identical to the map-based
//! implementation (pinned by the PR 9 regression in
//! `community::tests::pinned_outcomes_are_unchanged_by_the_rework`).
//! Drained buckets are swapped back after processing, so the
//! steady-state step loop allocates nothing.

use antibody::bundle::{Antibody, AntibodyItem};
use antibody::signature::Signature;
use antibody::vsef::VsefSpec;
use antibody::CertifiedBundle;

use crate::rng::{draw, to_unit};
use crate::soa::HostBits;

/// Domain separator: is producer `p` Byzantine?
pub const DOMAIN_BYZANTINE: u64 = 0x627a_6e74; // "bznt"
/// Domain separator: which forgery mode does a Byzantine producer use?
pub const DOMAIN_FORGE: u64 = 0x666f_7267; // "forg"
/// Domain separator: per-transmission loss roll.
pub const DOMAIN_LOSS: u64 = 0x6c6f_7373; // "loss"
/// Domain separator: per-transmission extra delay.
pub const DOMAIN_DELAY: u64 = 0x646c_6179; // "dlay"
/// Domain separator: per-transmission duplication roll.
pub const DOMAIN_DUP: u64 = 0x6475_706c; // "dupl"
/// Domain separator: backoff jitter.
pub const DOMAIN_JITTER: u64 = 0x6a74_7472; // "jttr"
/// Domain separator: contact-throttling roll while degraded.
pub const DOMAIN_THROTTLE: u64 = 0x7468_726f; // "thro"
/// Domain separator: the community certification key.
pub const DOMAIN_KEY: u64 = 0x636b_6579; // "ckey"

/// Attempt slots reserved per host in draw counters (bounds
/// [`DistNetParams::max_attempts`]).
const ATTEMPT_SLOTS: u64 = 1 << 16;

/// Parameters of the antibody distribution network.
///
/// `enabled = false` (the [`Default`]) selects the legacy
/// instantaneous-γ clock: the community run is bit-identical to the
/// pre-distnet engine. [`DistNetParams::ideal`] enables the network
/// with a perfect wire — the zero-fault differential anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistNetParams {
    /// Route antibodies through the simulated network instead of the
    /// instantaneous clock.
    pub enabled: bool,
    /// Per-transmission loss probability in `[0, 1)`.
    pub loss: f64,
    /// Per-transmission duplication probability in `[0, 1)`.
    pub dup: f64,
    /// Maximum extra delivery delay in ticks (uniform in
    /// `[0, max_delay_ticks]`; `0` = same-tick delivery).
    pub max_delay_ticks: u64,
    /// Fraction of producers that are Byzantine (forged bundles).
    pub byzantine: f64,
    /// Backoff base in ticks (first retry waits about this long).
    pub retry_base_ticks: u64,
    /// Backoff cap in ticks (exponential growth stops here).
    pub retry_cap_ticks: u64,
    /// Maximum delivery attempts per consumer before giving up
    /// (a gave-up consumer stays degraded, never immune).
    pub max_attempts: u32,
    /// Probability that a *degraded* (forged-bundle-bitten, still
    /// unprotected) consumer blocks an inbound infection contact.
    pub throttle: f64,
}

impl Default for DistNetParams {
    fn default() -> DistNetParams {
        DistNetParams::disabled()
    }
}

impl DistNetParams {
    /// The legacy instantaneous-γ clock (distribution network off).
    pub fn disabled() -> DistNetParams {
        DistNetParams {
            enabled: false,
            ..DistNetParams::ideal()
        }
    }

    /// A perfect wire: no loss, no duplication, no delay, no Byzantine
    /// producers. Reproduces the legacy results bit-identically.
    pub fn ideal() -> DistNetParams {
        DistNetParams {
            enabled: true,
            loss: 0.0,
            dup: 0.0,
            max_delay_ticks: 0,
            byzantine: 0.0,
            retry_base_ticks: 1,
            retry_cap_ticks: 16,
            max_attempts: 48,
            throttle: 0.5,
        }
    }

    /// A lossy/adversarial wire with the given loss probability and
    /// Byzantine producer fraction (the `fig9dist` sweep axes).
    pub fn lossy(loss: f64, byzantine: f64) -> DistNetParams {
        DistNetParams {
            loss,
            byzantine,
            dup: 0.05,
            max_delay_ticks: 2,
            ..DistNetParams::ideal()
        }
    }

    /// Backoff base clamped to at least one tick.
    fn base(&self) -> u64 {
        self.retry_base_ticks.max(1)
    }

    /// Backoff cap clamped to at least the base.
    fn cap(&self) -> u64 {
        self.retry_cap_ticks.max(self.base())
    }
}

/// The deterministic (jitter-free) part of the backoff before attempt
/// `attempt` (≥ 1): `min(base · 2^(attempt-1), cap)`.
pub fn backoff_base_ticks(p: &DistNetParams, attempt: u32) -> u64 {
    let exp = u32::min(attempt.saturating_sub(1), 63);
    p.base().saturating_mul(1u64 << exp.min(62)).min(p.cap())
}

/// Ticks a consumer waits between attempt `attempt - 1` and attempt
/// `attempt` (≥ 1): capped exponential backoff plus deterministic
/// jitter in `[0, base)` drawn from the counter PRNG.
///
/// A pure function of `(p, seed, host, attempt)` — the schedule is
/// identical no matter when, where, or in which order it is evaluated.
/// While the exponential part is below the cap, the schedule is
/// strictly monotone non-decreasing even across jitter, because the
/// base doubles by at least `base` while jitter varies by less than
/// `base` (pinned by `tests/distnet_props.rs`).
pub fn backoff_ticks(p: &DistNetParams, seed: u64, host: u64, attempt: u32) -> u64 {
    let det = backoff_base_ticks(p, attempt);
    let span = p.base();
    let j = if span > 1 {
        draw(
            seed,
            DOMAIN_JITTER,
            host.wrapping_mul(ATTEMPT_SLOTS)
                .wrapping_add(u64::from(attempt)),
        ) % span
    } else {
        0
    };
    det + j
}

/// Per-shard distribution-network counters, attributed to the
/// *receiving* host's shard and folded in shard order by the community
/// metrics merge (so they are shard-count-invariant by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistShardStats {
    /// Bundle transmissions attempted (attempt 0 and retries).
    pub sends: u64,
    /// Transmissions that were retries (attempt ≥ 1).
    pub retries: u64,
    /// Transmissions lost in transit.
    pub drops: u64,
    /// Transmissions duplicated in transit.
    pub dups: u64,
    /// Deliveries that arrived with extra delay.
    pub delayed: u64,
    /// Bundles that passed verify-before-deploy (deployments).
    pub verified: u64,
    /// Bundles rejected by verification (forged/corrupt/mismatched).
    pub rejected: u64,
    /// `(consumer, producer)` quarantine events after rejections.
    pub quarantines: u64,
    /// Sends skipped because the selected producer was quarantined.
    pub skipped_quarantined: u64,
    /// Deliveries that arrived after the host was already protected.
    pub late: u64,
    /// Consumers that exhausted `max_attempts` without protection.
    pub gave_up: u64,
}

impl DistShardStats {
    /// Fold these counters into a metrics registry under `distnet.*`.
    pub fn export(&self, reg: &mut obs::MetricsRegistry) {
        reg.inc("distnet.sends", self.sends);
        reg.inc("distnet.retries", self.retries);
        reg.inc("distnet.drops", self.drops);
        reg.inc("distnet.dups", self.dups);
        reg.inc("distnet.delayed", self.delayed);
        reg.inc("distnet.verified", self.verified);
        reg.inc("distnet.rejected", self.rejected);
        reg.inc("distnet.quarantines", self.quarantines);
        reg.inc("distnet.skipped_quarantined", self.skipped_quarantined);
        reg.inc("distnet.late", self.late);
        reg.inc("distnet.gave_up", self.gave_up);
    }
}

/// A bundle in flight, due at a known tick.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    /// Receiving host.
    host: u64,
    /// Sending producer.
    src: u64,
}

/// The distribution network state for one community run.
///
/// Created and activated by the community engine when antibody
/// production completes (`T0 + γ`); stepped once per tick *before* the
/// generate phase. All mutation happens in the coordinator; the apply
/// phase only reads [`DistNet::protected`] / [`DistNet::throttles`]
/// through a shared reference, so worker shards never race on it.
pub struct DistNet {
    p: DistNetParams,
    seed: u64,
    producers: u64,
    consumers: std::ops::Range<u64>,
    /// Shard bounds, for counter attribution.
    bounds: Vec<(u64, u64)>,
    /// The bundle each producer transmits: sealed honestly, or forged
    /// for Byzantine producers. Index = producer id.
    bundles: Vec<CertifiedBundle>,
    /// Byzantine flag per producer.
    byz: Vec<bool>,
    /// The community certification key.
    key: u64,
    /// Per-consumer verified-deployment flags, indexed `host - producers`.
    protected_set: HostBits,
    /// Per-consumer degraded flags (forged-bundle-bitten, throttling
    /// inbound contacts until protected).
    degraded_set: HostBits,
    /// Per-consumer exhausted-attempt-budget flags.
    gave_up_set: HostBits,
    /// Producers quarantined by each consumer (host-indexed; empty for
    /// consumers that never saw a rejection).
    quarantined: Vec<Vec<u64>>,
    /// Send schedule: ring bucket `due % horizon` holds the
    /// `(host, attempt)` pairs due at tick `due`.
    send_ring: Vec<Vec<(u64, u32)>>,
    /// In-flight bundles: ring bucket `due % horizon`.
    arrival_ring: Vec<Vec<Arrival>>,
    /// Ring size: strictly greater than the farthest-future schedule
    /// offset (`cap + base − 1` for retries, `max_delay + 1` for
    /// duplicated arrivals), so same-bucket collisions cannot happen
    /// while the engine steps every consecutive tick.
    horizon: u64,
    /// Per-shard counters.
    stats: Vec<DistShardStats>,
    /// Tick the initial broadcast happened.
    activated_tick: u64,
    /// Tick the last consumer became protected, if that happened.
    protection_complete_tick: Option<u64>,
    /// Consumers currently protected.
    protected_count: u64,
    /// I8 counter: deployments that did not come from a successful
    /// verification (or forgeries that passed one). Always zero unless
    /// the certification layer is broken.
    deployed_unverified: u64,
}

impl std::fmt::Debug for DistNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistNet")
            .field("producers", &self.producers)
            .field("consumers", &self.consumers)
            .field("activated_tick", &self.activated_tick)
            .field("protected_count", &self.protected_count)
            .finish_non_exhaustive()
    }
}

/// Build the model antibody every honest producer distributes: a small
/// but *real* bundle (VSEF + exact signature + exploit evidence) that
/// round-trips the PR-4 wire codecs on every simulated delivery.
fn model_antibody(seed: u64) -> Antibody {
    let evidence: Vec<u8> = draw(seed, DOMAIN_KEY, 1).to_le_bytes().to_vec();
    let mut ab = Antibody::new();
    ab.push(
        AntibodyItem::Vsef(VsefSpec::StoreSmashGuard {
            store_pc: (draw(seed, DOMAIN_KEY, 2) & 0xffff) as u32,
        }),
        40.0,
    );
    ab.push(
        AntibodyItem::Signature(Signature::Exact(evidence.clone())),
        9000.0,
    );
    ab.push(AntibodyItem::ExploitInput(evidence), 9500.0);
    ab
}

impl DistNet {
    /// Build the network: assign Byzantine producers, seal each
    /// producer's bundle (forging the Byzantine ones), and record the
    /// initial broadcast tick. `bounds` is the community's contiguous
    /// shard partition (for counter attribution).
    pub fn new(
        p: &DistNetParams,
        seed: u64,
        hosts: u64,
        producers: u64,
        bounds: &[(u64, u64)],
        activated_tick: u64,
    ) -> DistNet {
        let key = draw(seed, DOMAIN_KEY, 0);
        let honest_ab = model_antibody(seed);
        let mut byz = Vec::with_capacity(producers as usize);
        let mut bundles = Vec::with_capacity(producers as usize);
        for prod in 0..producers {
            let is_byz =
                p.byzantine > 0.0 && to_unit(draw(seed, DOMAIN_BYZANTINE, prod)) < p.byzantine;
            byz.push(is_byz);
            let honest = CertifiedBundle::seal(prod as u32, 0, &honest_ab, key)
                .expect("model antibody carries evidence");
            let bundle = if is_byz {
                match draw(seed, DOMAIN_FORGE, prod) % 3 {
                    // Forged tag: an outsider-grade forgery.
                    0 => honest.forged_bad_tag(),
                    // Corrupt payload, re-tagged with the key: flipping
                    // byte 0 breaks the inner SWAB magic, so the
                    // fail-closed payload decoder rejects it.
                    1 => honest.forged_corrupt_payload(key, 0),
                    // Valid-looking bundle whose evidence is benign.
                    _ => honest.forged_mismatched_evidence(key, b"benign".to_vec()),
                }
            } else {
                honest
            };
            bundles.push(bundle);
        }
        let consumers = producers..hosts;
        let n_consumers = hosts - producers;
        let horizon = p.cap() + p.base() + p.max_delay_ticks + 2;
        let mut net = DistNet {
            p: *p,
            seed,
            producers,
            consumers,
            bounds: bounds.to_vec(),
            bundles,
            byz,
            key,
            protected_set: HostBits::new(n_consumers),
            degraded_set: HostBits::new(n_consumers),
            gave_up_set: HostBits::new(n_consumers),
            quarantined: vec![Vec::new(); n_consumers as usize],
            send_ring: vec![Vec::new(); horizon as usize],
            arrival_ring: vec![Vec::new(); horizon as usize],
            horizon,
            stats: vec![DistShardStats::default(); bounds.len()],
            activated_tick,
            protection_complete_tick: None,
            protected_count: 0,
            deployed_unverified: 0,
        };
        // Initial broadcast: attempt 0 for every consumer, this tick.
        let slot = (activated_tick % horizon) as usize;
        net.send_ring[slot] = net.consumers.clone().map(|h| (h, 0)).collect();
        net
    }

    /// Shard index owning `host`.
    fn shard_of(&self, host: u64) -> usize {
        self.bounds
            .iter()
            .position(|&(lo, hi)| host >= lo && host < hi)
            .unwrap_or(self.bounds.len() - 1)
    }

    /// Whether `host` has deployed a verified antibody.
    pub fn protected(&self, host: u64) -> bool {
        self.consumers.contains(&host) && self.protected_set.contains(host - self.producers)
    }

    /// Whether `host` is degraded (forged-bundle-bitten, unprotected)
    /// and therefore throttling inbound contacts.
    pub fn throttled(&self, host: u64) -> bool {
        if !self.consumers.contains(&host) {
            return false;
        }
        let idx = host - self.producers;
        self.degraded_set.contains(idx) && !self.protected_set.contains(idx)
    }

    /// Counter key for `(host, attempt)` wire rolls.
    fn wire_key(host: u64, attempt: u32) -> u64 {
        host.wrapping_mul(ATTEMPT_SLOTS)
            .wrapping_add(u64::from(attempt))
    }

    /// Deliver one bundle to `host`, verify-before-deploy. Returns 1 if
    /// the host became protected *and* is not already infected (i.e. it
    /// newly resolved), else 0.
    fn deliver(&mut self, host: u64, src: u64, tick: u64, infected: &dyn Fn(u64) -> bool) -> u64 {
        let shard = self.shard_of(host);
        let idx = host - self.producers;
        if self.protected_set.contains(idx) {
            self.stats[shard].late += 1;
            return 0;
        }
        // Verify-before-deploy: decode + keyed tag + fail-closed payload
        // + evidence consistency. The *only* path into `protected_set`.
        match self.bundles[src as usize].verify(self.key) {
            Ok(_antibody) => {
                if self.byz[src as usize] {
                    // A forgery passed verification: certification is
                    // broken. Deploying now would be an unverified
                    // deployment in I8 terms.
                    self.deployed_unverified += 1;
                }
                self.protected_set.insert(idx);
                self.stats[shard].verified += 1;
                self.protected_count += 1;
                if self.protected_count == self.consumers.end - self.consumers.start {
                    self.protection_complete_tick = Some(tick);
                }
                u64::from(!infected(host))
            }
            Err(_) => {
                self.stats[shard].rejected += 1;
                let q = &mut self.quarantined[idx as usize];
                if !q.contains(&src) {
                    q.push(src);
                    self.stats[shard].quarantines += 1;
                }
                self.degraded_set.insert(idx);
                0
            }
        }
    }

    /// Schedule attempt `attempt` for `host` after the backoff.
    fn schedule_retry(&mut self, host: u64, attempt: u32, tick: u64) {
        if attempt >= self.p.max_attempts {
            let idx = host - self.producers;
            if !self.gave_up_set.contains(idx) && !self.protected_set.contains(idx) {
                self.gave_up_set.insert(idx);
                let shard = self.shard_of(host);
                self.stats[shard].gave_up += 1;
            }
            return;
        }
        let due = tick + backoff_ticks(&self.p, self.seed, host, attempt);
        debug_assert!(
            due > tick && due - tick < self.horizon,
            "retry offset {} outside ring horizon {}",
            due - tick,
            self.horizon
        );
        self.send_ring[(due % self.horizon) as usize].push((host, attempt));
    }

    /// One distribution tick: process due arrivals, then due sends.
    /// Runs in the coordinator between the community's barrier phases.
    /// Returns the number of consumers that newly became resolved
    /// (protected while not infected).
    pub fn step(&mut self, tick: u64, infected: &dyn Fn(u64) -> bool) -> u64 {
        let mut newly_resolved = 0;
        let slot = (tick % self.horizon) as usize;
        // Everything scheduled during this step lands strictly in the
        // future and within the horizon, so it can never hit `slot`;
        // the drained buckets are swapped back below to keep their
        // capacity — the steady-state step allocates nothing.
        let mut arrivals = std::mem::take(&mut self.arrival_ring[slot]);
        for a in arrivals.drain(..) {
            newly_resolved += self.deliver(a.host, a.src, tick, infected);
        }
        self.arrival_ring[slot] = arrivals;
        let mut due = std::mem::take(&mut self.send_ring[slot]);
        for &(host, attempt) in due.iter() {
            let idx = host - self.producers;
            if self.protected_set.contains(idx) {
                continue; // Acknowledged: the producer stops retrying.
            }
            let src = (host + u64::from(attempt)) % self.producers;
            let shard = self.shard_of(host);
            if self.quarantined[idx as usize].contains(&src) {
                self.stats[shard].skipped_quarantined += 1;
                self.schedule_retry(host, attempt + 1, tick);
                continue;
            }
            self.stats[shard].sends += 1;
            if attempt > 0 {
                self.stats[shard].retries += 1;
            }
            let key = Self::wire_key(host, attempt);
            // The send is unacknowledged until a delivery verifies, so
            // the retry is scheduled unconditionally; a later verified
            // delivery suppresses it at pop time.
            self.schedule_retry(host, attempt + 1, tick);
            if self.p.loss > 0.0 && to_unit(draw(self.seed, DOMAIN_LOSS, key)) < self.p.loss {
                self.stats[shard].drops += 1;
                continue;
            }
            let delay = if self.p.max_delay_ticks > 0 {
                draw(self.seed, DOMAIN_DELAY, key) % (self.p.max_delay_ticks + 1)
            } else {
                0
            };
            if self.p.dup > 0.0 && to_unit(draw(self.seed, DOMAIN_DUP, key)) < self.p.dup {
                self.stats[shard].dups += 1;
                let at = ((tick + delay + 1) % self.horizon) as usize;
                self.arrival_ring[at].push(Arrival { host, src });
            }
            if delay == 0 {
                newly_resolved += self.deliver(host, src, tick, infected);
            } else {
                self.stats[shard].delayed += 1;
                let at = ((tick + delay) % self.horizon) as usize;
                self.arrival_ring[at].push(Arrival { host, src });
            }
        }
        due.clear();
        self.send_ring[slot] = due;
        newly_resolved
    }

    /// Per-shard counters (index = shard).
    pub fn shard_stats(&self) -> &[DistShardStats] {
        &self.stats
    }

    /// Number of Byzantine producers in this run.
    pub fn byzantine_producers(&self) -> u64 {
        self.byz.iter().filter(|b| **b).count() as u64
    }

    /// Tick of the initial broadcast.
    pub fn activated_tick(&self) -> u64 {
        self.activated_tick
    }

    /// Tick the last consumer became protected, if protection completed.
    pub fn protection_complete_tick(&self) -> Option<u64> {
        self.protection_complete_tick
    }

    /// Consumers currently protected.
    pub fn protected_count(&self) -> u64 {
        self.protected_count
    }

    /// I8 counter: deployments without a successful verification
    /// (always zero unless the certification layer is broken).
    pub fn deployed_unverified(&self) -> u64 {
        self.deployed_unverified
    }
}

/// Distribution-network portion of a community run's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DistOutcome {
    /// Tick of the initial broadcast (`T0 + γ_production`).
    pub activated_tick: u64,
    /// Tick the last consumer became protected, if protection completed.
    pub protection_complete_tick: Option<u64>,
    /// Consumers protected when the run ended.
    pub protected: u64,
    /// Byzantine producers in this run.
    pub byzantine_producers: u64,
    /// I8 counter: unverified deployments (must be zero).
    pub deployed_unverified: u64,
    /// Per-shard wire counters, index = shard.
    pub shard_stats: Vec<DistShardStats>,
}

impl DistOutcome {
    /// Emergent γ: ticks from the first producer contact to full
    /// community protection (`None` if protection never completed).
    pub fn gamma_effective(&self, t0_tick: u64) -> Option<u64> {
        self.protection_complete_tick
            .map(|t| t.saturating_sub(t0_tick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds1(hosts: u64) -> Vec<(u64, u64)> {
        vec![(0, hosts)]
    }

    #[test]
    fn ideal_wire_protects_everyone_in_the_activation_tick() {
        let p = DistNetParams::ideal();
        let mut net = DistNet::new(&p, 7, 100, 4, &bounds1(100), 10);
        let resolved = net.step(10, &|_| false);
        assert_eq!(resolved, 96);
        assert_eq!(net.protected_count(), 96);
        assert_eq!(net.protection_complete_tick(), Some(10));
        assert_eq!(net.deployed_unverified(), 0);
        let s = net.shard_stats()[0];
        assert_eq!(s.sends, 96);
        assert_eq!(s.verified, 96);
        assert_eq!(s.retries + s.drops + s.dups + s.rejected + s.quarantines, 0);
    }

    #[test]
    fn lossy_wire_retries_until_protected() {
        let p = DistNetParams {
            loss: 0.5,
            ..DistNetParams::ideal()
        };
        let mut net = DistNet::new(&p, 11, 60, 3, &bounds1(60), 0);
        let mut resolved = 0;
        for tick in 0..4_000 {
            resolved += net.step(tick, &|_| false);
            if net.protected_count() == 57 {
                break;
            }
        }
        assert_eq!(resolved, 57, "every consumer eventually protected");
        let s = net.shard_stats()[0];
        assert!(s.drops > 0, "losses must occur at 50%");
        assert!(s.retries > 0, "drops must trigger retries");
        assert_eq!(net.deployed_unverified(), 0);
    }

    #[test]
    fn byzantine_producers_are_quarantined_not_deployed() {
        let p = DistNetParams {
            byzantine: 0.5,
            ..DistNetParams::ideal()
        };
        let mut net = DistNet::new(&p, 13, 200, 20, &bounds1(200), 0);
        assert!(
            net.byzantine_producers() > 0,
            "seed must pick Byzantine producers"
        );
        let mut resolved = 0;
        for tick in 0..4_000 {
            resolved += net.step(tick, &|_| false);
            if net.protected_count() == 180 {
                break;
            }
        }
        let s = net.shard_stats()[0];
        assert!(s.rejected > 0, "forged bundles must be rejected");
        assert!(s.quarantines > 0, "rejections must quarantine senders");
        assert_eq!(net.deployed_unverified(), 0, "I8: forgeries never deploy");
        assert_eq!(resolved, 180, "honest producers still cover everyone");
    }

    #[test]
    fn all_byzantine_means_graceful_degradation_not_panic() {
        let p = DistNetParams {
            byzantine: 1.0,
            max_attempts: 8,
            ..DistNetParams::ideal()
        };
        let mut net = DistNet::new(&p, 17, 30, 2, &bounds1(30), 0);
        for tick in 0..2_000 {
            net.step(tick, &|_| false);
        }
        assert_eq!(net.protected_count(), 0, "nothing verifiable was sent");
        assert_eq!(
            net.deployed_unverified(),
            0,
            "I8 holds even at 100% Byzantine"
        );
        // Every consumer received forged bundles: all degraded/throttled.
        for h in 2..30 {
            assert!(net.throttled(h), "host {h} must be throttling");
        }
        let s = net.shard_stats()[0];
        assert!(s.gave_up > 0, "attempt budgets must exhaust");
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = DistNetParams {
            retry_base_ticks: 2,
            retry_cap_ticks: 32,
            ..DistNetParams::ideal()
        };
        for host in [0u64, 5, 99] {
            let mut prev = 0;
            let mut capped = false;
            for attempt in 1..20u32 {
                let a = backoff_ticks(&p, 42, host, attempt);
                let b = backoff_ticks(&p, 42, host, attempt);
                assert_eq!(a, b, "pure function of (seed, host, attempt)");
                let det = backoff_base_ticks(&p, attempt);
                assert!(det <= 32, "deterministic part capped");
                assert!(a >= det && a < det + 2, "jitter bounded by base");
                if !capped {
                    assert!(a >= prev, "monotone until the cap");
                }
                capped = capped || det == 32;
                prev = a;
            }
        }
    }

    #[test]
    fn counters_are_attributed_to_the_receiving_shard() {
        let p = DistNetParams::ideal();
        let bounds = vec![(0u64, 50), (50, 100)];
        let mut net = DistNet::new(&p, 3, 100, 4, &bounds, 0);
        net.step(0, &|_| false);
        let s = net.shard_stats();
        // Consumers are hosts 4..100: 46 in shard 0, 50 in shard 1.
        assert_eq!(s[0].verified, 46);
        assert_eq!(s[1].verified, 50);
        assert_eq!(s[0].sends + s[1].sends, 96);
    }
}
