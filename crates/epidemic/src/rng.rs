//! Deterministic random-number generation for the epidemic engines.
//!
//! Two flavours, both built on the splitmix64 finalizer:
//!
//! * [`Stream`] — a sequential generator for the Gillespie agent model,
//!   seeded once per outbreak. Replaces the external `rand` crate (the
//!   offline build cannot fetch it) with a smaller, fully specified
//!   generator so simulation results are reproducible across toolchains.
//! * [`draw`] — a *counter-based* generator: every value is a pure hash
//!   of `(seed, domain, counter)`. Because a draw does not depend on any
//!   evolving generator state, shards of the parallel community engine
//!   can consume draws in any order (or on any thread) and still agree
//!   bit-for-bit with the serial engine. This is the keystone of the
//!   deterministic-merge design.

/// splitmix64 finalizer: avalanche a 64-bit value.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A counter-based draw: a pure function of `(seed, domain, counter)`.
///
/// `domain` separates independent uses of the same logical counter
/// (e.g. "target choice" vs "success roll" for the same infection
/// attempt) so they never alias.
#[inline]
pub fn draw(seed: u64, domain: u64, counter: u64) -> u64 {
    // Two rounds of mixing over an injective combination of the inputs.
    mix(mix(seed ^ domain.rotate_left(24))
        .wrapping_add(counter.wrapping_mul(0xd134_2543_de82_ef95)))
}

/// A counter-based uniform draw in `[0, 1)`.
#[inline]
pub fn draw_unit(seed: u64, domain: u64, counter: u64) -> f64 {
    to_unit(draw(seed, domain, counter))
}

/// A counter-based uniform draw in `[0, n)`; `n` must be nonzero.
#[inline]
pub fn draw_below(seed: u64, domain: u64, counter: u64, n: u64) -> u64 {
    draw(seed, domain, counter) % n
}

/// Map a 64-bit value to `[0, 1)` using the top 53 bits.
#[inline]
pub fn to_unit(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// A small sequential splitmix64 generator (for the Gillespie agent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream {
    state: u64,
}

impl Stream {
    /// Seed deterministically.
    pub fn seed(seed: u64) -> Stream {
        Stream {
            state: mix(seed ^ 0x5851_f42d_4c95_7f2d),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        to_unit(self.next_u64())
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// An exponentially distributed waiting time with the given rate.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        -(1.0f64 - self.unit()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = Stream::seed(11);
        let mut b = Stream::seed(11);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Stream::seed(1).next_u64(), Stream::seed(2).next_u64());
    }

    #[test]
    fn draw_is_order_independent() {
        // The whole point: counter-based draws don't care who asks first.
        let forward: Vec<u64> = (0..16).map(|c| draw(9, 1, c)).collect();
        let backward: Vec<u64> = (0..16).rev().map(|c| draw(9, 1, c)).collect();
        let reversed: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn draw_domains_do_not_alias() {
        assert_ne!(draw(5, 0, 3), draw(5, 1, 3));
        assert_ne!(draw(5, 0, 3), draw(6, 0, 3));
    }

    #[test]
    fn unit_values_are_in_range_and_spread() {
        let mut s = Stream::seed(3);
        let mut acc = 0.0;
        for i in 0..1000 {
            let u = s.unit();
            assert!((0.0..1.0).contains(&u));
            acc += u;
            let c = draw_unit(3, 2, i);
            assert!((0.0..1.0).contains(&c));
        }
        let mean = acc / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exp_is_positive_with_sane_mean() {
        let mut s = Stream::seed(17);
        let mut acc = 0.0;
        for _ in 0..2000 {
            let x = s.exp(2.0);
            assert!(x >= 0.0);
            acc += x;
        }
        let mean = acc / 2000.0;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
    }
}
