//! The Susceptible-Infected community model (paper §6, equations 1-4).
//!
//! Worm spread follows the classic SI epidemic model. A fraction `α` of
//! the `N` vulnerable hosts are *Producers* (full Sweeper); the rest are
//! *Consumers*. With proactive probabilistic protection (paper §6.3), an
//! individual infection attempt succeeds only with probability `ρ`:
//!
//! ```text
//! dI/dt = β·ρ·I·(1 − α − I/N)          (infected consumers)
//! dP/dt = α·β·I·(1 − P/(α·N))          (producers contacted)
//! ```
//!
//! `T0` is the first time a producer receives an infection attempt
//! (`P(T0) = 1`); after the community response time `γ` (analysis +
//! dissemination + deployment), every host is immune. The outcome metric
//! is the infection ratio `I(T0 + γ) / N`.

/// Parameters of one community-defense scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Average contact rate (per infected host per second).
    pub beta: f64,
    /// Total vulnerable hosts.
    pub n: f64,
    /// Producer (full-Sweeper) deployment ratio.
    pub alpha: f64,
    /// Per-attempt infection success probability (1.0 = no proactive
    /// protection; the paper uses 2⁻¹² for address-space randomization).
    pub rho: f64,
    /// Community response time in seconds (γ = γ₁ analysis + γ₂
    /// dissemination).
    pub gamma: f64,
    /// Initially infected hosts.
    pub i0: f64,
}

impl Scenario {
    /// The paper's Slammer scenario (§6.2): β = 0.1, N = 100 000, no
    /// proactive protection.
    pub fn slammer(alpha: f64, gamma: f64) -> Scenario {
        Scenario {
            beta: 0.1,
            n: 100_000.0,
            alpha,
            rho: 1.0,
            gamma,
            i0: 1.0,
        }
    }

    /// The paper's hit-list scenarios (§6.3): β ∈ {1000, 4000}, with
    /// proactive protection ρ = 2⁻¹².
    pub fn hitlist(beta: f64, alpha: f64, gamma: f64) -> Scenario {
        Scenario {
            beta,
            n: 100_000.0,
            alpha,
            rho: (2.0f64).powi(-12),
            gamma,
            i0: 1.0,
        }
    }
}

/// State of the ODE system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct State {
    /// Time (seconds).
    pub t: f64,
    /// Infected hosts.
    pub i: f64,
    /// Producers contacted at least once.
    pub p: f64,
}

fn derivs(s: &Scenario, i: f64, p: f64) -> (f64, f64) {
    let di = s.beta * s.rho * i * (1.0 - s.alpha - i / s.n);
    let dp = if s.alpha > 0.0 {
        s.alpha * s.beta * i * (1.0 - p / (s.alpha * s.n))
    } else {
        0.0
    };
    (di.max(0.0), dp.max(0.0))
}

/// One RK4 step.
fn rk4(s: &Scenario, st: State, dt: f64) -> State {
    let (k1i, k1p) = derivs(s, st.i, st.p);
    let (k2i, k2p) = derivs(s, st.i + 0.5 * dt * k1i, st.p + 0.5 * dt * k1p);
    let (k3i, k3p) = derivs(s, st.i + 0.5 * dt * k2i, st.p + 0.5 * dt * k2p);
    let (k4i, k4p) = derivs(s, st.i + dt * k3i, st.p + dt * k3p);
    let i = st.i + dt / 6.0 * (k1i + 2.0 * k2i + 2.0 * k3i + k4i);
    let p = st.p + dt / 6.0 * (k1p + 2.0 * k2p + 2.0 * k3p + k4p);
    State {
        t: st.t + dt,
        i: i.clamp(0.0, s.n * (1.0 - s.alpha)),
        p: p.clamp(0.0, s.alpha * s.n),
    }
}

/// Result of solving one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Time of the first producer contact (s); `None` if no producer is
    /// ever contacted (α = 0 or the worm dies out).
    pub t0: Option<f64>,
    /// Infected hosts at T0 + γ (or at saturation when T0 is `None`).
    pub infected: f64,
    /// The headline metric: `infected / N`.
    pub infection_ratio: f64,
}

/// Integration time step for a scenario: resolve the fastest timescale.
fn timestep(s: &Scenario) -> f64 {
    // The infection timescale is 1/(β·ρ·N/N) = 1/(β·ρ) per-host, but the
    // *population* dynamics move on 1/(β·ρ) too; the producer-contact
    // rate grows with I. Resolve both comfortably.
    let fastest_rate = (s.beta * s.rho).max(s.beta * s.alpha.max(1e-6));
    (0.02 / fastest_rate).clamp(1e-9, 1.0)
}

/// Solve the scenario: integrate to `T0`, then `γ` further.
pub fn solve(s: &Scenario) -> Outcome {
    let dt = timestep(s);
    let mut st = State {
        t: 0.0,
        i: s.i0,
        p: 0.0,
    };
    let cap = s.n * (1.0 - s.alpha);
    // Phase 1: find T0 (P crosses 1). Bound the search generously.
    let mut t0 = None;
    let t_max = phase1_bound(s);
    while st.t < t_max {
        if st.p >= 1.0 {
            t0 = Some(st.t);
            break;
        }
        if st.i >= cap - 1e-9 && s.alpha <= 0.0 {
            break;
        }
        st = rk4(s, st, dt);
    }
    if st.p >= 1.0 && t0.is_none() {
        t0 = Some(st.t);
    }
    let Some(t0v) = t0 else {
        // No producer ever contacted: the worm saturates the consumers.
        let infected = if s.alpha > 0.0 { st.i } else { cap };
        return Outcome {
            t0: None,
            infected,
            infection_ratio: infected / s.n,
        };
    };
    // Phase 2: γ more seconds of spreading, then immunity everywhere.
    let end = t0v + s.gamma;
    while st.t < end {
        let step = dt.min(end - st.t);
        st = rk4(s, st, step);
    }
    Outcome {
        t0,
        infected: st.i,
        infection_ratio: st.i / s.n,
    }
}

fn phase1_bound(s: &Scenario) -> f64 {
    // Generous: many multiples of the epidemic's doubling time.
    let rate = (s.beta * s.rho).max(1e-12);
    (200.0 * (s.n.ln() + 10.0) / rate).min(1e9)
}

/// The inverse problem: the largest community response time γ (seconds)
/// that still keeps the infection ratio at or below `target`.
///
/// This is the operational question §6 answers implicitly ("a total
/// end-to-end time of about 5 seconds will stop a hit-list worm"): given
/// a worm and a deployment, how fast must detection + analysis +
/// dissemination be? Solved by bisection over the (monotone in γ)
/// infection ratio. Returns `None` when even γ = 0 overshoots the target
/// (the outbreak before the first producer contact already exceeds it).
pub fn required_gamma(base: &Scenario, target: f64) -> Option<f64> {
    let ratio_at = |gamma: f64| solve(&Scenario { gamma, ..*base }).infection_ratio;
    if ratio_at(0.0) > target {
        return None;
    }
    // Find an upper bracket where the target is exceeded.
    let mut hi = 1.0f64;
    while ratio_at(hi) <= target {
        hi *= 2.0;
        if hi > 1e5 {
            return Some(f64::INFINITY); // Target holds for any response time.
        }
    }
    let mut lo = hi / 2.0;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ratio_at(mid) <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Closed-form logistic solution of eq. (1) (used for validation):
/// `I(t) = K·I0·e^{rKt} / (K + I0·(e^{rKt} − 1))` with `K = N(1−α)`,
/// `r = βρ/N`.
pub fn logistic_i(s: &Scenario, t: f64) -> f64 {
    let k = s.n * (1.0 - s.alpha);
    let r = s.beta * s.rho / s.n;
    let e = (r * k * t).exp();
    k * s.i0 * e / (k + s.i0 * (e - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_matches_logistic_closed_form() {
        let s = Scenario {
            beta: 0.1,
            n: 100_000.0,
            alpha: 0.0,
            rho: 1.0,
            gamma: 0.0,
            i0: 1.0,
        };
        let dt = timestep(&s);
        let mut st = State {
            t: 0.0,
            i: s.i0,
            p: 0.0,
        };
        for _ in 0..((200.0 / dt) as usize) {
            st = rk4(&s, st, dt);
        }
        let exact = logistic_i(&s, st.t);
        let rel = (st.i - exact).abs() / exact;
        assert!(rel < 1e-4, "RK4 {} vs logistic {} (rel {rel})", st.i, exact);
    }

    #[test]
    fn no_producers_means_full_sweep() {
        let s = Scenario {
            alpha: 0.0,
            ..Scenario::slammer(0.0, 5.0)
        };
        let out = solve(&s);
        assert!(out.t0.is_none());
        assert!(out.infection_ratio > 0.99, "{out:?}");
    }

    #[test]
    fn slammer_contained_at_modest_deployment() {
        // Paper §6.2: "given a very low deployment ratio α = 0.0001, and a
        // reasonable response time γ = 5 seconds, the overall infection
        // ratio is only 15%".
        let out = solve(&Scenario::slammer(0.0001, 5.0));
        assert!(out.t0.is_some());
        assert!(
            out.infection_ratio > 0.05 && out.infection_ratio < 0.30,
            "expected ~15%, got {:.3}",
            out.infection_ratio
        );
        // "For a slightly higher producer ratio α = 0.001, ... all but 5%
        // ... even for a relatively slow response time of γ = 20 s."
        let out2 = solve(&Scenario::slammer(0.001, 20.0));
        assert!(
            out2.infection_ratio < 0.10,
            "expected <~5%, got {:.3}",
            out2.infection_ratio
        );
    }

    #[test]
    fn faster_response_means_fewer_infections() {
        let slow = solve(&Scenario::slammer(0.001, 100.0));
        let fast = solve(&Scenario::slammer(0.001, 5.0));
        assert!(fast.infection_ratio < slow.infection_ratio);
    }

    #[test]
    fn more_producers_means_earlier_t0() {
        let few = solve(&Scenario::slammer(0.0001, 5.0));
        let many = solve(&Scenario::slammer(0.01, 5.0));
        assert!(many.t0.expect("t0") < few.t0.expect("t0"));
        assert!(many.infection_ratio < few.infection_ratio);
    }

    #[test]
    fn hitlist_with_proactive_protection_is_contained() {
        // Paper §6.3: "given deployment rate α = 0.0001 and reaction time
        // γ = 10 seconds, the overall infection ratio is only 5% for
        // β = 1000"; "for α = 0.0001 and γ = 5 s, ... negligible (<1%)".
        let out = solve(&Scenario::hitlist(1000.0, 0.0001, 10.0));
        assert!(
            out.infection_ratio < 0.12,
            "expected ~5%, got {:.3}",
            out.infection_ratio
        );
        let out5 = solve(&Scenario::hitlist(1000.0, 0.0001, 5.0));
        assert!(
            out5.infection_ratio < 0.01,
            "expected <1%, got {:.4}",
            out5.infection_ratio
        );
        // β = 4000, γ = 10: "40%".
        let out4k = solve(&Scenario::hitlist(4000.0, 0.0001, 10.0));
        assert!(
            out4k.infection_ratio > 0.15 && out4k.infection_ratio < 0.65,
            "expected ~40%, got {:.3}",
            out4k.infection_ratio
        );
        let out4k5 = solve(&Scenario::hitlist(4000.0, 0.0001, 5.0));
        assert!(
            out4k5.infection_ratio < 0.01,
            "expected <1%, got {:.4}",
            out4k5.infection_ratio
        );
    }

    #[test]
    fn hitlist_without_proactive_protection_is_lost() {
        // "100% of vulnerable hosts ... in mere hundredths of a second."
        let s = Scenario {
            rho: 1.0,
            ..Scenario::hitlist(1000.0, 0.0001, 5.0)
        };
        let out = solve(&s);
        assert!(
            out.infection_ratio > 0.9,
            "unprotected hit-list saturates: {out:?}"
        );
    }

    #[test]
    fn required_gamma_inverts_the_model() {
        // The budget found by the inverse solver really does achieve the
        // target, and a slightly slower response does not.
        let base = Scenario::hitlist(1000.0, 0.001, 0.0);
        let g = required_gamma(&base, 0.05).expect("feasible");
        assert!(g > 1.0 && g < 100.0, "plausible budget: {g}");
        let at = solve(&Scenario { gamma: g, ..base }).infection_ratio;
        let over = solve(&Scenario {
            gamma: g * 1.2,
            ..base
        })
        .infection_ratio;
        assert!(at <= 0.05 + 1e-6, "{at}");
        assert!(over > 0.05, "{over}");
        // Faster worm -> tighter budget.
        let g4k = required_gamma(&Scenario::hitlist(4000.0, 0.001, 0.0), 0.05).expect("feasible");
        assert!(g4k < g, "beta=4000 budget {g4k} < beta=1000 budget {g}");
        // The paper's headline: ~5 s suffices for 5% even at beta=4000
        // with alpha as low as 1e-4.
        let tight =
            required_gamma(&Scenario::hitlist(4000.0, 0.0001, 0.0), 0.05).expect("feasible");
        assert!(
            tight >= 5.0,
            "5 s response meets the 5% target: budget {tight}"
        );
    }

    #[test]
    fn required_gamma_edge_cases() {
        // Unreachable target: no producers at all.
        let none = Scenario {
            alpha: 0.0,
            ..Scenario::slammer(0.0, 0.0)
        };
        assert!(required_gamma(&none, 0.05).is_none());
        // Trivial target: 100% is satisfied by any response time.
        let any = required_gamma(&Scenario::slammer(0.01, 0.0), 1.0);
        assert_eq!(any, Some(f64::INFINITY));
    }

    #[test]
    fn gamma_cliff_is_reproduced() {
        // Paper figure 7 note: "γ = 50 is much worse than γ = 30" at
        // β = 1000 — the infection ratio climbs steeply between them.
        let g30 = solve(&Scenario::hitlist(1000.0, 0.001, 30.0));
        let g50 = solve(&Scenario::hitlist(1000.0, 0.001, 50.0));
        assert!(
            g50.infection_ratio > 4.0 * g30.infection_ratio.max(1e-6)
                || (g50.infection_ratio - g30.infection_ratio) > 0.3,
            "cliff missing: γ30 {:.4} vs γ50 {:.4}",
            g30.infection_ratio,
            g50.infection_ratio
        );
    }
}
