//! The sharded community simulation (paper §6) with deterministic merge.
//!
//! A discrete-tick agent engine over `hosts` hosts: producers (ratio
//! `alpha`, hosts `[0, P)`) detect the first contact against them and
//! immunize the whole community `gamma_ticks` later; consumers rely on
//! per-attempt proactive protection (success probability `rho`). Each
//! infected consumer emits `attempts_per_tick` contact attempts per
//! tick against uniformly random hosts.
//!
//! ## Why results are bit-identical at any shard count
//!
//! Every random draw is *counter-based*: the target and success roll of
//! attempt `a` by host `h` at tick `t` are pure functions of
//! `(seed, h, t, a)` ([`crate::rng::draw`]) — no evolving generator
//! state. Hosts are partitioned into `K` contiguous shards; each tick
//! runs two barrier-separated phases:
//!
//! 1. **generate** — every shard visits its own infected hosts and
//!    emits events, routed by target shard. The visit order is
//!    backend-defined (see below); the coordinator's stable sort of
//!    each inbox by `(src, attempt)` canonicalizes it, so only the
//!    event *multiset* matters — and that is a pure function of the
//!    draws.
//! 2. **apply** — every shard applies the events targeting its own
//!    hosts. Infections are idempotent marks, the antibody clock is a
//!    `min` over producer-contact ticks, and infection counts are sums
//!    — all order-independent reductions.
//!
//! New infections become active the *next* tick (the generate phase of
//! tick `t` reads only state produced through tick `t-1`), so no shard
//! can observe another shard's same-tick writes. The serial engine is
//! the identical code run with one shard and no threads; the parity
//! test in `tests/` checks bit-identical curves for K ∈ {1, 2, 4, 8}.
//!
//! ## Two contact-state backends, one engine (PR 9)
//!
//! The engine body is generic over [`crate::soa::HostSet`]:
//!
//! * [`CommunityEngine::Legacy`] — the original dense backend, one
//!   `Vec<bool>` per shard scanned in host order every tick:
//!   O(shard size) per tick. Kept in-tree as the differential oracle.
//! * [`CommunityEngine::Soa`] (the default) — struct-of-arrays state
//!   ([`crate::soa::SoaHosts`]): bitset membership plus an active
//!   queue of exactly the hosts with pending scan activity, so a tick
//!   costs O(infected). This is what makes 1M–10M hosts tractable in
//!   the sparse (contained) regime.
//! * [`CommunityEngine::Differential`] — runs both and counts
//!   field-level outcome mismatches
//!   ([`CommunityOutcome::soa_parity_mismatches`], chaos invariant
//!   I11), mirroring the PR 7 checkpoint differential oracle.
//!
//! Both backends consume the identical draw stream, so legacy↔SoA
//! parity holds bit-identically, as does shard-count K-invariance.
//!
//! ## The antibody distribution network (PR 5)
//!
//! With [`DistNetParams::enabled`], the instantaneous immunity break at
//! `T0 + γ` is replaced by [`crate::distnet`]: at that tick producers
//! *broadcast* certified antibody bundles over a lossy/Byzantine wire,
//! and a consumer only becomes immune once it has received **and
//! verified** a bundle. The distribution step runs in the coordinator
//! between the barrier phases (its draws are keyed on
//! `(seed, host, attempt)`, never on shard structure), so shard parity
//! is preserved; with a perfect wire the run is bit-identical to the
//! legacy clock because every consumer verifies its bundle in the
//! broadcast tick itself.
//!
//! ## Connection-failure containment (PR 9)
//!
//! With [`FailContParams::enabled`], every *failed* contact against a
//! consumer is recorded into a hyper-compact failure estimator
//! ([`crate::failest`]): the generate phase records attempts blocked
//! by proactive protection (the ρ draw — from the source's side, a
//! failed exploit connection), the apply phase records contacts on
//! already-infected, antibody-protected, or throttle-blocked targets.
//! Sources whose
//! distinct-failure estimate crosses the threshold are flagged and
//! their attempt slots suppressed at the source with probability
//! `suppress`. All containment draws live in their own domains on the
//! same event keys, so enabling the knob never perturbs the existing
//! streams, and flag decisions are made only at the post-apply barrier
//! — shard- and engine-invariant by construction.

use std::time::Instant;

use crate::distnet::{DistNet, DistNetParams, DistOutcome, DOMAIN_THROTTLE};
use crate::failest::{FailCont, FailContOutcome, FailContParams, DOMAIN_FAILSUP};
use crate::model::Scenario;
use crate::rng::{draw, to_unit};
use crate::soa::{HostBits, HostSet, SoaHosts};

/// Domain separator for attempt-existence draws.
const DOMAIN_ATTEMPT: u64 = 0x6174_7470;
/// Domain separator for target-choice draws.
const DOMAIN_TARGET: u64 = 0x7461_7267;
/// Domain separator for success-roll draws.
const DOMAIN_SUCCESS: u64 = 0x7375_6363;

/// Below this many attempt draws per tick, run the phases inline even
/// when `K > 1`: thread spawn overhead would dominate. The outcome is
/// unaffected — the same shard functions run either way.
const PARALLEL_THRESHOLD: u64 = 4096;

/// How many worker shards the community engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One shard per available core (capped at 16).
    #[default]
    Auto,
    /// Exactly this many shards; `Fixed(1)` is the serial legacy path
    /// (no threads are spawned at all).
    Fixed(usize),
}

impl Parallelism {
    /// Resolve to a concrete shard count for `hosts` hosts.
    pub fn shards(self, hosts: u64) -> usize {
        let k = match self {
            Parallelism::Fixed(k) => k.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(16),
        };
        // Never more shards than hosts.
        k.min(hosts.max(1) as usize)
    }
}

/// Which contact-state backend executes the run (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommunityEngine {
    /// Dense per-tick scan over `Vec<bool>` — the differential oracle.
    Legacy,
    /// Struct-of-arrays bitset + active queue — O(infected) ticks.
    #[default]
    Soa,
    /// Run both in lockstep; return the SoA outcome with
    /// [`CommunityOutcome::soa_parity_mismatches`] populated.
    Differential,
}

/// Parameters of one community run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityParams {
    /// Total community size.
    pub hosts: u64,
    /// Producer ratio α (producers are hosts `[0, α·hosts)`).
    pub alpha: f64,
    /// Per-attempt success probability against a consumer (ρ).
    pub rho: f64,
    /// Ticks between first producer contact and community immunity (γ).
    pub gamma_ticks: u64,
    /// Contact-attempt slots each infected host has per tick (⌈β·Δt⌉).
    pub attempts_per_tick: u32,
    /// Probability each slot actually fires, so that
    /// `attempts_per_tick · attempt_prob = β·Δt` holds exactly even for
    /// slow worms (β·Δt < 1). `1.0` for fully saturated slots.
    pub attempt_prob: f64,
    /// Initially infected consumers.
    pub i0: u64,
    /// Hard tick cap (die-out guard).
    pub max_ticks: u64,
    /// Run seed: same seed ⇒ same result at any shard count.
    pub seed: u64,
    /// Shard/thread configuration.
    pub parallelism: Parallelism,
    /// Contact-state backend selection.
    pub engine: CommunityEngine,
    /// Antibody distribution network configuration
    /// ([`DistNetParams::disabled`] = the legacy instantaneous clock).
    pub distnet: DistNetParams,
    /// Connection-failure containment configuration
    /// ([`FailContParams::disabled`] = off).
    pub failcont: FailContParams,
}

impl CommunityParams {
    /// Map a continuous-time [`Scenario`] onto the tick engine using
    /// tick length `dt` (attempts per tick ≈ β·Δt, γ in ticks).
    pub fn from_scenario(
        s: &Scenario,
        dt: f64,
        seed: u64,
        parallelism: Parallelism,
    ) -> CommunityParams {
        let rate = s.beta * dt;
        let attempts = rate.ceil().max(1.0);
        CommunityParams {
            hosts: s.n.round().max(1.0) as u64,
            alpha: s.alpha,
            rho: s.rho,
            gamma_ticks: (s.gamma / dt).ceil().max(1.0) as u64,
            attempts_per_tick: attempts as u32,
            attempt_prob: (rate / attempts).min(1.0),
            i0: s.i0.round().max(1.0) as u64,
            max_ticks: 1_000_000,
            seed,
            parallelism,
            engine: CommunityEngine::default(),
            distnet: DistNetParams::disabled(),
            failcont: FailContParams::disabled(),
        }
    }

    fn producers(&self) -> u64 {
        ((self.alpha * self.hosts as f64).round() as u64).min(self.hosts)
    }
}

/// Per-shard counters surfaced in the run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Hosts owned by this shard.
    pub hosts: u64,
    /// Consumers in this shard infected when the run ended.
    pub infected: u64,
    /// Producer contacts observed by this shard's producers.
    pub producer_contacts: u64,
    /// Antibodies applied at the immunity instant (hosts in this shard
    /// still susceptible when immunity landed; 0 if never detected).
    pub antibodies_applied: u64,
    /// Events this shard emitted to *other* shards.
    pub events_sent_cross: u64,
    /// Events this shard received from *other* shards.
    pub events_received_cross: u64,
    /// Infection contacts blocked because the target had deployed a
    /// verified antibody (distribution-network runs only).
    pub protected_blocks: u64,
    /// Infection contacts blocked by a degraded consumer's contact
    /// throttling (distribution-network runs only).
    pub throttled_blocks: u64,
    /// Attempt slots suppressed at flagged sources (failcont runs only).
    pub failcont_suppressed: u64,
    /// Failed contacts recorded into the failure estimator by this
    /// shard (ρ-blocked attempts at generate, blocked contacts at
    /// apply; failcont runs only).
    pub failcont_failures: u64,
    /// Nanoseconds spent in this shard's generate phases.
    pub generate_nanos: u128,
    /// Nanoseconds spent in this shard's apply phases.
    pub apply_nanos: u128,
}

/// Per-tick aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickStats {
    /// Tick index.
    pub tick: u64,
    /// Consumers newly infected this tick.
    pub new_infections: u64,
    /// Events crossing a shard boundary this tick.
    pub events_exchanged: u64,
    /// Wall-clock nanoseconds for the whole tick (both phases).
    pub wall_nanos: u128,
}

/// Result of one community run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityOutcome {
    /// Tick of the first producer contact, if any.
    pub t0_tick: Option<u64>,
    /// Total consumers infected when the run ended (incl. `i0`).
    pub infected: u64,
    /// `infected / hosts`.
    pub infection_ratio: f64,
    /// Cumulative infected count after each simulated tick.
    pub curve: Vec<u64>,
    /// Ticks actually simulated.
    pub ticks: u64,
    /// Shard count used.
    pub shards_used: usize,
    /// Per-shard counters.
    pub shard_stats: Vec<ShardStats>,
    /// Per-tick counters.
    pub tick_stats: Vec<TickStats>,
    /// Distribution-network outcome (`None` for legacy-clock runs).
    pub dist: Option<DistOutcome>,
    /// Failure-containment outcome (`None` when the knob is off).
    pub failcont: Option<FailContOutcome>,
    /// `Differential` runs only: how many outcome fields the legacy and
    /// SoA engines disagreed on (`Some(0)` = bit-identical, invariant
    /// I11). `None` for single-engine runs.
    pub soa_parity_mismatches: Option<u64>,
}

impl CommunityOutcome {
    /// A metrics snapshot of this run, built the same way the engine
    /// itself merges state: one registry per shard, merged in shard
    /// order (counters add, which is order-independent anyway).
    ///
    /// The *simulation* counters (`epidemic.infected`,
    /// `epidemic.producer_contacts`, `epidemic.antibodies_applied`,
    /// `epidemic.new_infections`, `epidemic.ticks`) are pure functions
    /// of the run parameters and therefore identical at any shard
    /// count; the *topology* counters (`epidemic.events_cross_shard`)
    /// and the wall-clock gauges legitimately depend on `K` and are
    /// kept out of the parity-checked set.
    pub fn metrics(&self) -> obs::MetricsRegistry {
        let mut reg = obs::MetricsRegistry::new();
        for (i, s) in self.shard_stats.iter().enumerate() {
            let mut shard_reg = obs::MetricsRegistry::new();
            shard_reg.inc("epidemic.infected", s.infected);
            shard_reg.inc("epidemic.producer_contacts", s.producer_contacts);
            shard_reg.inc("epidemic.antibodies_applied", s.antibodies_applied);
            shard_reg.inc("epidemic.events_cross_shard", s.events_sent_cross);
            if self.failcont.is_some() {
                // Containment counters fold shard-order-independently
                // (sums), like the simulation counters: K-invariant.
                shard_reg.inc("failcont.suppressed_attempts", s.failcont_suppressed);
                shard_reg.inc("failcont.failures_recorded", s.failcont_failures);
            }
            if let Some(d) = &self.dist {
                // The distribution-network counters are attributed to
                // the *receiving* host's shard and folded here in shard
                // order, exactly like the simulation counters above —
                // so they are shard-count-invariant (pinned by
                // `metrics_simulation_counters_are_shard_count_invariant`).
                shard_reg.inc("distnet.protected_blocks", s.protected_blocks);
                shard_reg.inc("distnet.throttled_blocks", s.throttled_blocks);
                if let Some(ds) = d.shard_stats.get(i) {
                    ds.export(&mut shard_reg);
                }
            }
            reg.merge(&shard_reg);
        }
        if let Some(d) = &self.dist {
            reg.set_counter("distnet.deployed_unverified", d.deployed_unverified);
            reg.set_counter("distnet.byzantine_producers", d.byzantine_producers);
            reg.set_counter("distnet.protected_hosts", d.protected);
            reg.gauge("distnet.activated_tick", d.activated_tick as f64);
            reg.gauge(
                "distnet.gamma_effective_ticks",
                self.t0_tick
                    .and_then(|t0| d.gamma_effective(t0))
                    .map_or(-1.0, |g| g as f64),
            );
        }
        if let Some(f) = &self.failcont {
            reg.set_counter("failcont.flagged_sources", f.flagged_sources);
            reg.set_counter("failcont.pool_bits_set", f.bits_set);
        }
        if let Some(n) = self.soa_parity_mismatches {
            // Chaos invariant I11 reads this; 0 on every healthy
            // Differential run, identical across K legs.
            reg.set_counter("epidemic.soa_parity_mismatches", n);
        }
        reg.set_counter("epidemic.ticks", self.ticks);
        reg.set_counter(
            "epidemic.new_infections",
            self.tick_stats.iter().map(|t| t.new_infections).sum(),
        );
        reg.gauge("epidemic.infection_ratio", self.infection_ratio);
        reg.gauge("epidemic.shards_used", self.shards_used as f64);
        reg.gauge("epidemic.t0_tick", self.t0_tick.map_or(-1.0, |t| t as f64));
        let gen_ms: f64 = self
            .shard_stats
            .iter()
            .map(|s| s.generate_nanos as f64 / 1e6)
            .sum();
        let apply_ms: f64 = self
            .shard_stats
            .iter()
            .map(|s| s.apply_nanos as f64 / 1e6)
            .sum();
        reg.gauge("epidemic.generate_wall_ms", gen_ms);
        reg.gauge("epidemic.apply_wall_ms", apply_ms);
        reg
    }

    /// Render the per-shard counter table for the run report.
    pub fn shard_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "shards={} ticks={} t0={} infected={} ({:.4})\n",
            self.shards_used,
            self.ticks,
            self.t0_tick.map_or("-".to_string(), |t| t.to_string()),
            self.infected,
            self.infection_ratio,
        ));
        out.push_str("shard    hosts  infected  prod-contacts  antibodies  evt-out  evt-in   gen-ms  apply-ms\n");
        for s in &self.shard_stats {
            out.push_str(&format!(
                "{:>5} {:>8} {:>9} {:>14} {:>11} {:>8} {:>7} {:>8.2} {:>9.2}\n",
                s.shard,
                s.hosts,
                s.infected,
                s.producer_contacts,
                s.antibodies_applied,
                s.events_sent_cross,
                s.events_received_cross,
                s.generate_nanos as f64 / 1e6,
                s.apply_nanos as f64 / 1e6,
            ));
        }
        if let Some(d) = &self.dist {
            let sends: u64 = d.shard_stats.iter().map(|s| s.sends).sum();
            let verified: u64 = d.shard_stats.iter().map(|s| s.verified).sum();
            let rejected: u64 = d.shard_stats.iter().map(|s| s.rejected).sum();
            let quarantines: u64 = d.shard_stats.iter().map(|s| s.quarantines).sum();
            out.push_str(&format!(
                "distnet: activated={} complete={} gamma_eff={} protected={} byz={} \
                 sends={} verified={} rejected={} quarantines={} unverified_deploys={}\n",
                d.activated_tick,
                d.protection_complete_tick
                    .map_or("-".to_string(), |t| t.to_string()),
                self.t0_tick
                    .and_then(|t0| d.gamma_effective(t0))
                    .map_or("-".to_string(), |g| g.to_string()),
                d.protected,
                d.byzantine_producers,
                sends,
                verified,
                rejected,
                quarantines,
                d.deployed_unverified,
            ));
        }
        if let Some(f) = &self.failcont {
            out.push_str(&format!(
                "failcont: flagged={} failures={} suppressed={} pool_bits={}\n",
                f.flagged_sources, f.failures_recorded, f.suppressed_attempts, f.bits_set,
            ));
        }
        out
    }
}

/// One contact event, in canonical `(src, attempt)` order per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    /// Emitting (infected) host.
    src: u64,
    /// Attempt index within the emitting host's tick.
    attempt: u32,
    /// Contacted host.
    target: u64,
}

/// The legacy dense backend: one bool per owned host, visited in host
/// order by a full scan every tick — O(shard size) per tick regardless
/// of prevalence. Kept as the oracle the SoA backend is differenced
/// against (`CommunityEngine::Differential`).
struct DenseHosts(Vec<bool>);

impl HostSet for DenseHosts {
    fn with_capacity(len: u64) -> DenseHosts {
        DenseHosts(vec![false; len as usize])
    }

    fn contains(&self, off: u64) -> bool {
        self.0[off as usize]
    }

    fn insert(&mut self, off: u64) -> bool {
        let slot = &mut self.0[off as usize];
        let fresh = !*slot;
        *slot = true;
        fresh
    }

    fn count(&self) -> u64 {
        self.0.iter().filter(|f| **f).count() as u64
    }

    fn for_each_member(&self, mut f: impl FnMut(u64)) {
        for (off, flag) in self.0.iter().enumerate() {
            if *flag {
                f(off as u64);
            }
        }
    }
}

/// Host state owned by one shard: `[lo, hi)` plus infection membership.
struct Shard<S> {
    idx: usize,
    lo: u64,
    hi: u64,
    /// Infection membership per owned host (offset `host - lo`).
    hosts: S,
    stats: ShardStats,
}

impl<S: HostSet> Shard<S> {
    fn new(idx: usize, lo: u64, hi: u64) -> Shard<S> {
        Shard {
            idx,
            lo,
            hi,
            hosts: S::with_capacity(hi - lo),
            stats: ShardStats {
                shard: idx,
                hosts: hi - lo,
                ..ShardStats::default()
            },
        }
    }

    /// Generate this tick's events from this shard's infected hosts
    /// into the shard's reused outbox row (one `Vec` per target shard,
    /// cleared here — the coordinator hoists the allocations across
    /// ticks).
    ///
    /// With failure containment on, an attempt blocked by proactive
    /// protection (the ρ draw) is recorded into `failures` — from the
    /// scanning source's side, that exploit connection failed.
    ///
    /// Backend visit order is free: the coordinator's canonical inbox
    /// sort re-establishes `(src, attempt)` order downstream.
    fn generate(
        &mut self,
        p: &CommunityParams,
        bounds: &[(u64, u64)],
        tick: u64,
        flagged: Option<&HostBits>,
        out: &mut [Vec<Event>],
        failures: &mut Vec<(u64, u64)>,
    ) {
        let t_start = Instant::now();
        for ob in out.iter_mut() {
            ob.clear();
        }
        let attempts = u64::from(p.attempts_per_tick);
        let producers = p.producers();
        let record = p.failcont.enabled;
        let Shard {
            idx,
            lo,
            hosts,
            stats,
            ..
        } = self;
        hosts.for_each_member(|off| {
            let src = *lo + off;
            for a in 0..attempts {
                let key = (tick * p.hosts + src) * attempts + a;
                if let Some(fl) = flagged {
                    // A flagged source loses this slot with probability
                    // `suppress`; the draw lives in its own domain on
                    // the same event key, so the attempt/target/success
                    // streams below are untouched.
                    if fl.contains(src)
                        && to_unit(draw(p.seed, DOMAIN_FAILSUP, key)) < p.failcont.suppress
                    {
                        stats.failcont_suppressed += 1;
                        continue;
                    }
                }
                if p.attempt_prob < 1.0
                    && to_unit(draw(p.seed, DOMAIN_ATTEMPT, key)) >= p.attempt_prob
                {
                    continue; // This slot doesn't fire (β·Δt < slots).
                }
                let target = draw(p.seed, DOMAIN_TARGET, key) % p.hosts;
                if target >= producers {
                    // Consumer target: roll proactive protection now;
                    // only successful attempts are shipped. A blocked
                    // exploit is a *failed connection* as seen from the
                    // source — the primary signal the failure estimator
                    // keys on (Zhou et al.).
                    let u = to_unit(draw(p.seed, DOMAIN_SUCCESS, key));
                    if u >= p.rho {
                        if record {
                            stats.failcont_failures += 1;
                            failures.push((src, key));
                        }
                        continue;
                    }
                }
                let dest = shard_of(target, bounds);
                if dest != *idx {
                    stats.events_sent_cross += 1;
                }
                out[dest].push(Event {
                    src,
                    attempt: a as u32,
                    target,
                });
            }
        });
        self.stats.generate_nanos += t_start.elapsed().as_nanos();
    }

    /// Apply the canonically merged inbox for this tick.
    ///
    /// Returns `(new_infections, producer_contact_this_tick)`. All
    /// updates are order-independent (idempotent marks, counts, min),
    /// but the inbox is nonetheless sorted canonically upstream so the
    /// merge order itself is deterministic and auditable.
    ///
    /// When the distribution network is active (`dist`), a consumer
    /// that has deployed a verified antibody blocks the contact
    /// outright, and a *degraded* consumer (forged-bundle-bitten,
    /// still unprotected) blocks it with probability
    /// `distnet.throttle` via a counter-based draw keyed on the same
    /// event key the generate phase used — deterministic and
    /// shard-order-independent. `dist` is read-only here; all its
    /// mutation happens in the coordinator between phases.
    ///
    /// With failure containment on, every contact against a consumer
    /// that does *not* newly infect it — already infected, antibody-
    /// protected, or throttle-blocked — is pushed into `failures` as a
    /// `(src, key)` record; the coordinator folds them into the
    /// estimator after the barrier. Producer contacts are detections,
    /// not failures.
    fn apply(
        &mut self,
        p: &CommunityParams,
        inbox: &[Event],
        tick: u64,
        dist: Option<&DistNet>,
        failures: &mut Vec<(u64, u64)>,
    ) -> (u64, bool) {
        let t_start = Instant::now();
        let producers = p.producers();
        let attempts = u64::from(p.attempts_per_tick);
        let record = p.failcont.enabled;
        let mut fresh = 0u64;
        let mut producer_contact = false;
        for ev in inbox {
            if shard_of_range(ev.src, self.lo, self.hi).is_none() {
                self.stats.events_received_cross += 1;
            }
            if ev.target < producers {
                // A producer was contacted: the antibody clock starts.
                self.stats.producer_contacts += 1;
                producer_contact = true;
                continue;
            }
            let off = ev.target - self.lo;
            let key = (tick * p.hosts + ev.src) * attempts + u64::from(ev.attempt);
            if self.hosts.contains(off) {
                if record {
                    self.stats.failcont_failures += 1;
                    failures.push((ev.src, key));
                }
                continue;
            }
            if let Some(d) = dist {
                if d.protected(ev.target) {
                    self.stats.protected_blocks += 1;
                    if record {
                        self.stats.failcont_failures += 1;
                        failures.push((ev.src, key));
                    }
                    continue;
                }
                if p.distnet.throttle > 0.0
                    && d.throttled(ev.target)
                    && to_unit(draw(p.seed, DOMAIN_THROTTLE, key)) < p.distnet.throttle
                {
                    self.stats.throttled_blocks += 1;
                    if record {
                        self.stats.failcont_failures += 1;
                        failures.push((ev.src, key));
                    }
                    continue;
                }
            }
            self.hosts.insert(off);
            fresh += 1;
        }
        self.stats.infected += fresh;
        self.stats.apply_nanos += t_start.elapsed().as_nanos();
        (fresh, producer_contact)
    }
}

/// Which shard owns `host`, given per-shard `(lo, hi)` bounds.
fn shard_of(host: u64, bounds: &[(u64, u64)]) -> usize {
    // Bounds are contiguous and sorted; binary search the partition.
    match bounds.binary_search_by(|&(lo, hi)| {
        if host < lo {
            core::cmp::Ordering::Greater
        } else if host >= hi {
            core::cmp::Ordering::Less
        } else {
            core::cmp::Ordering::Equal
        }
    }) {
        Ok(i) => i,
        Err(_) => bounds.len() - 1, // Unreachable for valid partitions.
    }
}

/// `Some(())` when `host` lies in `[lo, hi)`.
fn shard_of_range(host: u64, lo: u64, hi: u64) -> Option<()> {
    (host >= lo && host < hi).then_some(())
}

/// Contiguous partition of `[0, hosts)` into `k` near-equal ranges.
fn partition(hosts: u64, k: usize) -> Vec<(u64, u64)> {
    let k64 = k as u64;
    let base = hosts / k64;
    let extra = hosts % k64;
    let mut bounds = Vec::with_capacity(k);
    let mut lo = 0;
    for i in 0..k64 {
        let len = base + u64::from(i < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

/// Run the community simulation described by `p`.
///
/// The result is a pure function of `p` minus `parallelism`: any shard
/// count — and either contact-state backend — produces the identical
/// outcome (up to the timing counters in [`ShardStats`] /
/// [`TickStats`]). `Differential` runs both backends and reports the
/// mismatch count on the returned (SoA) outcome.
pub fn run(p: &CommunityParams) -> CommunityOutcome {
    match p.engine {
        CommunityEngine::Legacy => run_engine::<DenseHosts>(p),
        CommunityEngine::Soa => run_engine::<SoaHosts>(p),
        CommunityEngine::Differential => {
            let oracle = run_engine::<DenseHosts>(p);
            let mut out = run_engine::<SoaHosts>(p);
            out.soa_parity_mismatches = Some(parity_mismatches(&oracle, &out));
            out
        }
    }
}

/// Count the outcome fields on which two engine runs disagree.
///
/// Everything except the wall-clock counters participates: essence
/// (t0, totals, curve, tick count), per-shard simulation/topology/
/// containment counters, per-tick stats, the distribution-network
/// outcome and the failure-containment outcome. 0 = bit-identical.
fn parity_mismatches(a: &CommunityOutcome, b: &CommunityOutcome) -> u64 {
    let mut n = 0u64;
    let mut check = |same: bool| {
        if !same {
            n += 1;
        }
    };
    check(a.t0_tick == b.t0_tick);
    check(a.infected == b.infected);
    check(a.infection_ratio.to_bits() == b.infection_ratio.to_bits());
    check(a.curve == b.curve);
    check(a.ticks == b.ticks);
    check(a.shards_used == b.shards_used);
    check(a.shard_stats.len() == b.shard_stats.len());
    for (x, y) in a.shard_stats.iter().zip(&b.shard_stats) {
        check(x.shard == y.shard);
        check(x.hosts == y.hosts);
        check(x.infected == y.infected);
        check(x.producer_contacts == y.producer_contacts);
        check(x.antibodies_applied == y.antibodies_applied);
        check(x.events_sent_cross == y.events_sent_cross);
        check(x.events_received_cross == y.events_received_cross);
        check(x.protected_blocks == y.protected_blocks);
        check(x.throttled_blocks == y.throttled_blocks);
        check(x.failcont_suppressed == y.failcont_suppressed);
        check(x.failcont_failures == y.failcont_failures);
    }
    check(a.tick_stats.len() == b.tick_stats.len());
    for (x, y) in a.tick_stats.iter().zip(&b.tick_stats) {
        check(x.tick == y.tick);
        check(x.new_infections == y.new_infections);
        check(x.events_exchanged == y.events_exchanged);
    }
    check(a.dist == b.dist);
    check(a.failcont == b.failcont);
    n
}

/// The engine body, generic over the contact-state backend.
fn run_engine<S: HostSet>(p: &CommunityParams) -> CommunityOutcome {
    assert!(p.hosts >= 2, "community needs at least two hosts");
    let k = p.parallelism.shards(p.hosts);
    let bounds = partition(p.hosts, k);
    let mut shards: Vec<Shard<S>> = bounds
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| Shard::new(i, lo, hi))
        .collect();

    // Seed infections among consumers (the worm starts outside).
    let producers = p.producers();
    let consumer_count = p.hosts - producers;
    let i0 = p.i0.min(consumer_count).max(1);
    for s in 0..i0 {
        let host = (producers + s).min(p.hosts - 1);
        let dest = shard_of(host, &bounds);
        let off = host - shards[dest].lo;
        if shards[dest].hosts.insert(off) {
            shards[dest].stats.infected += 1;
        }
    }

    let mut infected: u64 = shards.iter().map(|s| s.stats.infected).sum();
    let mut t0_tick: Option<u64> = None;
    let mut curve = Vec::new();
    let mut tick_stats = Vec::new();
    let mut tick = 0u64;
    // Distribution network (distnet runs only): created at the tick
    // antibody *production* completes (`T0 + γ`); from then on bundles
    // must actually traverse the wire and verify before a consumer is
    // protected. `resolved` counts consumers that are infected or
    // protected — once every consumer is resolved, nothing can change.
    let mut dist: Option<DistNet> = None;
    let mut resolved: u64 = infected;
    // Failure-containment estimator (failcont runs only); fed at the
    // post-apply barrier, read (flag membership) by generate.
    let mut failcont: Option<FailCont> = p
        .failcont
        .enabled
        .then(|| FailCont::new(&p.failcont, p.seed, p.hosts));

    // Hoisted scratch (PR 9 fix): the per-tick shard loop used to
    // allocate a fresh k×k outbox matrix, k inboxes and their routing
    // clones every tick. These buffers now live across ticks — cleared
    // and refilled in place, routed by `Vec::append` draining — so the
    // steady-state tick loop allocates only on high-water growth.
    let mut outboxes: Vec<Vec<Vec<Event>>> = (0..k).map(|_| vec![Vec::new(); k]).collect();
    let mut inboxes: Vec<Vec<Event>> = vec![Vec::new(); k];
    let mut failure_bufs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); k];

    while tick < p.max_ticks {
        if p.distnet.enabled {
            if dist.is_none() {
                if let Some(t0) = t0_tick {
                    if tick >= t0 + p.gamma_ticks {
                        // Production complete: initial broadcast now.
                        dist = Some(DistNet::new(
                            &p.distnet, p.seed, p.hosts, producers, &bounds, tick,
                        ));
                    }
                }
            }
            if let Some(d) = dist.as_mut() {
                // The distribution step runs in the coordinator, before
                // the generate phase, so a bundle verified at tick t
                // protects its host from tick t's contacts — with a
                // perfect wire that reproduces the legacy instant-
                // immunity break bit-identically.
                let infected_q = |h: u64| {
                    let s = shard_of(h, &bounds);
                    shards[s].hosts.contains(h - bounds[s].0)
                };
                resolved += d.step(tick, &infected_q);
            }
            if resolved >= consumer_count {
                break; // Every consumer is infected or protected.
            }
        } else {
            if let Some(t0) = t0_tick {
                if tick >= t0 + p.gamma_ticks {
                    break; // Immunity deployed.
                }
            }
            if infected >= consumer_count {
                break; // Saturation.
            }
        }
        let tick_start = Instant::now();
        // Sparse ticks (few infected hosts) run inline: spawning
        // threads would cost more than the work saves. Same functions,
        // same result either way.
        let go_parallel =
            k > 1 && infected.saturating_mul(u64::from(p.attempts_per_tick)) >= PARALLEL_THRESHOLD;
        let flagged = failcont.as_ref().map(|f| f.flagged());

        // Phase 1: generate (parallel over shards), each shard filling
        // its own persistent outbox row.
        if !go_parallel {
            for ((sh, out), fb) in shards
                .iter_mut()
                .zip(outboxes.iter_mut())
                .zip(failure_bufs.iter_mut())
            {
                sh.generate(p, &bounds, tick, flagged, out, fb);
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(outboxes.iter_mut())
                    .zip(failure_bufs.iter_mut())
                    .map(|((sh, out), fb)| {
                        let bounds = &bounds;
                        scope.spawn(move || sh.generate(p, bounds, tick, flagged, out, fb))
                    })
                    .collect();
                for h in handles {
                    h.join().expect("generate worker");
                }
            });
        }

        // Route + canonical merge: inbox[d] gathers every shard's
        // outbox for destination d, drained in shard (= src) order and
        // stably sorted by (src, attempt). Concatenation in shard order
        // already yields that order for contiguous partitions with the
        // dense backend; the sort makes the invariant explicit and
        // independent of backend visit order.
        let mut exchanged = 0u64;
        for (d, inbox) in inboxes.iter_mut().enumerate() {
            inbox.clear();
            for (s, ob) in outboxes.iter_mut().enumerate() {
                if s != d {
                    exchanged += ob[d].len() as u64;
                }
                inbox.append(&mut ob[d]);
            }
            inbox.sort_by_key(|e| (e.src, e.attempt));
        }

        // Phase 2: apply (parallel over target shards — disjoint state).
        // The distribution network is only *read* here (protection /
        // throttle flags); `Option<&DistNet>` is freely shared across
        // the scoped workers. Failure records land in per-shard scratch
        // buffers, folded after the barrier.
        let dist_ref = dist.as_ref();
        let applied: Vec<(u64, bool)> = if !go_parallel {
            shards
                .iter_mut()
                .zip(inboxes.iter())
                .zip(failure_bufs.iter_mut())
                .map(|((sh, inbox), fb)| sh.apply(p, inbox, tick, dist_ref, fb))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(inboxes.iter())
                    .zip(failure_bufs.iter_mut())
                    .map(|((sh, inbox), fb)| {
                        scope.spawn(move || sh.apply(p, inbox, tick, dist_ref, fb))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("apply worker"))
                    .collect()
            })
        };

        // Post-apply barrier: fold this tick's failure records and make
        // flag decisions against the fully folded pool (shard- and
        // engine-invariant; see `crate::failest`).
        if let Some(fc) = failcont.as_mut() {
            fc.fold_tick(&mut failure_bufs);
        }

        let fresh: u64 = applied.iter().map(|&(f, _)| f).sum();
        if t0_tick.is_none() && applied.iter().any(|&(_, c)| c) {
            t0_tick = Some(tick); // min over ticks: first tick with any contact.
        }
        infected += fresh;
        // A freshly infected consumer was necessarily unprotected (the
        // apply phase blocks protected targets), so it newly resolves.
        resolved += fresh;
        curve.push(infected);
        tick_stats.push(TickStats {
            tick,
            new_infections: fresh,
            events_exchanged: exchanged,
            wall_nanos: tick_start.elapsed().as_nanos(),
        });
        tick += 1;
    }

    // Antibody application at the immunity instant.
    if t0_tick.is_some() {
        for sh in &mut shards {
            sh.stats.antibodies_applied = sh.stats.hosts - sh.hosts.count();
        }
    }

    let failcont_out = failcont.map(|fc| {
        let suppressed: u64 = shards.iter().map(|s| s.stats.failcont_suppressed).sum();
        fc.outcome(suppressed)
    });
    CommunityOutcome {
        t0_tick,
        infected,
        infection_ratio: infected as f64 / p.hosts as f64,
        curve,
        ticks: tick,
        shards_used: k,
        shard_stats: shards.into_iter().map(|s| s.stats).collect(),
        tick_stats,
        dist: dist.map(|d| DistOutcome {
            activated_tick: d.activated_tick(),
            protection_complete_tick: d.protection_complete_tick(),
            protected: d.protected_count(),
            byzantine_producers: d.byzantine_producers(),
            deployed_unverified: d.deployed_unverified(),
            shard_stats: d.shard_stats().to_vec(),
        }),
        failcont: failcont_out,
        soa_parity_mismatches: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(hosts: u64, alpha: f64, gamma_ticks: u64, k: usize) -> CommunityParams {
        CommunityParams {
            hosts,
            alpha,
            rho: 1.0,
            gamma_ticks,
            attempts_per_tick: 1,
            attempt_prob: 1.0,
            i0: 1,
            max_ticks: 5_000,
            seed: 42,
            parallelism: Parallelism::Fixed(k),
            engine: CommunityEngine::default(),
            distnet: DistNetParams::disabled(),
            failcont: FailContParams::disabled(),
        }
    }

    /// Strip the timing/topology counters so outcomes can be compared
    /// across shard counts.
    fn essence(o: &CommunityOutcome) -> (Option<u64>, u64, Vec<u64>, u64) {
        (o.t0_tick, o.infected, o.curve.clone(), o.ticks)
    }

    /// FNV-1a over a curve, for compact pinning of long outcomes.
    fn curve_fnv(curve: &[u64]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in curve {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    #[test]
    fn partition_is_contiguous_and_total() {
        for (hosts, k) in [(10u64, 3usize), (16, 4), (7, 7), (100, 1)] {
            let b = partition(hosts, k);
            assert_eq!(b.len(), k);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[k - 1].1, hosts);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            for h in 0..hosts {
                let s = shard_of(h, &b);
                assert!(b[s].0 <= h && h < b[s].1);
            }
        }
    }

    #[test]
    fn serial_and_sharded_agree_exactly() {
        let serial = run(&params(500, 0.01, 40, 1));
        for k in [2usize, 3, 4, 8] {
            let sharded = run(&params(500, 0.01, 40, k));
            assert_eq!(essence(&serial), essence(&sharded), "k={k}");
            assert_eq!(sharded.shards_used, k);
        }
    }

    #[test]
    fn dense_ticks_take_the_threaded_path_and_still_agree() {
        // i0 high enough that infected × attempts crosses the inline
        // threshold, so k > 1 really runs on worker threads.
        let dense = |k| CommunityParams {
            i0: 8_000,
            ..params(20_000, 0.005, 15, k)
        };
        let serial = run(&dense(1));
        for k in [2usize, 4, 8] {
            let sharded = run(&dense(k));
            assert_eq!(essence(&serial), essence(&sharded), "k={k}");
        }
    }

    #[test]
    fn legacy_and_soa_engines_agree_bit_identically() {
        // The tentpole parity claim, checked through the public
        // `Differential` knob: zero field mismatches on legacy-clock,
        // ideal-wire, lossy-wire and failcont configurations, serial
        // and sharded.
        let configs = [
            params(500, 0.01, 40, 1),
            params(500, 0.01, 40, 4),
            CommunityParams {
                distnet: DistNetParams::ideal(),
                ..contained_params(4, 42, 2)
            },
            CommunityParams {
                distnet: DistNetParams::lossy(0.35, 0.3),
                ..contained_params(5, 7, 3)
            },
            CommunityParams {
                failcont: FailContParams::standard(),
                ..params(1_000, 0.0, 10, 2)
            },
        ];
        for base in configs {
            let out = run(&CommunityParams {
                engine: CommunityEngine::Differential,
                ..base
            });
            assert_eq!(out.soa_parity_mismatches, Some(0), "{base:?}");
            // And the differential run's (SoA) outcome matches each
            // single-engine run outwardly too.
            let legacy = run(&CommunityParams {
                engine: CommunityEngine::Legacy,
                ..base
            });
            let soa = run(&CommunityParams {
                engine: CommunityEngine::Soa,
                ..base
            });
            assert_eq!(essence(&legacy), essence(&soa), "{base:?}");
            assert_eq!(essence(&legacy), essence(&out), "{base:?}");
            assert_eq!(legacy.dist, soa.dist, "{base:?}");
            assert_eq!(legacy.failcont, soa.failcont, "{base:?}");
        }
    }

    #[test]
    fn pinned_outcomes_are_unchanged_by_the_rework() {
        // Values captured from the pre-PR-9 engine (dense scans,
        // per-tick scratch allocation, map-based distnet): the scratch
        // hoist, the SoA backend and the distnet re-index must all
        // reproduce them exactly.
        for engine in [CommunityEngine::Legacy, CommunityEngine::Soa] {
            let o = run(&CommunityParams {
                engine,
                ..params(500, 0.01, 40, 1)
            });
            assert_eq!(o.t0_tick, Some(8), "{engine:?}");
            assert_eq!(o.infected, 495, "{engine:?}");
            assert_eq!(o.ticks, 15, "{engine:?}");
            assert_eq!(curve_fnv(&o.curve), 0x3b25_e759_491d_a176, "{engine:?}");

            let o = run(&CommunityParams {
                engine,
                distnet: DistNetParams::ideal(),
                parallelism: Parallelism::Fixed(2),
                ..contained_params(4, 42, 2)
            });
            let d = o.dist.as_ref().expect("dist outcome");
            assert_eq!(
                (o.t0_tick, o.infected, o.ticks, d.protected),
                (Some(4), 35, 8, 1_900),
                "{engine:?}"
            );
            assert_eq!(curve_fnv(&o.curve), 0x7445_d04f_2455_a20a, "{engine:?}");

            let o = run(&CommunityParams {
                engine,
                distnet: DistNetParams::lossy(0.35, 0.3),
                parallelism: Parallelism::Fixed(1),
                ..contained_params(5, 7, 1)
            });
            let d = o.dist.as_ref().expect("dist outcome");
            let verified: u64 = d.shard_stats.iter().map(|s| s.verified).sum();
            let rejected: u64 = d.shard_stats.iter().map(|s| s.rejected).sum();
            assert_eq!(
                (o.t0_tick, o.infected, o.ticks, d.protected),
                (Some(7), 368, 108, 1_893),
                "{engine:?}"
            );
            assert_eq!((verified, rejected), (1_893, 830), "{engine:?}");
            assert_eq!(curve_fnv(&o.curve), 0xfe91_1748_27fa_0caa, "{engine:?}");
        }
    }

    #[test]
    fn outbreak_is_contained_with_producers() {
        let out = run(&params(2_000, 0.02, 30, 4));
        assert!(out.t0_tick.is_some(), "producers should be contacted");
        assert!(
            out.infection_ratio < 1.0,
            "immunity should stop saturation: {out:?}"
        );
    }

    #[test]
    fn no_producers_saturates() {
        let out = run(&params(300, 0.0, 50, 2));
        assert!(out.t0_tick.is_none());
        assert_eq!(out.infected, 300, "all consumers infected");
    }

    #[test]
    fn proactive_protection_reduces_spread() {
        let hot = run(&params(2_000, 0.005, 60, 4));
        let cold = run(&CommunityParams {
            rho: (2.0f64).powi(-12),
            ..params(2_000, 0.005, 60, 4)
        });
        assert!(
            cold.infected < hot.infected.max(2),
            "ASLR-style protection must slow the worm: hot {} cold {}",
            hot.infected,
            cold.infected
        );
    }

    #[test]
    fn curve_is_monotonic_and_counters_consistent() {
        let out = run(&params(800, 0.01, 25, 4));
        for w in out.curve.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let per_shard: u64 = out.shard_stats.iter().map(|s| s.infected).sum();
        assert_eq!(per_shard, out.infected);
        let hosts: u64 = out.shard_stats.iter().map(|s| s.hosts).sum();
        assert_eq!(hosts, 800);
    }

    #[test]
    fn from_scenario_maps_rates() {
        let s = Scenario {
            beta: 1000.0,
            n: 1e5,
            alpha: 0.001,
            rho: 1.0,
            gamma: 0.1,
            i0: 1.0,
        };
        let p = CommunityParams::from_scenario(&s, 0.001, 7, Parallelism::Fixed(2));
        assert_eq!(p.hosts, 100_000);
        assert_eq!(p.attempts_per_tick, 1);
        assert!((p.attempt_prob - 1.0).abs() < 1e-12);
        assert_eq!(p.gamma_ticks, 100);
        assert_eq!(p.engine, CommunityEngine::Soa, "SoA is the default");
        assert!(!p.failcont.enabled, "containment defaults off");

        // A slow worm maps to fractional attempts (β·Δt < 1).
        let slow = Scenario {
            beta: 0.1,
            gamma: 5.0,
            ..s
        };
        let p2 = CommunityParams::from_scenario(&slow, 1.0, 7, Parallelism::Fixed(1));
        assert_eq!(p2.attempts_per_tick, 1);
        assert!((p2.attempt_prob - 0.1).abs() < 1e-12);
        assert_eq!(p2.gamma_ticks, 5);
    }

    #[test]
    fn metrics_simulation_counters_are_shard_count_invariant() {
        // The sharded merge (per-shard registries merged in shard
        // order) must reproduce the serial engine's simulation
        // counters exactly; only topology counters may differ with K.
        let serial = run(&params(800, 0.01, 25, 1)).metrics();
        const SIM: &[&str] = &[
            "epidemic.infected",
            "epidemic.producer_contacts",
            "epidemic.antibodies_applied",
            "epidemic.new_infections",
            "epidemic.ticks",
        ];
        assert_eq!(serial.counter("epidemic.events_cross_shard"), 0);
        assert!(serial.counter("epidemic.infected") > 0);
        for k in [2usize, 4, 8] {
            let m = run(&params(800, 0.01, 25, k)).metrics();
            for name in SIM {
                assert_eq!(m.counter(name), serial.counter(name), "{name} k={k}");
            }
            assert_eq!(m.gauge_value("epidemic.shards_used"), Some(k as f64));
        }
    }

    /// The epidemic-core counters that must be identical between the
    /// legacy clock and the zero-fault distribution network.
    const EPI_SIM: &[&str] = &[
        "epidemic.infected",
        "epidemic.producer_contacts",
        "epidemic.antibodies_applied",
        "epidemic.new_infections",
        "epidemic.ticks",
    ];

    /// A configuration where the antibody clock genuinely wins the race
    /// (plenty of producers, ρ = 0.5 slowing the worm): the legacy run
    /// ends via the immunity break, so the distribution network really
    /// activates and does its work.
    fn contained_params(gamma_ticks: u64, seed: u64, k: usize) -> CommunityParams {
        CommunityParams {
            rho: 0.5,
            gamma_ticks,
            seed,
            ..params(2_000, 0.05, gamma_ticks, k)
        }
    }

    #[test]
    fn ideal_distnet_reproduces_legacy_clock_bit_identically() {
        // The differential anchor: a perfect wire (no loss, dup, delay
        // or Byzantine producers) must reproduce the instantaneous-γ
        // results bit-identically — essence AND epidemic counters —
        // at K = 1 and K = 4, across several seeds and gammas,
        // including saturating runs where the network never activates.
        let mut activated = 0usize;
        let configs = [
            contained_params(4, 42, 1),
            contained_params(1, 7, 1),
            contained_params(9, 1234, 1),
            params(500, 0.01, 40, 1), // may saturate before T0 + γ
        ];
        for base in configs {
            for k in [1usize, 4] {
                let legacy = CommunityParams {
                    parallelism: Parallelism::Fixed(k),
                    ..base
                };
                let ideal = CommunityParams {
                    distnet: DistNetParams::ideal(),
                    ..legacy
                };
                let a = run(&legacy);
                let b = run(&ideal);
                let ctx = format!("seed={} gamma={} k={k}", base.seed, base.gamma_ticks);
                assert_eq!(essence(&a), essence(&b), "{ctx}");
                let (ma, mb) = (a.metrics(), b.metrics());
                for name in EPI_SIM {
                    assert_eq!(ma.counter(name), mb.counter(name), "{name} {ctx}");
                }
                // When the network activated, every consumer verified a
                // bundle in the broadcast tick itself: the emergent γ
                // equals the production γ, nothing was rejected, I8
                // holds.
                if let Some(d) = &b.dist {
                    activated += 1;
                    let verified: u64 = d.shard_stats.iter().map(|s| s.verified).sum();
                    assert!(verified > 0, "{ctx}: bundles must have been verified");
                    let rejected: u64 = d.shard_stats.iter().map(|s| s.rejected).sum();
                    assert_eq!(rejected, 0, "{ctx}: perfect wire rejects nothing");
                    assert_eq!(d.deployed_unverified, 0, "{ctx}");
                    assert_eq!(
                        d.gamma_effective(a.t0_tick.unwrap()),
                        Some(base.gamma_ticks.max(1)),
                        "{ctx}"
                    );
                }
            }
        }
        assert!(
            activated >= 6,
            "the contained configs must actually exercise the network ({activated})"
        );
    }

    #[test]
    fn ideal_distnet_parity_holds_across_shard_counts() {
        let base = CommunityParams {
            distnet: DistNetParams::ideal(),
            ..params(500, 0.01, 40, 1)
        };
        let serial = run(&base);
        for k in [2usize, 4, 8] {
            let sharded = run(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                ..base
            });
            assert_eq!(essence(&serial), essence(&sharded), "k={k}");
        }
    }

    #[test]
    fn lossy_wire_extends_gamma_and_infection() {
        let legacy = contained_params(4, 42, 2);
        let lossy = CommunityParams {
            distnet: DistNetParams::lossy(0.6, 0.0),
            ..legacy
        };
        let a = run(&legacy);
        let b = run(&lossy);
        let d = b.dist.expect("distnet outcome");
        let t0 = b.t0_tick.expect("producers contacted");
        // The legacy clock immunizes everyone the instant γ expires; a
        // wire dropping 60% of sends must take strictly longer to cover
        // the community, visible as extra simulated ticks...
        assert!(
            b.ticks > a.ticks,
            "loss must stretch the race: {} vs {} ticks",
            b.ticks,
            a.ticks
        );
        // ...and, when protection does complete, as an emergent γ above
        // the production γ. (Under heavy loss the run may end with some
        // already-infected consumers still unprotected, in which case
        // there is no completion tick to measure.)
        if let Some(g_eff) = d.gamma_effective(t0) {
            assert!(
                g_eff > legacy.gamma_ticks,
                "loss must stretch γ: {g_eff} vs {}",
                legacy.gamma_ticks
            );
        }
        assert!(
            b.infected >= a.infected,
            "a lossy wire cannot contain better than a perfect one"
        );
        let drops: u64 = d.shard_stats.iter().map(|s| s.drops).sum();
        let retries: u64 = d.shard_stats.iter().map(|s| s.retries).sum();
        assert!(drops > 0 && retries > 0, "the wire must actually be lossy");
    }

    #[test]
    fn byzantine_producers_trigger_quarantine_and_throttling() {
        let p = CommunityParams {
            distnet: DistNetParams::lossy(0.1, 0.4),
            ..contained_params(4, 42, 4)
        };
        let out = run(&p);
        let d = out.dist.as_ref().expect("distnet outcome");
        assert!(
            d.byzantine_producers > 0,
            "seed must pick Byzantine producers"
        );
        assert_eq!(d.deployed_unverified, 0, "I8: forgeries never deploy");
        let rejected: u64 = d.shard_stats.iter().map(|s| s.rejected).sum();
        let quarantines: u64 = d.shard_stats.iter().map(|s| s.quarantines).sum();
        assert!(rejected > 0, "forged bundles must be rejected");
        assert!(quarantines > 0, "rejections must quarantine senders");
        let m = out.metrics();
        assert_eq!(m.counter("distnet.quarantines"), quarantines);
        assert_eq!(m.counter("distnet.deployed_unverified"), 0);
    }

    #[test]
    fn distnet_counters_are_shard_count_invariant() {
        // PR-5 bugfix satellite: the per-host distribution counters are
        // attributed to the receiving host's shard and folded in shard
        // order by `metrics()`; a merge that leaked shard order or
        // shard topology into the counters would fail this.
        let base = CommunityParams {
            distnet: DistNetParams::lossy(0.35, 0.3),
            ..contained_params(5, 7, 1)
        };
        let serial = run(&base).metrics();
        const DIST: &[&str] = &[
            "distnet.sends",
            "distnet.retries",
            "distnet.drops",
            "distnet.dups",
            "distnet.delayed",
            "distnet.verified",
            "distnet.rejected",
            "distnet.quarantines",
            "distnet.skipped_quarantined",
            "distnet.late",
            "distnet.gave_up",
            "distnet.protected_blocks",
            "distnet.throttled_blocks",
            "distnet.deployed_unverified",
            "distnet.byzantine_producers",
            "distnet.protected_hosts",
        ];
        assert!(serial.counter("distnet.sends") > 0);
        for k in [2usize, 4, 8] {
            let m = run(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                ..base
            })
            .metrics();
            for name in EPI_SIM.iter().chain(DIST) {
                assert_eq!(m.counter(name), serial.counter(name), "{name} k={k}");
            }
        }
    }

    #[test]
    fn fractional_attempts_preserve_parity_too() {
        let base = CommunityParams {
            attempt_prob: 0.3,
            ..params(600, 0.01, 30, 1)
        };
        let serial = run(&base);
        let sharded = run(&CommunityParams {
            parallelism: Parallelism::Fixed(4),
            ..base
        });
        assert_eq!(essence(&serial), essence(&sharded));
    }

    #[test]
    fn failure_containment_slows_an_uncontained_worm() {
        // No producers, no distnet: the only brake is the estimator.
        // Proactive protection (ρ = 0.1) blocks 90% of exploits, so a
        // scanning source leaves ~0.9 failed connections per tick and
        // crosses the 32-slot flag threshold long before saturation.
        // Saturation must take strictly longer with containment on, and
        // the machinery must visibly engage.
        let open = CommunityParams {
            rho: 0.1,
            ..params(2_000, 0.0, 50, 2)
        };
        let contained = CommunityParams {
            failcont: FailContParams::standard(),
            ..open
        };
        let a = run(&open);
        let b = run(&contained);
        assert_eq!(a.infected, 2_000, "open worm saturates consumers");
        let f = b.failcont.expect("failcont outcome");
        assert!(f.flagged_sources > 0, "heavy failers must be flagged");
        assert!(f.suppressed_attempts > 0, "flagged sources must lose slots");
        assert!(f.failures_recorded > 0);
        assert!(f.bits_set > 0);
        assert!(
            b.ticks > a.ticks,
            "containment must slow saturation: {} vs {} ticks",
            b.ticks,
            a.ticks
        );
        assert!(a.failcont.is_none(), "knob off ⇒ no outcome block");
    }

    #[test]
    fn failcont_counters_are_shard_count_and_engine_invariant() {
        let base = CommunityParams {
            failcont: FailContParams::standard(),
            ..params(1_500, 0.01, 30, 1)
        };
        let serial = run(&base);
        let serial_m = serial.metrics();
        assert!(serial_m.counter("failcont.failures_recorded") > 0);
        const FC: &[&str] = &[
            "failcont.suppressed_attempts",
            "failcont.failures_recorded",
            "failcont.flagged_sources",
            "failcont.pool_bits_set",
        ];
        for k in [2usize, 4, 8] {
            let m = run(&CommunityParams {
                parallelism: Parallelism::Fixed(k),
                ..base
            })
            .metrics();
            for name in EPI_SIM.iter().chain(FC) {
                assert_eq!(m.counter(name), serial_m.counter(name), "{name} k={k}");
            }
        }
        for k in [1usize, 4] {
            let diff = run(&CommunityParams {
                engine: CommunityEngine::Differential,
                parallelism: Parallelism::Fixed(k),
                ..base
            });
            assert_eq!(diff.soa_parity_mismatches, Some(0), "k={k}");
            assert_eq!(diff.failcont, serial.failcont, "k={k}");
        }
    }

    #[test]
    fn differential_reports_mismatches_and_metrics_expose_them() {
        let out = run(&CommunityParams {
            engine: CommunityEngine::Differential,
            ..params(500, 0.01, 40, 2)
        });
        assert_eq!(out.soa_parity_mismatches, Some(0));
        assert_eq!(out.metrics().counter("epidemic.soa_parity_mismatches"), 0);
        // Single-engine runs carry no parity counter at all.
        let single = run(&params(500, 0.01, 40, 2));
        assert_eq!(single.soa_parity_mismatches, None);
        assert!(
            !single
                .metrics()
                .counters()
                .any(|(n, _)| n == "epidemic.soa_parity_mismatches"),
            "single-engine runs must not emit the parity counter"
        );
    }

    #[test]
    fn parity_mismatch_counter_detects_divergence() {
        // `parity_mismatches` is the I11 sensor: feed it a doctored
        // outcome and it must count every diverged field.
        let a = run(&params(500, 0.01, 40, 2));
        let mut b = a.clone();
        assert_eq!(parity_mismatches(&a, &b), 0);
        b.infected += 1;
        b.curve.push(999);
        b.shard_stats[0].producer_contacts += 7;
        assert_eq!(parity_mismatches(&a, &b), 3, "infected, curve, shard");
    }
}
