//! Connection-failure containment via hyper-compact failure estimators.
//!
//! Antibody distribution (γ, `distnet`) is Sweeper's containment
//! mechanism; this module adds the *network-side* alternative the
//! ROADMAP names (Zhou et al., arXiv:1602.03153): scanning worms leave
//! a trail of **failed connections** (exploits blocked by proactive
//! protection, contacts against already-infected or protected
//! targets), and an edge device can estimate each source's
//! distinct-failure count in a few bits, throttling sources whose
//! estimate crosses a threshold — no antibody, no bundle, no wire.
//!
//! ## The estimator
//!
//! All sources share one bit pool of `2^bits_log2` bits. Each source
//! owns `registers` *virtual* register slots; a failure with event key
//! `k` hashes to slot `j = mix(k) mod registers` (a multiplicative
//! mix — a raw modulo would alias with the engine's key stride, which
//! is a multiple of `hosts` per tick), and slot `(src, j)` maps
//! to one pool bit via a counter-based draw — recording is an
//! idempotent bit OR, the estimate is the number of the source's slots
//! whose bits are set. Distinct failures saturate distinct slots;
//! repeats are absorbed; pool collisions between sources *inflate*
//! estimates slightly, the price of hyper-compactness (1M hosts × 64
//! registers share 128 KiB at `bits_log2 = 20`).
//!
//! ## Why flagging is shard- and engine-invariant
//!
//! Per tick, shards collect failure records during the apply phase into
//! per-shard scratch buffers; after the apply barrier the coordinator
//! folds *all* of them (bit OR — order-independent) and only then makes
//! flag decisions, for the sorted, deduplicated set of sources that
//! recorded this tick, each judged against the same post-fold pool.
//! No decision can observe a partially folded tick, so the flagged set
//! is a pure function of the tick's failure *multiset* — which the
//! community engine already guarantees is identical for any shard
//! count and either contact-state backend.
//!
//! Once flagged, a source stays flagged; the generate phase then
//! suppresses each of its attempt slots with probability `suppress`
//! via a fresh domain-separated draw on the *same* event key, so
//! enabling containment never perturbs the existing draw streams.

use crate::rng::draw;
use crate::soa::HostBits;

/// Domain separator for slot→pool-bit placement draws (`"fpos"`).
pub const DOMAIN_FAILPOS: u64 = 0x6670_6f73;
/// Domain separator for attempt-suppression draws (`"fsup"`).
pub const DOMAIN_FAILSUP: u64 = 0x6673_7570;

/// Knobs of the failure-containment mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailContParams {
    /// Master switch; `false` keeps the engine byte-for-byte on the
    /// pre-containment path.
    pub enabled: bool,
    /// Virtual register slots per source (distinct-failure resolution).
    pub registers: u32,
    /// log₂ of the shared bit pool size.
    pub bits_log2: u32,
    /// Flag a source once its estimate reaches this many slots.
    pub threshold: u32,
    /// Probability a flagged source's attempt slot is suppressed.
    pub suppress: f64,
}

impl FailContParams {
    /// Containment off (the default everywhere).
    pub fn disabled() -> FailContParams {
        FailContParams {
            enabled: false,
            registers: 0,
            bits_log2: 0,
            threshold: 0,
            suppress: 0.0,
        }
    }

    /// The paper-shaped operating point: 64 slots per source sharing a
    /// 2²⁰-bit pool (128 KiB — ~1 bit/host at 1M hosts), flag at 32
    /// distinct failures, suppress 95% of a flagged source's attempts.
    pub fn standard() -> FailContParams {
        FailContParams {
            enabled: true,
            registers: 64,
            bits_log2: 20,
            threshold: 32,
            suppress: 0.95,
        }
    }
}

/// Aggregate containment counters of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailContOutcome {
    /// Sources flagged (and thereafter throttled) by the estimator.
    pub flagged_sources: u64,
    /// Failure records folded into the pool (pre-dedup).
    pub failures_recorded: u64,
    /// Attempt slots suppressed at flagged sources.
    pub suppressed_attempts: u64,
    /// Pool bits set when the run ended (occupancy).
    pub bits_set: u64,
}

/// Live estimator state, owned by the community coordinator.
#[derive(Debug, Clone)]
pub struct FailCont {
    registers: u64,
    threshold: u32,
    seed: u64,
    mask: u64,
    /// The shared bit pool.
    pool: HostBits,
    /// Per-host flagged membership.
    flagged: HostBits,
    flagged_count: u64,
    failures_recorded: u64,
    /// Scratch: sources that recorded failures this tick.
    touched: Vec<u64>,
}

impl FailCont {
    /// Fresh estimator for a community of `hosts` hosts.
    pub fn new(p: &FailContParams, seed: u64, hosts: u64) -> FailCont {
        assert!(p.enabled, "FailCont::new on a disabled config");
        let bits_log2 = p.bits_log2.clamp(6, 30);
        FailCont {
            registers: u64::from(p.registers.max(1)),
            threshold: p.threshold.max(1),
            seed,
            mask: (1u64 << bits_log2) - 1,
            pool: HostBits::new(1u64 << bits_log2),
            flagged: HostBits::new(hosts),
            flagged_count: 0,
            failures_recorded: 0,
            touched: Vec::new(),
        }
    }

    /// Pool bit owned by virtual register slot `(src, j)`.
    fn slot_bit(&self, src: u64, j: u64) -> u64 {
        draw(
            self.seed,
            DOMAIN_FAILPOS,
            src.wrapping_mul(self.registers).wrapping_add(j),
        ) & self.mask
    }

    /// Register slot of failure key `key`: multiplicative mix, then
    /// mod. Event keys stride by `hosts × attempts` across ticks, so a
    /// bare modulo would visit only `registers / gcd(stride, registers)`
    /// slots — the mix decorrelates slot choice from the stride.
    fn slot_of(&self, key: u64) -> u64 {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.registers
    }

    /// Estimated distinct-failure count of `src`: set slots, `0..=registers`.
    pub fn estimate(&self, src: u64) -> u32 {
        (0..self.registers)
            .filter(|&j| self.pool.contains(self.slot_bit(src, j)))
            .count() as u32
    }

    /// The flagged-source membership read by the generate phase.
    pub fn flagged(&self) -> &HostBits {
        &self.flagged
    }

    /// Fold one tick's failure records (per-shard buffers, drained in
    /// shard order) and make this tick's flag decisions — called once
    /// per tick after the apply barrier; see the module docs for why
    /// this point makes flagging shard- and engine-invariant.
    pub fn fold_tick(&mut self, shard_records: &mut [Vec<(u64, u64)>]) {
        self.touched.clear();
        for records in shard_records.iter_mut() {
            for &(src, key) in records.iter() {
                let j = self.slot_of(key);
                let bit = self.slot_bit(src, j);
                self.pool.insert(bit);
                self.failures_recorded += 1;
                self.touched.push(src);
            }
            records.clear();
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        for i in 0..self.touched.len() {
            let src = self.touched[i];
            if !self.flagged.contains(src) && self.estimate(src) >= self.threshold {
                self.flagged.insert(src);
                self.flagged_count += 1;
            }
        }
    }

    /// Final counters; `suppressed_attempts` is summed by the caller
    /// from the per-shard generate stats.
    pub fn outcome(&self, suppressed_attempts: u64) -> FailContOutcome {
        FailContOutcome {
            flagged_sources: self.flagged_count,
            failures_recorded: self.failures_recorded,
            suppressed_attempts,
            bits_set: self.pool.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> FailCont {
        FailCont::new(&FailContParams::standard(), 42, 10_000)
    }

    #[test]
    fn distinct_failures_raise_the_estimate_and_repeats_do_not() {
        let mut fc = estimator();
        let mut bufs = vec![vec![(7u64, 0u64); 1]];
        fc.fold_tick(&mut bufs);
        let one = fc.estimate(7);
        assert!(one >= 1);
        // The same key again: same slot, same bit, estimate unchanged.
        bufs[0] = vec![(7, 0)];
        fc.fold_tick(&mut bufs);
        assert_eq!(fc.estimate(7), one);
        // Plenty of distinct keys eventually saturate every slot.
        bufs[0] = (0..1_000u64).map(|k| (7, k)).collect();
        fc.fold_tick(&mut bufs);
        assert_eq!(fc.estimate(7), 64);
        assert_eq!(fc.failures_recorded, 1_002);
    }

    #[test]
    fn flagging_happens_at_threshold_and_is_monotone() {
        let mut fc = estimator();
        // A handful of distinct failures stays far below the threshold.
        let mut bufs = vec![(0..10u64).map(|k| (9, k)).collect::<Vec<_>>()];
        fc.fold_tick(&mut bufs);
        assert!(fc.estimate(9) <= 10);
        assert!(!fc.flagged().contains(9));
        assert_eq!(fc.flagged_count, 0);
        // A scanning-worm-sized failure trail crosses it.
        bufs[0] = (10..600u64).map(|k| (9, k)).collect();
        fc.fold_tick(&mut bufs);
        assert!(fc.estimate(9) >= 32);
        assert!(fc.flagged().contains(9), "heavy failer must be flagged");
        assert_eq!(fc.flagged_count, 1);
        // Stays flagged; count does not double-increment.
        bufs[0] = vec![(9, 600)];
        fc.fold_tick(&mut bufs);
        assert!(fc.flagged().contains(9));
        assert_eq!(fc.flagged_count, 1);
    }

    #[test]
    fn fold_order_across_shards_does_not_matter() {
        let records: Vec<(u64, u64)> = (0..400u64)
            .map(|k| (11, k))
            .chain((0..400).map(|k| (12, k + 3)))
            .collect();
        let mut a = estimator();
        let mut b = estimator();
        let (left, right) = records.split_at(200);
        a.fold_tick(&mut [left.to_vec(), right.to_vec()]);
        b.fold_tick(&mut [right.to_vec(), left.to_vec()]);
        assert_eq!(a.flagged_count, b.flagged_count);
        assert_eq!(a.estimate(11), b.estimate(11));
        assert_eq!(a.estimate(12), b.estimate(12));
        assert_eq!(a.pool.count(), b.pool.count());
        let out_a = a.outcome(0);
        let out_b = b.outcome(0);
        assert_eq!(out_a, out_b);
        assert_eq!(out_a.flagged_sources, 2, "both heavy failers flag");
    }

    #[test]
    fn outcome_reports_pool_occupancy() {
        let mut fc = estimator();
        fc.fold_tick(&mut [vec![(1, 0), (2, 0), (3, 0)]]);
        let out = fc.outcome(5);
        assert_eq!(out.suppressed_attempts, 5);
        assert_eq!(out.failures_recorded, 3);
        assert!(out.bits_set >= 1 && out.bits_set <= 3, "{out:?}");
    }
}
