//! Struct-of-arrays host state for the million-host community engine.
//!
//! The legacy §6 engine keeps one `Vec<bool>` per shard and scans *all*
//! of it every tick — O(shard size) per tick no matter how few hosts
//! are infected. At 20k hosts that is tolerable (~1.7k ticks/s,
//! BENCH_pr5); at the ROADMAP's 1M–10M hosts it is the whole bill.
//!
//! This module packs per-host membership into a word-level bitset
//! ([`HostBits`]) and pairs it with an **active queue**: a dense vector
//! of exactly the hosts that have pending scan activity
//! ([`SoaHosts`]). Generate phases walk the queue instead of the
//! address space, so a tick costs O(infected), not O(hosts) — the
//! sparse regime the contained runs live in.
//!
//! ## Why the queue order is free
//!
//! The queue appends hosts in *infection* order, which differs from the
//! legacy host-order scan. That cannot change outcomes: every random
//! draw is counter-based (a pure function of `(seed, host, tick,
//! attempt)`), and the coordinator canonically sorts each inbox by
//! `(src, attempt)` before the apply phase. Enumeration order therefore
//! never reaches the RNG or the merge — the event *multiset* is
//! identical, which the `CommunityEngine::Differential` oracle checks
//! field-by-field ([`crate::community`]).

/// A fixed-size bitset over host indices, one bit per host.
///
/// Storage is `⌈len / 64⌉` words — 1M hosts fit in 128 KiB. Inserts
/// are idempotent (`insert` reports whether the bit was fresh), which
/// is exactly the infection-mark semantics of the community engine and
/// the membership semantics of the failure estimator's shared pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBits {
    words: Vec<u64>,
    len: u64,
}

impl HostBits {
    /// An empty set over `[0, len)`.
    pub fn new(len: u64) -> HostBits {
        HostBits {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Capacity of the set (number of addressable indices).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the set addresses no indices at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `i` a member?
    pub fn contains(&self, i: u64) -> bool {
        debug_assert!(i < self.len, "index {i} out of {}", self.len);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Insert `i`; returns `true` when the bit was not already set.
    pub fn insert(&mut self, i: u64) -> bool {
        debug_assert!(i < self.len, "index {i} out of {}", self.len);
        let word = &mut self.words[(i / 64) as usize];
        let bit = 1u64 << (i % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Number of members (popcount over the words).
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

/// The contact-state backend the community engine is generic over.
///
/// `off` is always a *shard-local* offset (`host - shard.lo`). The two
/// implementations are the legacy dense scan (the differential oracle,
/// in `community.rs`) and [`SoaHosts`] below; the engine itself is one
/// shared code path, so the backends cannot drift semantically.
pub trait HostSet: Send {
    /// An empty set able to address offsets `[0, len)`.
    fn with_capacity(len: u64) -> Self;
    /// Is `off` a member?
    fn contains(&self, off: u64) -> bool;
    /// Idempotently insert `off`; returns `true` when newly inserted.
    fn insert(&mut self, off: u64) -> bool;
    /// Number of members.
    fn count(&self) -> u64;
    /// Visit every member once. **Order is implementation-defined** —
    /// callers must not depend on it (the engine's canonical inbox
    /// sort guarantees they don't).
    fn for_each_member(&self, f: impl FnMut(u64));
}

/// Bitset membership plus an append-only active queue: O(1) insert,
/// O(members) iteration — the struct-of-arrays backend.
#[derive(Debug, Clone)]
pub struct SoaHosts {
    bits: HostBits,
    /// Members in insertion order. `u32` offsets keep the queue at
    /// 4 bytes/host (shards past 2³² hosts are rejected at build).
    active: Vec<u32>,
}

impl HostSet for SoaHosts {
    fn with_capacity(len: u64) -> SoaHosts {
        assert!(
            len <= u64::from(u32::MAX) + 1,
            "SoA shard too large for u32 offsets: {len}"
        );
        SoaHosts {
            bits: HostBits::new(len),
            active: Vec::new(),
        }
    }

    #[inline]
    fn contains(&self, off: u64) -> bool {
        self.bits.contains(off)
    }

    #[inline]
    fn insert(&mut self, off: u64) -> bool {
        if self.bits.insert(off) {
            self.active.push(off as u32);
            true
        } else {
            false
        }
    }

    fn count(&self) -> u64 {
        self.active.len() as u64
    }

    #[inline]
    fn for_each_member(&self, mut f: impl FnMut(u64)) {
        for &off in &self.active {
            f(u64::from(off));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_insert_is_idempotent_and_counted() {
        let mut b = HostBits::new(130);
        assert!(b.insert(0));
        assert!(b.insert(64));
        assert!(b.insert(129));
        assert!(!b.insert(64), "second insert reports not-fresh");
        assert_eq!(b.count(), 3);
        assert!(b.contains(129));
        assert!(!b.contains(1));
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
    }

    #[test]
    fn soa_queue_visits_each_member_once_in_insertion_order() {
        let mut s = SoaHosts::with_capacity(100);
        for off in [7u64, 3, 7, 99, 3, 0] {
            s.insert(off);
        }
        let mut seen = Vec::new();
        s.for_each_member(|off| seen.push(off));
        assert_eq!(seen, vec![7, 3, 99, 0], "dups dropped, order = insertion");
        assert_eq!(s.count(), 4);
        assert!(s.contains(99) && !s.contains(98));
    }

    #[test]
    fn backends_agree_on_membership() {
        // The dense oracle lives in community.rs; here just pin the
        // SoA side against a straightforward model.
        let mut s = SoaHosts::with_capacity(512);
        let mut model = vec![false; 512];
        for i in 0..512u64 {
            let off = (i * 97) % 512;
            assert_eq!(s.insert(off), !model[off as usize]);
            model[off as usize] = true;
        }
        for off in 0..512u64 {
            assert_eq!(s.contains(off), model[off as usize]);
        }
        assert_eq!(s.count(), model.iter().filter(|m| **m).count() as u64);
    }
}
