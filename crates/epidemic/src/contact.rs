//! Event-driven worm contact generation for the fleet reactor.
//!
//! The §6 community engine walks a dense tick loop: every tick scans
//! every infected host for scan attempts. The fleet front-end is a
//! discrete-*event* simulator, so the contact process must be expressed
//! as *events*: each delivered infection spawns a bounded fan-out of
//! future contacts, each with an exponentially distributed delay (the
//! continuous-time limit of the per-tick Bernoulli scan) and a
//! uniformly drawn victim.
//!
//! Every draw is **counter-based** ([`crate::rng::draw`]): a pure
//! function of `(seed, domain, infection-id, slot)`. The reactor
//! processes infections in a deterministic global order and numbers
//! them as it goes, so the whole contact tree — delays, victims,
//! branching — is bit-identical for any reactor shard count, the same
//! keystone as the sharded community engine's merge.

use crate::rng::{draw_below, draw_unit};

/// Domain tag for contact inter-arrival delays (`"cwai"`).
pub const DOMAIN_CONTACT_WAIT: u64 = 0x6377_6169;
/// Domain tag for contact victim choice (`"ctgt"`).
pub const DOMAIN_CONTACT_TARGET: u64 = 0x6374_6774;

/// The deterministic contact process of one outbreak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactModel {
    /// Outbreak RNG seed (domain-separated from every other consumer).
    pub seed: u64,
    /// Address-space size: victims are drawn uniformly from `0..hosts`.
    pub hosts: u64,
    /// Mean scan rate of one infected host, contacts per (virtual)
    /// second.
    pub rate_per_sec: f64,
    /// Contacts spawned per delivered infection before the infected
    /// host is cleaned (Sweeper detects and recovers quickly, so each
    /// compromise only gets a short scanning burst).
    pub fanout: u32,
}

impl ContactModel {
    /// The `slot`-th contact spawned by infection event `infection`
    /// (slot in `0..fanout`): returns `(delay_secs, victim)` — the
    /// exponentially distributed wait after the infection, and the
    /// uniformly drawn victim host index.
    pub fn contact(&self, infection: u64, slot: u32) -> (f64, u64) {
        let counter = infection
            .wrapping_mul(0x1_0001)
            .wrapping_add(u64::from(slot));
        let u = draw_unit(self.seed, DOMAIN_CONTACT_WAIT, counter);
        let delay = -(1.0f64 - u).ln() / self.rate_per_sec;
        let victim = draw_below(self.seed, DOMAIN_CONTACT_TARGET, counter, self.hosts.max(1));
        (delay, victim)
    }

    /// All `fanout` contacts of one infection, in slot order.
    pub fn burst(&self, infection: u64) -> Vec<(f64, u64)> {
        (0..self.fanout)
            .map(|slot| self.contact(infection, slot))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContactModel {
        ContactModel {
            seed: 42,
            hosts: 1000,
            rate_per_sec: 20.0,
            fanout: 4,
        }
    }

    #[test]
    fn contacts_are_pure_functions_of_their_key() {
        let m = model();
        assert_eq!(m.contact(7, 2), m.contact(7, 2));
        assert_ne!(m.contact(7, 2), m.contact(7, 3));
        assert_ne!(m.contact(7, 2), m.contact(8, 2));
        let other = ContactModel { seed: 43, ..m };
        assert_ne!(m.contact(7, 2), other.contact(7, 2));
    }

    #[test]
    fn burst_order_is_slot_order_regardless_of_query_order() {
        let m = model();
        let forward = m.burst(11);
        let backward: Vec<(f64, u64)> = (0..m.fanout).rev().map(|s| m.contact(11, s)).collect();
        let mut reversed = backward;
        reversed.reverse();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn delays_are_exponential_with_the_configured_mean() {
        let m = model();
        let mut acc = 0.0;
        let n = 4000u64;
        for infection in 0..n / 4 {
            for (delay, victim) in m.burst(infection) {
                assert!(delay >= 0.0);
                assert!(victim < m.hosts);
                acc += delay;
            }
        }
        let mean = acc / n as f64;
        let expect = 1.0 / m.rate_per_sec;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn victims_cover_the_address_space() {
        let m = ContactModel {
            hosts: 8,
            ..model()
        };
        let mut seen = [false; 8];
        for infection in 0..64 {
            for (_, v) in m.burst(infection) {
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
