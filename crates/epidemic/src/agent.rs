//! Agent-based Monte-Carlo cross-check of the SI community model.
//!
//! A Gillespie-style continuous-time simulation of the same process the
//! ODEs describe: each infected host emits contact attempts at rate `β`;
//! each attempt targets a uniformly random vulnerable host. Hits on
//! susceptible consumers succeed with probability `ρ`; the first hit on a
//! producer starts the antibody clock; at `T0 + γ` every host becomes
//! immune. Used to validate the analytic figures (6-8) and to expose
//! stochastic variance the ODEs hide (the lucky/unlucky first-contact
//! races the paper's hit-list discussion turns on).

use crate::model::Scenario;
use crate::rng::Stream;

/// One simulated outbreak's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Time of first producer contact, if any.
    pub t0: Option<f64>,
    /// Hosts infected when immunity landed (or at saturation).
    pub infected: u64,
    /// Infection ratio.
    pub infection_ratio: f64,
}

/// Simulate one outbreak with the given RNG seed.
pub fn simulate(s: &Scenario, seed: u64) -> SimOutcome {
    let n = s.n.round() as u64;
    let producers = ((s.alpha * s.n).round() as u64).min(n);
    // Hosts [0, producers) are producers; the rest are consumers.
    let mut infected_flags = vec![false; n as usize];
    let mut infected: u64 = s.i0.round().max(1.0) as u64;
    // Seed infections among consumers (the worm starts outside).
    for k in 0..infected {
        let idx = (producers + k).min(n - 1) as usize;
        infected_flags[idx] = true;
    }
    let mut rng = Stream::seed(seed);
    let mut t = 0.0f64;
    let mut t0: Option<f64> = None;
    let consumer_count = n - producers;
    let t_bound = 1e7 / s.beta.max(1e-12);
    loop {
        if let Some(t0v) = t0 {
            if t >= t0v + s.gamma {
                break; // Immunity deployed.
            }
        }
        if infected >= consumer_count {
            break; // Saturation.
        }
        if t > t_bound {
            break; // Die-out guard.
        }
        // Next contact event: total rate β * I.
        let rate = s.beta * infected as f64;
        let dt = rng.exp(rate);
        t += dt;
        // Don't spread past the immunity instant.
        if let Some(t0v) = t0 {
            if t >= t0v + s.gamma {
                break;
            }
        }
        let target = rng.below(n) as usize;
        if (target as u64) < producers {
            // A producer was contacted: the antibody clock starts.
            if t0.is_none() {
                t0 = Some(t);
            }
        } else if !infected_flags[target] && rng.unit() < s.rho {
            infected_flags[target] = true;
            infected += 1;
        }
    }
    SimOutcome {
        t0,
        infected,
        infection_ratio: infected as f64 / s.n,
    }
}

/// Average infection ratio over `runs` independent outbreaks.
pub fn simulate_mean(s: &Scenario, runs: u32, seed: u64) -> f64 {
    let mut acc = 0.0;
    for k in 0..runs {
        acc += simulate(s, seed.wrapping_add(k as u64 * 0x9e37_79b9)).infection_ratio;
    }
    acc / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{solve, Scenario};

    /// A scaled-down Slammer (smaller N keeps the simulation fast; the
    /// dynamics depend on α·N and β, so α is scaled up accordingly).
    fn small(alpha: f64, gamma: f64) -> Scenario {
        Scenario {
            beta: 0.1,
            n: 10_000.0,
            alpha,
            rho: 1.0,
            gamma,
            i0: 1.0,
        }
    }

    #[test]
    fn simulation_is_seed_deterministic() {
        let s = small(0.001, 10.0);
        assert_eq!(simulate(&s, 7), simulate(&s, 7));
    }

    #[test]
    fn monte_carlo_tracks_the_ode() {
        let s = small(0.002, 10.0);
        let ode = solve(&s).infection_ratio;
        let mc = simulate_mean(&s, 30, 42);
        // Stochastic, so allow a generous band — the point is the same
        // regime, not digit agreement.
        assert!(
            (mc - ode).abs() < 0.25,
            "ODE {ode:.3} vs Monte-Carlo {mc:.3} diverge"
        );
    }

    #[test]
    fn no_producers_saturates() {
        let s = small(0.0, 5.0);
        let out = simulate(&s, 3);
        assert!(out.t0.is_none());
        assert!(out.infection_ratio > 0.95, "{out:?}");
    }

    #[test]
    fn response_time_ordering_holds_stochastically() {
        let fast = simulate_mean(&small(0.002, 5.0), 20, 1);
        let slow = simulate_mean(&small(0.002, 60.0), 20, 1);
        assert!(fast <= slow + 0.02, "fast {fast:.3} vs slow {slow:.3}");
    }

    #[test]
    fn proactive_protection_slows_hitlist() {
        let hot = Scenario {
            beta: 1000.0,
            n: 10_000.0,
            alpha: 0.001,
            rho: 1.0,
            gamma: 5.0,
            i0: 1.0,
        };
        let cold = Scenario {
            rho: (2.0f64).powi(-12),
            ..hot
        };
        let hot_r = simulate_mean(&hot, 10, 5);
        let cold_r = simulate_mean(&cold, 10, 5);
        assert!(hot_r > 0.8, "unprotected hit-list saturates: {hot_r:.3}");
        assert!(cold_r < 0.05, "protected hit-list contained: {cold_r:.3}");
    }
}
