//! The Sweeper runtime: a protected server process end to end.
//!
//! Wraps a guest server with the full defence loop of paper §2.1:
//! lightweight monitoring (ASLR faults + deployed VSEFs), periodic
//! lightweight checkpoints, signature filtering at the proxy, post-attack
//! analysis via the [`pipeline`](crate::pipeline), antibody deployment,
//! and rollback-based recovery (falling back to restart).

use analysis::TaintTool;
use antibody::{
    verify_with_sandbox, Antibody, AntibodyItem, CertifiedBundle, CertifyError, SignatureSet,
    VsefRuntime, VsefSpec,
};
use apps::App;
use checkpoint::{
    divergence, recover, recover_domain, recover_with_fault, recovery_digest, CheckpointManager,
    CkptId, Divergence, InputFilter, Proxy, RecoveryKind, RecoveryOutcome, ResumeReport,
    SyscallLog,
};
use dbi::{Instrumenter, ToolId};
use svm::clock::cycles_to_secs;
use svm::hook::Pair;
use svm::loader::Layout;
use svm::net::BlockedOn;
use svm::rng::XorShift64;
use svm::{Machine, Status};

use crate::error::SweeperError;

use crate::config::{Config, RecoveryMode, Role};
use crate::fault::{FaultAdapter, FaultHooks};
use crate::pipeline::{analyze_attack_with_faults, AnalysisReport};
use crate::timeline::{Event, Timeline};

/// Outcome of offering one request to a protected server.
#[derive(Debug)]
pub enum RequestOutcome {
    /// Served normally; response bytes released.
    Served {
        /// Proxy log id.
        log_id: usize,
        /// Released bytes.
        bytes: usize,
    },
    /// Dropped by a deployed input signature.
    Filtered {
        /// Proxy log id.
        log_id: usize,
    },
    /// An attack was detected (and, for producers, analyzed + recovered).
    Attack(Box<AttackReport>),
}

/// Outcome of one reactor-driven service step (see
/// [`Sweeper::poll_offer`]): the request outcome plus how much virtual
/// host time the step consumed, so an external scheduler can advance
/// its own clock without reaching into the machine.
#[derive(Debug)]
pub struct PollOutcome {
    /// What happened to the request.
    pub outcome: RequestOutcome,
    /// Virtual cycles of host busy time the step consumed: service,
    /// any due checkpoint, and — when the request was an attack — the
    /// part of the analysis/recovery pause that actually blocks the
    /// service queue. Zero-cost steps (a request dropped at the proxy
    /// filter) report 0.
    pub busy_cycles: u64,
    /// Virtual cycles of attack-handling work that does **not** block
    /// the service queue: after a successful domain rollback the benign
    /// connections are already restored, so the heavyweight analysis
    /// runs concurrently with the host's own queued requests. Always 0
    /// for non-attack steps and for full (rollback+replay or restart)
    /// recoveries, whose pause genuinely stalls the queue.
    pub deferred_cycles: u64,
}

/// Everything Sweeper did about one attack.
#[derive(Debug)]
pub struct AttackReport {
    /// What tripped: `fault: ...` or `vsef: ...`.
    pub cause: String,
    /// The analysis output (None for consumers, which do not analyze).
    pub analysis: Option<AnalysisReport>,
    /// How service was restored.
    pub recovery_method: &'static str,
    /// Service pause in virtual milliseconds (analysis + recovery).
    pub pause_ms: f64,
    /// Of the pause, virtual cycles that overlap queued benign service
    /// instead of stalling it: the analysis phase, when (and only when)
    /// recovery was a partial domain rollback. See
    /// [`PollOutcome::deferred_cycles`].
    pub deferred_cycles: u64,
    /// Whether the attacker's shellcode ran before detection (should
    /// always be false for ASLR misses; true means compromise).
    pub compromised: bool,
}

/// Outcome of receiving one certified antibody bundle from the
/// community distribution network (see [`Sweeper::receive_certified`]).
#[derive(Debug)]
pub enum BundleOutcome {
    /// The bundle passed both the cheap certification check and the
    /// sandboxed exploit replay; its antibody is now deployed.
    Deployed {
        /// VSEFs deployed after this bundle (cumulative).
        vsefs: usize,
        /// Signatures deployed after this bundle (cumulative).
        signatures: usize,
    },
    /// The sending producer was already quarantined: the bundle was
    /// dropped without being verified (quarantine is sticky).
    SenderQuarantined,
    /// Verification failed; the sender is now quarantined and nothing
    /// was deployed (invariant I8: verify-before-deploy).
    Rejected(CertifyError),
}

/// Operator-facing summary of a protected host (see [`Sweeper::status`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HostStatus {
    /// Protected application name.
    pub app: String,
    /// Global virtual uptime in seconds.
    pub uptime_secs: f64,
    /// Requests served.
    pub requests_served: u64,
    /// Requests run under §4.2 sampling.
    pub requests_sampled: u64,
    /// Attacks detected (faults, VSEF hits, sampling hits, anomalies).
    pub attacks_detected: u64,
    /// Requests dropped at the proxy by signatures.
    pub requests_filtered: u64,
    /// Deployed VSEF count.
    pub deployed_vsefs: usize,
    /// Deployed signature count.
    pub deployed_signatures: usize,
    /// Checkpoints currently retained.
    pub checkpoints_retained: usize,
    /// Checkpoints taken over the host's lifetime.
    pub checkpoints_taken: u64,
    /// Extra pages uniquely held by retained checkpoints (COW-deduped).
    pub checkpoint_pages: usize,
    /// Whether the protected process is currently serviceable.
    pub healthy: bool,
}

impl core::fmt::Display for HostStatus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{} [{}] up {:.2}s: {} served ({} sampled), {} attacks, {} filtered",
            self.app,
            if self.healthy { "healthy" } else { "DOWN" },
            self.uptime_secs,
            self.requests_served,
            self.requests_sampled,
            self.attacks_detected,
            self.requests_filtered,
        )?;
        write!(
            f,
            "antibodies: {} VSEFs, {} signatures; checkpoints: {}/{} retained ({} private pages)",
            self.deployed_vsefs,
            self.deployed_signatures,
            self.checkpoints_retained,
            self.checkpoints_taken,
            self.checkpoint_pages,
        )
    }
}

struct SigFilter<'a>(&'a SignatureSet);

impl InputFilter for SigFilter<'_> {
    fn blocks(&self, input: &[u8]) -> bool {
        self.0.matches(input)
    }
    fn name(&self) -> &str {
        "signature-set"
    }
}

/// A Sweeper-protected server instance.
pub struct Sweeper {
    /// Application name.
    pub app_name: String,
    program: svm::asm::Program,
    /// The live protected machine.
    pub machine: Machine,
    /// Checkpoint storage/policy.
    pub mgr: CheckpointManager,
    /// Logging/filtering proxy.
    pub proxy: Proxy,
    /// Deployed input signatures.
    pub signatures: SignatureSet,
    vsef_instr: Instrumenter,
    vsef_id: ToolId,
    /// Monotone global event log.
    pub timeline: Timeline,
    /// Metrics and tracing for this host: `pipeline.*` phase spans (the
    /// Table 3 source of truth), `sweeper.*` / `recovery.*` counters.
    /// Layer-local counters (svm, dbi, checkpoint, proxy) are merged in
    /// on demand by [`Sweeper::export_metrics`].
    pub obs: obs::MetricsRegistry,
    /// Configuration.
    pub config: Config,
    /// Attacks detected so far.
    pub attacks_detected: u64,
    /// Requests served so far.
    pub requests_served: u64,
    /// Requests that were run under full sampling instrumentation (§4.2).
    pub requests_sampled: u64,
    sample_rng: XorShift64,
    /// Monotone count of post-attack re-randomizations (restart boots).
    ///
    /// Mixed into the ASLR reseed so repeated rollback/restart cycles
    /// can never re-derive a previously used layout, which the old
    /// `seed + attacks_detected` arithmetic could (it repeated whenever
    /// the detection count didn't change between restarts, and collided
    /// with neighbouring hosts' boot seeds).
    rerandomizations: u64,
    /// Exploit inputs captured so far (one per detected attack); when
    /// VSEFs catch polymorphic variants of a vulnerability, these samples
    /// feed token-sequence signature generalization (Polygraph-style,
    /// paper §3.3 "Polymorphic signatures are also feasible").
    attack_samples: Vec<Vec<u8>>,
    /// Installed fault-injection hooks (`None` in production): the seam
    /// the `chaos` harness uses to perturb attack handling. See
    /// [`crate::fault`].
    fault_hooks: Option<Box<dyn FaultHooks>>,
    /// Producers whose certified bundles failed verification: every
    /// later bundle they send is dropped unexamined.
    quarantined_producers: Vec<u32>,
}

impl Sweeper {
    /// Protect an application.
    ///
    /// Failures (bad program image, boot fault) surface as
    /// [`SweeperError`] so callers — notably the community campaign,
    /// which boots whole populations — can skip a bad host instead of
    /// aborting.
    pub fn protect(app: &App, config: Config) -> Result<Sweeper, SweeperError> {
        let mut machine = app.boot(config.aslr)?;
        machine.mem.nx = config.nx;
        let mgr = CheckpointManager::new(config.checkpoint_interval, config.retained_checkpoints)
            .with_engine(config.checkpoint_engine);
        let mut vsef_instr = Instrumenter::new();
        let vsef_id = vsef_instr.attach(Box::new(VsefRuntime::new(Vec::new())));
        let mut s = Sweeper {
            app_name: app.name.to_string(),
            program: app.program.clone(),
            machine,
            mgr,
            proxy: Proxy::new(),
            signatures: SignatureSet::new(),
            vsef_instr,
            vsef_id,
            timeline: Timeline::new(),
            obs: obs::MetricsRegistry::new(),
            sample_rng: XorShift64::new(config.aslr.seed ^ 0x5a3b_17ee),
            config,
            attacks_detected: 0,
            requests_served: 0,
            requests_sampled: 0,
            rerandomizations: 0,
            attack_samples: Vec::new(),
            fault_hooks: None,
            quarantined_producers: Vec::new(),
        };
        // Boot to quiescence and take the initial checkpoint.
        s.run_until_idle();
        let id = s.mgr.take(&mut s.machine);
        s.sync_time();
        s.timeline.record(Event::Checkpoint { id: id.0 });
        Ok(s)
    }

    /// Install fault-injection hooks (the `chaos` harness's seam into
    /// attack handling). Production code never calls this; with no hooks
    /// installed every fault seam is a no-op.
    pub fn set_fault_hooks(&mut self, hooks: Box<dyn FaultHooks>) {
        self.fault_hooks = Some(hooks);
    }

    /// Deploy an antibody, passing it through the (optional) in-transit
    /// corruption fault seam first: the antibody is serialized, the hook
    /// may flip bits or truncate, and the runtime then decodes what
    /// "arrived". A corrupted bundle is rejected — surfaced as a
    /// [`SweeperError::CorruptAntibody`] on the timeline and counted in
    /// `sweeper.antibody_corrupt_total` — and never partially deployed.
    fn deploy_antibody_faulted(&mut self, antibody: &Antibody) {
        let corrupted = match self.fault_hooks.as_deref_mut() {
            Some(hooks) => {
                let mut bytes = antibody.to_bytes();
                if hooks.corrupt_antibody(&mut bytes) {
                    Some(bytes)
                } else {
                    None
                }
            }
            None => None,
        };
        match corrupted {
            None => self.deploy_antibody(antibody),
            Some(bytes) => match Antibody::from_bytes(&bytes) {
                Ok(ab) => self.deploy_antibody(&ab),
                Err(e) => {
                    let err = SweeperError::from(e);
                    self.obs.inc("sweeper.antibody_corrupt_total", 1);
                    self.timeline.record(Event::AntibodyReleased {
                        what: format!("rejected: {err}"),
                    });
                }
            },
        }
    }

    /// Run recovery, threading installed fault hooks into the replay (so
    /// the chaos harness can drop/corrupt/reorder the re-injected
    /// connections mid-recovery).
    fn recover_faulted(&mut self, ck: CkptId, drop_ids: &[usize]) -> RecoveryOutcome {
        match self.fault_hooks.as_deref_mut() {
            Some(hooks) => recover_with_fault(
                &mut self.machine,
                &self.mgr,
                &mut self.proxy,
                ck,
                drop_ids,
                &mut FaultAdapter(hooks),
            ),
            None => recover(&mut self.machine, &self.mgr, &mut self.proxy, ck, drop_ids),
        }
    }

    /// Deploy an antibody received from the community (or produced
    /// locally): signatures to the proxy filter, VSEFs (rebased from the
    /// nominal distribution layout to this host's layout) to the
    /// instrumenter.
    pub fn deploy_antibody(&mut self, antibody: &Antibody) {
        for sig in antibody.signatures().all() {
            self.signatures.add(sig.clone());
        }
        let nominal = Layout::nominal();
        let host = self.machine.layout;
        let existing: Vec<VsefSpec> = self
            .vsef_instr
            .get::<VsefRuntime>(self.vsef_id)
            .map(|v| v.specs().to_vec())
            .unwrap_or_default();
        if let Some(rt) = self.vsef_instr.get_mut::<VsefRuntime>(self.vsef_id) {
            for spec in antibody.vsefs() {
                let rebased = spec.rebase(&nominal, &host);
                if !existing.contains(&rebased) {
                    rt.add(rebased);
                }
            }
        }
        self.vsef_instr.refresh(self.vsef_id);
    }

    /// Seal this host's antibody into a certified bundle for the
    /// community distribution network (paper §3.3 "Distribution").
    ///
    /// `producer` is this host's community id, `seq` a per-producer
    /// sequence number, `key` the shared community certification key.
    /// Returns `None` when the antibody carries no exploit-triggering
    /// input — an antibody without evidence cannot be certified, because
    /// receivers could never replay-verify it.
    pub fn certify_antibody(
        &mut self,
        producer: u32,
        seq: u64,
        key: u64,
        antibody: &Antibody,
    ) -> Option<CertifiedBundle> {
        let bundle = CertifiedBundle::seal(producer, seq, antibody, key)?;
        self.obs.inc("sweeper.bundles_certified", 1);
        self.timeline.record(Event::AntibodyReleased {
            what: format!("certified bundle producer={producer} seq={seq}"),
        });
        Some(bundle)
    }

    /// Receive one certified bundle from the community: verify before
    /// deploy.
    ///
    /// The bundle first passes the cheap certification check (tag,
    /// fail-closed decode, evidence consistency), then a **sandboxed
    /// exploit replay** ([`verify_with_sandbox`]): a fresh randomized
    /// instance of this host's program is attacked with the bundled
    /// evidence and the bundle's own VSEFs/signatures must detect it.
    /// Only then is the antibody deployed. A failing bundle quarantines
    /// its sender: later bundles from that producer are dropped without
    /// examination. Counters: `sweeper.bundles_verified`,
    /// `sweeper.bundles_rejected`, `sweeper.bundles_quarantine_dropped`,
    /// `sweeper.producers_quarantined`.
    pub fn receive_certified(&mut self, bundle: &CertifiedBundle, key: u64) -> BundleOutcome {
        if self.quarantined_producers.contains(&bundle.producer) {
            self.obs.inc("sweeper.bundles_quarantine_dropped", 1);
            return BundleOutcome::SenderQuarantined;
        }
        let sandbox_seed = self.config.aslr.seed ^ bundle.seq.rotate_left(17) ^ 0x5eed_ab1e;
        match verify_with_sandbox(&self.program, bundle, key, sandbox_seed) {
            Ok(antibody) => {
                self.deploy_antibody(&antibody);
                self.obs.inc("sweeper.bundles_verified", 1);
                self.timeline.record(Event::AntibodyReleased {
                    what: format!(
                        "verified+deployed bundle producer={} seq={}",
                        bundle.producer, bundle.seq
                    ),
                });
                BundleOutcome::Deployed {
                    vsefs: self.deployed_vsefs(),
                    signatures: self.signatures.len(),
                }
            }
            Err(e) => {
                self.obs.inc("sweeper.bundles_rejected", 1);
                self.obs.inc("sweeper.producers_quarantined", 1);
                self.quarantined_producers.push(bundle.producer);
                self.timeline.record(Event::AntibodyReleased {
                    what: format!(
                        "rejected bundle producer={} seq={}: {e} (sender quarantined)",
                        bundle.producer, bundle.seq
                    ),
                });
                BundleOutcome::Rejected(e)
            }
        }
    }

    /// Producers this host has quarantined so far.
    pub fn quarantined_producers(&self) -> &[u32] {
        &self.quarantined_producers
    }

    /// Deployed VSEF count.
    pub fn deployed_vsefs(&self) -> usize {
        self.vsef_instr
            .get::<VsefRuntime>(self.vsef_id)
            .map(|v| v.specs().len())
            .unwrap_or(0)
    }

    /// Advance the global timeline to the machine's clock.
    fn sync_time(&mut self) {
        self.timeline.advance_to(self.machine.clock.cycles());
    }

    /// Run the machine until it blocks on `accept` (idle), faults, or a
    /// VSEF detection fires. Returns the stop condition.
    fn run_until_idle(&mut self) -> Status {
        loop {
            let status = self.machine.run(&mut self.vsef_instr, 2_000_000);
            self.vsef_instr.charge(&mut self.machine);
            self.sync_time();
            let vsef_fired = self
                .vsef_instr
                .get::<VsefRuntime>(self.vsef_id)
                .map(|v| !v.detections().is_empty())
                .unwrap_or(false);
            if vsef_fired {
                return status;
            }
            match status {
                Status::Running => continue,
                Status::Blocked(BlockedOn::Read { .. }) => return status,
                Status::Blocked(BlockedOn::Accept) | Status::Halted(_) | Status::Faulted(_) => {
                    return status
                }
            }
        }
    }

    /// Offer one client request to the protected server.
    pub fn offer_request(&mut self, input: Vec<u8>) -> RequestOutcome {
        // Pre-copy drain: fold pages dirtied by the previous request
        // into the pending delta while the server is idle between
        // requests. Background work — never charged to the service
        // clock — which is what keeps the snapshot instant below
        // O(dirty-since-last-checkpoint).
        self.mgr.drain(&self.machine);
        // Checkpoint if due (taken at request boundaries, like Rx).
        if self.mgr.due(&self.machine) {
            let id = self.mgr.take(&mut self.machine);
            self.sync_time();
            self.timeline.record(Event::Checkpoint { id: id.0 });
        }
        let sig_holder = self.signatures.clone();
        let filter = SigFilter(&sig_holder);
        let (log_id, delivered) =
            self.proxy
                .offer(&mut self.machine, input, &[&filter as &dyn InputFilter]);
        if !delivered {
            self.timeline.record(Event::RequestFiltered { log_id });
            return RequestOutcome::Filtered { log_id };
        }
        // §4.2 sampling: run this request under full taint analysis with
        // probability `sample_rate`. The sampled path catches attacks the
        // probabilistic monitors can miss (a worm that guessed the
        // layout), *before* the tainted control transfer executes.
        let sampled =
            self.config.sample_rate > 0.0 && self.sample_rng.next_f64() < self.config.sample_rate;
        let status = if sampled {
            self.requests_sampled += 1;
            match self.run_sampled(log_id) {
                Ok(status) => status,
                Err(report) => return RequestOutcome::Attack(report),
            }
        } else {
            self.run_until_idle()
        };
        let vsef_detection = self
            .vsef_instr
            .get_mut::<VsefRuntime>(self.vsef_id)
            .map(|v| v.take_detections())
            .unwrap_or_default();
        if let Some(d) = vsef_detection.first() {
            let cause = format!("vsef: {} at {:#010x} ({})", d.vsef_kind, d.pc, d.detail);
            return RequestOutcome::Attack(Box::new(self.handle_attack(cause, true)));
        }
        match status {
            Status::Faulted(f) => {
                let cause = format!("fault: {f}");
                RequestOutcome::Attack(Box::new(self.handle_attack(cause, false)))
            }
            Status::Halted(code) => {
                // A server process has no legitimate reason to exit while
                // serving: treat an unexpected exit (e.g. shellcode
                // calling exit) as an anomaly and recover.
                let cause = format!("anomaly: server exited with code {code:#x}");
                RequestOutcome::Attack(Box::new(self.handle_attack(cause, false)))
            }
            _ => {
                let released = self.proxy.release_outputs(&self.machine);
                let bytes: usize = released.iter().map(|(_, b)| b.len()).sum();
                self.requests_served += 1;
                // Attribute this connection's dirty pages to its own
                // rollback domain and advance the service boundary: the
                // idle state a later partial rollback restores to.
                self.mgr.note_service(&self.machine, log_id as u32);
                self.timeline.record(Event::RequestServed { log_id, bytes });
                RequestOutcome::Served { log_id, bytes }
            }
        }
    }

    /// Offer one request without blocking the caller's scheduler: the
    /// fleet reactor's entry point around [`Sweeper::offer_request`].
    ///
    /// The host's notion of time is the maximum of its machine clock
    /// and its monotone timeline (recovery rewinds the former and
    /// re-anchors it to the latter, so the max is monotone across every
    /// path through the runtime). The returned `busy_cycles` is the
    /// advance of that maximum across the call — service work, due
    /// checkpoints, and any analysis/recovery pause — which is exactly
    /// what a virtual-clock reactor must add to its own clock before
    /// this host can accept the next event.
    pub fn poll_offer(&mut self, input: Vec<u8>) -> PollOutcome {
        let before = self.machine.clock.cycles().max(self.timeline.now());
        let outcome = self.offer_request(input);
        let after = self.machine.clock.cycles().max(self.timeline.now());
        // A domain rollback restores the benign connections *before*
        // analysis output is needed, so the analysis phase overlaps the
        // host's own queued requests instead of stalling them: report it
        // separately and exclude it from the queue-blocking busy time.
        let deferred_cycles = match &outcome {
            RequestOutcome::Attack(r) => r.deferred_cycles,
            _ => 0,
        };
        PollOutcome {
            outcome,
            busy_cycles: after.saturating_sub(before).saturating_sub(deferred_cycles),
            deferred_cycles,
        }
    }

    /// Pre-copy drain between reactor events: fold pages the last
    /// request dirtied into the pending delta while the host is idle.
    /// Background work, never charged to the service clock — the
    /// reactor schedules these off its own clock so a due snapshot
    /// only pays for pages dirtied since the last drain. Returns the
    /// number of pages drained.
    pub fn drain_precopy(&mut self) -> usize {
        self.mgr.drain(&self.machine)
    }

    /// Handle a detected attack: analyze (producers), deploy antibodies,
    /// recover.
    fn handle_attack(&mut self, cause: String, via_vsef: bool) -> AttackReport {
        self.attacks_detected += 1;
        self.sync_time();
        let detection_at = self.timeline.now();
        let compromised = apps::is_compromised(&self.machine);
        self.timeline.record(Event::AttackDetected {
            cause: cause.clone(),
        });

        // Producers run the full analysis (skipped when a deployed VSEF
        // caught a known vulnerability — the antibody already exists).
        let analysis_begin = self.timeline.now();
        let analysis = if self.config.role == Role::Producer && !via_vsef {
            analyze_attack_with_faults(
                &self.machine,
                &self.mgr,
                &self.proxy,
                &mut self.timeline,
                &mut self.obs,
                self.config.run_slicing,
                self.config.replay_budget,
                self.fault_hooks.as_deref_mut(),
            )
        } else {
            None
        };
        let analysis_cycles = self.timeline.now().saturating_sub(analysis_begin);

        // Deploy our own antibody locally.
        let drop_ids: Vec<usize> = if let Some(rep) = &analysis {
            self.deploy_antibody_faulted(&rep.antibody.clone());
            if rep.input.attack_log_ids.is_empty() {
                self.last_conn_fallback()
            } else {
                rep.input.attack_log_ids.clone()
            }
        } else {
            self.last_conn_fallback()
        };

        // Polygraph-style signature generalization: accumulate captured
        // exploit samples; once two or more polymorphic variants of the
        // vulnerability have been seen (e.g. caught by a VSEF after the
        // exact signature missed), derive an ordered token-sequence
        // signature that drops future byte-level-different variants at
        // the proxy. VSEFs remain the safety net against mistraining.
        for &id in &drop_ids {
            if let Some(lc) = self.proxy.get(id) {
                if !self.attack_samples.contains(&lc.input) {
                    self.attack_samples.push(lc.input.clone());
                }
            }
        }
        if self.attack_samples.len() >= 2 {
            let samples: Vec<&[u8]> = self.attack_samples.iter().map(|s| s.as_slice()).collect();
            if let Some(sig) = antibody::tokens_from_samples(&samples, 4) {
                // Mistraining guard (the Paragraph-attack concern the
                // paper cites): only deploy a generalization when this
                // host has *negative examples* — served benign inputs —
                // and the candidate matches none of them. Without a
                // benign corpus, generalizing is unsafe (the common
                // tokens may be pure protocol framing); the exact and
                // substring signatures plus VSEFs carry the load.
                let benign: Vec<&[u8]> = self
                    .proxy
                    .log()
                    .iter()
                    .filter(|c| !c.filtered && !self.attack_samples.contains(&c.input))
                    .map(|c| c.input.as_slice())
                    .collect();
                if !benign.is_empty() && !benign.iter().any(|b| sig.matches(b)) {
                    self.signatures.add(sig);
                }
            }
        }

        // Recovery: roll back and re-execute without the attack.
        let recover_from = self
            .mgr
            .latest_before(
                drop_ids
                    .iter()
                    .filter_map(|&id| self.proxy.get(id))
                    .map(|c| c.arrival_cycles)
                    .min()
                    .unwrap_or(u64::MAX),
            )
            .or_else(|| self.mgr.oldest())
            .map(|c| c.id);
        // Attribute the attack's dirty pages to its own domain *before*
        // the fault seam runs, so the chaos hooks that corrupt domain
        // tags or force spills find a populated ledger to perturb.
        let attacked: Vec<u32> = drop_ids
            .iter()
            .filter_map(|&id| self.proxy.get(id))
            .map(|c| c.domain)
            .collect();
        if let Some(&d) = attacked.first() {
            self.mgr.note_attack(&self.machine, d);
        }
        // Fault seam: the eviction-race window between choosing a
        // checkpoint and replaying from it. A hook may evict the chosen
        // snapshot here; recovery must then degrade to a restart.
        if let Some(hooks) = self.fault_hooks.as_deref_mut() {
            hooks.before_recovery(&mut self.mgr, &mut self.proxy);
        }
        let mut method: &'static str = "restart";
        if let Some(ck) = recover_from {
            method = self.run_recovery(ck, &drop_ids, &attacked);
        }
        if method == "restart" {
            self.restart(&drop_ids);
        }
        self.obs.inc(
            if method == "restart" {
                "recovery.restarts"
            } else {
                "recovery.rollback_replays"
            },
            1,
        );
        // The VSEF instrumentation is logically re-attached to the
        // recovered (or restarted) execution: clear its shadow state.
        if let Some(rt) = self.vsef_instr.get_mut::<VsefRuntime>(self.vsef_id) {
            rt.reset_state();
        }
        // The recovered machine's clock rewound; wall time did not.
        // Re-anchor the machine clock at the monotone global time.
        let now = self.timeline.now();
        if self.machine.clock.cycles() < now {
            self.machine.clock.tick(now - self.machine.clock.cycles());
        }
        let pause_ms = cycles_to_secs(self.timeline.now() - detection_at) * 1e3;
        self.timeline.record(Event::Recovered { method, pause_ms });
        // Fresh checkpoint of the recovered state. The pre-attack drain
        // set refers to the execution that was just rolled back (or
        // replaced): discard it, or its stale pages leak into this
        // delta (see `CheckpointManager::discard_pending`).
        self.mgr.discard_pending();
        let id = self.mgr.take(&mut self.machine);
        self.sync_time();
        self.timeline.record(Event::Checkpoint { id: id.0 });
        AttackReport {
            cause,
            analysis,
            recovery_method: method,
            pause_ms,
            // Only a domain rollback leaves the benign connections live
            // while analysis runs; a full replay (or restart) needs the
            // analysis verdict before service state exists again.
            deferred_cycles: if method == "domain-rollback" {
                analysis_cycles
            } else {
                0
            },
            compromised,
        }
    }

    /// Run the configured post-attack recovery strategy against
    /// checkpoint `ck`, accounting the outcome. Returns the method label
    /// recorded on the timeline: `"domain-rollback"` (partial rollback,
    /// benign connections untouched), `"rollback-replay"` (full rollback
    /// plus drop-the-attack replay), or `"restart"` (nothing could be
    /// recovered).
    fn run_recovery(&mut self, ck: CkptId, drop_ids: &[usize], attacked: &[u32]) -> &'static str {
        match self.config.recovery {
            RecoveryMode::Full => self.full_recovery(ck, drop_ids, attacked),
            RecoveryMode::Domain => self
                .domain_recovery(ck, drop_ids, attacked)
                .unwrap_or_else(|| self.full_recovery(ck, drop_ids, attacked)),
            RecoveryMode::Differential => {
                // The differential oracle: run the partial rollback on a
                // shadow clone of the faulted machine and the full
                // rollback+replay on the live one, then require their
                // guest-observable states to be bit-identical. The Full
                // result is always the one adopted.
                let mut shadow = self.machine.clone();
                let domain =
                    recover_domain(&mut shadow, &mut self.mgr, &mut self.proxy, ck, drop_ids);
                if let Err(refusal) = &domain {
                    self.count_domain_fallback(*refusal);
                }
                let method = self.full_recovery(ck, drop_ids, attacked);
                if let Ok(RecoveryOutcome::Resumed(r)) = &domain {
                    if r.disturbed_outside(attacked) {
                        self.obs.inc("recovery.i12_violations", 1);
                    }
                    if method == "rollback-replay" {
                        self.obs.inc("recovery.domain_parity_checks", 1);
                        if recovery_digest(&shadow) != recovery_digest(&self.machine) {
                            self.obs.inc("recovery.domain_parity_mismatches", 1);
                        }
                    }
                }
                method
            }
        }
    }

    /// Attempt the partial (domain) rollback; `None` means it refused
    /// fail-closed and the caller must run the full path.
    fn domain_recovery(
        &mut self,
        ck: CkptId,
        drop_ids: &[usize],
        attacked: &[u32],
    ) -> Option<&'static str> {
        match recover_domain(
            &mut self.machine,
            &mut self.mgr,
            &mut self.proxy,
            ck,
            drop_ids,
        ) {
            Ok(RecoveryOutcome::Resumed(r)) => {
                self.adopt_resume(&r, attacked);
                Some("domain-rollback")
            }
            Ok(_) => None,
            Err(refusal) => {
                self.count_domain_fallback(refusal);
                None
            }
        }
    }

    /// Full rollback + drop-the-attack replay (the pre-domain pipeline).
    fn full_recovery(&mut self, ck: CkptId, drop_ids: &[usize], attacked: &[u32]) -> &'static str {
        match self.recover_faulted(ck, drop_ids) {
            RecoveryOutcome::Resumed(r) => {
                self.adopt_resume(&r, attacked);
                "rollback-replay"
            }
            RecoveryOutcome::ReplayFaulted(_) | RecoveryOutcome::RestartRequired { .. } => {
                "restart"
            }
        }
    }

    /// Account a refused partial rollback: the silent-fallback visibility
    /// counters (satellite of invariant I12 — a Domain host quietly
    /// running Full recoveries must show up in metrics).
    fn count_domain_fallback(&mut self, refusal: checkpoint::DomainRefusal) {
        self.obs.inc("recovery.domain_fallbacks", 1);
        self.obs
            .inc(&format!("recovery.domain_fallback.{}", refusal.name()), 1);
        if refusal.is_spill() {
            self.obs.inc("recovery.domain_spill_fallbacks", 1);
        }
    }

    /// Account a successful resume: the legacy flat totals, the
    /// per-recovery-mode split (`recovery.full.*` / `recovery.domain.*`),
    /// per-domain counters, the unconditional I12 check for partial
    /// rollbacks, and the service pause.
    fn adopt_resume(&mut self, r: &ResumeReport, attacked: &[u32]) {
        let mode = r.kind.name();
        self.obs
            .inc("recovery.replayed_conns", r.replayed_conns() as u64);
        self.obs
            .inc("recovery.dropped_conns", r.dropped_conns() as u64);
        self.obs.inc(
            &format!("recovery.{mode}.replayed_conns"),
            r.replayed_conns() as u64,
        );
        self.obs.inc(
            &format!("recovery.{mode}.dropped_conns"),
            r.dropped_conns() as u64,
        );
        self.obs.inc(&format!("recovery.{mode}.resumes"), 1);
        for d in &r.per_domain {
            self.obs.inc(
                &format!("recovery.{mode}.domain.{}.replayed_conns", d.domain),
                d.replayed as u64,
            );
            self.obs.inc(
                &format!("recovery.{mode}.domain.{}.dropped_conns", d.domain),
                d.dropped as u64,
            );
        }
        if r.kind == RecoveryKind::Domain {
            self.obs.inc("recovery.domain_rollbacks", 1);
            // I12 is unconditional: a partial rollback that replayed or
            // dropped work in any benign domain is a violation no matter
            // what faults were firing.
            if r.disturbed_outside(attacked) {
                self.obs.inc("recovery.i12_violations", 1);
            }
        }
        self.timeline.advance_by(r.pause_cycles);
    }

    /// Run one request under full sampling instrumentation (taint paired
    /// with the deployed VSEFs). On a taint alert — tainted data about to
    /// be used as a control-transfer target — the request is treated as
    /// an attack *before the hijack executes*: the antibody is derived
    /// directly from the sampling tool's findings (the heavyweight
    /// analysis already ran; it was the monitoring).
    fn run_sampled(&mut self, log_id: usize) -> Result<Status, Box<AttackReport>> {
        let mut sampler = Instrumenter::new();
        let taint_id = sampler.attach(Box::new(TaintTool::new()));
        let status = loop {
            // Sampled requests are driven one instruction at a time so
            // that a taint alert stops execution *before* the flagged
            // control transfer runs — detection must precede damage.
            let status = {
                let Sweeper {
                    machine,
                    vsef_instr,
                    ..
                } = self;
                machine.step_hooked(&mut Pair(vsef_instr, &mut sampler))
            };
            let alerted = sampler
                .get::<TaintTool>(taint_id)
                .map(|t| !t.alerts().is_empty())
                .unwrap_or(false);
            if !alerted && status.is_running() {
                continue;
            }
            // Sampling is the expensive path: its instrumentation cost is
            // charged to the live clock (the §4.2 trade-off).
            sampler.charge(&mut self.machine);
            self.vsef_instr.charge(&mut self.machine);
            self.sync_time();
            let alert = sampler
                .get::<TaintTool>(taint_id)
                .and_then(|t| t.alerts().first().cloned());
            if let Some(a) = alert {
                let cause = format!(
                    "sampling: tainted control transfer to {:#010x} at {:#010x}",
                    a.target, a.pc
                );
                // Degrade gracefully if the taint tool went missing
                // (detached or downcast failure): a sink-only VSEF is a
                // weaker but valid antibody — never abort mid-recovery.
                let prop: Vec<u32> = match sampler.get::<TaintTool>(taint_id) {
                    Some(taint) => {
                        let mut p: Vec<u32> = taint.propagation_pcs().iter().copied().collect();
                        p.truncate(64);
                        p
                    }
                    None => {
                        self.timeline.record(Event::AttackDetected {
                            cause: SweeperError::ToolUnavailable { tool: "taint" }.to_string(),
                        });
                        Vec::new()
                    }
                };
                let spec = VsefSpec::TaintFilter {
                    prop_pcs: prop,
                    sink_pc: a.pc,
                };
                return Err(Box::new(self.handle_sampled_attack(cause, spec, log_id)));
            }
            let vsef_fired = self
                .vsef_instr
                .get::<VsefRuntime>(self.vsef_id)
                .map(|v| !v.detections().is_empty())
                .unwrap_or(false);
            if vsef_fired || !status.is_running() {
                break status;
            }
        };
        Ok(status)
    }

    /// Handle an attack caught by sampling: deploy the taint-derived
    /// antibody and recover by dropping the sampled connection.
    fn handle_sampled_attack(
        &mut self,
        cause: String,
        spec: VsefSpec,
        log_id: usize,
    ) -> AttackReport {
        self.attacks_detected += 1;
        self.sync_time();
        let detection_at = self.timeline.now();
        let compromised = apps::is_compromised(&self.machine);
        self.timeline.record(Event::AttackDetected {
            cause: cause.clone(),
        });
        // Build the antibody from the live sampling findings.
        let nominal = Layout::nominal();
        let mut antibody = Antibody::new();
        antibody.push(
            AntibodyItem::Vsef(spec.rebase(&self.machine.layout, &nominal)),
            1.0,
        );
        if let Some(lc) = self.proxy.get(log_id) {
            antibody.push(
                AntibodyItem::Signature(antibody::exact_from(&lc.input)),
                2.0,
            );
            antibody.push(AntibodyItem::ExploitInput(lc.input.clone()), 3.0);
        }
        self.deploy_antibody_faulted(&antibody);
        // Recover: roll back to before this connection and drop it.
        let arrival = self
            .proxy
            .get(log_id)
            .map(|c| c.arrival_cycles)
            .unwrap_or(u64::MAX);
        let recover_from = self
            .mgr
            .latest_before(arrival)
            .or_else(|| self.mgr.oldest())
            .map(|c| c.id);
        let attacked: Vec<u32> = self
            .proxy
            .get(log_id)
            .map(|c| vec![c.domain])
            .unwrap_or_default();
        if let Some(&d) = attacked.first() {
            self.mgr.note_attack(&self.machine, d);
        }
        if let Some(hooks) = self.fault_hooks.as_deref_mut() {
            hooks.before_recovery(&mut self.mgr, &mut self.proxy);
        }
        let mut method: &'static str = "restart";
        if let Some(ck) = recover_from {
            method = self.run_recovery(ck, &[log_id], &attacked);
        }
        if method == "restart" {
            self.restart(&[log_id]);
        }
        self.obs.inc(
            if method == "restart" {
                "recovery.restarts"
            } else {
                "recovery.rollback_replays"
            },
            1,
        );
        if let Some(rt) = self.vsef_instr.get_mut::<VsefRuntime>(self.vsef_id) {
            rt.reset_state();
        }
        let now = self.timeline.now();
        if self.machine.clock.cycles() < now {
            self.machine.clock.tick(now - self.machine.clock.cycles());
        }
        let pause_ms = cycles_to_secs(self.timeline.now() - detection_at) * 1e3;
        self.timeline.record(Event::Recovered { method, pause_ms });
        self.mgr.discard_pending();
        let id = self.mgr.take(&mut self.machine);
        self.sync_time();
        self.timeline.record(Event::Checkpoint { id: id.0 });
        AttackReport {
            cause,
            analysis: None,
            recovery_method: method,
            pause_ms,
            // The sampled path's heavyweight work *was* the monitoring,
            // charged to the live clock before detection: nothing left
            // to overlap.
            deferred_cycles: 0,
            compromised,
        }
    }

    /// Verify a recovery replay against a *persisted* Flashback syscall
    /// log (paper §4.1): decode the stored byte buffer and compare its
    /// `write()` records against the replay's.
    ///
    /// The buffer may have crossed a disk or the network, so it is
    /// decoded defensively: a truncated or corrupted log is rejected as
    /// [`SweeperError::CorruptLog`] — the caller then falls back to the
    /// conservative session-consistency check instead of trusting a
    /// damaged log. (Before the bounds-checked decoder this path would
    /// read past the buffer on logs truncated mid-record; the chaos
    /// harness' corrupt-log fault family keeps it honest.)
    pub fn verify_replay_log(
        original_bytes: &[u8],
        replayed: &SyscallLog,
    ) -> Result<Divergence, SweeperError> {
        let original = SyscallLog::from_bytes(original_bytes)?;
        Ok(divergence(&original, replayed, true))
    }

    /// A point-in-time operator summary of the protected host.
    pub fn status(&self) -> HostStatus {
        HostStatus {
            app: self.app_name.clone(),
            uptime_secs: self.timeline.now_secs(),
            requests_served: self.requests_served,
            requests_sampled: self.requests_sampled,
            attacks_detected: self.attacks_detected,
            requests_filtered: self.proxy.filtered_total,
            deployed_vsefs: self.deployed_vsefs(),
            deployed_signatures: self.signatures.len(),
            checkpoints_retained: self.mgr.retained(),
            checkpoints_taken: self.mgr.taken_total,
            checkpoint_pages: self.mgr.retained_unique_pages(&self.machine),
            healthy: !matches!(
                self.machine.status(),
                Status::Faulted(_) | Status::Halted(_)
            ),
        }
    }

    /// A full metrics snapshot for this host: the runtime's own
    /// registry (pipeline phase spans, recovery counters) merged with
    /// fresh exports from every subsystem (VM, checkpoint ring, proxy,
    /// VSEF instrumentation) plus top-level host counters.
    ///
    /// Exports use absolute mirrors (`set_counter`), so snapshotting is
    /// idempotent — calling this twice never double-counts.
    pub fn export_metrics(&self) -> obs::MetricsRegistry {
        let mut reg = self.obs.clone();
        self.machine.export_metrics(&mut reg);
        self.mgr.export_metrics(&self.machine, &mut reg);
        self.proxy.export_metrics(&mut reg);
        self.vsef_instr.export_metrics(&mut reg);
        reg.set_counter("sweeper.attacks_detected", self.attacks_detected);
        reg.set_counter("sweeper.requests_served", self.requests_served);
        reg.set_counter("sweeper.requests_sampled", self.requests_sampled);
        reg.set_counter("sweeper.deployed_signatures", self.signatures.len() as u64);
        reg.set_counter("sweeper.deployed_vsefs", self.deployed_vsefs() as u64);
        reg.set_counter("sweeper.rerandomizations_total", self.rerandomizations);
        reg.set_counter(
            "sweeper.quarantined_producers",
            self.quarantined_producers.len() as u64,
        );
        reg
    }

    fn last_conn_fallback(&self) -> Vec<usize> {
        self.proxy
            .last_delivered_before(u64::MAX)
            .map(|id| vec![id])
            .unwrap_or_default()
    }

    /// Full restart: boot a fresh instance (new ASLR draw), mark the
    /// attack connections dropped, charge the restart penalty.
    ///
    /// The ASLR reseed mixes a *monotone rerandomization counter*
    /// through a bijective finalizer ([`Aslr::rerandomize`]). The old
    /// scheme (`seed.wrapping_add(attacks_detected)`) stepped the seed
    /// through *neighboring* values, so a restarted host could re-derive
    /// a layout an attacker had already probed: the n-th restart landed
    /// exactly on the boot seed of any host configured at `seed + n`,
    /// and nearby xorshift seeds share low-bit structure under the
    /// entropy mask. The finalizer decorrelates consecutive draws.
    fn restart(&mut self, drop_ids: &[usize]) {
        self.rerandomizations += 1;
        let aslr = self.config.aslr.rerandomize(self.rerandomizations);
        self.obs.inc("sweeper.rerandomizations", 1);
        if let Ok(mut fresh) = Machine::boot(&self.program, aslr) {
            fresh
                .clock
                .tick(self.machine.clock.cycles() + self.config.restart_cycles);
            self.machine = fresh;
            // The drained pages belonged to the old instance; its
            // write generations mean nothing to the fresh boot.
            self.mgr.discard_pending();
            for &id in drop_ids {
                self.proxy.mark_dropped(id);
            }
            // Pending (unserved) connections are lost on restart: drop
            // every log entry newer than the last served one.
            self.timeline.advance_by(self.config.restart_cycles);
            self.run_until_idle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::{httpd1, httpd2, squid};

    fn served(out: &RequestOutcome) -> bool {
        matches!(out, RequestOutcome::Served { .. })
    }

    #[test]
    fn serves_benign_traffic_and_checkpoints() {
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(1)).expect("protect");
        for i in 0..10 {
            let out = s.offer_request(httpd1::benign_request(&format!("p{i}.html")));
            assert!(served(&out), "request {i}");
        }
        assert_eq!(s.requests_served, 10);
        assert!(s.mgr.taken_total >= 1);
        assert_eq!(s.attacks_detected, 0);
    }

    #[test]
    fn detects_analyzes_and_recovers_from_stack_smash() {
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(2)).expect("protect");
        assert!(served(&s.offer_request(httpd1::benign_request("a.html"))));
        let out = s.offer_request(httpd1::exploit_crash(&app).input);
        let RequestOutcome::Attack(report) = out else {
            panic!("expected attack")
        };
        assert!(report.cause.starts_with("fault:"), "{}", report.cause);
        assert!(!report.compromised);
        let analysis = report.analysis.as_ref().expect("producer analyzed");
        assert!(analysis.antibody.first_vsef_ms().is_some(), "VSEF produced");
        assert!(
            !analysis.input.attack_log_ids.is_empty(),
            "input identified"
        );
        // Default recovery is the partial domain rollback: the benign
        // connection's work survives without being replayed.
        assert_eq!(report.recovery_method, "domain-rollback");
        assert!(report.deferred_cycles > 0, "analysis overlaps the queue");
        let m = s.export_metrics();
        assert_eq!(m.counter("recovery.domain_rollbacks"), 1);
        assert_eq!(m.counter("recovery.domain.replayed_conns"), 0);
        assert_eq!(m.counter("recovery.domain.dropped_conns"), 1);
        assert_eq!(m.counter("recovery.i12_violations"), 0);
        // Service continues.
        assert!(served(&s.offer_request(httpd1::benign_request("b.html"))));
        // The same exploit again is now filtered by the exact signature.
        let again = s.offer_request(httpd1::exploit_crash(&app).input);
        assert!(
            matches!(again, RequestOutcome::Filtered { .. }),
            "signature blocks repeat"
        );
    }

    #[test]
    fn polymorphic_variant_caught_by_vsef_not_signature() {
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(3)).expect("protect");
        let first = s.offer_request(httpd1::exploit_crash(&app).input);
        assert!(matches!(first, RequestOutcome::Attack(_)));
        assert!(s.deployed_vsefs() > 0);
        // A byte-level different exploit of the same vulnerability: the
        // exact signature misses, but the deployed VSEF catches it
        // *before* the fault.
        let poly = s.offer_request(httpd1::exploit_crash_poly(&app, 9).input);
        let RequestOutcome::Attack(report) = poly else {
            panic!("expected attack")
        };
        assert!(
            report.cause.starts_with("vsef:"),
            "caught by VSEF: {}",
            report.cause
        );
        assert!(
            report.analysis.is_none(),
            "known vulnerability: no re-analysis"
        );
        // And the server still works.
        assert!(served(&s.offer_request(httpd1::benign_request("ok.html"))));
    }

    #[test]
    fn null_deref_dos_is_detected_and_service_recovers() {
        let app = httpd2::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(4)).expect("protect");
        assert!(served(&s.offer_request(httpd2::benign_request("x", None))));
        let out = s.offer_request(httpd2::exploit_crash(&app).input);
        let RequestOutcome::Attack(report) = out else {
            panic!("expected attack")
        };
        let analysis = report.analysis.as_ref().expect("analysis");
        assert!(matches!(
            analysis.core.class,
            analysis::CrashClass::NullDeref
        ));
        assert!(served(
            &s.offer_request(httpd2::benign_request("y", Some("http://ok/")))
        ));
    }

    #[test]
    fn layout_guessing_compromise_damages_without_sampling() {
        // The attacker guessed the layout (ASLR disabled here stands in
        // for the 2^-12 lucky draw): the shellcode runs — damage done —
        // before any monitor can react. The runtime still notices the
        // anomalous exit and recovers, but `compromised` is true.
        let app = httpd1::app().expect("app");
        let cfg = Config {
            aslr: svm::loader::Aslr::off(),
            ..Config::default()
        };
        let mut s = Sweeper::protect(&app, cfg).expect("protect");
        let ex = httpd1::exploit_compromise(&app, &svm::loader::Layout::nominal());
        let RequestOutcome::Attack(report) = s.offer_request(ex.input) else {
            panic!("anomalous exit not flagged")
        };
        assert!(report.compromised, "shellcode ran: {:?}", report.cause);
        // Service still recovers.
        assert!(served(
            &s.offer_request(httpd1::benign_request("next.html"))
        ));
    }

    #[test]
    fn sampling_catches_layout_guessing_worm_before_damage() {
        // §4.2: the same lucky-layout compromise is caught by sampled
        // taint analysis at the ret — *before* the hijack executes.
        let app = httpd1::app().expect("app");
        let cfg = Config {
            aslr: svm::loader::Aslr::off(),
            ..Config::default()
        }
        .with_sampling(1.0);
        let mut s = Sweeper::protect(&app, cfg).expect("protect");
        let ex = httpd1::exploit_compromise(&app, &svm::loader::Layout::nominal());
        let RequestOutcome::Attack(report) = s.offer_request(ex.input) else {
            panic!("sampling missed the attack")
        };
        assert!(report.cause.starts_with("sampling:"), "{}", report.cause);
        assert!(!report.compromised, "caught before the shellcode ran");
        assert_eq!(s.requests_sampled, 1);
        // The derived antibody now protects future (unsampled) requests.
        assert!(s.deployed_vsefs() > 0);
        assert!(served(&s.offer_request(httpd1::benign_request("ok.html"))));
        let again = s
            .offer_request(httpd1::exploit_compromise(&app, &svm::loader::Layout::nominal()).input);
        assert!(
            matches!(again, RequestOutcome::Filtered { .. }),
            "signature blocks the repeat: {again:?}"
        );
    }

    #[test]
    fn sampling_rate_controls_coverage_and_cost() {
        let app = httpd1::app().expect("app");
        // Full sampling is strictly slower than none (heavyweight path).
        let mut full =
            Sweeper::protect(&app, Config::producer(9).with_sampling(1.0)).expect("protect");
        let mut none = Sweeper::protect(&app, Config::producer(9)).expect("protect");
        let reqs: Vec<Vec<u8>> = (0..10)
            .map(|i| httpd1::benign_request(&format!("p{i}.html")))
            .collect();
        let t0 = full.timeline.now();
        for r in &reqs {
            assert!(served(&full.offer_request(r.clone())));
        }
        let full_cycles = full.timeline.now() - t0;
        let t0 = none.timeline.now();
        for r in &reqs {
            assert!(served(&none.offer_request(r.clone())));
        }
        let none_cycles = none.timeline.now() - t0;
        assert_eq!(full.requests_sampled, 10);
        assert_eq!(none.requests_sampled, 0);
        // Sampling charges per-instruction taint overhead; the absolute
        // delta is modest per request (network RTTs dominate request
        // cost) but must be strictly and visibly positive.
        assert!(
            full_cycles > none_cycles + 100_000,
            "sampling must be measurably heavyweight: {full_cycles} vs {none_cycles}"
        );
        // Fractional sampling samples roughly that fraction.
        let mut half =
            Sweeper::protect(&app, Config::producer(10).with_sampling(0.5)).expect("protect");
        for i in 0..40 {
            half.offer_request(httpd1::benign_request(&format!("q{i}.html")));
        }
        assert!(
            (8..=32).contains(&half.requests_sampled),
            "~half sampled: {}",
            half.requests_sampled
        );
    }

    #[test]
    fn signatures_generalize_after_two_variants() {
        // Fully polymorphic variants: per-variant filler, fake fp, AND
        // return address, so neither the exact nor the taint-substring
        // signature from variant 1 matches variant 2. Only the shared
        // attack *structure* survives; after two captured samples the
        // host derives a token-sequence signature and drops variant 3 at
        // the proxy.
        fn variant(salt: u8) -> Vec<u8> {
            let mut v = b"GET /cgi-bin/vuln?arg=".to_vec();
            v.extend(std::iter::repeat_n(b'a' + salt, 46)); // 18+46 = 64-byte URI fill
            v.extend((0x4343_4341u32 + salt as u32).to_le_bytes()); // fake fp
            v.extend((0x6666_6601u32 + (salt as u32) * 0x10).to_le_bytes()); // ret
            v.extend_from_slice(b" HTTP/1.0\n");
            v
        }
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(0x9e4)).expect("protect");
        // Benign corpus first: the mistraining guard requires negative
        // examples before any generalization is deployed.
        for i in 0..3 {
            assert!(served(
                &s.offer_request(httpd1::benign_request(&format!("b{i}.html")))
            ));
        }
        let RequestOutcome::Attack(_) = s.offer_request(variant(1)) else {
            panic!("variant 1 undetected")
        };
        let RequestOutcome::Attack(r2) = s.offer_request(variant(2)) else {
            panic!("variant 2 should evade the byte-level signatures and hit the VSEF")
        };
        assert!(r2.cause.starts_with("vsef:"), "{}", r2.cause);
        // Variant 3: dropped at the proxy by the generalized signature.
        let out = s.offer_request(variant(3));
        assert!(
            matches!(out, RequestOutcome::Filtered { .. }),
            "token signature generalizes: {out:?}"
        );
        // And benign traffic still flows (no mistraining).
        assert!(served(
            &s.offer_request(httpd1::benign_request("still-ok.html"))
        ));
    }

    #[test]
    fn generalization_requires_a_benign_corpus() {
        // With no served traffic, common tokens are protocol framing; the
        // guard must refuse to deploy them.
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(0x9e5)).expect("protect");
        s.offer_request(httpd1::exploit_crash(&app).input);
        s.offer_request(httpd1::exploit_crash_poly(&app, 9).input);
        // Benign traffic must not be filtered by an over-general token
        // signature derived without negative examples.
        assert!(served(
            &s.offer_request(httpd1::benign_request("fresh.html"))
        ));
    }

    #[test]
    fn consumer_detects_but_does_not_analyze() {
        let app = squid::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::consumer(5)).expect("protect");
        let out = s.offer_request(squid::exploit_crash(&app).input);
        let RequestOutcome::Attack(report) = out else {
            panic!("expected attack")
        };
        assert!(report.analysis.is_none(), "consumers do not analyze");
        // Consumer still recovers (drop-last heuristic).
        assert!(served(&s.offer_request(squid::benign_request("bob", "h"))));
    }

    #[test]
    fn certified_bundle_roundtrip_protects_the_consumer() {
        // PR-5: producer analyzes an attack, seals its antibody into a
        // certified bundle; the consumer verifies it (tag check plus
        // sandboxed exploit replay) before deploying, and the exploit is
        // then blocked.
        const KEY: u64 = 0x0c0f_fee5_eed5_eed5;
        let app = squid::app().expect("app");
        let mut producer = Sweeper::protect(&app, Config::producer(6)).expect("p");
        let out = producer.offer_request(squid::exploit_crash(&app).input);
        let RequestOutcome::Attack(report) = out else {
            panic!("expected attack")
        };
        let antibody = report.analysis.as_ref().expect("analysis").antibody.clone();
        let bundle = producer
            .certify_antibody(1, 0, KEY, &antibody)
            .expect("analysis antibody carries its exploit input");
        assert_eq!(
            producer
                .export_metrics()
                .counter("sweeper.bundles_certified"),
            1
        );

        let mut consumer = Sweeper::protect(&app, Config::consumer(7)).expect("c");
        let outcome = consumer.receive_certified(&bundle, KEY);
        let BundleOutcome::Deployed { vsefs, signatures } = outcome else {
            panic!("honest bundle must deploy: {outcome:?}")
        };
        assert!(vsefs > 0 && signatures > 0);
        let m = consumer.export_metrics();
        assert_eq!(m.counter("sweeper.bundles_verified"), 1);
        assert_eq!(m.counter("sweeper.bundles_rejected"), 0);
        let again = consumer.offer_request(squid::exploit_crash(&app).input);
        match again {
            RequestOutcome::Filtered { .. } => {}
            RequestOutcome::Attack(r) => {
                assert!(r.cause.starts_with("vsef:"), "{}", r.cause)
            }
            other => panic!("consumer unprotected: {other:?}"),
        }
    }

    #[test]
    fn forged_bundles_are_rejected_and_the_sender_quarantined() {
        const KEY: u64 = 0x0c0f_fee5_eed5_eed5;
        let app = squid::app().expect("app");
        let mut producer = Sweeper::protect(&app, Config::producer(8)).expect("p");
        let RequestOutcome::Attack(report) =
            producer.offer_request(squid::exploit_crash(&app).input)
        else {
            panic!("expected attack")
        };
        let antibody = report.analysis.as_ref().expect("analysis").antibody.clone();
        let honest = producer
            .certify_antibody(3, 0, KEY, &antibody)
            .expect("seal");

        let mut consumer = Sweeper::protect(&app, Config::consumer(9)).expect("c");
        // I8: every forgery mode is rejected, nothing deploys, and the
        // forging producer is quarantined after the first rejection.
        let forged = honest.forged_bad_tag();
        assert!(matches!(
            consumer.receive_certified(&forged, KEY),
            BundleOutcome::Rejected(_)
        ));
        assert_eq!(consumer.deployed_vsefs(), 0, "I8: nothing deployed");
        assert_eq!(consumer.quarantined_producers(), &[3]);
        // A later bundle from the quarantined producer — even the honest
        // one — is dropped unexamined.
        assert!(matches!(
            consumer.receive_certified(&honest, KEY),
            BundleOutcome::SenderQuarantined
        ));
        let m = consumer.export_metrics();
        assert_eq!(m.counter("sweeper.bundles_rejected"), 1);
        assert_eq!(m.counter("sweeper.bundles_quarantine_dropped"), 1);
        assert_eq!(m.counter("sweeper.producers_quarantined"), 1);
        assert_eq!(m.counter("sweeper.quarantined_producers"), 1);
        // The same honest bundle re-sent under a different producer id
        // (an unquarantined sender) verifies and deploys: quarantine is
        // per-sender, not per-vulnerability.
        let resent = producer
            .certify_antibody(4, 1, KEY, &antibody)
            .expect("seal");
        assert!(matches!(
            consumer.receive_certified(&resent, KEY),
            BundleOutcome::Deployed { .. }
        ));
        // Evidence swapped for benign bytes and re-tagged under the real
        // key is caught by the cheap consistency check (evidence must
        // equal the antibody's own exploit input)...
        let swapped = honest.forged_mismatched_evidence(KEY, b"GET /index.html".to_vec());
        let mut fresh = Sweeper::protect(&app, Config::consumer(10)).expect("c2");
        assert!(matches!(
            fresh.receive_certified(&swapped, KEY),
            BundleOutcome::Rejected(_)
        ));
        assert_eq!(fresh.deployed_vsefs(), 0);
        // ...while an *honestly sealed* bundle whose evidence simply
        // isn't hostile (an insider Byzantine producer vouching for
        // nothing) passes the tag and consistency checks and is killed
        // by the sandbox replay itself: no detection, no deployment.
        let mut vacuous = Antibody::new();
        vacuous.push(AntibodyItem::Vsef(VsefSpec::NullCheck { insn_pc: 4 }), 1.0);
        vacuous.push(AntibodyItem::ExploitInput(b"hi".to_vec()), 2.0);
        let lying = CertifiedBundle::seal(6, 0, &vacuous, KEY).expect("seal");
        assert!(matches!(
            fresh.receive_certified(&lying, KEY),
            BundleOutcome::Rejected(CertifyError::SandboxRejected { .. })
        ));
        assert_eq!(fresh.deployed_vsefs(), 0, "I8 holds at the replay gate");
    }

    #[test]
    fn consumer_is_protected_by_received_antibody() {
        // Producer analyzes; consumer deploys the antibody and then
        // blocks/catches the same exploit.
        let app = squid::app().expect("app");
        let mut producer = Sweeper::protect(&app, Config::producer(6)).expect("p");
        let out = producer.offer_request(squid::exploit_crash(&app).input);
        let RequestOutcome::Attack(report) = out else {
            panic!("expected attack")
        };
        let antibody = report.analysis.as_ref().expect("analysis").antibody.clone();

        let mut consumer = Sweeper::protect(&app, Config::consumer(7)).expect("c");
        consumer.deploy_antibody(&antibody);
        assert!(consumer.deployed_vsefs() > 0);
        let again = consumer.offer_request(squid::exploit_crash(&app).input);
        match again {
            RequestOutcome::Filtered { .. } => {}
            RequestOutcome::Attack(r) => {
                assert!(
                    r.cause.starts_with("vsef:"),
                    "caught early by VSEF: {}",
                    r.cause
                )
            }
            other => panic!("consumer unprotected: {other:?}"),
        }
    }
}

#[cfg(test)]
mod recovery_mode_tests {
    use super::*;
    use crate::config::RecoveryMode;
    use apps::httpd1;

    #[test]
    fn full_mode_replays_benign_connections() {
        let app = httpd1::app().expect("app");
        let cfg = Config::producer(21).with_recovery(RecoveryMode::Full);
        let mut s = Sweeper::protect(&app, cfg).expect("protect");
        assert!(matches!(
            s.offer_request(httpd1::benign_request("a.html")),
            RequestOutcome::Served { .. }
        ));
        let RequestOutcome::Attack(report) = s.offer_request(httpd1::exploit_crash(&app).input)
        else {
            panic!("expected attack")
        };
        assert_eq!(report.recovery_method, "rollback-replay");
        assert_eq!(report.deferred_cycles, 0, "full pause stalls the queue");
        let m = s.export_metrics();
        assert_eq!(m.counter("recovery.domain_rollbacks"), 0);
        assert_eq!(m.counter("recovery.full.replayed_conns"), 1);
        assert_eq!(m.counter("recovery.full.dropped_conns"), 1);
        assert!(matches!(
            s.offer_request(httpd1::benign_request("b.html")),
            RequestOutcome::Served { .. }
        ));
    }

    #[test]
    fn differential_mode_proves_domain_matches_full() {
        let app = httpd1::app().expect("app");
        let cfg = Config::producer(22).with_recovery(RecoveryMode::Differential);
        let mut s = Sweeper::protect(&app, cfg).expect("protect");
        for i in 0..3 {
            assert!(matches!(
                s.offer_request(httpd1::benign_request(&format!("p{i}.html"))),
                RequestOutcome::Served { .. }
            ));
        }
        let RequestOutcome::Attack(report) = s.offer_request(httpd1::exploit_crash(&app).input)
        else {
            panic!("expected attack")
        };
        assert_eq!(report.recovery_method, "rollback-replay", "Full adopted");
        let m = s.export_metrics();
        assert_eq!(m.counter("recovery.domain_parity_checks"), 1);
        assert_eq!(
            m.counter("recovery.domain_parity_mismatches"),
            0,
            "partial rollback must land on the bit-identical guest state"
        );
        assert_eq!(m.counter("recovery.i12_violations"), 0);
        assert!(matches!(
            s.offer_request(httpd1::benign_request("after.html")),
            RequestOutcome::Served { .. }
        ));
    }

    #[test]
    fn spilled_domain_falls_back_to_full_not_a_wrong_answer() {
        // Force every tracked domain into the spilled set right before
        // recovery runs (the chaos `domain-spill` family's seam): the
        // partial path must refuse and the full pipeline must carry the
        // recovery — never a partial restore of unproven isolation.
        struct ForceSpill;
        impl FaultHooks for ForceSpill {
            fn before_recovery(&mut self, mgr: &mut CheckpointManager, _proxy: &mut Proxy) {
                assert!(mgr.chaos_force_domain_spill(), "ledger populated");
            }
        }
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(23)).expect("protect");
        assert!(matches!(
            s.offer_request(httpd1::benign_request("a.html")),
            RequestOutcome::Served { .. }
        ));
        s.set_fault_hooks(Box::new(ForceSpill));
        let RequestOutcome::Attack(report) = s.offer_request(httpd1::exploit_crash(&app).input)
        else {
            panic!("expected attack")
        };
        assert_eq!(report.recovery_method, "rollback-replay", "fail-closed");
        let m = s.export_metrics();
        assert_eq!(m.counter("recovery.domain_fallbacks"), 1);
        assert_eq!(m.counter("recovery.domain_spill_fallbacks"), 1);
        assert_eq!(m.counter("recovery.domain_fallback.spilled"), 1);
        assert!(m.counter("checkpoint.domain_spills") >= 1);
        assert!(matches!(
            s.offer_request(httpd1::benign_request("b.html")),
            RequestOutcome::Served { .. }
        ));
    }

    #[test]
    fn corrupt_domain_tags_fall_back_to_full() {
        struct CorruptTag;
        impl FaultHooks for CorruptTag {
            fn before_recovery(&mut self, mgr: &mut CheckpointManager, _proxy: &mut Proxy) {
                assert!(mgr.chaos_corrupt_domain_tag(5), "ledger populated");
            }
        }
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(24)).expect("protect");
        assert!(matches!(
            s.offer_request(httpd1::benign_request("a.html")),
            RequestOutcome::Served { .. }
        ));
        s.set_fault_hooks(Box::new(CorruptTag));
        let RequestOutcome::Attack(report) = s.offer_request(httpd1::exploit_crash(&app).input)
        else {
            panic!("expected attack")
        };
        assert_eq!(report.recovery_method, "rollback-replay", "fail-closed");
        let m = s.export_metrics();
        assert_eq!(m.counter("recovery.domain_fallback.corrupt-ledger"), 1);
        assert_eq!(m.counter("recovery.i12_violations"), 0);
        assert!(matches!(
            s.offer_request(httpd1::benign_request("b.html")),
            RequestOutcome::Served { .. }
        ));
    }
}

#[cfg(test)]
mod replay_log_tests {
    use super::*;
    use checkpoint::SyscallRecord;
    use svm::isa::Syscall;

    fn log_with(ret: u32) -> SyscallLog {
        let mut log = SyscallLog::new();
        log.push(SyscallRecord {
            pc: 0x40,
            syscall: Syscall::Write,
            args: [1, 0x2000, 4, 0],
            ret,
        });
        log
    }

    #[test]
    fn persisted_log_verification_roundtrips() {
        let live = log_with(4);
        let bytes = live.to_bytes();
        let replay = log_with(4);
        match Sweeper::verify_replay_log(&bytes, &replay) {
            Ok(Divergence::None) => {}
            other => panic!("{other:?}"),
        }
        // A changed write is pinpointed, not silently accepted.
        let diverged = log_with(3);
        assert!(matches!(
            Sweeper::verify_replay_log(&bytes, &diverged),
            Ok(Divergence::At { index: 0, .. })
        ));
    }

    #[test]
    fn truncated_persisted_log_is_rejected_not_trusted() {
        // Regression: a log truncated mid-record (or wholly corrupted)
        // must surface as SweeperError::CorruptLog — the conservative
        // fallback path — and must never panic the verifier.
        let bytes = log_with(4).to_bytes();
        let replay = log_with(4);
        for cut in 0..bytes.len() {
            match Sweeper::verify_replay_log(&bytes[..cut], &replay) {
                Err(SweeperError::CorruptLog(_)) => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
        let mut garbage = bytes.clone();
        garbage[0] = b'Z';
        assert!(matches!(
            Sweeper::verify_replay_log(&garbage, &replay),
            Err(SweeperError::CorruptLog(_))
        ));
    }
}

#[cfg(test)]
mod rerandomization_tests {
    use super::*;
    use apps::httpd1;
    use svm::loader::{Aslr, Layout};

    #[test]
    fn consecutive_restarts_never_repeat_a_layout() {
        // Regression for the additive reseed (`seed + attacks_detected`):
        // restart n landed exactly on the boot layout of a host seeded
        // `seed + n`. With the bijective rerandomize mix, the boot layout
        // and every subsequent restart layout are pairwise distinct, and
        // none coincides with a neighboring host's boot draw.
        let app = httpd1::app().expect("app");
        let mut cfg = Config::producer(77);
        cfg.aslr = Aslr::on(77);
        let mut s = Sweeper::protect(&app, cfg).expect("protect");
        let mut tags = vec![s.machine.layout.cache_tag()];
        for _ in 0..8 {
            s.restart(&[]);
            tags.push(s.machine.layout.cache_tag());
        }
        let mut uniq = tags.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), tags.len(), "layout repeated: {tags:#x?}");
        // No restart layout may equal a neighboring host's boot layout
        // (the exact collision the additive scheme produced).
        for n in 1..=8u64 {
            let neighbor = Layout::randomized(Aslr::on(77 + n)).cache_tag();
            assert!(
                !tags[1..].contains(&neighbor),
                "restart re-derived neighbor boot layout seed+{n}"
            );
        }
        assert_eq!(s.export_metrics().counter("sweeper.rerandomizations"), 8);
    }
}

#[cfg(test)]
mod status_tests {
    use super::*;
    use apps::httpd1;

    #[test]
    fn status_tracks_the_host_lifecycle() {
        let app = httpd1::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(123)).expect("protect");
        let fresh = s.status();
        assert!(fresh.healthy);
        assert_eq!(fresh.requests_served, 0);
        assert_eq!(fresh.checkpoints_retained, 1, "initial checkpoint");
        for i in 0..4 {
            s.offer_request(httpd1::benign_request(&format!("p{i}.html")));
        }
        s.offer_request(httpd1::exploit_crash(&app).input);
        s.offer_request(httpd1::exploit_crash(&app).input); // filtered
        let st = s.status();
        assert!(st.healthy, "recovered");
        assert_eq!(st.requests_served, 4);
        assert_eq!(st.attacks_detected, 1);
        assert_eq!(st.requests_filtered, 1);
        assert!(st.deployed_vsefs >= 2);
        assert!(st.deployed_signatures >= 1);
        assert!(st.uptime_secs > 0.0);
        let text = st.to_string();
        assert!(text.contains("healthy") && text.contains("VSEFs"), "{text}");
    }
}
