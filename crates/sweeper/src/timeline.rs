//! The global event timeline: monotone virtual time across attacks,
//! analysis, and recovery.
//!
//! The protected machine's clock rewinds on rollback, but wall time does
//! not; the timeline owns the monotone view used by Table 3 (analysis
//! latencies) and Figure 5 (throughput during an attack).

/// A timeline event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A checkpoint was taken.
    Checkpoint {
        /// Checkpoint id.
        id: u64,
    },
    /// A request completed service.
    RequestServed {
        /// Proxy log id.
        log_id: usize,
        /// Response bytes released.
        bytes: usize,
    },
    /// A request was dropped by a deployed signature.
    RequestFiltered {
        /// Proxy log id.
        log_id: usize,
    },
    /// Lightweight monitoring (fault) or a VSEF tripped.
    AttackDetected {
        /// Human-readable cause.
        cause: String,
    },
    /// One analysis step finished.
    AnalysisStep {
        /// Step name (`memory-state`, `memory-bug`, `taint`, `slicing`).
        step: &'static str,
        /// Step duration in virtual milliseconds.
        duration_ms: f64,
    },
    /// An antibody item became available for distribution.
    AntibodyReleased {
        /// Item description.
        what: String,
    },
    /// Recovery finished.
    Recovered {
        /// `rollback-replay` or `restart`.
        method: &'static str,
        /// Service pause in virtual milliseconds.
        pause_ms: f64,
    },
}

/// An event stamped with monotone global virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped {
    /// Global virtual cycles.
    pub at_cycles: u64,
    /// The event.
    pub event: Event,
}

/// The monotone event log.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<Stamped>,
    now: u64,
}

impl Timeline {
    /// An empty timeline at t=0.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Current global virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current global virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        svm::clock::cycles_to_secs(self.now)
    }

    /// Advance global time to at least `cycles` (monotone).
    pub fn advance_to(&mut self, cycles: u64) {
        self.now = self.now.max(cycles);
    }

    /// Advance global time by a delta.
    pub fn advance_by(&mut self, cycles: u64) {
        self.now = self.now.saturating_add(cycles);
    }

    /// Record an event at the current global time.
    pub fn record(&mut self, event: Event) {
        self.events.push(Stamped {
            at_cycles: self.now,
            event,
        });
    }

    /// All events in order.
    pub fn events(&self) -> &[Stamped] {
        &self.events
    }

    /// Events matching a predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&Event) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Stamped> + 'a {
        self.events.iter().filter(move |s| pred(&s.event))
    }

    /// Index and stamp of the most recent `AttackDetected` event.
    pub fn last_detection(&self) -> Option<(usize, u64)> {
        let idx = self
            .events
            .iter()
            .rposition(|s| matches!(s.event, Event::AttackDetected { .. }))?;
        Some((idx, self.events[idx].at_cycles))
    }

    /// Milliseconds between the most recent `AttackDetected` and the
    /// first subsequent event satisfying `pred` — the Table 3 latency
    /// helper ("time values are cumulative from the lightweight
    /// monitoring triggering").
    ///
    /// "Subsequent" means *after the detection event in log order*, not
    /// merely stamped `>= det_at`: with back-to-back attacks, an event
    /// belonging to a *previous* attack can share the detection's cycle
    /// stamp (zero-cost events, coarse virtual steps), and a
    /// stamp-based scan from the start of the log would match it and
    /// report a stale/zero latency.
    pub fn ms_from_detection<F: Fn(&Event) -> bool>(&self, pred: F) -> Option<f64> {
        let (det_idx, det_at) = self.last_detection()?;
        let hit = self.events[det_idx + 1..].iter().find(|s| pred(&s.event))?;
        Some(svm::clock::cycles_to_secs(hit.at_cycles - det_at) * 1e3)
    }
}

/// A multiset of latency samples on the shared virtual clock, with
/// nearest-rank percentile read-out — the fleet-wide latency
/// accounting primitive.
///
/// Samples are kept in a plain `Vec`, **never** keyed by their
/// virtual-clock stamp: with thousands of hosts multiplexed onto one
/// virtual clock, many hosts complete requests at the *same* stamp,
/// and a stamp-keyed map would collapse those distinct measurements
/// into one sample — silently thinning exactly the tail the p99/p999
/// read-out exists to expose. (The regression lives in
/// `tests/end_to_end.rs`.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyBook {
    /// `(virtual stamp in cycles, latency in ms)` per completed request.
    samples: Vec<(u64, f64)>,
}

impl LatencyBook {
    /// An empty book.
    pub fn new() -> LatencyBook {
        LatencyBook::default()
    }

    /// Record one sample: a request that completed at virtual-clock
    /// stamp `at_cycles` after `ms` milliseconds of service latency.
    /// Equal stamps are expected and kept distinct.
    pub fn add(&mut self, at_cycles: u64, ms: f64) {
        self.samples.push((at_cycles, ms));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in recording order.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Append every sample of `other` (stable: `other`'s recording
    /// order is preserved). Merging per-host books in host-index order
    /// is fully deterministic; samples from different hosts sharing a
    /// stamp all survive the merge.
    pub fn merge(&mut self, other: &LatencyBook) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Nearest-rank percentile of the latency values, `q` in `[0, 1]`
    /// (`0.99` = p99). `None` when the book is empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut ms: Vec<f64> = self.samples.iter().map(|&(_, v)| v).collect();
        ms.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * ms.len() as f64).ceil() as usize).max(1);
        Some(ms[rank.min(ms.len()) - 1])
    }

    /// Largest recorded latency (`None` when empty).
    pub fn max_ms(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).max_by(f64::total_cmp)
    }

    /// Mean latency (`None` when empty).
    pub fn mean_ms(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_monotone() {
        let mut t = Timeline::new();
        t.advance_to(100);
        t.advance_to(50);
        assert_eq!(t.now(), 100);
        t.advance_by(10);
        assert_eq!(t.now(), 110);
    }

    #[test]
    fn detection_relative_latency() {
        let mut t = Timeline::new();
        t.advance_to(svm::clock::secs_to_cycles(1.0));
        t.record(Event::AttackDetected {
            cause: "segv".into(),
        });
        t.advance_by(svm::clock::secs_to_cycles(0.040));
        t.record(Event::AntibodyReleased {
            what: "vsef".into(),
        });
        let ms = t
            .ms_from_detection(|e| matches!(e, Event::AntibodyReleased { .. }))
            .expect("found");
        assert!((ms - 40.0).abs() < 0.1, "{ms}");
    }

    #[test]
    fn back_to_back_attacks_sharing_a_stamp_use_the_latest_detection() {
        // Regression: two consecutive attacks where the second detection
        // shares its cycle stamp with the *first* attack's antibody
        // release (a zero-cost event). The stamp-based scan-from-start
        // matched the stale antibody and reported 0 ms.
        let mut t = Timeline::new();
        t.advance_to(svm::clock::secs_to_cycles(1.0));
        t.record(Event::AttackDetected {
            cause: "segv #1".into(),
        });
        // First attack's antibody lands at the same stamp (zero-cost).
        t.record(Event::AntibodyReleased {
            what: "vsef #1".into(),
        });
        // Second attack detected at the very same cycle stamp.
        t.record(Event::AttackDetected {
            cause: "segv #2".into(),
        });
        t.advance_by(svm::clock::secs_to_cycles(0.025));
        t.record(Event::AntibodyReleased {
            what: "vsef #2".into(),
        });
        let ms = t
            .ms_from_detection(|e| matches!(e, Event::AntibodyReleased { .. }))
            .expect("found");
        assert!(
            (ms - 25.0).abs() < 0.1,
            "must measure to the second attack's antibody, got {ms}"
        );
        // And the detection anchor is the *index* of the latest attack.
        let (idx, _) = t.last_detection().expect("detection");
        assert_eq!(idx, 2);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut b = LatencyBook::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            b.add(0, v);
        }
        assert_eq!(b.percentile(0.0), Some(1.0));
        assert_eq!(b.percentile(0.5), Some(3.0));
        assert_eq!(b.percentile(0.99), Some(5.0));
        assert_eq!(b.percentile(1.0), Some(5.0));
        assert_eq!(b.max_ms(), Some(5.0));
        assert!(LatencyBook::new().percentile(0.5).is_none());
    }

    #[test]
    fn equal_stamps_stay_distinct_samples() {
        // The multi-host case: three hosts complete at the same virtual
        // stamp. All three samples must survive, and the percentile must
        // see all of them.
        let mut fleet = LatencyBook::new();
        for (host_ms, _) in [(5.0, 0), (5.0, 1), (50.0, 2)] {
            let mut host = LatencyBook::new();
            host.add(1_000, host_ms);
            fleet.merge(&host);
        }
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.percentile(0.5), Some(5.0));
        assert_eq!(fleet.percentile(0.999), Some(50.0));
    }

    #[test]
    fn filter_selects_events() {
        let mut t = Timeline::new();
        t.record(Event::Checkpoint { id: 0 });
        t.record(Event::RequestServed {
            log_id: 0,
            bytes: 10,
        });
        t.record(Event::Checkpoint { id: 1 });
        assert_eq!(
            t.filter(|e| matches!(e, Event::Checkpoint { .. })).count(),
            2
        );
    }
}
