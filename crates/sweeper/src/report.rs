//! Human-readable reports rendering the paper's Tables 2 and 3.

use svm::loader::SymbolMap;

use crate::pipeline::AnalysisReport;
use crate::runtime::AttackReport;

/// Render a Table 2-style block for one attack.
pub fn table2_block(app: &str, report: &AttackReport, live_symbols: &SymbolMap) -> String {
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(&mut out, format!("== {app} =="));
    push(&mut out, format!("detection        : {}", report.cause));
    let Some(a) = &report.analysis else {
        push(
            &mut out,
            "analysis         : (none — consumer or known vulnerability)".into(),
        );
        return out;
    };
    // Render with the symbols captured at analysis time: a restart may
    // have re-randomized the live machine's layout since.
    let symbols = &a.symbols;
    let _ = live_symbols;
    push(
        &mut out,
        format!(
            "#1 memory state  : crash at {}; stack {}; heap {}",
            a.core.fault_site,
            if a.core.stack_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            },
            if a.core.heap_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            },
        ),
    );
    for r in a.antibody.releases.iter() {
        if let antibody::AntibodyItem::Vsef(v) = &r.item {
            push(
                &mut out,
                format!("   VSEF          : {} ({} sites)", v.kind(), v.site_count()),
            );
        }
    }
    if a.membug.is_empty() {
        push(&mut out, "#2 memory bug    : no memory bug detected".into());
    } else {
        for f in &a.membug {
            let caller = f
                .caller_pc
                .map(|c| format!(" called by {}", symbols.render(c)))
                .unwrap_or_default();
            push(
                &mut out,
                format!(
                    "#2 memory bug    : {:?} by {}{}",
                    f.kind,
                    symbols.render(f.pc),
                    caller
                ),
            );
        }
    }
    let via = if a.input.via_taint {
        "taint analysis"
    } else {
        "input isolation"
    };
    push(
        &mut out,
        format!(
            "#3 input/taint   : attack connection(s) {:?} via {via}; {} tainted offsets",
            a.input.attack_log_ids,
            a.input.offsets.len()
        ),
    );
    match &a.slice {
        Some(s) => {
            let verdicts = [
                s.membug_verified.map(|v| format!("membug {}", tick(v))),
                s.taint_verified.map(|v| format!("taint {}", tick(v))),
            ]
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
            .join(", ");
            push(
                &mut out,
                format!(
                    "#4 slicing       : {} insns in slice; verifies: {}",
                    s.slice_len,
                    if verdicts.is_empty() {
                        "n/a".into()
                    } else {
                        verdicts
                    }
                ),
            );
        }
        None => push(&mut out, "#4 slicing       : (disabled)".into()),
    }
    push(
        &mut out,
        format!(
            "recovery         : {} ({:.1} ms pause)",
            report.recovery_method, report.pause_ms
        ),
    );
    out
}

fn tick(v: bool) -> &'static str {
    if v {
        "OK"
    } else {
        "MISMATCH"
    }
}

/// Render a Table 3-style timing row.
pub fn table3_row(app: &str, a: &AnalysisReport) -> String {
    let t = &a.timings;
    format!(
        "{app:<9} first VSEF {:>9.2} ms | best VSEF {:>9.2} ms | initial {:>9.2} ms | total {:>9.2} ms || state {:>7.2} ms, membug {:>8.2} ms, taint {:>8.2} ms, slicing {:>9.2} ms",
        t.first_vsef_ms, t.best_vsef_ms, t.initial_ms, t.total_ms,
        t.memory_state_ms, t.memory_bug_ms, t.taint_ms, t.slicing_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::runtime::{RequestOutcome, Sweeper};
    use apps::squid;

    fn attacked() -> (Sweeper, AttackReport) {
        let app = squid::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::producer(0x7e57)).expect("protect");
        s.offer_request(squid::benign_request("warm", "host"));
        match s.offer_request(squid::exploit_crash(&app).input) {
            RequestOutcome::Attack(r) => (s, *r),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn table2_block_contains_all_four_steps() {
        let (s, report) = attacked();
        let block = table2_block("Squid", &report, &s.machine.symbols);
        for needle in [
            "#1 memory state",
            "#2 memory bug",
            "#3 input/taint",
            "#4 slicing",
            "recovery",
        ] {
            assert!(block.contains(needle), "missing {needle}:\n{block}");
        }
        assert!(block.contains("heap INCONSISTENT"));
        assert!(
            block.contains("strcat"),
            "membug attribution rendered:\n{block}"
        );
        assert!(
            block.contains("ftp_build_title_url"),
            "caller rendered:\n{block}"
        );
    }

    #[test]
    fn table3_row_is_one_line_with_all_columns() {
        let (_s, report) = attacked();
        let a = report.analysis.expect("analysis");
        let row = table3_row("Squid", &a);
        assert_eq!(row.lines().count(), 1);
        for col in [
            "first VSEF",
            "best VSEF",
            "initial",
            "total",
            "membug",
            "taint",
            "slicing",
        ] {
            assert!(row.contains(col), "missing {col}: {row}");
        }
    }

    #[test]
    fn consumer_report_renders_without_analysis() {
        let app = squid::app().expect("app");
        let mut s = Sweeper::protect(&app, Config::consumer(0x7e58)).expect("protect");
        let RequestOutcome::Attack(r) = s.offer_request(squid::exploit_crash(&app).input) else {
            panic!("not detected")
        };
        let block = table2_block("Squid", &r, &s.machine.symbols);
        assert!(block.contains("(none — consumer or known vulnerability)"));
        assert!(!block.contains("#2"), "no analysis sections:\n{block}");
    }
}
