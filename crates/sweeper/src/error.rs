//! Runtime error type.
//!
//! The Sweeper runtime degrades rather than aborts: a host that fails
//! to come up reports [`SweeperError`] to its caller (the community
//! campaign skips it; a single bad host must not take the fleet down),
//! and a missing analysis tool downgrades the produced antibody instead
//! of panicking mid-recovery.

use std::fmt;

use svm::SvmError;

/// Errors surfaced by the Sweeper runtime.
#[derive(Debug)]
pub enum SweeperError {
    /// The underlying virtual machine failed to boot or run.
    Vm(SvmError),
    /// A required instrumentation tool could not be attached or
    /// retrieved. Carries the tool name for diagnostics.
    ToolUnavailable {
        /// Human-readable tool name.
        tool: &'static str,
    },
    /// A received antibody bundle failed to decode (truncation or
    /// corruption in transit). The runtime skips deployment and keeps
    /// recovering; the error is surfaced on the timeline.
    CorruptAntibody(antibody::BundleError),
    /// A persisted syscall log failed to decode (truncation or
    /// corruption). Replay verification falls back to the conservative
    /// path instead of trusting the damaged log.
    CorruptLog(checkpoint::SyscallLogError),
}

impl fmt::Display for SweeperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweeperError::Vm(e) => write!(f, "vm error: {e}"),
            SweeperError::ToolUnavailable { tool } => {
                write!(f, "instrumentation tool unavailable: {tool}")
            }
            SweeperError::CorruptAntibody(e) => write!(f, "corrupt antibody bundle: {e}"),
            SweeperError::CorruptLog(e) => write!(f, "corrupt syscall log: {e}"),
        }
    }
}

impl std::error::Error for SweeperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweeperError::Vm(e) => Some(e),
            SweeperError::ToolUnavailable { .. } => None,
            SweeperError::CorruptAntibody(e) => Some(e),
            SweeperError::CorruptLog(e) => Some(e),
        }
    }
}

impl From<SvmError> for SweeperError {
    fn from(e: SvmError) -> SweeperError {
        SweeperError::Vm(e)
    }
}

impl From<antibody::BundleError> for SweeperError {
    fn from(e: antibody::BundleError) -> SweeperError {
        SweeperError::CorruptAntibody(e)
    }
}

impl From<checkpoint::SyscallLogError> for SweeperError {
    fn from(e: checkpoint::SyscallLogError) -> SweeperError {
        SweeperError::CorruptLog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SweeperError::ToolUnavailable { tool: "taint" };
        assert!(e.to_string().contains("taint"));
    }
}
