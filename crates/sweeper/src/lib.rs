//! # sweeper — the end-to-end defence system (the paper's contribution)
//!
//! Ties the substrates together into the full loop of paper §2:
//!
//! - **[`runtime`]** — the protected-process wrapper: lightweight
//!   monitoring (ASLR faults + deployed VSEFs), periodic in-memory
//!   checkpoints, signature filtering at the network proxy, attack
//!   handling, and rollback-based recovery with restart fallback.
//! - **[`pipeline`]** — the post-attack analysis: rollback and re-execute
//!   repeatedly with progressively heavier instrumentation (memory-state
//!   → memory-bug → taint/isolation → backward slicing), emitting
//!   timestamped antibody releases for piecemeal distribution.
//! - **[`timeline`]** — the monotone global event log behind Table 3 and
//!   Figure 5.
//! - **[`config`]** — deployment knobs (checkpoint interval, producer vs
//!   consumer role, slicing toggle).
//! - **[`error`]** — the runtime's error type ([`SweeperError`]); the
//!   runtime degrades (partial antibodies, skipped hosts) rather than
//!   panicking.
//! - **[`fault`]** — the fault-injection seams ([`fault::FaultHooks`])
//!   the `chaos` harness drives; no-ops in production.
//! - **[`report`]** — Table 2/3-style rendering of attack reports.

pub mod config;
pub mod error;
pub mod fault;
pub mod pipeline;
pub mod report;
pub mod runtime;
pub mod timeline;

pub use config::{Config, RecoveryMode, Role};
pub use error::SweeperError;
pub use fault::{FaultAdapter, FaultHooks, NoFaultHooks};
pub use pipeline::{
    analyze_attack, analyze_attack_with_faults, timings_from_timeline, AnalysisReport,
    InputFinding, SliceVerdict, StepTimings,
};
pub use runtime::{AttackReport, BundleOutcome, HostStatus, PollOutcome, RequestOutcome, Sweeper};
pub use timeline::{Event, LatencyBook, Stamped, Timeline};
