//! Sweeper deployment configuration.

use checkpoint::Engine;
use svm::clock::secs_to_cycles;
use svm::loader::Aslr;

/// How post-attack recovery restores service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Whole-machine rollback to the chosen checkpoint followed by a
    /// drop-the-attack replay of every post-checkpoint connection.
    Full,
    /// Partial rollback of only the attacked connection's domain
    /// (benign connections are neither dropped nor replayed — invariant
    /// I12), falling back to [`RecoveryMode::Full`] whenever the
    /// page→domain ledger cannot *prove* isolation (cross-domain spill,
    /// corrupt ledger, stale window, trailing benign traffic). The
    /// fallback is fail-closed: correctness never depends on domain
    /// isolation holding.
    #[default]
    Domain,
    /// Run Domain recovery on a shadow clone and Full recovery on the
    /// live machine for the same fault, assert their post-recovery
    /// digests agree, and adopt the Full result — the differential
    /// oracle configuration used by the chaos harness and CI.
    Differential,
}

impl RecoveryMode {
    /// Stable lowercase label (metrics, bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryMode::Full => "full",
            RecoveryMode::Domain => "domain",
            RecoveryMode::Differential => "differential",
        }
    }
}

/// How much of Sweeper a host deploys (paper §6 community roles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Full system: lightweight monitoring, checkpointing, analysis,
    /// antibody generation (a community *Producer*).
    Producer,
    /// Lightweight monitoring + deployed antibodies only (a *Consumer*):
    /// attacks are detected and service recovers by restart, but no
    /// analysis runs locally.
    Consumer,
}

/// Tunable parameters (defaults follow the paper's evaluation setup).
#[derive(Debug, Clone)]
pub struct Config {
    /// Address-space randomization policy (the lightweight monitor).
    pub aslr: Aslr,
    /// Checkpoint interval in virtual cycles (paper default: 200 ms).
    pub checkpoint_interval: u64,
    /// Retained checkpoints (paper default: 20).
    pub retained_checkpoints: usize,
    /// Snapshot engine: incremental dirty-page deltas by default;
    /// `Full` selects the legacy whole-machine copy, `Differential`
    /// runs both in lockstep with page-level digest comparison (the
    /// parity-gate / chaos configuration).
    pub checkpoint_engine: Engine,
    /// Run the expensive dynamic-slicing verification step.
    pub run_slicing: bool,
    /// Deployment role.
    pub role: Role,
    /// Virtual-time cost of a full restart (paper: Squid restart >5 s).
    pub restart_cycles: u64,
    /// Cycle budget per analysis replay (safety bound).
    pub replay_budget: u64,
    /// Sampling (paper §4.2): fraction of requests additionally run under
    /// full dynamic taint analysis. Catches attacks the probabilistic
    /// lightweight monitors can miss (e.g. a worm that guessed the
    /// layout), at heavyweight cost for the sampled requests only.
    pub sample_rate: f64,
    /// Enforce non-executable data pages (NX). Off by default: the
    /// paper's 2003-era targets predate NX, and the exploits' shellcode
    /// runs from data. Turning it on is the "modern mitigation" ablation.
    pub nx: bool,
    /// Post-attack recovery strategy (default: [`RecoveryMode::Domain`]
    /// with a fail-closed fallback to Full).
    pub recovery: RecoveryMode,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            aslr: Aslr::on(0x5eed_0001),
            checkpoint_interval: secs_to_cycles(0.2),
            retained_checkpoints: 20,
            checkpoint_engine: Engine::default(),
            run_slicing: true,
            role: Role::Producer,
            restart_cycles: secs_to_cycles(5.0),
            replay_budget: 20_000_000_000,
            sample_rate: 0.0,
            nx: false,
            recovery: RecoveryMode::default(),
        }
    }
}

impl Config {
    /// The paper's default producer configuration with a given ASLR seed.
    pub fn producer(seed: u64) -> Config {
        Config {
            aslr: Aslr::on(seed),
            ..Config::default()
        }
    }

    /// A consumer configuration (no local analysis).
    pub fn consumer(seed: u64) -> Config {
        Config {
            aslr: Aslr::on(seed),
            role: Role::Consumer,
            ..Config::default()
        }
    }

    /// Override the checkpoint interval in milliseconds.
    pub fn with_interval_ms(mut self, ms: f64) -> Config {
        self.checkpoint_interval = secs_to_cycles(ms / 1e3);
        self
    }

    /// Enable §4.2 sampling at the given rate (0.0..=1.0).
    pub fn with_sampling(mut self, rate: f64) -> Config {
        self.sample_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Select the checkpoint snapshot engine.
    pub fn with_engine(mut self, engine: Engine) -> Config {
        self.checkpoint_engine = engine;
        self
    }

    /// Select the post-attack recovery strategy.
    pub fn with_recovery(mut self, mode: RecoveryMode) -> Config {
        self.recovery = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = Config::default();
        assert_eq!(c.checkpoint_interval, secs_to_cycles(0.2));
        assert_eq!(c.retained_checkpoints, 20);
        assert_eq!(c.checkpoint_engine, Engine::Incremental);
        assert!(c.aslr.enabled);
        assert_eq!(c.aslr.entropy_bits, 12);
        assert_eq!(c.recovery, RecoveryMode::Domain, "partial by default");
    }

    #[test]
    fn recovery_override() {
        let c = Config::default().with_recovery(RecoveryMode::Differential);
        assert_eq!(c.recovery, RecoveryMode::Differential);
        assert_eq!(c.recovery.name(), "differential");
    }

    #[test]
    fn interval_override() {
        let c = Config::default().with_interval_ms(30.0);
        assert_eq!(c.checkpoint_interval, secs_to_cycles(0.03));
    }
}
