//! The post-attack analysis pipeline (paper §2.2 / §3.2).
//!
//! After the lightweight monitor trips, Sweeper repeatedly rolls back and
//! re-executes, each time attaching a heavier tool:
//!
//! 1. **Memory-state analysis** of the faulted image (milliseconds) →
//!    the *initial* VSEF, released immediately.
//! 2. **Memory-bug detection** on a replay → the *refined* VSEF.
//! 3. **Taint analysis** on a replay → the responsible input (falling
//!    back to one-request-at-a-time isolation, as §5.1 measures) → the
//!    input signature and the recovery drop set.
//! 4. **Backward slicing** on a traced replay → cross-verification of
//!    steps 2–3 ("if they identify an issue which is not in the slice,
//!    then they are incorrect").
//!
//! Every step's (virtual) latency is charged to the timeline, and every
//! produced antibody item is timestamped for piecemeal distribution.

use analysis::{backward_slice, CoreDumpReport, MemBugDetector, MemBugKind, TaintTool};
use antibody::{exact_from, substring_from_taint, Antibody, AntibodyItem, VsefSpec};
use checkpoint::{CheckpointManager, CkptId, Proxy, ReplayEnd, ReplaySession};
use dbi::{Instrumenter, TraceRecorder};
use svm::clock::cycles_to_secs;
use svm::loader::Layout;
use svm::Machine;

use crate::error::SweeperError;
use crate::fault::{FaultAdapter, FaultHooks, NoFaultHooks};
use crate::timeline::{Event, Timeline};

/// Fixed cost of dynamically attaching an instrumentation tool to a
/// process (the PIN-attach analogue); dominates the first-VSEF latency.
pub const ATTACH_COST_CYCLES: u64 = 60_000_000; // 25 ms at 2.4 GHz.

/// Cost of the static memory-state walk (stack scan + heap walk).
pub const CORE_DUMP_CYCLES: u64 = 96_000_000; // 40 ms (paper: first VSEF at 40-60 ms).

/// Per-step timing for Table 3.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepTimings {
    /// Memory-state analysis duration (ms).
    pub memory_state_ms: f64,
    /// Memory-bug detection duration (ms).
    pub memory_bug_ms: f64,
    /// Taint / input-isolation duration (ms).
    pub taint_ms: f64,
    /// Slicing duration (ms).
    pub slicing_ms: f64,
    /// Detection -> first VSEF (ms).
    pub first_vsef_ms: f64,
    /// Detection -> best VSEF (ms).
    pub best_vsef_ms: f64,
    /// Detection -> VSEFs + input isolated (ms) ("initial analysis").
    pub initial_ms: f64,
    /// Detection -> everything including slicing (ms).
    pub total_ms: f64,
}

impl StepTimings {
    /// Read the Table 3 timings off the `pipeline.*` spans recorded by
    /// [`analyze_attack`] in an [`obs::MetricsRegistry`].
    ///
    /// Uses the **last** span of each name, i.e. the most recent
    /// analysis run. Returns `None` when no pipeline has run (no
    /// `pipeline.total` span). `pipeline.slicing` is optional (slicing
    /// disabled → 0 ms, matching the inline accounting).
    pub fn from_spans(reg: &obs::MetricsRegistry) -> Option<StepTimings> {
        let ms = |name: &str| reg.last_span(name).map(|s| s.ms());
        Some(StepTimings {
            memory_state_ms: ms("pipeline.memory_state")?,
            memory_bug_ms: ms("pipeline.memory_bug")?,
            taint_ms: ms("pipeline.taint")?,
            slicing_ms: ms("pipeline.slicing").unwrap_or(0.0),
            first_vsef_ms: ms("pipeline.first_vsef")?,
            best_vsef_ms: ms("pipeline.best_vsef")?,
            initial_ms: ms("pipeline.initial")?,
            total_ms: ms("pipeline.total")?,
        })
    }
}

/// Re-derive the Table 3 timings of the most recent analysis from the
/// raw event log — the pre-`obs` computation, kept as an independent
/// witness for the span accounting (the differential suite asserts
/// [`StepTimings::from_spans`] agrees with this on every guest).
pub fn timings_from_timeline(tl: &Timeline) -> Option<StepTimings> {
    let (det_idx, det_at) = tl.last_detection()?;
    let after = &tl.events()[det_idx + 1..];
    let ms_to = |at: u64| cycles_to_secs(at - det_at) * 1e3;
    let step_of = |name: &str| {
        after.iter().find_map(|s| match &s.event {
            Event::AnalysisStep { step, duration_ms } if *step == name => {
                Some((s.at_cycles, *duration_ms))
            }
            _ => None,
        })
    };
    let (mem_state_at, memory_state_ms) = step_of("memory-state")?;
    let (_, memory_bug_ms) = step_of("memory-bug")?;
    let (taint_at, taint_ms) = step_of("taint")?;
    let slicing = step_of("slicing");
    // First VSEF: released at the memory-state event's stamp (antibody
    // pushes are zero-cost); best VSEF: the last refined release, else
    // the first.
    let first_vsef_ms = ms_to(mem_state_at);
    let best_vsef_ms = after
        .iter()
        .rev()
        .find_map(|s| match &s.event {
            Event::AntibodyReleased { what } if what.starts_with("refined VSEF") => {
                Some(ms_to(s.at_cycles))
            }
            _ => None,
        })
        .unwrap_or(first_vsef_ms);
    // Initial analysis completes with the signature releases, stamped
    // with the taint step; slicing (when run) sets the total.
    let initial_ms = ms_to(taint_at);
    let total_ms = slicing.map(|(at, _)| ms_to(at)).unwrap_or(initial_ms);
    Some(StepTimings {
        memory_state_ms,
        memory_bug_ms,
        taint_ms,
        slicing_ms: slicing.map(|(_, d)| d).unwrap_or(0.0),
        first_vsef_ms,
        best_vsef_ms,
        initial_ms,
        total_ms,
    })
}

/// What taint/isolation concluded about the attack input.
#[derive(Debug, Clone, Default)]
pub struct InputFinding {
    /// Proxy log ids of the connections implicated.
    pub attack_log_ids: Vec<usize>,
    /// Byte offsets implicated within the primary attack connection.
    pub offsets: Vec<u32>,
    /// Whether taint found it (vs. one-at-a-time isolation).
    pub via_taint: bool,
}

/// Cross-verification results from slicing.
#[derive(Debug, Clone, Default)]
pub struct SliceVerdict {
    /// Dynamic slice size (instructions).
    pub slice_len: usize,
    /// Whether the memory-bug finding's pc is inside the slice.
    pub membug_verified: Option<bool>,
    /// Whether the taint source bytes appear among the slice's inputs.
    pub taint_verified: Option<bool>,
}

/// The complete pipeline output.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Step 1 output.
    pub core: CoreDumpReport,
    /// Step 2 findings.
    pub membug: Vec<analysis::MemBugFinding>,
    /// Step 3 conclusion.
    pub input: InputFinding,
    /// Step 4 verdict (absent when slicing is disabled).
    pub slice: Option<SliceVerdict>,
    /// The assembled antibody (releases timestamped from detection).
    pub antibody: Antibody,
    /// Timings for Table 3.
    pub timings: StepTimings,
    /// The checkpoint the analysis replayed from.
    pub ckpt: CkptId,
    /// Symbol map of the attacked process (captured at analysis time; the
    /// live machine may later restart under a different layout).
    pub symbols: svm::loader::SymbolMap,
}

/// Find the most recent retained checkpoint whose replay reproduces the
/// fault (stepping further back if the window is too short).
pub fn find_reproducing_checkpoint(
    mgr: &CheckpointManager,
    proxy: &Proxy,
    budget: u64,
) -> Option<CkptId> {
    let mut candidate = mgr.latest().map(|c| c.id)?;
    loop {
        let out = ReplaySession::new(mgr, proxy, candidate)?
            .with_budget(budget)
            .run(&mut svm::NopHook);
        if matches!(out.end, ReplayEnd::Faulted(_)) {
            return Some(candidate);
        }
        // Step back one checkpoint.
        let prev = CkptId(candidate.0.checked_sub(1)?);
        mgr.get(prev)?;
        candidate = prev;
    }
}

/// Run the full pipeline on a detected attack.
///
/// `live` is the faulted (or VSEF-stopped) machine; `timeline` must have
/// an `AttackDetected` event already recorded at the current time. VSEF
/// addresses in the produced antibody are normalized to the nominal
/// layout for distribution.
///
/// Each phase additionally records a `pipeline.*` span (virtual stamps
/// from the timeline, with wall-clock mirrors) into `metrics` — Table 3
/// reads off those spans via [`StepTimings::from_spans`], and the
/// differential suite checks them against [`timings_from_timeline`].
pub fn analyze_attack(
    live: &Machine,
    mgr: &CheckpointManager,
    proxy: &Proxy,
    timeline: &mut Timeline,
    metrics: &mut obs::MetricsRegistry,
    run_slicing: bool,
    replay_budget: u64,
) -> Option<AnalysisReport> {
    analyze_attack_with_faults(
        live,
        mgr,
        proxy,
        timeline,
        metrics,
        run_slicing,
        replay_budget,
        None,
    )
}

/// Record an injected tool failure explicitly: a `pipeline.tool_failures`
/// counter bump plus a timeline event carrying the [`SweeperError`] text,
/// so a degraded analysis is always distinguishable from a silent one.
fn record_tool_failure(
    metrics: &mut obs::MetricsRegistry,
    timeline: &mut Timeline,
    step: &'static str,
) {
    metrics.inc("pipeline.tool_failures", 1);
    metrics.inc(&format!("pipeline.tool_failures.{step}"), 1);
    timeline.record(Event::AntibodyReleased {
        what: format!("degraded: {}", SweeperError::ToolUnavailable { tool: step }),
    });
}

/// [`analyze_attack`], with `faults` mediating every seam (see
/// [`FaultHooks`]): analysis-tool failures degrade the corresponding
/// step's contribution, armed DBI detaches are installed before each
/// replay, and replay input injection goes through the fault adapter.
/// `None` is exactly production behaviour.
#[allow(clippy::too_many_arguments)]
pub fn analyze_attack_with_faults(
    live: &Machine,
    mgr: &CheckpointManager,
    proxy: &Proxy,
    timeline: &mut Timeline,
    metrics: &mut obs::MetricsRegistry,
    run_slicing: bool,
    replay_budget: u64,
    faults: Option<&mut (dyn FaultHooks + '_)>,
) -> Option<AnalysisReport> {
    let mut nofault = NoFaultHooks;
    let faults: &mut dyn FaultHooks = match faults {
        Some(f) => f,
        None => &mut nofault,
    };
    let detection_at = timeline.now();
    let nominal = Layout::nominal();
    let host = live.layout;
    let norm = |spec: VsefSpec| spec.rebase(&host, &nominal);
    let mut antibody = Antibody::new();
    let mut timings = StepTimings::default();
    let ms_since_detect = |tl: &Timeline| cycles_to_secs(tl.now() - detection_at) * 1e3;

    // ---- Step 1: memory-state analysis of the faulted image. ----------
    let sp1 = metrics.start_span("pipeline.memory_state", detection_at);
    if faults.fail_tool("memory-state") {
        // The very first analyzer died: no antibody can be derived at
        // all. Surface the failure explicitly and abort the analysis;
        // the runtime falls back to drop-last recovery.
        record_tool_failure(metrics, timeline, "memory-state");
        metrics.end_span(sp1, timeline.now());
        return None;
    }
    let core = analysis::analyze(live)?;
    timeline.advance_by(CORE_DUMP_CYCLES);
    metrics.end_span(sp1, timeline.now());
    timings.memory_state_ms = cycles_to_secs(CORE_DUMP_CYCLES) * 1e3;
    timeline.record(Event::AnalysisStep {
        step: "memory-state",
        duration_ms: timings.memory_state_ms,
    });
    let initial_vsefs = initial_vsefs(&core);
    for v in &initial_vsefs {
        antibody.push(
            AntibodyItem::Vsef(norm(v.clone())),
            ms_since_detect(timeline),
        );
        timeline.record(Event::AntibodyReleased {
            what: format!("initial VSEF: {}", v.kind()),
        });
    }
    timings.first_vsef_ms = ms_since_detect(timeline);
    timings.best_vsef_ms = timings.first_vsef_ms;
    metrics.record_span("pipeline.first_vsef", detection_at, timeline.now());
    let mut best_vsef_at = timeline.now();

    // Locate a checkpoint that reproduces the attack.
    let ckpt = find_reproducing_checkpoint(mgr, proxy, replay_budget)?;

    // ---- Step 2: memory-bug detection on a replay. ---------------------
    let sp2 = metrics.start_span("pipeline.memory_bug", timeline.now());
    let membug: Vec<analysis::MemBugFinding> = if faults.fail_tool("memory-bug") {
        // The detector failed to attach: the refined VSEF is lost, but
        // the initial one already shipped — degrade, don't abort.
        record_tool_failure(metrics, timeline, "memory-bug");
        timeline.advance_by(ATTACH_COST_CYCLES);
        metrics.end_span(sp2, timeline.now());
        timings.memory_bug_ms = cycles_to_secs(ATTACH_COST_CYCLES) * 1e3;
        timeline.record(Event::AnalysisStep {
            step: "memory-bug",
            duration_ms: timings.memory_bug_ms,
        });
        Vec::new()
    } else {
        let ckpt_machine = mgr.materialize(ckpt)?;
        let det = MemBugDetector::attach_to(&ckpt_machine);
        let mut ins = Instrumenter::new();
        let det_id = ins.attach(Box::new(det));
        if let Some(n) = faults.tool_detach_after("memory-bug") {
            ins.set_detach_after(det_id, n);
        }
        let out = ReplaySession::new(mgr, proxy, ckpt)?
            .with_budget(replay_budget)
            .run_with_fault(&mut ins, &mut FaultAdapter(&mut *faults));
        let step2_cycles = ATTACH_COST_CYCLES + out.cycles + ins.take_overhead();
        timeline.advance_by(step2_cycles);
        metrics.end_span(sp2, timeline.now());
        timings.memory_bug_ms = cycles_to_secs(step2_cycles) * 1e3;
        timeline.record(Event::AnalysisStep {
            step: "memory-bug",
            duration_ms: timings.memory_bug_ms,
        });
        // A `None` here covers both "no findings" and "tool detached
        // mid-replay" — either way the refined VSEF is simply absent.
        ins.get::<MemBugDetector>(det_id)
            .map(|d| d.findings().to_vec())
            .unwrap_or_default()
    };
    let refined = refined_vsefs(&membug);
    for v in &refined {
        antibody.push(
            AntibodyItem::Vsef(norm(v.clone())),
            ms_since_detect(timeline),
        );
        timeline.record(Event::AntibodyReleased {
            what: format!("refined VSEF: {}", v.kind()),
        });
        timings.best_vsef_ms = ms_since_detect(timeline);
        best_vsef_at = timeline.now();
    }
    metrics.record_span("pipeline.best_vsef", detection_at, best_vsef_at);

    // ---- Step 3: taint analysis (with isolation fallback). -------------
    let sp3 = metrics.start_span("pipeline.taint", timeline.now());
    let conns_at = mgr.get(ckpt)?.conns_at;
    let mut input = InputFinding::default();
    let mut step3_cycles;
    if faults.fail_tool("taint") {
        // Taint never ran: the paper's own isolation fallback below is
        // the degradation path — the attack input is still identified,
        // just slower and without byte offsets.
        record_tool_failure(metrics, timeline, "taint");
        step3_cycles = ATTACH_COST_CYCLES;
    } else {
        let mut ins3 = Instrumenter::new();
        let taint_id = ins3.attach(Box::new(TaintTool::new()));
        if let Some(n) = faults.tool_detach_after("taint") {
            ins3.set_detach_after(taint_id, n);
        }
        let out3 = ReplaySession::new(mgr, proxy, ckpt)?
            .with_budget(replay_budget)
            .run_with_fault(&mut ins3, &mut FaultAdapter(&mut *faults));
        step3_cycles = ATTACH_COST_CYCLES + out3.cycles + ins3.take_overhead();
        let replayed_machine = &out3.machine;
        if let Some(taint) = ins3.get::<TaintTool>(taint_id) {
            // Prefer a control-transfer alert; otherwise query taint at the
            // corrupt location the fault names (heap attacks).
            let mut sources = taint
                .alerts()
                .first()
                .map(|a| a.sources.clone())
                .unwrap_or_default();
            if sources.is_empty() {
                if let svm::Status::Faulted(f) = replayed_machine.status() {
                    if let Some(addr) = f.fault_addr() {
                        // The corrupt chunk header (HeapAbort) or the slot the
                        // allocator was about to dereference.
                        sources = taint.taint_of_mem(addr, 8);
                        if sources.is_empty() {
                            sources = taint.taint_of_mem(addr.wrapping_sub(8), 16);
                        }
                    }
                }
            }
            if !sources.is_empty() {
                input.via_taint = true;
                // Map replay guest conn ids back to proxy log ids.
                let replay_map: Vec<usize> = guest_to_log_map(proxy, conns_at, &[]);
                let mut ids: Vec<usize> = sources
                    .iter()
                    .filter_map(|(c, _)| replay_map.get(*c as usize).copied())
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                let primary_guest = sources.iter().next().map(|(c, _)| *c).unwrap_or_default();
                input.offsets = sources
                    .iter()
                    .filter(|(c, _)| *c == primary_guest)
                    .map(|(_, o)| *o)
                    .collect();
                input.attack_log_ids = ids;
            }
        }
        // Also add taint-filter VSEF material when taint implicated input.
        if input.via_taint {
            if let Some(taint) = ins3.get::<TaintTool>(taint_id) {
                if let Some(alert) = taint.alerts().first() {
                    let mut prop: Vec<u32> = taint.propagation_pcs().iter().copied().collect();
                    prop.truncate(64);
                    let spec = VsefSpec::TaintFilter {
                        prop_pcs: prop,
                        sink_pc: alert.pc,
                    };
                    timeline.advance_by(1_000_000);
                    antibody.push(AntibodyItem::Vsef(norm(spec)), ms_since_detect(timeline));
                    timeline.record(Event::AntibodyReleased {
                        what: "taint-filter VSEF".into(),
                    });
                }
            }
        }
    }
    if input.attack_log_ids.is_empty() {
        // Isolation fallback: replay each post-checkpoint connection
        // alone; the one that reproduces the fault is the attack. (§5.1:
        // "we measure the time to isolate the exploit input by sending
        // the potentially suspicious requests one at a time".)
        let candidates: Vec<usize> = proxy
            .replay_set(conns_at, &[])
            .iter()
            .map(|c| c.log_id)
            .collect();
        for &cand in &candidates {
            let others: Vec<usize> = candidates.iter().copied().filter(|&x| x != cand).collect();
            let Some(sess) = ReplaySession::new(mgr, proxy, ckpt) else {
                break;
            };
            let solo = sess
                .dropping(&others)
                .with_budget(replay_budget)
                .run_with_fault(&mut svm::NopHook, &mut FaultAdapter(&mut *faults));
            step3_cycles += ATTACH_COST_CYCLES / 4 + solo.cycles;
            if matches!(solo.end, ReplayEnd::Faulted(_)) {
                input.attack_log_ids = vec![cand];
                break;
            }
        }
    }
    timeline.advance_by(step3_cycles);
    // The taint phase's *charged* extent excludes the 1M-cycle
    // taint-filter release advance interleaved above; pin the span to
    // exactly `step3_cycles` so it matches the inline accounting, while
    // the wall mirror still covers the whole timed region.
    metrics.end_span_at(sp3, timeline.now() - step3_cycles, timeline.now());
    timings.taint_ms = cycles_to_secs(step3_cycles) * 1e3;
    timeline.record(Event::AnalysisStep {
        step: "taint",
        duration_ms: timings.taint_ms,
    });

    // Release the signature + exploit input.
    if let Some(&primary) = input.attack_log_ids.first() {
        if let Some(lc) = proxy.get(primary) {
            antibody.push(
                AntibodyItem::Signature(exact_from(&lc.input)),
                ms_since_detect(timeline),
            );
            timeline.record(Event::AntibodyReleased {
                what: "exact input signature".into(),
            });
            if let Some(sig) = substring_from_taint(&lc.input, &input.offsets, 6) {
                antibody.push(AntibodyItem::Signature(sig), ms_since_detect(timeline));
                timeline.record(Event::AntibodyReleased {
                    what: "substring signature".into(),
                });
            }
            antibody.push(
                AntibodyItem::ExploitInput(lc.input.clone()),
                ms_since_detect(timeline),
            );
            timeline.record(Event::AntibodyReleased {
                what: "exploit input".into(),
            });
        }
    }
    timings.initial_ms = ms_since_detect(timeline);
    metrics.record_span("pipeline.initial", detection_at, timeline.now());

    // ---- Step 4: backward slicing (verification). -----------------------
    let slicing_failed = run_slicing && faults.fail_tool("slicing");
    if slicing_failed {
        // Cross-verification is lost, but the antibody is complete:
        // report it explicitly and ship without the slice verdict.
        record_tool_failure(metrics, timeline, "slicing");
    }
    let slice = if run_slicing && !slicing_failed {
        let sp4 = metrics.start_span("pipeline.slicing", timeline.now());
        let mut ins4 = Instrumenter::new();
        let tr_id = ins4.attach(Box::new(TraceRecorder::new()));
        if let Some(n) = faults.tool_detach_after("slicing") {
            ins4.set_detach_after(tr_id, n);
        }
        let out4 = ReplaySession::new(mgr, proxy, ckpt)?
            .with_budget(replay_budget)
            .run_with_fault(&mut ins4, &mut FaultAdapter(&mut *faults));
        let step4_cycles = ATTACH_COST_CYCLES + out4.cycles + ins4.take_overhead();
        timeline.advance_by(step4_cycles);
        metrics.end_span(sp4, timeline.now());
        timings.slicing_ms = cycles_to_secs(step4_cycles) * 1e3;
        timeline.record(Event::AnalysisStep {
            step: "slicing",
            duration_ms: timings.slicing_ms,
        });
        let verdict = ins4.get::<TraceRecorder>(tr_id).map(|trace| {
            let crit = trace.len().saturating_sub(1);
            let slice = backward_slice(trace, crit, true);
            // Double-free findings flow through allocator-internal
            // metadata the instruction trace cannot see; they are not
            // slice-verifiable (the paper's tools share this blind spot
            // for libc-internal dataflow).
            let membug_verified = membug
                .iter()
                .find(|f| f.kind != MemBugKind::DoubleFree)
                .map(|f| slice.contains_pc(f.pc));
            let taint_verified = if input.via_taint && !input.offsets.is_empty() {
                Some(
                    input
                        .offsets
                        .iter()
                        .any(|o| slice.input_deps.iter().any(|(_, so)| so == o)),
                )
            } else {
                None
            };
            SliceVerdict {
                slice_len: slice.len(),
                membug_verified,
                taint_verified,
            }
        });
        verdict
    } else {
        None
    };
    timings.total_ms = ms_since_detect(timeline);
    metrics.record_span("pipeline.total", detection_at, timeline.now());

    Some(AnalysisReport {
        core,
        membug,
        input,
        slice,
        antibody,
        timings,
        ckpt,
        symbols: live.symbols.clone(),
    })
}

/// Map replay guest connection ids to proxy log ids.
fn guest_to_log_map(proxy: &Proxy, conns_at: usize, drop: &[usize]) -> Vec<usize> {
    let mut map: Vec<usize> = proxy
        .log()
        .iter()
        .filter(|c| !c.filtered)
        .take(conns_at)
        .map(|c| c.log_id)
        .collect();
    map.extend(proxy.replay_set(conns_at, drop).iter().map(|c| c.log_id));
    map
}

/// Initial VSEFs from the memory-state recommendation.
fn initial_vsefs(core: &CoreDumpReport) -> Vec<VsefSpec> {
    use analysis::InitialRecommendation as R;
    match &core.recommendation {
        R::RetAddrGuard { func, func_name } => {
            vec![VsefSpec::RetAddrGuard {
                func: *func,
                func_name: func_name.clone(),
            }]
        }
        R::NullCheck { insn } => vec![VsefSpec::NullCheck { insn_pc: *insn }],
        R::HeapIntegrityGuard { insn, .. } => {
            vec![
                VsefSpec::HeapIntegrityGuard { sites: vec![*insn] },
                VsefSpec::DoubleFreeGuard { free_pc: *insn },
            ]
        }
        R::Generic => Vec::new(),
    }
}

/// Refined VSEFs from memory-bug findings.
fn refined_vsefs(findings: &[analysis::MemBugFinding]) -> Vec<VsefSpec> {
    let mut out = Vec::new();
    for f in findings {
        let spec = match f.kind {
            MemBugKind::StackSmash => VsefSpec::StoreSmashGuard { store_pc: f.pc },
            MemBugKind::HeapOverflow => VsefSpec::HeapBoundsCheck {
                store_pc: f.pc,
                caller: None,
            },
            MemBugKind::DoubleFree => VsefSpec::DoubleFreeGuard { free_pc: f.pc },
            MemBugKind::DanglingWrite => continue,
        };
        if !out.contains(&spec) {
            out.push(spec);
        }
    }
    out
}
