//! Fault-injection seams threaded through the attack-handling pipeline.
//!
//! The paper's end-to-end claim — monitor trips → rollback → heavyweight
//! re-execution → antibody → resume — is a chain of hand-offs, and each
//! hand-off can fail in a real deployment: the analysis tool dies, the
//! checkpoint ring evicts the snapshot a recovery just chose, the proxy
//! log replays corrupted or reordered, the DBI runtime detaches mid
//! replay, the antibody arrives bit-flipped. [`FaultHooks`] is the
//! production-side seam the `chaos` harness uses to inject exactly those
//! failures deterministically; every method defaults to "no fault", so
//! production behaviour is unchanged unless hooks are installed via
//! [`Sweeper::set_fault_hooks`](crate::Sweeper::set_fault_hooks).
//!
//! The contract the chaos invariant checker enforces on every injected
//! fault: the pipeline *degrades* — weaker antibody, explicit
//! [`SweeperError`](crate::SweeperError) surfaced on the timeline, or a
//! restart instead of a rollback — and never panics.

use checkpoint::{CheckpointManager, Proxy, ReplayFault};

/// Hooks invoked at each fault-injection seam of the Sweeper pipeline.
///
/// All methods have no-op defaults; implement only the seams a fault
/// plan targets. Step names passed to the tool hooks are the pipeline
/// phase names: `"memory-state"`, `"memory-bug"`, `"taint"`,
/// `"slicing"`.
pub trait FaultHooks: Send {
    /// Mediate one re-injected connection during an analysis or recovery
    /// replay: mutate `input` to corrupt it, return `false` to drop it.
    /// (Mirrors [`checkpoint::ReplayFault::on_replay_input`].)
    fn on_replay_input(&mut self, _log_id: usize, _input: &mut Vec<u8>) -> bool {
        true
    }

    /// Permute the collected replay set before injection. (Mirrors
    /// [`checkpoint::ReplayFault::reorder`].)
    fn reorder_replay(&mut self, _inputs: &mut Vec<(usize, Vec<u8>)>) {}

    /// Return `true` to make the named pipeline step's analysis tool
    /// unavailable (attach failure / tool crash). The pipeline must
    /// degrade that step's contribution, not abort the attack handling.
    fn fail_tool(&mut self, _step: &'static str) -> bool {
        false
    }

    /// Return `Some(n)` to detach the named step's tool after `n`
    /// delivered instruction events (mid-replay DBI death, realized via
    /// [`dbi::Instrumenter::set_detach_after`]).
    fn tool_detach_after(&mut self, _step: &'static str) -> Option<u64> {
        None
    }

    /// Called after a recovery checkpoint has been *chosen* but before
    /// the recovery replay runs — the eviction-race window. The hook may
    /// evict checkpoints (e.g. [`CheckpointManager::evict_oldest`]) or
    /// otherwise perturb retention; a vanished snapshot must turn into a
    /// restart, never a panic.
    fn before_recovery(&mut self, _mgr: &mut CheckpointManager, _proxy: &mut Proxy) {}

    /// Corrupt a serialized antibody in transit (bit-flips, truncation).
    /// Return `true` if `bytes` was mutated; the runtime then decodes
    /// the corrupted buffer and must fail closed on decode errors.
    fn corrupt_antibody(&mut self, _bytes: &mut Vec<u8>) -> bool {
        false
    }
}

/// The no-op [`FaultHooks`]: production behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaultHooks;

impl FaultHooks for NoFaultHooks {}

/// Adapts a `&mut dyn FaultHooks` into a [`checkpoint::ReplayFault`] so
/// the same hook object can mediate checkpoint-crate replays without
/// relying on trait upcasting.
pub struct FaultAdapter<'a>(pub &'a mut dyn FaultHooks);

impl ReplayFault for FaultAdapter<'_> {
    fn on_replay_input(&mut self, log_id: usize, input: &mut Vec<u8>) -> bool {
        self.0.on_replay_input(log_id, input)
    }

    fn reorder(&mut self, inputs: &mut Vec<(usize, Vec<u8>)>) {
        self.0.reorder_replay(inputs)
    }
}
