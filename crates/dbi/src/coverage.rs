//! Instruction-coverage tool: which pcs executed, how often.
//!
//! A lightweight profiling tool used by the experiments to verify
//! selective-instrumentation claims (a VSEF's watch set is visited a
//! handful of times; full tools see everything), and generally useful
//! for exercising guest programs (which branches a test actually took).

use std::any::Any;
use std::collections::BTreeMap;

use svm::isa::Op;
use svm::Machine;

use crate::tool::{Tool, Watch};

/// Execution counts per static pc.
#[derive(Default)]
pub struct Coverage {
    counts: BTreeMap<u32, u64>,
    calls: BTreeMap<u32, u64>,
}

impl Coverage {
    /// An empty coverage map.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Distinct pcs executed.
    pub fn unique_pcs(&self) -> usize {
        self.counts.len()
    }

    /// Total dynamic instructions observed.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Execution count of one pc.
    pub fn count(&self, pc: u32) -> u64 {
        self.counts.get(&pc).copied().unwrap_or(0)
    }

    /// Whether a pc executed at all.
    pub fn covered(&self, pc: u32) -> bool {
        self.count(pc) > 0
    }

    /// Call counts per target (a cheap call-graph profile).
    pub fn call_count(&self, target: u32) -> u64 {
        self.calls.get(&target).copied().unwrap_or(0)
    }

    /// The hottest `n` pcs, descending.
    pub fn hottest(&self, n: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v.truncate(n);
        v
    }

    /// Fraction of the pcs in `set` that executed.
    pub fn coverage_of(&self, set: &[u32]) -> f64 {
        if set.is_empty() {
            return 1.0;
        }
        set.iter().filter(|&&p| self.covered(p)).count() as f64 / set.len() as f64
    }
}

impl Tool for Coverage {
    fn name(&self) -> &str {
        "coverage"
    }

    fn watches(&self) -> Watch {
        Watch::All
    }

    fn insn_cost(&self) -> u64 {
        2 // Counting is nearly free.
    }

    fn on_insn(&mut self, _m: &Machine, pc: u32, _op: &Op) {
        *self.counts.entry(pc).or_insert(0) += 1;
    }

    fn on_call(&mut self, _m: &Machine, _pc: u32, target: u32, _ret: u32, _sp: u32) {
        *self.calls.entry(target).or_insert(0) += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instrumenter;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::Status;

    fn run(src: &str) -> (Machine, Coverage) {
        let prog = assemble(src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(Coverage::new()));
        assert!(matches!(m.run(&mut ins, 10_000_000), Status::Halted(_)));
        let tool = ins.detach(id).expect("tool");
        let mut holder = None;
        let mut boxed = tool;
        if let Some(c) = boxed.as_any_mut().downcast_mut::<Coverage>() {
            holder = Some(std::mem::take(c));
        }
        (m, holder.expect("downcast"))
    }

    #[test]
    fn counts_loop_iterations_exactly() {
        let (m, cov) = run(
            ".text\nmain:\n movi r1, 7\nloop:\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n",
        );
        let loop_pc = m.symbols.addr_of("loop").expect("loop");
        assert_eq!(cov.count(loop_pc), 7);
        assert_eq!(cov.count(m.symbols.addr_of("main").expect("m")), 1);
        assert_eq!(cov.unique_pcs(), 5);
        assert_eq!(cov.total(), 1 + 7 * 3 + 1);
    }

    #[test]
    fn untaken_branches_are_uncovered() {
        let (m, cov) = run(
            ".text\nmain:\n movi r1, 1\n cmpi r1, 0\n jz dead\n halt\ndead:\n movi r2, 9\n halt\n",
        );
        let dead = m.symbols.addr_of("dead").expect("dead");
        assert!(!cov.covered(dead));
        assert_eq!(cov.coverage_of(&[dead]), 0.0);
        assert_eq!(
            cov.coverage_of(&[m.symbols.addr_of("main").expect("m"), dead]),
            0.5
        );
        assert_eq!(cov.coverage_of(&[]), 1.0);
    }

    #[test]
    fn call_profile_counts_targets() {
        let (m, cov) = run(".text\nmain:\n call f\n call f\n call g\n halt\nf:\n ret\ng:\n ret\n");
        assert_eq!(cov.call_count(m.symbols.addr_of("f").expect("f")), 2);
        assert_eq!(cov.call_count(m.symbols.addr_of("g").expect("g")), 1);
        assert_eq!(cov.call_count(0x1234), 0);
    }

    #[test]
    fn hottest_orders_by_count() {
        let (_m, cov) = run(
            ".text\nmain:\n movi r1, 3\nloop:\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n",
        );
        let hot = cov.hottest(2);
        assert_eq!(hot.len(), 2);
        assert!(hot[0].1 >= hot[1].1);
    }
}
