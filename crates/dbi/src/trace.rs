//! Full execution-trace recording for offline analysis.
//!
//! Dynamic backward slicing needs the complete dynamic dependency history
//! of the replayed window; the [`TraceRecorder`] tool captures one
//! [`TraceEntry`] per retired instruction, including resolved dataflow
//! effects and input-delivery events. The paper notes slicing costs
//! 100x-1000x — this is the expensive part, which is why it is only ever
//! attached to a *replay from a checkpoint*, never to live execution.

use std::any::Any;

use svm::alloc::FreeKind;
use svm::isa::{Op, Syscall};
use svm::Machine;

use crate::effects::{effects, Effects};
use crate::tool::{Tool, Watch};

/// One dynamic instruction in the trace.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Dynamic instruction index (0-based within the recording).
    pub idx: usize,
    /// Program counter.
    pub pc: u32,
    /// Decoded instruction.
    pub op: Op,
    /// Resolved dataflow effects at execution time.
    pub effects: Effects,
}

/// A non-instruction event interleaved with the trace.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// Input bytes delivered by a `read` syscall, *before* instruction
    /// `at_idx` retires its successor.
    Input {
        /// Dynamic index of the `sys read` instruction.
        at_idx: usize,
        /// Connection id.
        conn: u32,
        /// Offset of the first byte within the connection input stream.
        stream_off: u32,
        /// Guest buffer address the bytes were copied to.
        addr: u32,
        /// Number of bytes delivered.
        len: u32,
    },
    /// A guest allocation.
    Alloc {
        /// Dynamic index of the `sys alloc` instruction.
        at_idx: usize,
        /// Requested size.
        size: u32,
        /// Returned payload pointer.
        ptr: u32,
    },
    /// A guest free.
    Free {
        /// Dynamic index of the `sys free` instruction.
        at_idx: usize,
        /// Freed payload pointer.
        ptr: u32,
        /// Allocator's double-free verdict.
        kind: FreeKind,
    },
}

/// Records the complete dynamic trace of a (short) execution window.
#[derive(Default)]
pub struct TraceRecorder {
    /// Recorded instructions in execution order.
    pub entries: Vec<TraceEntry>,
    /// Interleaved non-instruction events.
    pub events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The last recorded instruction, if any.
    pub fn last(&self) -> Option<&TraceEntry> {
        self.entries.last()
    }
}

impl Tool for TraceRecorder {
    fn name(&self) -> &str {
        "trace-recorder"
    }

    fn watches(&self) -> Watch {
        Watch::All
    }

    fn insn_cost(&self) -> u64 {
        // Backward slicing's trace collection is the paper's costliest
        // tool: 100x-1000x. We charge 500 cycles per 1-cycle instruction.
        500
    }

    fn on_insn(&mut self, m: &Machine, pc: u32, op: &Op) {
        let idx = self.entries.len();
        self.entries.push(TraceEntry {
            idx,
            pc,
            op: *op,
            effects: effects(m, op),
        });
    }

    fn on_input(&mut self, _m: &Machine, conn: u32, stream_off: u32, addr: u32, data: &[u8]) {
        self.events.push(TraceEvent::Input {
            at_idx: self.entries.len().saturating_sub(1),
            conn,
            stream_off,
            addr,
            len: data.len() as u32,
        });
    }

    fn on_alloc(&mut self, _m: &Machine, _pc: u32, size: u32, ptr: u32) {
        self.events.push(TraceEvent::Alloc {
            at_idx: self.entries.len().saturating_sub(1),
            size,
            ptr,
        });
    }

    fn on_free(&mut self, _m: &Machine, _pc: u32, ptr: u32, kind: FreeKind) {
        self.events.push(TraceEvent::Free {
            at_idx: self.entries.len().saturating_sub(1),
            ptr,
            kind,
        });
    }

    fn on_syscall(&mut self, _m: &Machine, _pc: u32, _sc: Syscall, _args: [u32; 4], _ret: u32) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instrumenter;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::Status;

    #[test]
    fn records_instructions_with_effects() {
        let prog = assemble(
            ".text\nmain:\n movi r1, buf\n movi r2, 5\n st [r1, 0], r2\n halt\n.data\nbuf: .space 8\n",
        )
        .expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(TraceRecorder::new()));
        assert!(matches!(m.run(&mut ins, 1_000_000), Status::Halted(_)));
        let tr = ins.get::<TraceRecorder>(id).expect("tool");
        assert_eq!(tr.len(), 4);
        let st = &tr.entries[2];
        assert!(matches!(st.op, Op::St { .. }));
        let buf = m.symbols.addr_of("buf").expect("buf");
        assert_eq!(st.effects.mem_write, Some((buf, 4)));
        assert_eq!(tr.last().map(|e| e.idx), Some(3));
    }

    #[test]
    fn records_input_and_heap_events_in_order() {
        let prog = assemble(
            "
.text
main:
    sys accept
    mov r4, r0
    movi r1, buf
    movi r2, 16
    sys read
    movi r0, 32
    sys alloc
    sys free
    halt
.data
buf: .space 16
",
        )
        .expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.net.push_connection(b"abc".to_vec());
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(TraceRecorder::new()));
        assert!(matches!(m.run(&mut ins, 10_000_000), Status::Halted(_)));
        let tr = ins.get::<TraceRecorder>(id).expect("tool");
        assert_eq!(tr.events.len(), 3);
        match &tr.events[0] {
            TraceEvent::Input {
                stream_off: 0,
                len: 3,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(tr.events[1], TraceEvent::Alloc { size: 32, .. }));
        assert!(matches!(
            tr.events[2],
            TraceEvent::Free {
                kind: FreeKind::Normal,
                ..
            }
        ));
        // Alloc event is attributed to a later dynamic index than input.
        let (a, b) = match (&tr.events[0], &tr.events[1]) {
            (TraceEvent::Input { at_idx: a, .. }, TraceEvent::Alloc { at_idx: b, .. }) => (*a, *b),
            _ => unreachable!(),
        };
        assert!(a < b);
    }

    #[test]
    fn trace_cost_is_heavyweight() {
        let t = TraceRecorder::new();
        assert!(
            t.insn_cost() >= 100,
            "slicing-grade instrumentation must be expensive"
        );
        assert!(t.is_empty());
    }
}
