//! Per-instruction dataflow effects.
//!
//! Given the pre-execution machine state and a decoded instruction, compute
//! exactly which registers, memory bytes, and flags the instruction reads
//! and writes. Taint analysis and dynamic backward slicing are both just
//! folds over these effect sets, which is why they live here in the
//! instrumentation layer rather than in each tool.

use svm::isa::{Op, Reg};
use svm::Machine;

/// A dataflow location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// A general-purpose register.
    Reg(u8),
    /// One byte of guest memory.
    MemByte(u32),
    /// The comparison flags.
    Flags,
}

/// One value flow: `to` receives a value computed from `from`.
///
/// Flows are the *taint-relevant* subset of the dependency structure:
/// address computations and stack-pointer bookkeeping appear in
/// [`Effects::reads`]/[`Effects::writes`] (so slicing sees pointer
/// indirection, per the paper's taint-vs-slicing example) but not here.
/// A written location covered by no flow receives a constant-derived
/// value (taint must be cleared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Source locations the value is computed from.
    pub from: Vec<Loc>,
    /// Destination location.
    pub to: Loc,
}

/// The resolved effects of one dynamic instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Locations read (data dependencies).
    pub reads: Vec<Loc>,
    /// Locations written.
    pub writes: Vec<Loc>,
    /// Per-destination value flows (taint propagation rules).
    pub flows: Vec<Flow>,
    /// Memory region written, as `(addr, len)`, if any (convenience for
    /// bounds-checking tools; bytes also appear in `writes`).
    pub mem_write: Option<(u32, u32)>,
    /// Memory region read, as `(addr, len)`, if any.
    pub mem_read: Option<(u32, u32)>,
    /// Control-flow target read from a register or memory, if this is an
    /// indirect transfer (`jmpr`/`callr`/`ret`) — the hijack sinks.
    pub indirect_target: Option<(Loc, u32)>,
    /// Whether the instruction conditionally branches on the flags.
    pub reads_flags: bool,
}

fn push_mem(v: &mut Vec<Loc>, addr: u32, len: u32) {
    for i in 0..len {
        v.push(Loc::MemByte(addr.wrapping_add(i)));
    }
}

/// Compute the effects of `op` about to execute at `pc` on machine `m`.
///
/// Must be called *before* the instruction executes (effective addresses
/// are taken from current register values).
pub fn effects(m: &Machine, op: &Op) -> Effects {
    let mut e = Effects::default();
    let r = |reg: Reg| Loc::Reg(reg.0);
    let mem_locs = |addr: u32, len: u32| -> Vec<Loc> {
        (0..len)
            .map(|i| Loc::MemByte(addr.wrapping_add(i)))
            .collect()
    };
    match *op {
        Op::Nop | Op::Halt | Op::Jmp { .. } => {}
        Op::MovI { rd, .. } => {
            e.writes.push(r(rd));
            e.flows.push(Flow {
                from: Vec::new(),
                to: r(rd),
            });
        }
        Op::Mov { rd, rs } => {
            e.reads.push(r(rs));
            e.writes.push(r(rd));
            e.flows.push(Flow {
                from: vec![r(rs)],
                to: r(rd),
            });
        }
        Op::Ld { rd, rs, off } => {
            let addr = m.cpu.get(rs).wrapping_add(off as u32);
            e.reads.push(r(rs));
            push_mem(&mut e.reads, addr, 4);
            e.mem_read = Some((addr, 4));
            e.writes.push(r(rd));
            // Value flow: the loaded bytes only. The address register is
            // a *pointer* dependency: visible to slicing, not to taint.
            e.flows.push(Flow {
                from: mem_locs(addr, 4),
                to: r(rd),
            });
        }
        Op::LdB { rd, rs, off } => {
            let addr = m.cpu.get(rs).wrapping_add(off as u32);
            e.reads.push(r(rs));
            push_mem(&mut e.reads, addr, 1);
            e.mem_read = Some((addr, 1));
            e.writes.push(r(rd));
            e.flows.push(Flow {
                from: mem_locs(addr, 1),
                to: r(rd),
            });
        }
        Op::St { rd, rs, off } => {
            let addr = m.cpu.get(rd).wrapping_add(off as u32);
            e.reads.push(r(rd));
            e.reads.push(r(rs));
            push_mem(&mut e.writes, addr, 4);
            e.mem_write = Some((addr, 4));
            for l in mem_locs(addr, 4) {
                e.flows.push(Flow {
                    from: vec![r(rs)],
                    to: l,
                });
            }
        }
        Op::StB { rd, rs, off } => {
            let addr = m.cpu.get(rd).wrapping_add(off as u32);
            e.reads.push(r(rd));
            e.reads.push(r(rs));
            push_mem(&mut e.writes, addr, 1);
            e.mem_write = Some((addr, 1));
            e.flows.push(Flow {
                from: vec![r(rs)],
                to: Loc::MemByte(addr),
            });
        }
        Op::Alu { rd, rs1, rs2, .. } => {
            e.reads.push(r(rs1));
            e.reads.push(r(rs2));
            e.writes.push(r(rd));
            e.flows.push(Flow {
                from: vec![r(rs1), r(rs2)],
                to: r(rd),
            });
        }
        Op::AluI { rd, rs1, .. } => {
            e.reads.push(r(rs1));
            e.writes.push(r(rd));
            e.flows.push(Flow {
                from: vec![r(rs1)],
                to: r(rd),
            });
        }
        Op::Cmp { rs1, rs2 } => {
            e.reads.push(r(rs1));
            e.reads.push(r(rs2));
            e.writes.push(Loc::Flags);
            e.flows.push(Flow {
                from: vec![r(rs1), r(rs2)],
                to: Loc::Flags,
            });
        }
        Op::CmpI { rs1, .. } => {
            e.reads.push(r(rs1));
            e.writes.push(Loc::Flags);
            e.flows.push(Flow {
                from: vec![r(rs1)],
                to: Loc::Flags,
            });
        }
        Op::JCond { .. } => {
            e.reads.push(Loc::Flags);
            e.reads_flags = true;
        }
        Op::JmpR { rs } => {
            e.reads.push(r(rs));
            e.indirect_target = Some((r(rs), m.cpu.get(rs)));
        }
        Op::Call { .. } => {
            let sp = m.cpu.sp().wrapping_sub(4);
            e.reads.push(r(Reg::SP));
            e.writes.push(r(Reg::SP));
            push_mem(&mut e.writes, sp, 4);
            e.mem_write = Some((sp, 4));
            // The pushed return address is constant-derived: the flows
            // (none) clear any stale taint in the slot and leave SP
            // untainted. Slicing still sees the SP dependency above.
        }
        Op::CallR { rs } => {
            let sp = m.cpu.sp().wrapping_sub(4);
            e.reads.push(r(rs));
            e.reads.push(r(Reg::SP));
            e.writes.push(r(Reg::SP));
            push_mem(&mut e.writes, sp, 4);
            e.mem_write = Some((sp, 4));
            e.indirect_target = Some((r(rs), m.cpu.get(rs)));
        }
        Op::Ret => {
            let sp = m.cpu.sp();
            e.reads.push(r(Reg::SP));
            push_mem(&mut e.reads, sp, 4);
            e.mem_read = Some((sp, 4));
            e.writes.push(r(Reg::SP));
            let target = m.mem.read_u32(0, sp).unwrap_or(0);
            e.indirect_target = Some((Loc::MemByte(sp), target));
        }
        Op::Push { rs } => {
            let sp = m.cpu.sp().wrapping_sub(4);
            e.reads.push(r(rs));
            e.reads.push(r(Reg::SP));
            e.writes.push(r(Reg::SP));
            push_mem(&mut e.writes, sp, 4);
            e.mem_write = Some((sp, 4));
            for l in mem_locs(sp, 4) {
                e.flows.push(Flow {
                    from: vec![r(rs)],
                    to: l,
                });
            }
        }
        Op::Pop { rd } => {
            let sp = m.cpu.sp();
            e.reads.push(r(Reg::SP));
            push_mem(&mut e.reads, sp, 4);
            e.mem_read = Some((sp, 4));
            e.writes.push(r(rd));
            e.writes.push(r(Reg::SP));
            e.flows.push(Flow {
                from: mem_locs(sp, 4),
                to: r(rd),
            });
        }
        Op::Sys { .. } => {
            // Syscall argument registers are address/size operands; the
            // result in r0 is kernel-produced. Input-data taint enters
            // via the dedicated on_input hook, so at the effects level a
            // syscall clears r0 (no flow) and carries no value flows.
            // Slicing still records the argument dependencies.
            for i in 0..4 {
                e.reads.push(Loc::Reg(i));
            }
            e.writes.push(Loc::Reg(0));
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::Machine;

    fn machine() -> Machine {
        let prog = assemble(".text\nmain:\n halt\n").expect("asm");
        Machine::boot(&prog, Aslr::off()).expect("boot")
    }

    #[test]
    fn load_effects_use_effective_address() {
        let mut m = machine();
        m.cpu.set(Reg(2), 0x2000);
        let e = effects(
            &m,
            &Op::Ld {
                rd: Reg(1),
                rs: Reg(2),
                off: 8,
            },
        );
        assert!(e.reads.contains(&Loc::Reg(2)));
        assert!(e.reads.contains(&Loc::MemByte(0x2008)));
        assert!(e.reads.contains(&Loc::MemByte(0x200b)));
        assert_eq!(e.mem_read, Some((0x2008, 4)));
        assert_eq!(e.writes, vec![Loc::Reg(1)]);
    }

    #[test]
    fn store_effects() {
        let mut m = machine();
        m.cpu.set(Reg(3), 0x3000);
        let e = effects(
            &m,
            &Op::StB {
                rd: Reg(3),
                rs: Reg(4),
                off: -1,
            },
        );
        assert_eq!(e.mem_write, Some((0x2fff, 1)));
        assert!(e.reads.contains(&Loc::Reg(4)));
        assert_eq!(e.writes, vec![Loc::MemByte(0x2fff)]);
    }

    #[test]
    fn ret_is_an_indirect_sink_reading_stack() {
        let mut m = machine();
        let sp = m.cpu.sp();
        m.mem.write_u32(0, sp, 0x4242).expect("w");
        let e = effects(&m, &Op::Ret);
        assert_eq!(e.indirect_target, Some((Loc::MemByte(sp), 0x4242)));
        assert!(e.reads.contains(&Loc::MemByte(sp)));
    }

    #[test]
    fn callr_is_an_indirect_sink() {
        let mut m = machine();
        m.cpu.set(Reg(6), 0x7777);
        let e = effects(&m, &Op::CallR { rs: Reg(6) });
        assert_eq!(e.indirect_target, Some((Loc::Reg(6), 0x7777)));
        assert!(e.mem_write.is_some(), "pushes the return address");
    }

    #[test]
    fn cmp_writes_flags_jcond_reads_them() {
        let m = machine();
        let e = effects(
            &m,
            &Op::Cmp {
                rs1: Reg(0),
                rs2: Reg(1),
            },
        );
        assert!(e.writes.contains(&Loc::Flags));
        let e2 = effects(
            &m,
            &Op::JCond {
                cond: svm::isa::Cond::Eq,
                target: 0,
            },
        );
        assert!(e2.reads_flags);
        assert!(e2.reads.contains(&Loc::Flags));
    }

    #[test]
    fn alu_reads_both_sources() {
        let m = machine();
        let e = effects(
            &m,
            &Op::Alu {
                op: svm::isa::AluOp::Xor,
                rd: Reg(0),
                rs1: Reg(5),
                rs2: Reg(6),
            },
        );
        assert_eq!(e.reads, vec![Loc::Reg(5), Loc::Reg(6)]);
        assert_eq!(e.writes, vec![Loc::Reg(0)]);
    }
}
