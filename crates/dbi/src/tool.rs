//! The instrumentation-tool abstraction (PIN "pintool" analogue).
//!
//! A [`Tool`] receives the same events as an [`svm::Hook`] plus metadata
//! the [`Instrumenter`](crate::instr::Instrumenter) uses for selective
//! instrumentation and overhead accounting:
//!
//! - [`Tool::watches`] restricts instruction events to a pc set. This is
//!   the mechanism behind the paper's VSEF cost argument: a full analysis
//!   tool watches *every* pc (20x-1000x overhead), while a VSEF watches a
//!   handful (negligible overhead).
//! - [`Tool::insn_cost`] is the virtual-cycle price charged for each
//!   delivered instruction event, modelling the instrumentation slowdown.

use std::any::Any;
use std::collections::HashSet;

use svm::alloc::FreeKind;
use svm::isa::{Op, Syscall};
use svm::Machine;

/// Which program counters a tool wants instruction events for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Watch {
    /// Deliver every instruction (full-program analysis tools).
    All,
    /// Deliver only these pcs (VSEFs and other pinpoint filters).
    Pcs(HashSet<u32>),
    /// Deliver no instruction events (tools driven by other events only).
    None,
}

impl Watch {
    /// Whether `pc` is covered.
    pub fn covers(&self, pc: u32) -> bool {
        match self {
            Watch::All => true,
            Watch::Pcs(set) => set.contains(&pc),
            Watch::None => false,
        }
    }

    /// Number of watched sites (`None` for `All`).
    pub fn site_count(&self) -> Option<usize> {
        match self {
            Watch::All => None,
            Watch::Pcs(set) => Some(set.len()),
            Watch::None => Some(0),
        }
    }
}

/// A dynamic-instrumentation tool.
///
/// All event methods default to no-ops; implement only what the tool
/// needs. Event methods mirror [`svm::Hook`] exactly.
///
/// Tools are `Send` so whole protected hosts can be booted on worker
/// threads (the parallel community campaign constructs its population
/// concurrently); tools are plain data, so this costs nothing.
#[allow(unused_variables)]
pub trait Tool: Any + Send {
    /// Short human-readable tool name (appears in reports).
    fn name(&self) -> &str;

    /// Which pcs this tool's instruction instrumentation covers.
    fn watches(&self) -> Watch {
        Watch::All
    }

    /// Virtual cycles charged per delivered instruction event.
    ///
    /// Defaults reflect the paper's overhead bands: a heavyweight tool
    /// overrides this with a large value (taint ~40, slicing ~500), a
    /// VSEF keeps a small one.
    fn insn_cost(&self) -> u64 {
        10
    }

    /// Called before each watched instruction executes.
    fn on_insn(&mut self, m: &Machine, pc: u32, op: &Op) {}

    /// Called before a data read completes.
    fn on_mem_read(&mut self, m: &Machine, pc: u32, addr: u32, size: u8, val: u32) {}

    /// Called before a data write is performed.
    fn on_mem_write(&mut self, m: &Machine, pc: u32, addr: u32, size: u8, val: u32) {}

    /// Called on `call`/`callr`.
    fn on_call(&mut self, m: &Machine, pc: u32, target: u32, ret_addr: u32, sp: u32) {}

    /// Called on `ret`.
    fn on_ret(&mut self, m: &Machine, pc: u32, ret_target: u32, sp: u32) {}

    /// Called after a successful guest allocation.
    fn on_alloc(&mut self, m: &Machine, pc: u32, size: u32, ptr: u32) {}

    /// Called after a guest free.
    fn on_free(&mut self, m: &Machine, pc: u32, ptr: u32, kind: FreeKind) {}

    /// Called after a syscall completes.
    fn on_syscall(&mut self, m: &Machine, pc: u32, sc: Syscall, args: [u32; 4], ret: u32) {}

    /// Called after input bytes were delivered to the guest.
    fn on_input(&mut self, m: &Machine, conn: u32, stream_off: u32, addr: u32, data: &[u8]) {}

    /// Upcast for retrieval from an [`Instrumenter`](crate::instr::Instrumenter).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_covers() {
        assert!(Watch::All.covers(5));
        assert!(!Watch::None.covers(5));
        let pcs: HashSet<u32> = [8, 16].into_iter().collect();
        let w = Watch::Pcs(pcs);
        assert!(w.covers(8));
        assert!(!w.covers(9));
        assert_eq!(w.site_count(), Some(2));
        assert_eq!(Watch::All.site_count(), None);
    }
}
