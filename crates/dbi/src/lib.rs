//! # dbi — dynamic binary instrumentation over the Sweeper VM
//!
//! The PIN analogue of the reproduction (paper §3.1): a [`tool::Tool`]
//! abstraction, an [`instr::Instrumenter`] that multiplexes machine events
//! to attached tools — including *attaching mid-execution to a running
//! process*, the property Sweeper's deferred-analysis design hinges on —
//! per-pc selective instrumentation ([`tool::Watch`]) that makes VSEFs
//! cheap, virtual-cycle overhead accounting, the resolved dataflow
//! [`effects::effects`] decoder shared by taint analysis and slicing, and
//! a full [`trace::TraceRecorder`].

pub mod coverage;
pub mod effects;
pub mod instr;
pub mod tool;
pub mod trace;

pub use coverage::Coverage;
pub use effects::{effects, Effects, Flow, Loc};
pub use instr::{Instrumenter, ToolId};
pub use tool::{Tool, Watch};
pub use trace::{TraceEntry, TraceEvent, TraceRecorder};
