//! The instrumenter: dynamic attach/detach and event multiplexing.
//!
//! This is the PIN analogue: tools can be attached to an *already running*
//! process (the property Sweeper exploits to defer heavyweight analysis
//! until after an attack), receive filtered events, and are charged
//! virtual-cycle overhead per delivered event so that instrumentation cost
//! is visible in the experiments.

use svm::alloc::FreeKind;
use svm::isa::{Op, Syscall};
use svm::{Hook, Machine};

use crate::tool::{Tool, Watch};

/// Identifier of an attached tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ToolId(usize);

struct Slot {
    tool: Box<dyn Tool>,
    watch: Watch,
    insn_cost: u64,
    events: u64,
    /// Auto-detach the tool once `events` reaches this limit (chaos
    /// fault injection: a mid-replay DBI detach). `None` = never.
    detach_after: Option<u64>,
}

/// Multiplexes events from a [`Machine`] to attached [`Tool`]s.
///
/// Implements [`svm::Hook`], so it is passed to `Machine::run`. Overhead
/// cycles accumulate internally; call [`Instrumenter::charge`] to transfer
/// them to a machine's virtual clock (done by the drivers that model
/// instrumented execution time).
#[derive(Default)]
pub struct Instrumenter {
    slots: Vec<Option<Slot>>,
    overhead: u64,
    /// Lifetime total of overhead cycles charged onto a machine's clock.
    charged_total: u64,
    /// Lifetime total of overhead cycles taken (accounted out-of-band).
    taken_total: u64,
    /// Tools forcibly detached by a `detach_after` event limit.
    auto_detached_total: u64,
}

impl Instrumenter {
    /// An instrumenter with no tools.
    pub fn new() -> Instrumenter {
        Instrumenter::default()
    }

    /// Attach a tool (mid-execution attach is the point of this API).
    pub fn attach(&mut self, tool: Box<dyn Tool>) -> ToolId {
        let watch = tool.watches();
        let insn_cost = tool.insn_cost();
        let slot = Slot {
            tool,
            watch,
            insn_cost,
            events: 0,
            detach_after: None,
        };
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.is_none() {
                *s = Some(slot);
                return ToolId(i);
            }
        }
        self.slots.push(Some(slot));
        ToolId(self.slots.len() - 1)
    }

    /// Detach a tool, returning it (e.g. to read out its findings).
    pub fn detach(&mut self, id: ToolId) -> Option<Box<dyn Tool>> {
        self.slots
            .get_mut(id.0)
            .and_then(|s| s.take())
            .map(|s| s.tool)
    }

    /// Arm a mid-execution detach: once the tool has received `events`
    /// instruction events, it is silently detached (its findings are
    /// discarded), exactly as if the DBI runtime died mid-replay.
    ///
    /// This is the chaos harness' `DbiDetach` fault family: Sweeper's
    /// analysis pipeline must tolerate a tool vanishing between attach
    /// and read-out by degrading its report, never by panicking. A limit
    /// of 0 detaches before the next event is delivered.
    pub fn set_detach_after(&mut self, id: ToolId, events: u64) {
        if let Some(Some(s)) = self.slots.get_mut(id.0) {
            s.detach_after = Some(events);
        }
    }

    /// How many tools have been forcibly removed by a
    /// [`Instrumenter::set_detach_after`] limit so far.
    pub fn auto_detached_total(&self) -> u64 {
        self.auto_detached_total
    }

    /// Re-read a tool's watch set and cost (after reconfiguring it).
    pub fn refresh(&mut self, id: ToolId) {
        if let Some(Some(s)) = self.slots.get_mut(id.0) {
            s.watch = s.tool.watches();
            s.insn_cost = s.tool.insn_cost();
        }
    }

    /// Borrow an attached tool by id and concrete type.
    pub fn get<T: Tool>(&self, id: ToolId) -> Option<&T> {
        self.slots
            .get(id.0)?
            .as_ref()?
            .tool
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably borrow an attached tool by id and concrete type.
    pub fn get_mut<T: Tool>(&mut self, id: ToolId) -> Option<&mut T> {
        self.slots
            .get_mut(id.0)?
            .as_mut()?
            .tool
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Number of currently attached tools.
    pub fn tool_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Events delivered to a tool so far.
    pub fn events_of(&self, id: ToolId) -> u64 {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .map(|s| s.events)
            .unwrap_or(0)
    }

    /// Accumulated (uncharged) instrumentation overhead in cycles.
    pub fn pending_overhead(&self) -> u64 {
        self.overhead
    }

    /// Transfer accumulated overhead onto `m`'s virtual clock.
    pub fn charge(&mut self, m: &mut Machine) {
        m.clock.tick(self.overhead);
        self.charged_total += self.overhead;
        self.overhead = 0;
    }

    /// Drop accumulated overhead without charging (sandboxed replays whose
    /// time is accounted separately).
    pub fn take_overhead(&mut self) -> u64 {
        let taken = std::mem::take(&mut self.overhead);
        self.taken_total += taken;
        taken
    }

    /// Export instrumentation counters into an [`obs::MetricsRegistry`]
    /// under the `dbi.` prefix: per-tool delivered-event counts
    /// (`dbi.tool.<name>.events`) plus the pending / charged / taken
    /// overhead totals in cycles. Absolute mirrors — safe to re-export.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.set_counter("dbi.overhead.pending_cycles", self.overhead);
        reg.set_counter("dbi.overhead.charged_cycles", self.charged_total);
        reg.set_counter("dbi.overhead.taken_cycles", self.taken_total);
        reg.set_counter("dbi.auto_detached_total", self.auto_detached_total);
        reg.gauge("dbi.tools_attached", self.tool_count() as f64);
        for s in self.slots.iter().flatten() {
            reg.set_counter(&format!("dbi.tool.{}.events", s.tool.name()), s.events);
        }
    }

    fn each<F: FnMut(&mut Slot)>(&mut self, mut f: F) {
        for s in self.slots.iter_mut().flatten() {
            f(s);
        }
    }
}

impl Hook for Instrumenter {
    /// With no tools attached the instrumenter observes nothing, so it
    /// reports itself passive and the machine takes the streamlined
    /// dispatch loop (no per-event virtual calls). The machine re-asks
    /// on every step, so [`Instrumenter::attach`] and
    /// [`Instrumenter::detach`] are the cache-notification mechanism:
    /// the very next instruction after a mid-execution attach runs on
    /// the fully hooked path, and detaching the last tool drops back to
    /// the fast path — with the predecoded instruction cache staying
    /// valid across both, since hooks only *observe* decoded ops.
    fn is_passive(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    fn on_insn(&mut self, m: &Machine, pc: u32, op: &Op) {
        // Sweep armed detach limits *before* delivering: a tool whose
        // event budget is spent vanishes exactly as if the DBI runtime
        // detached it mid-flight (findings discarded).
        for s in self.slots.iter_mut() {
            if let Some(slot) = s {
                if slot.detach_after.is_some_and(|n| slot.events >= n) {
                    *s = None;
                    self.auto_detached_total += 1;
                }
            }
        }
        let mut overhead = 0;
        for s in self.slots.iter_mut().flatten() {
            if s.watch.covers(pc) {
                s.tool.on_insn(m, pc, op);
                s.events += 1;
                overhead += s.insn_cost;
            }
        }
        self.overhead += overhead;
    }

    fn on_mem_read(&mut self, m: &Machine, pc: u32, addr: u32, size: u8, val: u32) {
        self.each(|s| {
            if s.watch.covers(pc) {
                s.tool.on_mem_read(m, pc, addr, size, val);
            }
        });
    }

    fn on_mem_write(&mut self, m: &Machine, pc: u32, addr: u32, size: u8, val: u32) {
        self.each(|s| {
            if s.watch.covers(pc) {
                s.tool.on_mem_write(m, pc, addr, size, val);
            }
        });
    }

    fn on_call(&mut self, m: &Machine, pc: u32, target: u32, ret_addr: u32, sp: u32) {
        self.each(|s| s.tool.on_call(m, pc, target, ret_addr, sp));
    }

    fn on_ret(&mut self, m: &Machine, pc: u32, ret_target: u32, sp: u32) {
        self.each(|s| s.tool.on_ret(m, pc, ret_target, sp));
    }

    fn on_alloc(&mut self, m: &Machine, pc: u32, size: u32, ptr: u32) {
        self.each(|s| s.tool.on_alloc(m, pc, size, ptr));
    }

    fn on_free(&mut self, m: &Machine, pc: u32, ptr: u32, kind: FreeKind) {
        self.each(|s| s.tool.on_free(m, pc, ptr, kind));
    }

    fn on_syscall(&mut self, m: &Machine, pc: u32, sc: Syscall, args: [u32; 4], ret: u32) {
        self.each(|s| s.tool.on_syscall(m, pc, sc, args, ret));
    }

    fn on_input(&mut self, m: &Machine, conn: u32, stream_off: u32, addr: u32, data: &[u8]) {
        self.each(|s| s.tool.on_input(m, conn, stream_off, addr, data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::Watch;
    use std::any::Any;
    use std::collections::HashSet;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::Status;

    struct Counter {
        name: String,
        watch: Watch,
        cost: u64,
        insns: u64,
        allocs: u64,
    }

    impl Counter {
        fn new(watch: Watch, cost: u64) -> Counter {
            Counter {
                name: "counter".into(),
                watch,
                cost,
                insns: 0,
                allocs: 0,
            }
        }
    }

    impl Tool for Counter {
        fn name(&self) -> &str {
            &self.name
        }
        fn watches(&self) -> Watch {
            self.watch.clone()
        }
        fn insn_cost(&self) -> u64 {
            self.cost
        }
        fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {
            self.insns += 1;
        }
        fn on_alloc(&mut self, _m: &Machine, _pc: u32, _size: u32, _ptr: u32) {
            self.allocs += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn boot(src: &str) -> Machine {
        Machine::boot(&assemble(src).expect("asm"), Aslr::off()).expect("boot")
    }

    #[test]
    fn full_watch_sees_every_instruction() {
        let mut m = boot(".text\nmain:\n movi r0, 1\n movi r0, 2\n halt\n");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(Counter::new(Watch::All, 7)));
        assert!(matches!(m.run(&mut ins, 1_000_000), Status::Halted(_)));
        assert_eq!(ins.get::<Counter>(id).expect("tool").insns, 3);
        assert_eq!(ins.pending_overhead(), 21);
        let before = m.clock.cycles();
        ins.charge(&mut m);
        assert_eq!(m.clock.cycles(), before + 21);
        assert_eq!(ins.pending_overhead(), 0);
    }

    #[test]
    fn pc_filter_restricts_delivery_and_cost() {
        let mut m = boot(".text\nmain:\n movi r0, 1\n movi r0, 2\n movi r0, 3\n halt\n");
        let entry = m.cpu.pc;
        let pcs: HashSet<u32> = [entry + 8].into_iter().collect();
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(Counter::new(Watch::Pcs(pcs), 100)));
        m.run(&mut ins, 1_000_000);
        assert_eq!(
            ins.get::<Counter>(id).expect("t").insns,
            1,
            "only the watched pc"
        );
        assert_eq!(ins.pending_overhead(), 100);
    }

    #[test]
    fn mid_execution_attach() {
        let mut m =
            boot(".text\nmain:\n movi r0, 1\n movi r0, 2\n movi r0, 3\n movi r0, 4\n halt\n");
        let mut ins = Instrumenter::new();
        // Run two instructions uninstrumented.
        m.step_hooked(&mut ins);
        m.step_hooked(&mut ins);
        // Attach mid-flight — the Sweeper move.
        let id = ins.attach(Box::new(Counter::new(Watch::All, 1)));
        while m.step_hooked(&mut ins).is_running() {}
        assert_eq!(
            ins.get::<Counter>(id).expect("t").insns,
            3,
            "saw only the tail"
        );
    }

    #[test]
    fn passivity_tracks_attached_tools() {
        let mut ins = Instrumenter::new();
        assert!(ins.is_passive(), "empty instrumenter observes nothing");
        let id = ins.attach(Box::new(Counter::new(Watch::None, 1)));
        assert!(
            !ins.is_passive(),
            "any attached tool forces the hooked path (Watch filtering \
             happens per-event, not per-step)"
        );
        ins.detach(id);
        assert!(ins.is_passive(), "detaching the last tool restores it");
    }

    #[test]
    fn mid_attach_with_warm_decode_cache() {
        // A loop long enough that the decode cache is hot (pure hits)
        // before the tool attaches; the tool must still see every
        // subsequent instruction even though no decode work happens.
        let mut m = boot(
            ".text\nmain:\n movi r1, 6\nloop:\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n",
        );
        assert!(m.decode_cache_enabled());
        let mut ins = Instrumenter::new();
        // Two warm-up iterations on the fast (passive) path.
        for _ in 0..6 {
            assert!(m.step_hooked(&mut ins).is_running());
        }
        let warmed = m.icache_stats();
        assert!(warmed.hits > 0, "cache is hot before attach");
        let id = ins.attach(Box::new(Counter::new(Watch::All, 1)));
        while m.step_hooked(&mut ins).is_running() {}
        let seen = ins.get::<Counter>(id).expect("tool").insns;
        // 20 insns total (movi + 6 iterations x 3 + halt); 6 ran pre-attach.
        assert_eq!(seen, 14, "tool saw exactly the post-attach tail");
        assert!(
            m.icache_stats().hits > warmed.hits,
            "hooked path still serves decoded ops from the cache"
        );
    }

    #[test]
    fn mid_attach_after_superblock_dispatch_sees_every_instruction() {
        // Warm the superblock tier on the passive fast path, then attach a
        // tool between dispatches. Liveness is re-checked before every
        // dispatch, so the attach must force the precise per-instruction
        // path for the whole remaining run — no block may retire
        // uninstrumented instructions.
        let mut m = boot(
            ".text\nmain:\n movi r1, 500\nloop:\n addi r0, r0, 1\n \
             addi r0, r0, 1\n subi r1, r1, 1\n cmpi r1, 0\n jnz loop\n halt\n",
        );
        assert!(m.superblocks_enabled());
        let mut ins = Instrumenter::new();
        assert!(m.run(&mut ins, 1_000).is_running(), "bounded warm-up burst");
        let warmed = m.superblock_stats();
        assert!(warmed.dispatches > 0, "tier engaged while passive");
        let before = m.insns_retired;
        let id = ins.attach(Box::new(Counter::new(Watch::All, 0)));
        assert!(matches!(m.run(&mut ins, u64::MAX), Status::Halted(_)));
        let tail = m.insns_retired - before;
        assert_eq!(
            ins.get::<Counter>(id).expect("tool").insns,
            tail,
            "tool saw every instruction retired after the attach"
        );
        assert_eq!(
            m.superblock_stats().dispatches,
            warmed.dispatches,
            "no superblock dispatched while a tool was live"
        );
    }

    #[test]
    fn detach_returns_tool_with_findings() {
        let mut m = boot(".text\nmain:\n movi r0, 64\n sys alloc\n halt\n");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(Counter::new(Watch::All, 1)));
        m.run(&mut ins, 1_000_000);
        let tool = ins.detach(id).expect("detach");
        let c = tool.as_any().downcast_ref::<Counter>().expect("downcast");
        assert_eq!(c.allocs, 1);
        assert_eq!(ins.tool_count(), 0);
        assert!(ins.detach(id).is_none(), "double detach is None");
    }

    #[test]
    fn multiple_tools_all_receive_events() {
        let mut m = boot(".text\nmain:\n movi r0, 1\n halt\n");
        let mut ins = Instrumenter::new();
        let a = ins.attach(Box::new(Counter::new(Watch::All, 2)));
        let b = ins.attach(Box::new(Counter::new(Watch::All, 3)));
        m.run(&mut ins, 1_000_000);
        assert_eq!(ins.get::<Counter>(a).expect("a").insns, 2);
        assert_eq!(ins.get::<Counter>(b).expect("b").insns, 2);
        assert_eq!(ins.pending_overhead(), 2 * (2 + 3));
        assert_eq!(ins.events_of(a), 2);
    }

    #[test]
    fn export_metrics_names_tools_and_tracks_charged_overhead() {
        let mut m = boot(".text\nmain:\n movi r0, 1\n movi r0, 2\n halt\n");
        let mut ins = Instrumenter::new();
        ins.attach(Box::new(Counter::new(Watch::All, 7)));
        m.run(&mut ins, 1_000_000);
        let mut reg = obs::MetricsRegistry::new();
        ins.export_metrics(&mut reg);
        assert_eq!(reg.counter("dbi.tool.counter.events"), 3);
        assert_eq!(reg.counter("dbi.overhead.pending_cycles"), 21);
        assert_eq!(reg.counter("dbi.overhead.charged_cycles"), 0);
        ins.charge(&mut m);
        ins.export_metrics(&mut reg);
        assert_eq!(reg.counter("dbi.overhead.pending_cycles"), 0);
        assert_eq!(reg.counter("dbi.overhead.charged_cycles"), 21);
    }

    #[test]
    fn armed_detach_removes_tool_mid_run() {
        let mut m =
            boot(".text\nmain:\n movi r0, 1\n movi r0, 2\n movi r0, 3\n movi r0, 4\n halt\n");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(Counter::new(Watch::All, 1)));
        ins.set_detach_after(id, 2);
        m.run(&mut ins, 1_000_000);
        assert!(
            ins.get::<Counter>(id).is_none(),
            "tool is gone after its event budget"
        );
        assert_eq!(ins.tool_count(), 0);
        assert_eq!(ins.auto_detached_total(), 1);
        assert_eq!(
            ins.pending_overhead(),
            2,
            "only the delivered events were charged"
        );
        assert!(ins.is_passive(), "machine drops back to the fast path");
    }

    #[test]
    fn detach_after_zero_blocks_all_delivery() {
        let mut m = boot(".text\nmain:\n movi r0, 1\n halt\n");
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(Counter::new(Watch::All, 5)));
        ins.set_detach_after(id, 0);
        m.run(&mut ins, 1_000_000);
        assert!(ins.get::<Counter>(id).is_none());
        assert_eq!(ins.pending_overhead(), 0, "no event was ever delivered");
        assert_eq!(ins.auto_detached_total(), 1);
    }

    #[test]
    fn slot_reuse_after_detach() {
        let mut ins = Instrumenter::new();
        let a = ins.attach(Box::new(Counter::new(Watch::All, 1)));
        ins.detach(a);
        let b = ins.attach(Box::new(Counter::new(Watch::None, 1)));
        assert_eq!(a, b, "slot is reused");
        assert_eq!(ins.tool_count(), 1);
    }
}
