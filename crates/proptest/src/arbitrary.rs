//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: core::fmt::Debug + Clone + Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider code points.
        if rng.below(8) == 0 {
            char::from_u32((rng.next_u64() % 0xD7FF) as u32).unwrap_or('\u{fffd}')
        } else {
            (0x20 + (rng.next_u64() % 0x5f) as u8) as char
        }
    }
}
