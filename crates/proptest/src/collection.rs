//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as the size specifier of [`vec`]: an exact `usize`,
/// a `Range<usize>`, or a `RangeInclusive<usize>`.
pub trait SizeRange {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Strategy for vectors whose elements come from `element`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// `vec(strategy, sizes)` — a vector of generated elements.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
