//! # proptest (offline shim)
//!
//! A small, dependency-free re-implementation of the slice of the
//! `proptest` API this workspace uses. The real crate cannot be fetched
//! in the offline build environment, so this shim provides the same
//! surface — `proptest!`, `prop_assert*!`, `prop_oneof!`, `Just`,
//! `any::<T>()`, range strategies, tuple strategies,
//! `proptest::collection::vec`, `ProptestConfig`, and
//! `.proptest-regressions` seed files — with deterministic case
//! generation (no shrinking: the failing input is printed verbatim).
//!
//! Semantics intentionally kept close to upstream:
//! - every strategy is a pure function of the runner's RNG stream;
//! - regression-file entries (`cc <hex>`) are replayed before novel
//!   cases, each hex digest seeding one deterministic case;
//! - `prop_assume!` rejects a case without counting it against the
//!   configured case budget (with a global rejection cap).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property, failing the case (not the
/// process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Assert two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Discard the current case without counting it as run.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                &format!($($fmt)+),
            ));
        }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type (the unweighted `prop_oneof!` form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declare property tests. Supports the common form used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))] // optional
///     #[test]
///     fn name(x in strategy, y in other) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion target of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_property(
                    &config,
                    file!(),
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
