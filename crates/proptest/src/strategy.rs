//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces values from the runner's
//! RNG stream. Unlike upstream proptest there is no shrinking tree: a
//! failing case is reported verbatim (generation is deterministic, so a
//! failure reproduces under the same seed).

use crate::test_runner::TestRng;

/// Something that can generate values of a given type from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: core::fmt::Debug + Clone;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: core::fmt::Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; rejected draws are retried (bounded).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: core::fmt::Debug + Clone> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: core::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: core::fmt::Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.reason
        );
    }
}

/// Uniform choice among several same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: core::fmt::Debug + Clone> Union<T> {
    /// Build from the (non-empty) option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: core::fmt::Debug + Clone> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = rng.below_u128(span);
                (self.start as u128).wrapping_add(off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let off = rng.below_u128(span);
                (lo as u128).wrapping_add(off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9)
}
