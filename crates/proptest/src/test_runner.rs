//! The deterministic case runner.
//!
//! Cases are generated from a seed derived from the test's file + name,
//! so failures reproduce without any persisted state. Before novel
//! cases, any `cc <hex>` entries in the sibling `.proptest-regressions`
//! file are replayed (each digest deterministically seeds one case),
//! preserving the upstream regression-guard workflow.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use crate::strategy::Strategy;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of novel cases to run.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 100,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` novel cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why one case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` (does not count).
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assume-filtered) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The runner's RNG: splitmix64 — tiny, seedable, well distributed.
#[derive(Debug, Clone, Copy)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically.
    pub fn seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[0, n)` over a 128-bit span (n > 0, n <= 2^64
    /// in practice for primitive ranges; full-width spans use two draws).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        if n == 0 {
            return 0; // Full 2^128 span cannot arise from primitive ranges.
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a string — stable across runs and platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Load regression seeds from `<source-stem>.proptest-regressions`.
///
/// Each `cc <hex>` line hashes to one deterministic extra seed that is
/// replayed before novel cases.
fn regression_seeds(source_file: &str) -> Vec<u64> {
    let mut path = PathBuf::from(source_file);
    path.set_extension("proptest-regressions");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let digest = rest.split_whitespace().next()?;
            Some(fnv1a(digest))
        })
        .collect()
}

/// Run one property: regression cases first, then `config.cases` novel
/// cases. Panics (failing the enclosing `#[test]`) on the first
/// violated case, printing the generated input.
pub fn run_property<S, F>(
    config: &ProptestConfig,
    source_file: &str,
    name: &str,
    strategy: &S,
    test: F,
) where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let base = fnv1a(source_file) ^ fnv1a(name).rotate_left(32);
    let mut seeds: Vec<(u64, bool)> = regression_seeds(source_file)
        .into_iter()
        .map(|s| (s ^ base, true))
        .collect();
    seeds.extend(
        (0..config.cases).map(|i| (base.wrapping_add(0x9e37_79b9 * (i as u64 + 1)), false)),
    );

    let mut rejects = 0u32;
    let mut idx = 0usize;
    while idx < seeds.len() {
        let (seed, from_regression) = seeds[idx];
        let mut rng = TestRng::seed(seed.wrapping_add(rejects as u64));
        let value = strategy.generate(&mut rng);
        let shown = value.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => idx += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("{name}: too many prop_assume! rejections (last: {why})");
                }
                // Retry the same slot with a perturbed seed.
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "{name}: property failed{}: {msg}\n  input: {shown:?}\n  seed: {seed:#018x}",
                    if from_regression {
                        " (regression case)"
                    } else {
                        ""
                    },
                );
            }
            Err(payload) => {
                eprintln!(
                    "{name}: property panicked{}\n  input: {shown:?}\n  seed: {seed:#018x}",
                    if from_regression {
                        " (regression case)"
                    } else {
                        ""
                    },
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed(7);
        let mut b = TestRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }
}
